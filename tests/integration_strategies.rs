//! Cross-crate integration tests: every strategy against the engine, the
//! offline DP as the universal lower bound, and the paper's qualitative
//! claims on real scenario traces.

use flexserve::prelude::*;

/// Builds a seeded random-latency line substrate (the OPT topology).
fn line_env(n: usize, seed: u64) -> (Graph, DistanceMatrix) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = line(n, &GenConfig::default(), &mut rng).unwrap();
    let m = DistanceMatrix::build(&g);
    (g, m)
}

fn er_env(n: usize, seed: u64) -> (Graph, DistanceMatrix) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = erdos_renyi(n, 0.05, &GenConfig::default(), &mut rng).unwrap();
    let m = DistanceMatrix::build(&g);
    (g, m)
}

/// OPT must lower-bound every online and offline strategy on the same
/// trace — the fundamental sanity property of the whole system.
#[test]
fn opt_lower_bounds_every_strategy() {
    for seed in 0..3u64 {
        let (g, m) = line_env(5, seed);
        let params = CostParams::default().with_max_servers(4);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let mut scenario = CommuterScenario::new(&g, 4, 5, LoadVariant::Dynamic, seed);
        let trace = record(&mut scenario, 120);
        let start = initial_center(&ctx);

        let opt = optimal_plan(&ctx, &trace, &start).cost;

        let mut costs: Vec<(String, f64)> = Vec::new();
        let rec = run_online(&ctx, &trace, &mut OnTh::new(), start.clone());
        costs.push(("ONTH".into(), rec.total().total()));
        let rec = run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone());
        costs.push(("ONBR-fixed".into(), rec.total().total()));
        let rec = run_online(&ctx, &trace, &mut OnBr::dynamic(&ctx), start.clone());
        costs.push(("ONBR-dyn".into(), rec.total().total()));
        let rec = run_online(&ctx, &trace, &mut StaticStrategy::new(), start.clone());
        costs.push(("STATIC".into(), rec.total().total()));
        let rec = run_online(
            &ctx,
            &trace,
            &mut OnConf::new(&ctx, &start, seed),
            start.clone(),
        );
        costs.push(("ONCONF".into(), rec.total().total()));
        let rec = run_online(&ctx, &trace, &mut OffTh::new(trace.clone()), start.clone());
        costs.push(("OFFTH".into(), rec.total().total()));
        let rec = run_online(
            &ctx,
            &trace,
            &mut OffBr::fixed(&ctx, trace.clone()),
            start.clone(),
        );
        costs.push(("OFFBR".into(), rec.total().total()));

        for (name, cost) in costs {
            assert!(
                opt <= cost + 1e-6,
                "seed {seed}: OPT ({opt}) beaten by {name} ({cost})"
            );
        }
    }
}

/// OFFSTAT's best static configuration can never beat OPT by more than the
/// initial-placement asymmetry (OPT starts at the center, OFFSTAT places
/// greedily — worth at most one migration β).
#[test]
fn offstat_nearly_lower_bounded_by_opt() {
    for seed in 0..3u64 {
        let (g, m) = line_env(5, seed);
        let params = CostParams::default().with_max_servers(4);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let mut scenario = TimeZonesScenario::new(&g, 4, 10, 0.5, 3, seed);
        let trace = record(&mut scenario, 100);
        let start = initial_center(&ctx);
        let opt = optimal_plan(&ctx, &trace, &start).cost;
        let stat = offstat(&ctx, &trace).best_cost;
        assert!(
            opt <= stat + ctx.params.migration_beta + 1e-6,
            "seed {seed}: OPT {opt} vs OFFSTAT {stat}"
        );
    }
}

/// The competitive ratio of every online strategy is ≥ 1 (up to the same
/// initial-placement slack) and finite.
#[test]
fn competitive_ratios_are_sane() {
    let (g, m) = line_env(5, 9);
    let params = CostParams::default().with_max_servers(4);
    let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
    let mut scenario = CommuterScenario::new(&g, 4, 10, LoadVariant::Static, 9);
    let trace = record(&mut scenario, 150);
    let start = initial_center(&ctx);
    let opt = optimal_plan(&ctx, &trace, &start).cost;
    let onth = run_online(&ctx, &trace, &mut OnTh::new(), start)
        .total()
        .total();
    let ratio = competitive_ratio(onth, opt);
    assert!(ratio >= 1.0 - 1e-9, "ratio {ratio}");
    assert!(ratio.is_finite());
    assert!(ratio < 20.0, "implausibly bad ratio {ratio}");
}

/// Paper claim (Figs 2/4, Table 1): ONTH outperforms ONBR on the
/// commuter scenario with static load. (Under *dynamic* load the two are
/// within noise of each other in this reproduction, so the static variant
/// — where the margin is 6–15% across every probed seed — is the robust
/// form of the claim; T = 10 matches the paper's mid-size substrates.)
#[test]
fn onth_beats_onbr_on_commuter_scenarios() {
    let mut onth_total = 0.0;
    let mut onbr_total = 0.0;
    for seed in 0..3u64 {
        let (g, m) = er_env(120, seed);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let mut scenario = CommuterScenario::new(&g, 10, 10, LoadVariant::Static, seed);
        let trace = record(&mut scenario, 600);
        let start = initial_center(&ctx);
        onth_total += run_online(&ctx, &trace, &mut OnTh::new(), start.clone())
            .total()
            .total();
        onbr_total += run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start)
            .total()
            .total();
    }
    assert!(
        onth_total < onbr_total,
        "ONTH {onth_total} should beat ONBR {onbr_total}"
    );
}

/// Paper claim: dynamic allocation beats static provisioning when demand
/// moves (the headline "benefit of virtualization").
#[test]
fn adaptive_beats_static_under_mobility() {
    let (g, m) = er_env(100, 5);
    let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
    let mut scenario = OnOffScenario::new(&g, 30, 40, false, 5);
    let trace = record(&mut scenario, 400);
    let start = initial_center(&ctx);
    let adaptive = run_online(&ctx, &trace, &mut OnTh::new(), start.clone())
        .total()
        .total();
    let frozen = run_online(&ctx, &trace, &mut StaticStrategy::new(), start)
        .total()
        .total();
    assert!(
        adaptive < frozen,
        "ONTH {adaptive} should beat STATIC {frozen}"
    );
}

/// All strategies keep the fleet invariants on every round: at least one
/// active server, never more than k total.
#[test]
fn fleet_invariants_hold_throughout() {
    let (g, m) = er_env(60, 2);
    let params = CostParams::default().with_max_servers(3);
    let ctx = SimContext::new(&g, &m, params, LoadModel::Quadratic);
    let mut scenario = TimeZonesScenario::new(&g, 6, 8, 0.5, 30, 2);
    let trace = record(&mut scenario, 250);
    let start = initial_center(&ctx);

    for rec in [
        run_online(&ctx, &trace, &mut OnTh::new(), start.clone()),
        run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone()),
        run_online(&ctx, &trace, &mut OffTh::new(trace.clone()), start.clone()),
    ] {
        for r in &rec.rounds {
            assert!(r.active_servers >= 1, "round {} lost all servers", r.t);
            assert!(
                r.active_servers + r.inactive_servers <= 3,
                "round {} exceeded the k budget",
                r.t
            );
            assert!(r.costs.access.is_finite());
        }
    }
}

/// Engine determinism: identical seeds and strategies give identical runs.
#[test]
fn end_to_end_determinism() {
    let run = || {
        let (g, m) = er_env(80, 11);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let mut scenario = CommuterScenario::new(&g, 6, 5, LoadVariant::Static, 11);
        let trace = record(&mut scenario, 200);
        let start = initial_center(&ctx);
        run_online(&ctx, &trace, &mut OnTh::new(), start)
            .total()
            .total()
    };
    assert_eq!(run(), run());
}

/// The flipped β>c regime never migrates — all reconfiguration is
/// creation.
#[test]
fn flipped_regime_never_migrates() {
    let (g, m) = er_env(80, 3);
    let ctx = SimContext::new(&g, &m, CostParams::flipped(), LoadModel::Linear);
    let mut scenario = CommuterScenario::new(&g, 8, 5, LoadVariant::Dynamic, 3);
    let trace = record(&mut scenario, 300);
    let start = initial_center(&ctx);
    for rec in [
        run_online(&ctx, &trace, &mut OnTh::new(), start.clone()),
        run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone()),
    ] {
        assert_eq!(rec.total().migration, 0.0, "migration in flipped regime");
    }
}

/// Rocketfuel-style workflow: parse a weights file, run a strategy on it.
#[test]
fn rocketfuel_parser_to_simulation() {
    let text = "\
# tiny ISP
pop-a pop-b 3.0
pop-b pop-c 2.0
pop-c pop-d 4.5
pop-d pop-a 1.5
pop-a pop-c 6.0
";
    let g = parse_rocketfuel_weights(text).unwrap();
    let m = DistanceMatrix::build(&g);
    let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
    let mut scenario = UniformScenario::new(&g, 5, 1);
    let trace = record(&mut scenario, 50);
    let rec = run_online(&ctx, &trace, &mut OnTh::new(), initial_center(&ctx));
    assert!(rec.total().total() > 0.0);
    assert!(rec.total().total().is_finite());
}

/// The AS-7018-like substrate supports the full Table 1 pipeline.
#[test]
fn as7018_pipeline() {
    let (g, _) = as7018_like(&As7018Config::default()).unwrap();
    let m = DistanceMatrix::build(&g);
    let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
    let mut scenario = TimeZonesScenario::new(&g, 6, 10, 0.5, 25, 42);
    let trace = record(&mut scenario, 120);
    let stat = offstat(&ctx, &trace);
    let onth = run_online(&ctx, &trace, &mut OnTh::new(), initial_center(&ctx));
    assert!(stat.best_cost > 0.0);
    assert!(onth.total().total() >= stat.best_cost * 0.5, "sanity band");
}
