//! Offline-algorithm integration tests: DP internal consistency, plan
//! validity, and the relationships between OPT, OFFBR, OFFTH and OFFSTAT.

use flexserve::prelude::*;
use flexserve::sim::config_transition_cost;

fn line_ctx(seed: u64) -> (Graph, DistanceMatrix) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let g = line(5, &GenConfig::default(), &mut rng).unwrap();
    let m = DistanceMatrix::build(&g);
    (g, m)
}

fn commuter_trace(g: &Graph, seed: u64, rounds: u64) -> Trace {
    let mut s = CommuterScenario::new(g, 4, 5, LoadVariant::Dynamic, seed);
    record(&mut s, rounds)
}

/// Re-derive the DP's reported cost by walking its own plan: per round,
/// transition cost (DP pricing) + running + access must sum to `res.cost`.
#[test]
fn opt_cost_is_reproducible_from_its_plan() {
    for seed in 0..4u64 {
        let (g, m) = line_ctx(seed);
        let params = CostParams::default().with_max_servers(4);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let trace = commuter_trace(&g, seed, 80);
        let start = initial_center(&ctx);
        let res = optimal_plan(&ctx, &trace, &start);

        let mut total = 0.0;
        let mut prev_active: Vec<NodeId> = start.clone();
        let mut prev_inactive: Vec<NodeId> = Vec::new();
        for t in 0..trace.len() {
            let active = &res.plan[t];
            let inactive = &res.inactive_plan[t];
            total +=
                config_transition_cost(&prev_active, &prev_inactive, active, inactive, &ctx.params);
            total += ctx.running_cost(active.len(), inactive.len());
            total += ctx.access_cost(active, trace.round(t));
            prev_active = active.clone();
            prev_inactive = inactive.clone();
        }
        assert!(
            (total - res.cost).abs() < 1e-6,
            "seed {seed}: replay {total} vs DP {}",
            res.cost
        );
    }
}

/// The DP plan respects the structural constraints in every round.
#[test]
fn opt_plan_is_structurally_valid() {
    let (g, m) = line_ctx(1);
    let params = CostParams::default().with_max_servers(3);
    let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
    let trace = commuter_trace(&g, 1, 60);
    let res = optimal_plan(&ctx, &trace, &initial_center(&ctx));
    assert_eq!(res.plan.len(), trace.len());
    for t in 0..trace.len() {
        let a = &res.plan[t];
        let i = &res.inactive_plan[t];
        assert!(!a.is_empty(), "round {t}: no active servers");
        assert!(a.len() + i.len() <= 3, "round {t}: k exceeded");
        // disjoint and sorted
        let mut all: Vec<NodeId> = a.iter().chain(i.iter()).copied().collect();
        let before = all.len();
        all.sort();
        all.dedup();
        assert_eq!(before, all.len(), "round {t}: overlapping placements");
    }
}

/// Lengthening the trace can only increase OPT's total cost (costs are
/// non-negative per round).
#[test]
fn opt_cost_monotone_in_horizon() {
    let (g, m) = line_ctx(2);
    let params = CostParams::default().with_max_servers(3);
    let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
    let trace = commuter_trace(&g, 2, 100);
    let start = initial_center(&ctx);
    let mut prev = 0.0;
    for len in [20usize, 40, 60, 80, 100] {
        let sub = trace.slice(0, len);
        let cost = optimal_plan(&ctx, &sub, &start).cost;
        assert!(
            cost >= prev - 1e-9,
            "cost decreased when trace grew: {prev} -> {cost}"
        );
        prev = cost;
    }
}

/// On a constant-demand trace OPT moves (at most) once and then sits.
#[test]
fn opt_converges_on_constant_demand() {
    let (g, m) = line_ctx(3);
    let params = CostParams::default().with_max_servers(3);
    let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
    let batch = RoundRequests::new(vec![NodeId::new(4); 6]);
    let trace = Trace::new(vec![batch; 60]);
    let res = optimal_plan(&ctx, &trace, &initial_center(&ctx));
    // all rounds after the first must keep the same configuration
    for t in 1..trace.len() {
        assert_eq!(res.plan[t], res.plan[0], "OPT moved mid-run at {t}");
    }
}

/// OFFSTAT's k_opt never exceeds the configured budget and the cost curve
/// evaluates every candidate count.
#[test]
fn offstat_respects_budget() {
    let (g, m) = line_ctx(4);
    for k in 1..=4usize {
        let params = CostParams::default().with_max_servers(k);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let trace = commuter_trace(&g, 4, 60);
        let res = offstat(&ctx, &trace);
        assert!(res.k_opt <= k);
        assert_eq!(res.cost_curve.len(), k.min(g.node_count()));
    }
}

/// Offline lookahead variants are still valid online-game players: they
/// must respect the k budget and never underrun one active server, and
/// OPT still lower-bounds them.
#[test]
fn offline_variants_respect_the_game() {
    let (g, m) = line_ctx(5);
    let params = CostParams::default().with_max_servers(3);
    let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
    let trace = commuter_trace(&g, 5, 100);
    let start = initial_center(&ctx);
    let opt = optimal_plan(&ctx, &trace, &start).cost;

    for rec in [
        run_online(
            &ctx,
            &trace,
            &mut OffBr::fixed(&ctx, trace.clone()),
            start.clone(),
        ),
        run_online(&ctx, &trace, &mut OffTh::new(trace.clone()), start.clone()),
    ] {
        for r in &rec.rounds {
            assert!(r.active_servers >= 1 && r.active_servers + r.inactive_servers <= 3);
        }
        assert!(opt <= rec.total().total() + 1e-6);
    }
}

/// run_plan on OPT's plan must cost no less than the DP's own total: the
/// engine's FIFO-cache semantics are a *restriction* of the DP's free
/// inactive management, so it can only be as good or worse.
#[test]
fn engine_replay_of_opt_plan_is_no_cheaper() {
    for seed in 0..3u64 {
        let (g, m) = line_ctx(seed);
        let params = CostParams::default().with_max_servers(4);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let trace = commuter_trace(&g, seed, 80);
        let start = initial_center(&ctx);
        let res = optimal_plan(&ctx, &trace, &start);
        let replay = run_plan(&ctx, &trace, &res.plan, start);
        assert!(
            replay.total().total() >= res.cost - 1e-6,
            "seed {seed}: engine replay {} beat DP {}",
            replay.total().total(),
            res.cost
        );
    }
}

/// ONCONF and the neighborhood strategies coexist on the same tiny
/// instance, and all are bounded below by OPT.
#[test]
fn onconf_vs_opt_on_tiny_instance() {
    let (g, m) = line_ctx(6);
    let params = CostParams::default().with_max_servers(2);
    let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
    let trace = commuter_trace(&g, 6, 80);
    let start = initial_center(&ctx);
    let opt = optimal_plan(&ctx, &trace, &start).cost;
    let onconf = run_online(
        &ctx,
        &trace,
        &mut OnConf::new(&ctx, &start, 99),
        start.clone(),
    )
    .total()
    .total();
    assert!(opt <= onconf + 1e-6);
    // ONCONF is the crudest strategy; sanity-bound its damage.
    assert!(onconf < opt * 50.0, "ONCONF {onconf} vs OPT {opt}");
}
