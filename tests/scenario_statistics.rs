//! Statistical validation of the demand generators: long-run frequencies
//! must match the scenario definitions of §II-D / §V-A.

use std::collections::HashMap;

use flexserve::prelude::*;

fn er(n: usize, seed: u64) -> Graph {
    let mut rng = SmallRng::seed_from_u64(seed);
    erdos_renyi(n, 0.05, &GenConfig::default(), &mut rng).unwrap()
}

/// Time zones: over a long run, the hot node of each period receives ~p of
/// the requests of that period.
#[test]
fn time_zones_hot_share_converges_to_p() {
    let g = er(40, 1);
    let p = 0.5;
    let mut s = TimeZonesScenario::new(&g, 4, 10, p, 40, 1);
    let rounds = 400u64;
    let mut hot_requests = 0usize;
    let mut total = 0usize;
    for t in 0..rounds {
        let hot = s.hot_node_at(t);
        let r = s.requests(t);
        total += r.len();
        hot_requests += r
            .counts()
            .iter()
            .find(|&&(o, _)| o == hot)
            .map_or(0, |&(_, c)| c);
    }
    let share = hot_requests as f64 / total as f64;
    // hot node also receives some background traffic, so share >= p
    assert!(
        share >= p - 0.02 && share <= p + 0.1,
        "hot share {share} should be ~{p}"
    );
}

/// Time zones: background requests spread over (nearly) all nodes.
#[test]
fn time_zones_background_covers_the_network() {
    let g = er(30, 2);
    let mut s = TimeZonesScenario::new(&g, 4, 5, 0.5, 30, 2);
    let trace = record(&mut s, 300);
    let mut seen: HashMap<NodeId, usize> = HashMap::new();
    for round in trace.iter() {
        for o in round.iter() {
            *seen.entry(o).or_insert(0) += 1;
        }
    }
    assert!(
        seen.len() >= 28,
        "only {} of 30 nodes ever issued requests",
        seen.len()
    );
}

/// Commuter dynamic: the per-day request-count profile is the double
/// staircase 1, 2, 4, …, 2^{T/2}, …, 2, 1 — and repeats every day.
#[test]
fn commuter_dynamic_daily_profile() {
    let g = er(64, 3);
    let t_periods = 6u32;
    let lambda = 3u64;
    let mut s = CommuterScenario::new(&g, t_periods, lambda, LoadVariant::Dynamic, 3);
    let day = s.day_length();
    assert_eq!(day, 18);
    let trace = record(&mut s, 2 * day);
    let expected_step = [1usize, 2, 4, 8, 4, 2];
    for (t, round) in trace.iter().enumerate() {
        let step = (t as u64 / lambda) as usize % t_periods as usize;
        assert_eq!(
            round.len(),
            expected_step[step],
            "round {t}: wrong volume for step {step}"
        );
    }
}

/// Commuter static: requests are split evenly across the active access
/// points (difference at most one per origin).
#[test]
fn commuter_static_split_is_even() {
    let g = er(64, 4);
    let mut s = CommuterScenario::new(&g, 8, 2, LoadVariant::Static, 4);
    let trace = record(&mut s, 32);
    for (t, round) in trace.iter().enumerate() {
        let counts = round.counts();
        let min = counts.iter().map(|&(_, c)| c).min().unwrap();
        let max = counts.iter().map(|&(_, c)| c).max().unwrap();
        assert!(max - min <= 1, "round {t}: uneven split {min}..{max}");
    }
}

/// Commuter origins concentrate near the network center: the mean
/// center-distance of request origins must be well below the mean
/// center-distance of all nodes.
#[test]
fn commuter_origins_hug_the_center() {
    let g = er(100, 5);
    let m = DistanceMatrix::build(&g);
    let center = flexserve::graph::metrics::metrics_from_matrix(&m).center;
    let mut s = CommuterScenario::new(&g, 8, 2, LoadVariant::Dynamic, 5);
    let trace = record(&mut s, 64);

    let mut origin_sum = 0.0;
    let mut origin_n = 0usize;
    for round in trace.iter() {
        for o in round.iter() {
            origin_sum += m.get(center, o);
            origin_n += 1;
        }
    }
    let origin_mean = origin_sum / origin_n as f64;
    let all_mean: f64 = g.nodes().map(|v| m.get(center, v)).sum::<f64>() / g.node_count() as f64;
    assert!(
        origin_mean < all_mean * 0.8,
        "origins not concentric: {origin_mean} vs network mean {all_mean}"
    );
}

/// On/off users relocate roughly every `dwell` rounds: the number of
/// distinct locations a user visits over `R` rounds is ≈ R/dwell.
#[test]
fn onoff_relocation_rate() {
    let g = er(80, 6);
    let dwell = 10u64;
    let rounds = 400u64;
    let mut s = OnOffScenario::new(&g, 1, dwell, false, 6);
    let trace = record(&mut s, rounds);
    // count location changes of the single user
    let mut changes = 0usize;
    let mut last: Option<NodeId> = None;
    for round in trace.iter() {
        let cur = round.iter().next().unwrap();
        if last.is_some_and(|l| l != cur) {
            changes += 1;
        }
        last = Some(cur);
    }
    let expected = (rounds / dwell) as f64;
    assert!(
        (changes as f64) > expected * 0.5 && (changes as f64) < expected * 1.5,
        "user moved {changes} times, expected ~{expected}"
    );
}

/// Uniform scenario: empirical origin distribution is close to uniform
/// (chi-square-style bound on the max deviation).
#[test]
fn uniform_scenario_is_uniform() {
    let g = er(20, 7);
    let mut s = UniformScenario::new(&g, 100, 7);
    let trace = record(&mut s, 200);
    let mut counts: HashMap<NodeId, usize> = HashMap::new();
    for round in trace.iter() {
        for o in round.iter() {
            *counts.entry(o).or_insert(0) += 1;
        }
    }
    let total: usize = counts.values().sum();
    let expected = total as f64 / 20.0;
    for v in g.nodes() {
        let c = counts.get(&v).copied().unwrap_or(0) as f64;
        assert!(
            (c - expected).abs() < expected * 0.25,
            "node {v}: {c} vs expected {expected}"
        );
    }
}

/// Traces are value-identical across re-recordings of the same scenario
/// (the contract that makes online/offline comparisons fair).
#[test]
fn rerecorded_traces_are_identical() {
    let g = er(50, 8);
    let t1 = record(
        &mut CommuterScenario::new(&g, 6, 4, LoadVariant::Static, 99),
        120,
    );
    let t2 = record(
        &mut CommuterScenario::new(&g, 6, 4, LoadVariant::Static, 99),
        120,
    );
    assert_eq!(t1, t2);
    let z1 = record(&mut TimeZonesScenario::new(&g, 5, 7, 0.4, 17, 3), 90);
    let z2 = record(&mut TimeZonesScenario::new(&g, 5, 7, 0.4, 17, 3), 90);
    assert_eq!(z1, z2);
}
