//! System-level property tests: invariants that must hold for *arbitrary*
//! demand sequences, cost parameters and substrates.

use proptest::prelude::*;

use flexserve::prelude::*;
use flexserve::sim::TransitionPlanner;

fn arb_params() -> impl Strategy<Value = CostParams> {
    (
        1.0f64..500.0,
        1.0f64..500.0,
        0.0f64..5.0,
        0.0f64..1.0,
        1usize..5,
    )
        .prop_map(|(beta, c, ra, ri, k)| {
            CostParams::default()
                .with_costs(beta, c)
                .with_running(ra, ri)
                .with_max_servers(k)
        })
}

/// A small random trace over `n` nodes.
fn arb_trace(n: usize) -> impl Strategy<Value = Vec<Vec<usize>>> {
    prop::collection::vec(prop::collection::vec(0usize..n, 0..8), 1..25)
}

fn to_trace(raw: &[Vec<usize>]) -> Trace {
    Trace::new(
        raw.iter()
            .map(|r| RoundRequests::new(r.iter().map(|&i| NodeId::new(i)).collect()))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The transition planner always reaches the requested target, never
    /// exceeds the budget, and its cost is exactly β·migrations +
    /// c·creations.
    #[test]
    fn planner_postconditions(
        params in arb_params(),
        initial in prop::collection::hash_set(0usize..8, 1..4),
        target in prop::collection::hash_set(0usize..8, 1..4),
    ) {
        let k = params.max_servers.max(initial.len()).max(target.len());
        let params = params.with_max_servers(k);
        let initial: Vec<NodeId> = initial.into_iter().map(NodeId::new).collect();
        let target: Vec<NodeId> = target.into_iter().map(NodeId::new).collect();
        let mut fleet = Fleet::new(initial, &params);
        let outcome = TransitionPlanner::apply(&mut fleet, &target, &params);

        let mut sorted = target.clone();
        sorted.sort();
        prop_assert_eq!(fleet.active(), &sorted[..]);
        prop_assert!(fleet.total_count() <= params.max_servers);
        let expected = outcome.migrations() as f64 * params.migration_beta
            + outcome.creations() as f64 * params.creation_c;
        prop_assert!((outcome.cost.total() - expected).abs() < 1e-9);
        if !params.migration_useful() {
            prop_assert_eq!(outcome.migrations(), 0);
        }
    }

    /// OPT is never beaten by ONTH, ONBR or STATIC on arbitrary demand.
    #[test]
    fn opt_dominates_on_arbitrary_demand(
        raw in arb_trace(4),
        seed in 0u64..100,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = line(4, &GenConfig::default(), &mut rng).unwrap();
        let m = DistanceMatrix::build(&g);
        let params = CostParams::default().with_max_servers(3);
        let ctx = SimContext::new(&g, &m, params, LoadModel::Linear);
        let trace = to_trace(&raw);
        let start = initial_center(&ctx);

        let opt = optimal_plan(&ctx, &trace, &start).cost;
        for cost in [
            run_online(&ctx, &trace, &mut OnTh::new(), start.clone()).total().total(),
            run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone()).total().total(),
            run_online(&ctx, &trace, &mut StaticStrategy::new(), start.clone()).total().total(),
        ] {
            prop_assert!(opt <= cost + 1e-6, "OPT {} vs {}", opt, cost);
        }
    }

    /// Run records always balance: every round's breakdown components are
    /// non-negative and finite, and the total equals the sum of rounds.
    #[test]
    fn cost_accounting_balances(
        raw in arb_trace(6),
        seed in 0u64..50,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = line(6, &GenConfig::default(), &mut rng).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let trace = to_trace(&raw);
        let rec = run_online(&ctx, &trace, &mut OnTh::new(), initial_center(&ctx));

        let mut sum = 0.0;
        for r in &rec.rounds {
            for part in [r.costs.access, r.costs.running, r.costs.migration, r.costs.creation] {
                prop_assert!(part.is_finite() && part >= 0.0);
            }
            sum += r.costs.total();
        }
        prop_assert!((sum - rec.total().total()).abs() < 1e-6);
    }

    /// Routing never assigns more requests than arrived, and access cost
    /// is monotone: more servers can only reduce the (nearest-routing)
    /// latency part.
    #[test]
    fn more_servers_never_hurt_latency(
        origins in prop::collection::vec(0usize..10, 1..20),
        s1 in 0usize..10,
        s2 in 0usize..10,
        seed in 0u64..50,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = line(10, &GenConfig::default(), &mut rng).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let batch = RoundRequests::new(origins.iter().map(|&i| NodeId::new(i)).collect());
        let one = ctx.access_cost(&[NodeId::new(s1)], &batch);
        let mut servers = vec![NodeId::new(s1)];
        if s1 != s2 {
            servers.push(NodeId::new(s2));
        }
        let two = ctx.access_cost(&servers, &batch);
        prop_assert!(two <= one + 1e-9, "adding a server increased latency");
    }

    /// Scenario conservation: the commuter static variant issues exactly
    /// 2^{T/2} requests per round regardless of substrate or seed.
    #[test]
    fn commuter_static_volume_invariant(
        n in 4usize..40,
        t_half in 1u32..4,
        lambda in 1u64..6,
        seed in 0u64..100,
    ) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.1, &GenConfig::default(), &mut rng).unwrap();
        let t = 2 * t_half;
        let mut s = CommuterScenario::new(&g, t, lambda, LoadVariant::Static, seed);
        let trace = record(&mut s, 3 * t as u64 * lambda);
        for round in trace.iter() {
            prop_assert_eq!(round.len(), 1usize << t_half);
        }
    }
}
