//! Cloud SaaS with time-zone demand: "imagine an SAP application in the
//! cloud which is accessed by different users going online and offline
//! over time, resulting in a temporal change of the demand
//! characteristics."
//!
//! A business application follows the sun: every few hours the bulk of the
//! demand shifts to another region. We compare the paper's strategies and
//! also show the offline planning workflow — if the daily pattern is known
//! (it repeats!), the operator can precompute tomorrow's plan with the
//! offline DP and compare what foresight is worth.
//!
//! ```sh
//! cargo run --release --example cloud_saas
//! ```

use flexserve::prelude::*;

fn main() {
    // --- Small multi-region topology for exact offline planning ----------
    // Five "regions" in a line — the topology the paper uses for OPT.
    let mut rng = SmallRng::seed_from_u64(11);
    let cfg = GenConfig {
        latency_range: (5.0, 40.0), // inter-region WAN latencies
        ..GenConfig::default()
    };
    let graph = line(5, &cfg, &mut rng).expect("line(5)");
    let matrix = DistanceMatrix::build(&graph);

    // --- Demand: follow-the-sun SaaS usage --------------------------------
    // A day has 4 periods; the hot region rotates; 60% of requests come
    // from the hot region and the rest is global background noise.
    let mut scenario = TimeZonesScenario::new(&graph, 4, 15, 0.6, 12, 7);
    let trace = record(&mut scenario, 240);
    println!(
        "SaaS demand: {} rounds, {} requests, day length {} rounds",
        trace.len(),
        trace.total_requests(),
        scenario.day_length()
    );

    let params = CostParams::default().with_max_servers(3);
    let ctx = SimContext::new(&graph, &matrix, params, LoadModel::Linear);
    let start = initial_center(&ctx);

    // --- Online operation --------------------------------------------------
    let onth = run_online(&ctx, &trace, &mut OnTh::new(), start.clone());
    let onbr = run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone());

    // --- Offline planning: the pattern is periodic and known --------------
    let opt = optimal_plan(&ctx, &trace, &start);
    let stat = offstat(&ctx, &trace);

    println!("\n{:<28} {:>12}", "strategy", "total cost");
    println!("{:<28} {:>12.1}", "ONBR (online)", onbr.total().total());
    println!("{:<28} {:>12.1}", "ONTH (online)", onth.total().total());
    println!("{:<28} {:>12.1}", "OFFSTAT (static, k_opt)", stat.best_cost);
    println!("{:<28} {:>12.1}", "OPT (offline optimum)", opt.cost);

    println!(
        "\ncompetitive ratio ONTH/OPT: {:.2}",
        competitive_ratio(onth.total().total(), opt.cost)
    );
    println!(
        "benefit of dynamic allocation (OFFSTAT/OPT): {:.2}",
        competitive_ratio(stat.best_cost, opt.cost)
    );

    // --- Inspect OPT's plan: where do the servers sit over the day? -------
    println!("\nOPT server placement over the first day:");
    let day = scenario.day_length() as usize;
    let mut last: Vec<NodeId> = Vec::new();
    for (t, active) in opt.plan.iter().take(day).enumerate() {
        if *active != last {
            let spots: Vec<String> = active.iter().map(|v| v.to_string()).collect();
            println!("  round {t:>3}: servers at [{}]", spots.join(", "));
            last = active.clone();
        }
    }
}
