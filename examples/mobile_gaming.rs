//! Mobile gaming: latency-sensitive users on an ISP backbone.
//!
//! The paper's motivating example: "a mobile provider which offers a
//! gaming application to a set of mobile users updating their location
//! over time, and where access latency is of prime concern."
//!
//! Players roam across the AS-7018-like AT&T backbone following the on/off
//! mobility model (appear at an access point, play for a while, reappear
//! elsewhere). ONTH migrates and scales game servers to keep round-trip
//! latency low; we report the latency a player actually experiences.
//!
//! ```sh
//! cargo run --release --example mobile_gaming
//! ```

use flexserve::prelude::*;

fn main() {
    // --- Substrate: the synthetic AT&T backbone --------------------------
    let (graph, backbone) = as7018_like(&As7018Config::default()).expect("static topology");
    let matrix = DistanceMatrix::build(&graph);
    println!(
        "AS-7018-like substrate: {} PoPs ({} backbone cities), diameter {:.1} ms",
        graph.node_count(),
        backbone.len(),
        flexserve::graph::metrics::metrics_from_matrix(&matrix).diameter
    );

    // --- Demand: 60 roaming players, 25-round play sessions --------------
    let mut scenario = OnOffScenario::new(&graph, 60, 25, false, 2024);
    let trace = record(&mut scenario, 600);

    // Gaming cares about latency: use a quadratic load model so overloaded
    // servers hurt, and a generous server budget.
    let params = CostParams::default().with_max_servers(12);
    let ctx = SimContext::new(&graph, &matrix, params, LoadModel::Quadratic);
    let start = initial_center(&ctx);

    // --- Compare adaptive vs static operation ----------------------------
    let adaptive = run_online(&ctx, &trace, &mut OnTh::new(), start.clone());
    let frozen = run_online(&ctx, &trace, &mut StaticStrategy::new(), start);

    let per_round_latency = |rec: &RunRecord| -> f64 {
        let access: f64 = rec.rounds.iter().map(|r| r.costs.access).sum();
        let requests: usize = rec.rounds.iter().map(|r| r.requests).sum();
        access / requests as f64
    };

    println!(
        "\n{:<22} {:>12} {:>16} {:>10}",
        "operation", "total cost", "ms/request", "servers@end"
    );
    println!(
        "{:<22} {:>12.0} {:>16.2} {:>10}",
        "static (1 server)",
        frozen.total().total(),
        per_round_latency(&frozen),
        frozen.rounds.last().unwrap().active_servers
    );
    println!(
        "{:<22} {:>12.0} {:>16.2} {:>10}",
        "ONTH (adaptive)",
        adaptive.total().total(),
        per_round_latency(&adaptive),
        adaptive.rounds.last().unwrap().active_servers
    );

    let mig = adaptive.total().migration / ctx.params.migration_beta;
    let created = adaptive.total().creation / ctx.params.creation_c;
    println!(
        "\nONTH performed {mig:.0} migrations and created {created:.0} servers, \
         cutting mean access latency by {:.0}%.",
        100.0 * (1.0 - per_round_latency(&adaptive) / per_round_latency(&frozen))
    );
}
