//! Competitive analysis: measuring the price of online decision making.
//!
//! Reproduces the paper's §V methodology in miniature: run the online
//! algorithms and the optimal offline DP on the *same* recorded request
//! sequences and report empirical competitive ratios across a dynamics
//! sweep (the λ parameter — rounds between demand shifts).
//!
//! ```sh
//! cargo run --release --example competitive_analysis
//! ```

use flexserve::prelude::*;

fn main() {
    let seeds: Vec<u64> = (0..5).collect();
    let lambdas = [2u64, 5, 10, 20, 40];
    let rounds = 200;
    let t_periods = 4;

    println!(
        "commuter scenario (dynamic load) on 5-node lines, {} seeds",
        seeds.len()
    );
    println!(
        "{:>7} {:>12} {:>12} {:>12} {:>14}",
        "lambda", "ONTH/OPT", "ONBR/OPT", "OFFTH/OPT", "OFFSTAT/OPT"
    );

    for &lambda in &lambdas {
        let mut sums = [0.0f64; 4];
        for &seed in &seeds {
            // Random line substrate, exactly like the paper's OPT set-up.
            let mut rng = SmallRng::seed_from_u64(seed);
            let graph = line(5, &GenConfig::default(), &mut rng).expect("line(5)");
            let matrix = DistanceMatrix::build(&graph);
            let params = CostParams::default().with_max_servers(4);
            let ctx = SimContext::new(&graph, &matrix, params, LoadModel::Linear);

            let mut scenario =
                CommuterScenario::new(&graph, t_periods, lambda, LoadVariant::Dynamic, seed);
            let trace = record(&mut scenario, rounds);
            let start = initial_center(&ctx);

            let opt = optimal_plan(&ctx, &trace, &start).cost;
            let onth = run_online(&ctx, &trace, &mut OnTh::new(), start.clone())
                .total()
                .total();
            let onbr = run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone())
                .total()
                .total();
            let offth = run_online(&ctx, &trace, &mut OffTh::new(trace.clone()), start.clone())
                .total()
                .total();
            let stat = offstat(&ctx, &trace).best_cost;

            sums[0] += competitive_ratio(onth, opt);
            sums[1] += competitive_ratio(onbr, opt);
            sums[2] += competitive_ratio(offth, opt);
            sums[3] += competitive_ratio(stat, opt);
        }
        let n = seeds.len() as f64;
        println!(
            "{:>7} {:>12.3} {:>12.3} {:>12.3} {:>14.3}",
            lambda,
            sums[0] / n,
            sums[1] / n,
            sums[2] / n,
            sums[3] / n
        );
    }

    println!(
        "\nReading the table: ratios near 1 mean the online algorithm loses little \
         for not knowing the future; the OFFSTAT column is the benefit of dynamic \
         allocation — the factor a static provisioning overpays vs OPT."
    );
}
