//! Quickstart: run every strategy on one commuter trace and compare costs.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use flexserve::prelude::*;

fn main() {
    // --- Substrate: Erdős–Rényi graph with the paper's 1% density --------
    let mut rng = SmallRng::seed_from_u64(42);
    let graph = erdos_renyi(100, 0.01, &GenConfig::default(), &mut rng)
        .expect("valid generator parameters");
    let matrix = DistanceMatrix::build(&graph);
    println!(
        "substrate: {} nodes, {} edges",
        graph.node_count(),
        graph.edge_count()
    );

    // --- Demand: commuters fan out from the center every morning ---------
    let t_periods = 8;
    let lambda = 10;
    let mut scenario = CommuterScenario::new(&graph, t_periods, lambda, LoadVariant::Dynamic, 42);
    let trace = record(&mut scenario, 400);
    println!(
        "demand: {} rounds, {} requests total\n",
        trace.len(),
        trace.total_requests()
    );

    // --- Cost model: the paper's defaults (beta=40, c=400, Ra=2.5) -------
    let ctx = SimContext::new(&graph, &matrix, CostParams::default(), LoadModel::Linear);
    let start = initial_center(&ctx);

    // --- Compare the strategies ------------------------------------------
    println!(
        "{:<12} {:>12} {:>10} {:>10} {:>10} {:>10}",
        "strategy", "total", "access", "running", "migration", "creation"
    );
    let mut results: Vec<(String, CostBreakdown)> = Vec::new();

    let rec = run_online(&ctx, &trace, &mut StaticStrategy::new(), start.clone());
    results.push(("STATIC".into(), rec.total()));

    let rec = run_online(&ctx, &trace, &mut OnBr::fixed(&ctx), start.clone());
    results.push(("ONBR-fixed".into(), rec.total()));

    let rec = run_online(&ctx, &trace, &mut OnBr::dynamic(&ctx), start.clone());
    results.push(("ONBR-dyn".into(), rec.total()));

    let rec = run_online(&ctx, &trace, &mut OnTh::new(), start.clone());
    results.push(("ONTH".into(), rec.total()));

    let rec = run_online(&ctx, &trace, &mut OffTh::new(trace.clone()), start.clone());
    results.push(("OFFTH".into(), rec.total()));

    // The optimal static provisioning for this exact trace:
    let stat = offstat(&ctx, &trace);
    println!(
        "{:<12} {:>12.1}   (k_opt = {} static servers)",
        "OFFSTAT", stat.best_cost, stat.k_opt
    );

    for (name, c) in &results {
        println!(
            "{:<12} {:>12.1} {:>10.1} {:>10.1} {:>10.1} {:>10.1}",
            name,
            c.total(),
            c.access,
            c.running,
            c.migration,
            c.creation
        );
    }

    let onth = results.iter().find(|(n, _)| n == "ONTH").unwrap().1.total();
    let stat_online = results
        .iter()
        .find(|(n, _)| n == "STATIC")
        .unwrap()
        .1
        .total();
    println!(
        "\nONTH saves {:.0}% over never reconfiguring — the benefit of virtualization.",
        100.0 * (1.0 - onth / stat_online)
    );
}
