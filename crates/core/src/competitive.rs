//! Competitive-ratio helpers.
//!
//! "To evaluate the efficiency of an online algorithm, its performance is
//! often compared to the performance of a (sometimes hypothetical) optimal
//! offline algorithm for the given request sequence. The ratio of the two
//! costs is called the competitive ratio." (§II-E)

/// The empirical competitive ratio `cost(ALG) / cost(OPT)`.
///
/// Returns 1.0 when both costs are zero (an algorithm cannot beat doing
/// nothing about nothing) and `f64::INFINITY` when OPT is zero but the
/// algorithm paid something.
///
/// # Panics
///
/// Panics on negative or NaN inputs — costs are sums of non-negative
/// charges by construction.
pub fn competitive_ratio(alg_cost: f64, opt_cost: f64) -> f64 {
    assert!(
        alg_cost >= 0.0 && opt_cost >= 0.0,
        "negative cost: alg={alg_cost}, opt={opt_cost}"
    );
    if opt_cost == 0.0 {
        if alg_cost == 0.0 {
            1.0
        } else {
            f64::INFINITY
        }
    } else {
        alg_cost / opt_cost
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_ratio() {
        assert_eq!(competitive_ratio(200.0, 100.0), 2.0);
        assert_eq!(competitive_ratio(100.0, 100.0), 1.0);
    }

    #[test]
    fn zero_edge_cases() {
        assert_eq!(competitive_ratio(0.0, 0.0), 1.0);
        assert_eq!(competitive_ratio(5.0, 0.0), f64::INFINITY);
        assert_eq!(competitive_ratio(0.0, 5.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "negative cost")]
    fn negative_rejected() {
        competitive_ratio(-1.0, 1.0);
    }
}
