//! OFFTH — the threshold strategy with lookahead (§IV-B).
//!
//! "A similar transformation can be done from ONTH to OFFTH: we simply
//! compute optimal strategies of small epochs at hindsight."
//!
//! OFFTH keeps ONTH's two-level epoch structure and triggers, but when a
//! small epoch ends, the candidate configurations are scored on the
//! *upcoming* small epoch (rounds scanned forward until the `y·β`
//! threshold would fire again under the current configuration). The
//! large-epoch scale-out condition and the new server's position remain
//! those of ONTH: placement reacts to sustained overload, which foresight
//! does not change qualitatively — and this matches the paper's framing of
//! OFFTH as the small-epoch transformation only.

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, OnlineStrategy, SimContext};
use flexserve_workload::{RoundRequests, Trace};

use crate::candidates::{
    best_candidate_with, best_new_server_position_scored, CandidateOptions, CandidateScratch,
    EpochWindow,
};

/// The OFFTH strategy (lookahead threshold algorithm).
pub struct OffTh {
    trace: Trace,
    y: f64,
    small_cost: f64,
    large_window: EpochWindow,
    large_access: f64,
    large_running: f64,
    /// Reused window-index buffers; a cache, never checkpointed.
    scratch: CandidateScratch,
}

impl OffTh {
    /// OFFTH with the paper's `y = 2`.
    pub fn new(trace: Trace) -> Self {
        Self::with_y(trace, 2.0)
    }

    /// OFFTH with an explicit small-epoch factor.
    pub fn with_y(trace: Trace, y: f64) -> Self {
        assert!(y.is_finite() && y > 0.0, "OFFTH: y must be positive");
        OffTh {
            trace,
            y,
            small_cost: 0.0,
            large_window: EpochWindow::new(),
            large_access: 0.0,
            large_running: 0.0,
            scratch: CandidateScratch::new(),
        }
    }

    fn upcoming_small_window(
        &self,
        ctx: &SimContext<'_>,
        fleet: &Fleet,
        from: usize,
    ) -> EpochWindow {
        let mut window = EpochWindow::new();
        let mut acc = 0.0;
        let theta = self.y * ctx.params.migration_beta;
        let running = ctx.running_cost(fleet.active_count(), fleet.inactive_count());
        for t in from..self.trace.len() {
            let batch = self.trace.round(t);
            window.push(batch);
            acc += ctx.access_cost(fleet.active(), batch) + running;
            if acc >= theta {
                break;
            }
        }
        window
    }
}

impl OnlineStrategy for OffTh {
    fn name(&self) -> String {
        "OFFTH".to_string()
    }

    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        t: u64,
        requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        let running = ctx.running_cost(fleet.active_count(), fleet.inactive_count());
        self.small_cost += access_cost + running;
        self.large_window.push(requests);
        self.large_access += access_cost;
        self.large_running += running;

        // Large epoch: same as ONTH.
        let k_cur = fleet.active_count();
        if k_cur < ctx.params.max_servers
            && self.large_access / (k_cur as f64 + 1.0) - self.large_running > ctx.params.creation_c
        {
            if let Some((v, _)) =
                best_new_server_position_scored(ctx, fleet, &self.large_window, &mut self.scratch)
            {
                let mut target = fleet.active().to_vec();
                target.push(v);
                self.large_window.clear();
                self.large_access = 0.0;
                self.large_running = 0.0;
                self.small_cost = 0.0;
                return Some(target);
            }
        }

        // Small epoch with lookahead.
        if self.small_cost >= self.y * ctx.params.migration_beta {
            self.small_cost = 0.0;
            let window = self.upcoming_small_window(ctx, fleet, t as usize + 1);
            if window.is_empty() {
                return None;
            }
            let (target, _) = best_candidate_with(
                ctx,
                fleet,
                &window,
                CandidateOptions::no_add(),
                &mut self.scratch,
            );
            return Some(target);
        }

        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{run_online, CostParams, LoadModel};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    #[test]
    fn anticipates_demand_flip() {
        let g = unit_line(30).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        // demand flips ends every 20 rounds
        let mut rounds = Vec::new();
        for t in 0..120usize {
            let node = if (t / 20) % 2 == 0 { 0 } else { 29 };
            rounds.push(RoundRequests::new(vec![n(node); 8]));
        }
        let trace = Trace::new(rounds);
        let mut offth = OffTh::new(trace.clone());
        let off = run_online(&ctx, &trace, &mut offth, vec![n(15)]);
        let mut onth = crate::onth::OnTh::new();
        let on = run_online(&ctx, &trace, &mut onth, vec![n(15)]);
        assert!(
            off.total().total() <= on.total().total() * 1.1,
            "OFFTH {} vs ONTH {}",
            off.total().total(),
            on.total().total()
        );
    }

    #[test]
    fn converges_on_constant_demand() {
        let g = unit_line(15).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(14); 6]); 150]);
        let mut alg = OffTh::new(trace.clone());
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(0)]);
        let tail_reconf: f64 = rec.rounds[100..]
            .iter()
            .map(|r| r.costs.reconfiguration())
            .sum();
        assert_eq!(tail_reconf, 0.0);
    }

    #[test]
    #[should_panic(expected = "y must be positive")]
    fn bad_y_rejected() {
        OffTh::with_y(Trace::default(), 0.0);
    }

    #[test]
    fn name() {
        assert_eq!(OffTh::new(Trace::default()).name(), "OFFTH");
    }
}
