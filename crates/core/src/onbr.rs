//! ONBR — the sequential best-response online strategy (§III-A).
//!
//! "ONBR starts in an arbitrary configuration, e.g., hosting one server at
//! the network center. Time is divided into epochs, and an epoch ends when
//! the total cost accumulated during this epoch (including access cost and
//! running cost) reaches a threshold θ. Then, ONBR changes to the cheapest
//! (w.r.t. the passed epoch and including access, migration, running, and
//! creation cost) configuration among: (1) γ (no change), (2) γ but where
//! one server s is migrated to a different location, (3) γ but where one
//! server s becomes inactive, (4) γ but where one inactive server s becomes
//! active, or a new active server s is created."
//!
//! The experiments use `θ = 2c` ("fixed") and `θ = 2c/ℓ` ("dyn"), where `ℓ`
//! is the length of the preceding epoch — shorter epochs mean faster demand
//! changes, so the system adapts more quickly.

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, OnlineStrategy, SimContext};
use flexserve_workload::{JsonValue, RoundRequests};

use crate::candidates::{best_candidate_with, CandidateOptions, CandidateScratch, EpochWindow};

/// How ONBR's epoch threshold is derived.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ThresholdMode {
    /// Constant threshold `θ = base` (the paper uses `base = 2c`).
    Fixed,
    /// `θ = base / ℓ` where `ℓ` is the previous epoch's length in rounds.
    Dynamic,
}

/// The ONBR strategy.
#[derive(Clone, Debug)]
pub struct OnBr {
    mode: ThresholdMode,
    /// Base threshold (paper: `2c`).
    base_threshold: f64,
    window: EpochWindow,
    epoch_cost: f64,
    prev_epoch_len: u64,
    /// Reused window-index buffers; a cache, never checkpointed.
    scratch: CandidateScratch,
}

impl OnBr {
    /// ONBR with the paper's fixed threshold `θ = 2c`.
    pub fn fixed(ctx: &SimContext<'_>) -> Self {
        Self::with_mode(ctx, ThresholdMode::Fixed)
    }

    /// ONBR with the dynamic threshold `θ = 2c/ℓ`.
    pub fn dynamic(ctx: &SimContext<'_>) -> Self {
        Self::with_mode(ctx, ThresholdMode::Dynamic)
    }

    /// ONBR with an explicit mode and the default base `2c`.
    pub fn with_mode(ctx: &SimContext<'_>, mode: ThresholdMode) -> Self {
        Self::with_base(mode, 2.0 * ctx.params.creation_c)
    }

    /// Fully custom construction (ablation benches sweep the base).
    pub fn with_base(mode: ThresholdMode, base_threshold: f64) -> Self {
        assert!(
            base_threshold.is_finite() && base_threshold > 0.0,
            "ONBR: threshold must be positive"
        );
        OnBr {
            mode,
            base_threshold,
            window: EpochWindow::new(),
            epoch_cost: 0.0,
            prev_epoch_len: 1,
            scratch: CandidateScratch::new(),
        }
    }

    /// The currently effective threshold.
    fn threshold(&self) -> f64 {
        match self.mode {
            ThresholdMode::Fixed => self.base_threshold,
            ThresholdMode::Dynamic => self.base_threshold / self.prev_epoch_len.max(1) as f64,
        }
    }
}

impl OnlineStrategy for OnBr {
    fn name(&self) -> String {
        match self.mode {
            ThresholdMode::Fixed => "ONBR-fixed".to_string(),
            ThresholdMode::Dynamic => "ONBR-dyn".to_string(),
        }
    }

    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        _t: u64,
        requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        self.window.push(requests);
        self.epoch_cost +=
            access_cost + ctx.running_cost(fleet.active_count(), fleet.inactive_count());

        if self.epoch_cost < self.threshold() {
            return None;
        }

        let (target, _score) = best_candidate_with(
            ctx,
            fleet,
            &self.window,
            CandidateOptions::all(),
            &mut self.scratch,
        );
        self.prev_epoch_len = self.window.len() as u64;
        self.window.clear();
        self.epoch_cost = 0.0;
        Some(target)
    }

    fn export_state(&self) -> Option<JsonValue> {
        let mode = match self.mode {
            ThresholdMode::Fixed => "fixed",
            ThresholdMode::Dynamic => "dynamic",
        };
        Some(JsonValue::Obj(vec![
            ("mode".into(), JsonValue::from(mode)),
            (
                "base_threshold".into(),
                JsonValue::from(self.base_threshold),
            ),
            ("window".into(), self.window.export_json()),
            ("epoch_cost".into(), JsonValue::from(self.epoch_cost)),
            (
                "prev_epoch_len".into(),
                JsonValue::from(self.prev_epoch_len),
            ),
        ]))
    }

    fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
        let mode = state
            .get("mode")
            .and_then(JsonValue::as_str)
            .ok_or("ONBR: missing \"mode\"")?;
        let expected = match self.mode {
            ThresholdMode::Fixed => "fixed",
            ThresholdMode::Dynamic => "dynamic",
        };
        if mode != expected {
            return Err(format!(
                "ONBR: checkpoint is {mode} mode, this instance is {expected}"
            ));
        }
        let base = state
            .get("base_threshold")
            .and_then(JsonValue::as_f64)
            .ok_or("ONBR: missing \"base_threshold\"")?;
        if base.to_bits() != self.base_threshold.to_bits() {
            return Err(format!(
                "ONBR: checkpoint threshold {base} != this instance's {}",
                self.base_threshold
            ));
        }
        self.window = state
            .get("window")
            .ok_or_else(|| "ONBR: missing \"window\"".to_string())
            .and_then(|v| EpochWindow::import_json(v).map_err(|e| format!("ONBR: {e}")))?;
        self.epoch_cost = state
            .get("epoch_cost")
            .and_then(JsonValue::as_f64)
            .ok_or("ONBR: missing \"epoch_cost\"")?;
        self.prev_epoch_len = state
            .get("prev_epoch_len")
            .and_then(JsonValue::as_u64)
            .ok_or("ONBR: missing \"prev_epoch_len\"")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{run_online, CostParams, LoadModel};
    use flexserve_workload::Trace;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self) -> SimContext<'_> {
            SimContext::new(&self.g, &self.m, CostParams::default(), LoadModel::Linear)
        }
    }

    #[test]
    fn converges_to_demand_hotspot() {
        let fx = Fx::new(30);
        let ctx = fx.ctx();
        // persistent heavy demand at node 29, server starts at 0
        let trace = Trace::new(vec![RoundRequests::new(vec![n(29); 20]); 100]);
        let mut alg = OnBr::fixed(&ctx);
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(0)]);
        // after convergence the server sits on the demand: last rounds cost
        // only load (20) + running
        let last = &rec.rounds[99];
        assert_eq!(last.active_servers, 1);
        let tail_access: f64 = rec.rounds[90..].iter().map(|r| r.costs.access).sum();
        // load = 20 per round is unavoidable; delay must be gone
        assert!(
            tail_access <= 20.0 * 10.0 + 1e-9,
            "tail access {tail_access}"
        );
    }

    #[test]
    fn stable_demand_stops_reconfiguring() {
        let fx = Fx::new(10);
        let ctx = fx.ctx();
        let trace = Trace::new(vec![RoundRequests::new(vec![n(5); 5]); 200]);
        let mut alg = OnBr::fixed(&ctx);
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(5)]);
        // server already optimal: no migration or creation ever
        assert_eq!(rec.total().migration, 0.0);
        assert_eq!(rec.total().creation, 0.0);
    }

    #[test]
    fn epoch_threshold_controls_reaction_speed() {
        let fx = Fx::new(20);
        let ctx = fx.ctx();
        let trace = Trace::new(vec![RoundRequests::new(vec![n(19); 10]); 60]);
        // lower threshold -> earlier reaction -> lower total cost here
        let mut fast = OnBr::with_base(ThresholdMode::Fixed, 100.0);
        let mut slow = OnBr::with_base(ThresholdMode::Fixed, 4000.0);
        let fast_rec = run_online(&ctx, &trace, &mut fast, vec![n(0)]);
        let slow_rec = run_online(&ctx, &trace, &mut slow, vec![n(0)]);
        assert!(fast_rec.total().total() < slow_rec.total().total());
    }

    #[test]
    fn dynamic_mode_uses_previous_epoch_length() {
        let fx = Fx::new(10);
        let ctx = fx.ctx();
        let mut alg = OnBr::dynamic(&ctx);
        assert_eq!(alg.threshold(), 800.0); // first epoch: l=1
        alg.prev_epoch_len = 4;
        assert_eq!(alg.threshold(), 200.0);
        assert_eq!(alg.name(), "ONBR-dyn");
        assert_eq!(OnBr::fixed(&ctx).name(), "ONBR-fixed");
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_threshold_rejected() {
        OnBr::with_base(ThresholdMode::Fixed, 0.0);
    }
}
