//! OPT — the optimal offline algorithm (§IV-A).
//!
//! A dynamic program over `time × configurations`. A configuration
//! describes, for each server, whether it is not in use, inactive, or
//! active, and where it is hosted (Definition 3.1). The DP exploits the
//! optimal-substructure property: the cheapest way to be in configuration
//! `γ` at time `t` extends the cheapest way to be in some `γ′` at `t−1` by
//! the transition `γ′ → γ`:
//!
//! ```text
//! opt[t][γ] = min_γ′ ( opt[t−1][γ′] + Cost(γ′→γ) ) + Cost_run(γ) + Cost_acc(σt, γ)
//! ```
//!
//! The state space is `3^n` filtered to `1 ≤ |A|` and `|A| + |I| ≤ k` —
//! "the computational complexity of OPT is rather high". OPT manages its
//! inactive servers optimally (no FIFO-cache restriction): it is the
//! *reference optimum* the online algorithms are measured against.
//!
//! ## How the DP avoids the dense transition matrix
//!
//! A naive implementation materializes all `s × s` transition costs
//! (128 MB of `f64` at `s = 4000`) and scans every predecessor per state
//! per round. This implementation exploits that the transition cost
//! decomposes **per server position**: `Cost(γ′→γ)` depends only on the
//! *position sets* `P′ = A′ ∪ I′` and `P = A ∪ I` (activation flips at a
//! node are free; new positions are filled by migrations `β` matched
//! against vacated positions, the rest by creations `c`). Configurations
//! sharing a position set therefore share all their incoming and outgoing
//! transition costs, which yields a two-level sparse predecessor
//! structure:
//!
//! 1. configurations are grouped by position bitmask (`g ≪ s` groups:
//!    a set of `p` positions hosts `2^p − 1` activation patterns);
//! 2. each round first reduces every group to its cheapest member
//!    (`O(s)`), then minimizes per target over *groups*, computing the
//!    group-to-group cost from two popcounts on the fly (`O(s·g)` with no
//!    transition storage at all).
//!
//! Because `min_i (prev[i]) + T = min_i (prev[i] + T)` exactly (adding a
//! constant is monotone in IEEE floats), the grouped minimum is
//! bit-identical to the naive full scan — a golden regression test and a
//! dense in-test reference pin this. The per-round column loop over
//! targets is parallelized with rayon (each column only reads `prev` and
//! the group minima), which keeps rounds deterministic: every column's
//! arithmetic is independent of thread count.
//!
//! Access cost is memoized the same way: it depends only on a
//! configuration's *active set*, so each round evaluates it once per
//! distinct `active_mask` (e.g. 511 evaluations instead of 19 171 columns
//! at `n = 9, k = 9`) and the columns look the value up. The memo calls
//! the identical evaluation on the identical sorted active list, so it is
//! bit-identical by construction.

use flexserve_graph::NodeId;
use flexserve_sim::{Plan, SimContext};
use flexserve_workload::Trace;
use rayon::prelude::*;

/// Safety cap on the configuration count. The grouped DP is `O(t · s · g)`
/// time and `O(t · s)` memory (backtracking parents) — no `s × s`
/// materialization — so substrates well beyond the paper's five-node line
/// graphs are feasible (`s = 58 025` covers `n = 10` with `k = 10`).
pub const MAX_STATES: usize = 60_000;

/// One DP configuration, with bitmask mirrors of the sorted node lists.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Config {
    active: Vec<NodeId>,
    inactive: Vec<NodeId>,
    /// Bitmask of `active` (bit `i` = node `i`).
    active_mask: u64,
    /// Bitmask of `active ∪ inactive` — the position set `P`.
    position_mask: u64,
}

/// Per-position transition cost between two position masks: migrations are
/// matched new↔vacated pairs at `β` (when useful), the rest creations at
/// `c`. Bit-for-bit the same arithmetic as
/// `flexserve_sim::config_transition_cost`, from two popcounts.
#[inline]
fn mask_transition_cost(from: u64, to: u64, params: &flexserve_sim::CostParams) -> f64 {
    let new_positions = (to & !from).count_ones() as usize;
    if params.migration_useful() {
        let vacated = (from & !to).count_ones() as usize;
        let migrations = new_positions.min(vacated);
        let creations = new_positions - migrations;
        migrations as f64 * params.migration_beta + creations as f64 * params.creation_c
    } else {
        new_positions as f64 * params.creation_c
    }
}

/// The result of the offline optimization.
#[derive(Clone, Debug)]
pub struct OptResult {
    /// Optimal per-round active sets (apply before serving the round).
    pub plan: Plan,
    /// Optimal per-round inactive sets (for inspection).
    pub inactive_plan: Vec<Vec<NodeId>>,
    /// The optimal total cost (transitions + running + access over the
    /// whole trace).
    pub cost: f64,
    /// Size of the explored configuration space.
    pub states: usize,
}

/// Runs the optimal offline DP over `trace`, starting from `initial`
/// active servers (no inactive servers cached initially; the starting
/// configuration is free, matching the engine convention).
///
/// # Panics
///
/// Panics if the configuration space exceeds [`MAX_STATES`], if the
/// substrate has more than 64 nodes (configuration bitmasks are `u64`;
/// any larger instance is far beyond [`MAX_STATES`] anyway), or if the
/// trace is empty.
pub fn optimal_plan(ctx: &SimContext<'_>, trace: &Trace, initial: &[NodeId]) -> OptResult {
    assert!(!trace.is_empty(), "OPT: empty trace");
    let n = ctx.graph.node_count();
    assert!(n <= 64, "OPT: {n}-node substrate exceeds the 64-bit mask");
    let k = ctx.params.max_servers.min(n);

    // --- Enumerate configurations and group them by position set -------
    let configs = enumerate_configs(n, k);
    let s = configs.len();
    assert!(
        s <= MAX_STATES,
        "OPT: {s} configurations (n={n}, k={k}) exceed MAX_STATES={MAX_STATES}; \
         use a smaller substrate or server budget"
    );

    // Group ids are dense in first-seen (enumeration) order, which keeps
    // the grouped predecessor scan's tie-breaking deterministic.
    let mut group_of = vec![0u32; s];
    let mut group_masks: Vec<u64> = Vec::new();
    {
        let mut seen: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (j, cfg) in configs.iter().enumerate() {
            let next = seen.len() as u32;
            let gid = *seen.entry(cfg.position_mask).or_insert(next);
            if gid == group_masks.len() as u32 {
                group_masks.push(cfg.position_mask);
            }
            group_of[j] = gid;
        }
    }
    let g = group_masks.len();

    // Access-cost groups: configurations sharing `active_mask` have the
    // identical sorted active list, hence the identical access cost every
    // round. `acc_reps[a]` is the first config of group `a` (dense
    // first-seen ids, like the position groups above).
    let mut acc_group_of = vec![0u32; s];
    let mut acc_reps: Vec<u32> = Vec::new();
    {
        let mut seen: std::collections::HashMap<u64, u32> = std::collections::HashMap::new();
        for (j, cfg) in configs.iter().enumerate() {
            let next = seen.len() as u32;
            let aid = *seen.entry(cfg.active_mask).or_insert(next);
            if aid == acc_reps.len() as u32 {
                acc_reps.push(j as u32);
            }
            acc_group_of[j] = aid;
        }
    }
    let ga = acc_reps.len();

    // --- Per-config running cost ---------------------------------------
    let running: Vec<f64> = configs
        .iter()
        .map(|c| ctx.running_cost(c.active.len(), c.inactive.len()))
        .collect();

    // Initial configuration γ0.
    let mut init_sorted: Vec<NodeId> = initial.to_vec();
    init_sorted.sort();
    let gamma0_mask: u64 = init_sorted.iter().fold(0u64, |m, v| m | 1u64 << v.index());

    // --- DP -------------------------------------------------------------
    let t_max = trace.len();
    let mut cur = vec![0.0f64; s];
    let mut prev = vec![0.0f64; s];
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(t_max);

    // The folded-counts access evaluation below replicates nearest
    // routing; any other policy goes through the routing layer.
    let nearest = matches!(ctx.routing, flexserve_sim::RoutingPolicy::Nearest);

    // Per-round access memo: one evaluation per distinct active set.
    let mut access_of = vec![0.0f64; ga];
    let fill_access = |access_of: &mut Vec<f64>, t: usize| {
        let round = trace.round(t);
        let counts = round.counts_slice();
        par_columns(access_of, ga, |aj, col| {
            let active = &configs[acc_reps[aj] as usize].active;
            if nearest {
                access_cost_counts(ctx, active, counts, col.counts_scratch())
            } else {
                ctx.access_cost(active, round)
            }
        });
    };

    // Round 0: transition from γ0 (positions-only pricing, identical to
    // `config_transition_cost`).
    {
        fill_access(&mut access_of, 0);
        let access_of = &access_of;
        let acc_group_of = &acc_group_of;
        par_columns(&mut cur, s, |j, _col| {
            let cfg = &configs[j];
            let tcost = mask_transition_cost(gamma0_mask, cfg.position_mask, &ctx.params);
            let acc = access_of[acc_group_of[j] as usize];
            tcost + running[j] + acc
        });
        parents.push(vec![u32::MAX; s]);
    }

    // Per-round scratch, reused every round: group minima and the
    // (cost, parent) column results.
    let mut group_min = vec![f64::INFINITY; g];
    let mut group_arg = vec![u32::MAX; g];
    let mut results: Vec<(f64, u32)> = vec![(0.0, u32::MAX); s];

    for t in 1..t_max {
        std::mem::swap(&mut prev, &mut cur);

        // Phase 1 (serial, O(s)): cheapest member of every position group.
        group_min.fill(f64::INFINITY);
        group_arg.fill(u32::MAX);
        for (i, &v) in prev.iter().enumerate() {
            let gi = group_of[i] as usize;
            if v < group_min[gi] {
                group_min[gi] = v;
                group_arg[gi] = i as u32;
            }
        }

        // Phase 2 (parallel, O(s·g)): per target column, minimize over
        // groups with the popcount transition cost. Columns land in the
        // reusable `results` buffer and are unzipped serially (O(s)).
        fill_access(&mut access_of, t);
        {
            let group_min = &group_min;
            let group_arg = &group_arg;
            let group_masks = &group_masks;
            let access_of = &access_of;
            let acc_group_of = &acc_group_of;
            par_columns(&mut results, s, |j, _col| {
                let cfg = &configs[j];
                let mut best = f64::INFINITY;
                let mut best_p = u32::MAX;
                for gi in 0..group_masks.len() {
                    let m = group_min[gi];
                    if !m.is_finite() {
                        continue;
                    }
                    let v =
                        m + mask_transition_cost(group_masks[gi], cfg.position_mask, &ctx.params);
                    if v < best {
                        best = v;
                        best_p = group_arg[gi];
                    }
                }
                let acc = access_of[acc_group_of[j] as usize];
                (best + running[j] + acc, best_p)
            });
        }
        let mut parent = vec![u32::MAX; s];
        for (j, &(c, p)) in results.iter().enumerate() {
            cur[j] = c;
            parent[j] = p;
        }
        parents.push(parent);
    }

    // --- Backtrack -------------------------------------------------------
    let (mut best_j, mut best_cost) = (0usize, f64::INFINITY);
    for (j, &v) in cur.iter().enumerate() {
        if v < best_cost {
            best_cost = v;
            best_j = j;
        }
    }
    let mut order = vec![best_j; t_max];
    for t in (1..t_max).rev() {
        order[t - 1] = parents[t][order[t]] as usize;
    }
    let plan: Plan = order.iter().map(|&j| configs[j].active.clone()).collect();
    let inactive_plan: Vec<Vec<NodeId>> =
        order.iter().map(|&j| configs[j].inactive.clone()).collect();

    OptResult {
        plan,
        inactive_plan,
        cost: best_cost,
        states: s,
    }
}

/// Per-worker scratch handed to the column closures: a reusable
/// per-server request-count buffer for the access-cost evaluation.
struct ColumnScratch {
    counts: Vec<usize>,
}

impl ColumnScratch {
    fn counts_scratch(&mut self) -> &mut Vec<usize> {
        &mut self.counts
    }
}

/// Runs `f(j, scratch)` for every column `j`, writing the result into
/// `out[j]`, in parallel blocks with one scratch per worker.
fn par_columns<T: Send>(
    out: &mut [T],
    s: usize,
    f: impl Fn(usize, &mut ColumnScratch) -> T + Sync,
) {
    let block = columns_block(s);
    out.par_chunks_mut(block)
        .enumerate()
        .for_each(|(b, chunk)| {
            let mut scratch = ColumnScratch { counts: Vec::new() };
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = f(b * block + i, &mut scratch);
            }
        });
}

/// Block size for the column loops: small state spaces stay on one thread
/// (spawn overhead dominates), larger ones split evenly over the workers.
fn columns_block(s: usize) -> usize {
    if s < 512 {
        s.max(1)
    } else {
        s.div_ceil(rayon::current_num_threads()).max(1)
    }
}

/// Access cost of serving the folded `counts` of one round from `servers`,
/// replicating the engine's nearest routing bit-for-bit (same iteration
/// order, same accumulation order) without routing-layer allocations:
/// `counts_buf` is the caller's reusable per-server counter.
fn access_cost_counts(
    ctx: &SimContext<'_>,
    servers: &[NodeId],
    counts: &[(NodeId, usize)],
    counts_buf: &mut Vec<usize>,
) -> f64 {
    if counts.is_empty() {
        return 0.0;
    }
    counts_buf.clear();
    counts_buf.resize(servers.len(), 0);
    let mut total_delay = 0.0;
    for &(origin, cnt) in counts {
        let mut best = 0usize;
        let mut best_d = f64::INFINITY;
        for (i, &sv) in servers.iter().enumerate() {
            let d = ctx.dist.get(origin, sv);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        total_delay += best_d * cnt as f64;
        counts_buf[best] += cnt;
    }
    let mut total_load = 0.0;
    for (i, &sv) in servers.iter().enumerate() {
        total_load += ctx.load.load(ctx.graph.strength(sv), counts_buf[i]);
    }
    total_delay + total_load
}

/// Number of configurations [`optimal_plan`] enumerates for `n` positions
/// and server budget `k`: position sets of size `1..=min(n,k)` with a
/// non-empty active subset, `Σ_{j=1}^{min(n,k)} C(n,j)·(2^j − 1)`.
/// Public so callers (e.g. the experiment CLI) can check feasibility
/// against [`MAX_STATES`] *before* invoking the DP instead of hitting its
/// panic (pinned to `enumerate_configs().len()` by a test).
pub fn state_count(n: usize, k: usize) -> u128 {
    let mut total: u128 = 0;
    let mut choose: u128 = 1; // C(n, 0)
    for j in 1..=k.min(n) {
        choose = choose * (n - j + 1) as u128 / j as u128;
        let active = (1u128 << j) - 1;
        total = total.saturating_add(choose.saturating_mul(active));
        if total > u128::from(u64::MAX) {
            break; // far beyond any feasible DP anyway
        }
    }
    total
}

/// Enumerates all configurations: each node is empty, inactive, or active;
/// at least one active server; at most `k` servers total.
fn enumerate_configs(n: usize, k: usize) -> Vec<Config> {
    let mut out = Vec::new();
    let mut active = Vec::new();
    let mut inactive = Vec::new();
    fn rec(
        n: usize,
        k: usize,
        node: usize,
        active: &mut Vec<NodeId>,
        inactive: &mut Vec<NodeId>,
        out: &mut Vec<Config>,
    ) {
        if active.len() + inactive.len() > k {
            return;
        }
        if node == n {
            if !active.is_empty() {
                let active_mask = active.iter().fold(0u64, |m, v| m | 1u64 << v.index());
                let position_mask = inactive
                    .iter()
                    .fold(active_mask, |m, v| m | 1u64 << v.index());
                out.push(Config {
                    active: active.clone(),
                    inactive: inactive.clone(),
                    active_mask,
                    position_mask,
                });
            }
            return;
        }
        // empty
        rec(n, k, node + 1, active, inactive, out);
        // active
        active.push(NodeId::new(node));
        rec(n, k, node + 1, active, inactive, out);
        active.pop();
        // inactive
        inactive.push(NodeId::new(node));
        rec(n, k, node + 1, active, inactive, out);
        inactive.pop();
    }
    rec(n, k, 0, &mut active, &mut inactive, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{config_transition_cost, CostParams, LoadModel};
    use flexserve_workload::RoundRequests;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self, k: usize) -> SimContext<'_> {
            SimContext::new(
                &self.g,
                &self.m,
                CostParams::default().with_max_servers(k),
                LoadModel::None,
            )
        }
    }

    /// The naive `O(t·s²)` DP with a dense transition matrix — the
    /// structure this module replaced — kept as an in-test reference for
    /// the equivalence tests below.
    fn optimal_cost_dense(ctx: &SimContext<'_>, trace: &Trace, initial: &[NodeId]) -> f64 {
        let n = ctx.graph.node_count();
        let k = ctx.params.max_servers.min(n);
        let configs = enumerate_configs(n, k);
        let s = configs.len();
        let running: Vec<f64> = configs
            .iter()
            .map(|c| ctx.running_cost(c.active.len(), c.inactive.len()))
            .collect();
        let mut trans = vec![0.0f64; s * s];
        for (i, from) in configs.iter().enumerate() {
            for (j, to) in configs.iter().enumerate() {
                trans[i * s + j] = config_transition_cost(
                    &from.active,
                    &from.inactive,
                    &to.active,
                    &to.inactive,
                    &ctx.params,
                );
            }
        }
        let mut init_sorted: Vec<NodeId> = initial.to_vec();
        init_sorted.sort();
        let mut cur = vec![f64::INFINITY; s];
        for (j, cfg) in configs.iter().enumerate() {
            let tcost =
                config_transition_cost(&init_sorted, &[], &cfg.active, &cfg.inactive, &ctx.params);
            cur[j] = tcost + running[j] + ctx.access_cost(&cfg.active, trace.round(0));
        }
        let mut prev = vec![0.0f64; s];
        for t in 1..trace.len() {
            std::mem::swap(&mut prev, &mut cur);
            for (j, cfg) in configs.iter().enumerate() {
                let mut best = f64::INFINITY;
                for i in 0..s {
                    let v = prev[i] + trans[i * s + j];
                    if v < best {
                        best = v;
                    }
                }
                cur[j] = best + running[j] + ctx.access_cost(&cfg.active, trace.round(t));
            }
        }
        cur.iter().copied().fold(f64::INFINITY, f64::min)
    }

    #[test]
    fn enumeration_counts() {
        // n=2, k=2: states with >=1 active:
        // (A,_),( _,A),(A,A),(A,I),(I,A) = 5
        assert_eq!(enumerate_configs(2, 2).len(), 5);
        // n=1: single active config
        assert_eq!(enumerate_configs(1, 1).len(), 1);
        // n=3, k=1: one active, no inactive (budget 1): 3
        assert_eq!(enumerate_configs(3, 1).len(), 3);
    }

    #[test]
    fn state_count_matches_enumeration() {
        for (n, k) in [(1usize, 1usize), (2, 2), (3, 1), (4, 3), (5, 4), (6, 6)] {
            assert_eq!(
                state_count(n, k),
                enumerate_configs(n, k).len() as u128,
                "n={n} k={k}"
            );
        }
    }

    #[test]
    fn masks_match_lists() {
        for cfg in enumerate_configs(4, 3) {
            let am = cfg.active.iter().fold(0u64, |m, v| m | 1 << v.index());
            let pm = cfg.inactive.iter().fold(am, |m, v| m | 1 << v.index());
            assert_eq!(cfg.active_mask, am);
            assert_eq!(cfg.position_mask, pm);
        }
    }

    #[test]
    fn mask_cost_matches_list_cost() {
        let params = CostParams::default().with_max_servers(8);
        let flipped = CostParams::flipped().with_max_servers(8);
        let configs = enumerate_configs(4, 4);
        for p in [&params, &flipped] {
            for a in &configs {
                for b in &configs {
                    let dense =
                        config_transition_cost(&a.active, &a.inactive, &b.active, &b.inactive, p);
                    let masked = mask_transition_cost(a.position_mask, b.position_mask, p);
                    assert_eq!(dense.to_bits(), masked.to_bits());
                }
            }
        }
    }

    #[test]
    fn grouped_dp_bit_identical_to_dense_reference() {
        for (len, k, seed) in [(4usize, 2usize, 0u64), (5, 3, 1), (5, 5, 2)] {
            let fx = Fx::new(len);
            let ctx = fx.ctx(k);
            let mut rounds = Vec::new();
            for t in 0..25u64 {
                let node = ((t.wrapping_mul(seed + 3)) as usize) % len;
                rounds.push(RoundRequests::new(vec![n(node); 1 + (t % 4) as usize]));
            }
            let trace = Trace::new(rounds);
            let fast = optimal_plan(&ctx, &trace, &[n(0)]).cost;
            let dense = optimal_cost_dense(&ctx, &trace, &[n(0)]);
            assert_eq!(
                fast.to_bits(),
                dense.to_bits(),
                "len={len} k={k} seed={seed}: {fast} vs {dense}"
            );
        }
    }

    /// Golden-cost regression pin: the exact OPT cost on a five-node line
    /// substrate with an oscillating two-cluster demand, frozen at the DP
    /// restructure (grouped sparse predecessors replacing the dense `s×s`
    /// transition matrix). The dense reference above proves old == new;
    /// this constant keeps *future* refactors honest.
    #[test]
    fn golden_cost_five_node_line() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(3);
        let mut rounds = Vec::new();
        for t in 0..60u64 {
            let mut batch = RoundRequests::empty();
            // morning at one end, evening at the other, lunchtime split
            match (t / 10) % 3 {
                0 => batch.push_many(n(0), 6),
                1 => {
                    batch.push_many(n(0), 3);
                    batch.push_many(n(4), 3);
                }
                _ => batch.push_many(n(4), 6),
            }
            batch.push(n(2));
            rounds.push(batch);
        }
        let trace = Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(2)]);
        let golden = optimal_cost_dense(&ctx, &trace, &[n(2)]);
        assert_eq!(res.cost.to_bits(), golden.to_bits());
        const GOLDEN_COST: f64 = 670.0;
        assert!(
            (res.cost - GOLDEN_COST).abs() < 1e-9,
            "OPT cost drifted: {} (golden {GOLDEN_COST})",
            res.cost
        );
    }

    #[test]
    fn static_demand_no_moves() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(2);
        let trace = flexserve_workload::Trace::new(vec![RoundRequests::new(vec![n(2)]); 10]);
        let res = optimal_plan(&ctx, &trace, &[n(2)]);
        // server already on the demand: cost = running only (Ra per round)
        assert!((res.cost - 10.0 * 2.5).abs() < 1e-9, "cost {}", res.cost);
        for round in &res.plan {
            assert_eq!(round, &vec![n(2)]);
        }
    }

    #[test]
    fn migrates_when_demand_justifies() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(1);
        // demand far from the initial server for long: OPT moves immediately
        let trace = flexserve_workload::Trace::new(vec![RoundRequests::new(vec![n(4); 10]); 30]);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        assert_eq!(res.plan[0], vec![n(4)], "OPT should move before round 0");
        // cost = migration 40 + running 2.5*30
        assert!((res.cost - (40.0 + 75.0)).abs() < 1e-9, "cost {}", res.cost);
    }

    #[test]
    fn stays_for_brief_demand() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(1);
        // demand at node 4 for a single round only: paying 4 hops once is
        // cheaper than a 40-cost migration there and 40 back... OPT serves
        // remotely.
        let mut rounds = vec![RoundRequests::new(vec![n(0)]); 6];
        rounds[3] = RoundRequests::new(vec![n(4)]);
        let trace = flexserve_workload::Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        for round in &res.plan {
            assert_eq!(round, &vec![n(0)]);
        }
    }

    #[test]
    fn scales_out_for_persistent_split_demand() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(2);
        let mut batch = RoundRequests::empty();
        batch.push_many(n(0), 20);
        batch.push_many(n(4), 20);
        let trace = flexserve_workload::Trace::new(vec![batch; 50]);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        assert_eq!(
            res.plan.last().unwrap().len(),
            2,
            "OPT should use 2 servers"
        );
    }

    #[test]
    fn opt_is_lower_bound_for_any_plan() {
        use flexserve_sim::run_plan;
        let fx = Fx::new(4);
        let ctx = fx.ctx(2);
        let mut rounds = Vec::new();
        for t in 0..12u64 {
            let node = if (t / 3) % 2 == 0 { 0 } else { 3 };
            rounds.push(RoundRequests::new(vec![n(node); 3]));
        }
        let trace = flexserve_workload::Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        // compare against a handful of fixed plans
        for static_node in 0..4 {
            let plan: Plan = vec![vec![n(static_node)]; 12];
            let rec = run_plan(&ctx, &trace, &plan, vec![n(0)]);
            assert!(
                res.cost <= rec.total().total() + 1e-9,
                "OPT {} beat by static@{static_node} {}",
                res.cost,
                rec.total().total()
            );
        }
    }

    #[test]
    fn opt_plan_cost_matches_engine_replay() {
        use flexserve_sim::run_plan;
        // The DP's internal cost accounting must agree with the engine
        // replaying the produced plan (same routing, same pricing).
        let fx = Fx::new(5);
        let ctx = fx.ctx(3);
        let mut rounds = Vec::new();
        for t in 0..20u64 {
            let node = [0usize, 2, 4, 2][(t % 4) as usize];
            rounds.push(RoundRequests::new(vec![n(node); 2]));
        }
        let trace = flexserve_workload::Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(2)]);
        let replay = run_plan(&ctx, &trace, &res.plan, vec![n(2)]);
        // OPT lower-bounds every plan the engine can play — including its
        // own active-set plan replayed under the engine's FIFO-cache
        // semantics (which can only be costlier than the DP's free-form
        // inactive management).
        assert!(
            res.cost <= replay.total().total() + 1e-9,
            "DP cost {} exceeds engine replay {}",
            res.cost,
            replay.total().total()
        );
    }

    #[test]
    fn uses_inactive_cache_when_demand_oscillates() {
        let fx = Fx::new(5);
        // cheap creation would make caching pointless; use expensive c and
        // moderate beta so keeping an inactive server at the far end pays.
        let params = CostParams::default()
            .with_max_servers(2)
            .with_costs(40.0, 4000.0)
            .with_running(2.5, 0.1);
        let ctx = SimContext::new(&fx.g, &fx.m, params, LoadModel::None);
        let mut rounds = Vec::new();
        for t in 0..40u64 {
            let node = if (t / 10) % 2 == 0 { 0 } else { 4 };
            rounds.push(RoundRequests::new(vec![n(node); 8]));
        }
        let trace = flexserve_workload::Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        // the optimal solution either runs two servers or parks one
        // inactive; either way it never pays full cross-line latency for
        // long.
        let naive_static = 8.0 * 4.0 * 20.0 + 2.5 * 40.0; // stay at 0
        assert!(res.cost < naive_static);
    }

    #[test]
    fn handles_state_spaces_beyond_the_old_cap() {
        // n=9, k=9 enumerates 19_171 configurations — far past the old
        // MAX_STATES=4000 (whose dense matrix would need 2.9 GB). A short
        // trace must run and produce a sane cost.
        let fx = Fx::new(9);
        let ctx = fx.ctx(9);
        let trace = flexserve_workload::Trace::new(vec![RoundRequests::new(vec![n(0), n(8)]); 3]);
        let res = optimal_plan(&ctx, &trace, &[n(4)]);
        assert_eq!(res.states, 19_171);
        assert!(res.cost.is_finite() && res.cost > 0.0);
    }

    #[test]
    #[should_panic(expected = "MAX_STATES")]
    fn refuses_big_instances() {
        let g = unit_line(12).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(
            &g,
            &m,
            CostParams::default().with_max_servers(12),
            LoadModel::None,
        );
        let trace = flexserve_workload::Trace::new(vec![RoundRequests::new(vec![n(0)])]);
        optimal_plan(&ctx, &trace, &[n(0)]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn refuses_empty_trace() {
        let fx = Fx::new(3);
        let ctx = fx.ctx(1);
        optimal_plan(&ctx, &flexserve_workload::Trace::default(), &[n(0)]);
    }
}
