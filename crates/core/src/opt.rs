//! OPT — the optimal offline algorithm (§IV-A).
//!
//! A dynamic program over `time × configurations`. A configuration
//! describes, for each server, whether it is not in use, inactive, or
//! active, and where it is hosted (Definition 3.1). The DP exploits the
//! optimal-substructure property: the cheapest way to be in configuration
//! `γ` at time `t` extends the cheapest way to be in some `γ′` at `t−1` by
//! the transition `γ′ → γ`:
//!
//! ```text
//! opt[t][γ] = min_γ′ ( opt[t−1][γ′] + Cost(γ′→γ) ) + Cost_run(γ) + Cost_acc(σt, γ)
//! ```
//!
//! The state space is `3^n` filtered to `1 ≤ |A|` and `|A| + |I| ≤ k` —
//! "the computational complexity of OPT is rather high", which is why the
//! paper (and this crate's experiments) run it on small line graphs. OPT
//! manages its inactive servers optimally (no FIFO-cache restriction): it
//! is the *reference optimum* the online algorithms are measured against.

use flexserve_graph::NodeId;
use flexserve_sim::{config_transition_cost, Plan, SimContext};
use flexserve_workload::Trace;

/// Safety cap on the configuration count (the DP is quadratic in it).
pub const MAX_STATES: usize = 4_000;

/// One DP configuration.
#[derive(Clone, Debug, PartialEq, Eq)]
struct Config {
    active: Vec<NodeId>,
    inactive: Vec<NodeId>,
}

/// The result of the offline optimization.
#[derive(Clone, Debug)]
pub struct OptResult {
    /// Optimal per-round active sets (apply before serving the round).
    pub plan: Plan,
    /// Optimal per-round inactive sets (for inspection).
    pub inactive_plan: Vec<Vec<NodeId>>,
    /// The optimal total cost (transitions + running + access over the
    /// whole trace).
    pub cost: f64,
    /// Size of the explored configuration space.
    pub states: usize,
}

/// Runs the optimal offline DP over `trace`, starting from `initial`
/// active servers (no inactive servers cached initially; the starting
/// configuration is free, matching the engine convention).
///
/// # Panics
///
/// Panics if the configuration space exceeds [`MAX_STATES`] — OPT is meant
/// for small substrates (the paper uses five-node line graphs) — or if the
/// trace is empty.
pub fn optimal_plan(ctx: &SimContext<'_>, trace: &Trace, initial: &[NodeId]) -> OptResult {
    assert!(!trace.is_empty(), "OPT: empty trace");
    let n = ctx.graph.node_count();
    let k = ctx.params.max_servers.min(n);

    // --- Enumerate configurations -------------------------------------
    let configs = enumerate_configs(n, k);
    let s = configs.len();
    assert!(
        s <= MAX_STATES,
        "OPT: {s} configurations (n={n}, k={k}) exceed MAX_STATES={MAX_STATES}; \
         use a smaller substrate or server budget"
    );

    // --- Precompute per-config running cost and transition matrix ------
    let running: Vec<f64> = configs
        .iter()
        .map(|c| ctx.running_cost(c.active.len(), c.inactive.len()))
        .collect();

    let mut trans = vec![0.0f64; s * s];
    for (i, from) in configs.iter().enumerate() {
        for (j, to) in configs.iter().enumerate() {
            trans[i * s + j] = config_transition_cost(
                &from.active,
                &from.inactive,
                &to.active,
                &to.inactive,
                &ctx.params,
            );
        }
    }

    // Initial configuration γ0.
    let mut init_sorted: Vec<NodeId> = initial.to_vec();
    init_sorted.sort();
    let gamma0 = Config {
        active: init_sorted,
        inactive: Vec::new(),
    };

    // --- DP -------------------------------------------------------------
    let t_max = trace.len();
    let mut cur = vec![f64::INFINITY; s];
    let mut parents: Vec<Vec<u32>> = Vec::with_capacity(t_max);

    // Round 0: transition from γ0.
    {
        let mut parent = vec![u32::MAX; s];
        for (j, cfg) in configs.iter().enumerate() {
            let tcost = config_transition_cost(
                &gamma0.active,
                &gamma0.inactive,
                &cfg.active,
                &cfg.inactive,
                &ctx.params,
            );
            let acc = ctx.access_cost(&cfg.active, trace.round(0));
            cur[j] = tcost + running[j] + acc;
            parent[j] = u32::MAX; // root
        }
        parents.push(parent);
    }

    let mut prev = vec![0.0f64; s];
    for t in 1..t_max {
        std::mem::swap(&mut prev, &mut cur);
        let mut parent = vec![u32::MAX; s];
        for (j, cfg) in configs.iter().enumerate() {
            let mut best = f64::INFINITY;
            let mut best_p = u32::MAX;
            let row_t = j; // trans is from-major: trans[i*s + j]
            for i in 0..s {
                let v = prev[i] + trans[i * s + row_t];
                if v < best {
                    best = v;
                    best_p = i as u32;
                }
            }
            let acc = ctx.access_cost(&cfg.active, trace.round(t));
            cur[j] = best + running[j] + acc;
            parent[j] = best_p;
        }
        parents.push(parent);
    }

    // --- Backtrack -------------------------------------------------------
    let (mut best_j, mut best_cost) = (0usize, f64::INFINITY);
    for (j, &v) in cur.iter().enumerate() {
        if v < best_cost {
            best_cost = v;
            best_j = j;
        }
    }
    let mut order = vec![best_j; t_max];
    for t in (1..t_max).rev() {
        order[t - 1] = parents[t][order[t]] as usize;
    }
    let plan: Plan = order.iter().map(|&j| configs[j].active.clone()).collect();
    let inactive_plan: Vec<Vec<NodeId>> =
        order.iter().map(|&j| configs[j].inactive.clone()).collect();

    OptResult {
        plan,
        inactive_plan,
        cost: best_cost,
        states: s,
    }
}

/// Enumerates all configurations: each node is empty, inactive, or active;
/// at least one active server; at most `k` servers total.
fn enumerate_configs(n: usize, k: usize) -> Vec<Config> {
    let mut out = Vec::new();
    let mut active = Vec::new();
    let mut inactive = Vec::new();
    fn rec(
        n: usize,
        k: usize,
        node: usize,
        active: &mut Vec<NodeId>,
        inactive: &mut Vec<NodeId>,
        out: &mut Vec<Config>,
    ) {
        if active.len() + inactive.len() > k {
            return;
        }
        if node == n {
            if !active.is_empty() {
                out.push(Config {
                    active: active.clone(),
                    inactive: inactive.clone(),
                });
            }
            return;
        }
        // empty
        rec(n, k, node + 1, active, inactive, out);
        // active
        active.push(NodeId::new(node));
        rec(n, k, node + 1, active, inactive, out);
        active.pop();
        // inactive
        inactive.push(NodeId::new(node));
        rec(n, k, node + 1, active, inactive, out);
        inactive.pop();
    }
    rec(n, k, 0, &mut active, &mut inactive, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{CostParams, LoadModel};
    use flexserve_workload::RoundRequests;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self, k: usize) -> SimContext<'_> {
            SimContext::new(
                &self.g,
                &self.m,
                CostParams::default().with_max_servers(k),
                LoadModel::None,
            )
        }
    }

    #[test]
    fn enumeration_counts() {
        // n=2, k=2: states with >=1 active:
        // (A,_),( _,A),(A,A),(A,I),(I,A) = 5
        assert_eq!(enumerate_configs(2, 2).len(), 5);
        // n=1: single active config
        assert_eq!(enumerate_configs(1, 1).len(), 1);
        // n=3, k=1: one active, no inactive (budget 1): 3
        assert_eq!(enumerate_configs(3, 1).len(), 3);
    }

    #[test]
    fn static_demand_no_moves() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(2);
        let trace =
            flexserve_workload::Trace::new(vec![RoundRequests::new(vec![n(2)]); 10]);
        let res = optimal_plan(&ctx, &trace, &[n(2)]);
        // server already on the demand: cost = running only (Ra per round)
        assert!((res.cost - 10.0 * 2.5).abs() < 1e-9, "cost {}", res.cost);
        for round in &res.plan {
            assert_eq!(round, &vec![n(2)]);
        }
    }

    #[test]
    fn migrates_when_demand_justifies() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(1);
        // demand far from the initial server for long: OPT moves immediately
        let trace =
            flexserve_workload::Trace::new(vec![RoundRequests::new(vec![n(4); 10]); 30]);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        assert_eq!(res.plan[0], vec![n(4)], "OPT should move before round 0");
        // cost = migration 40 + running 2.5*30
        assert!((res.cost - (40.0 + 75.0)).abs() < 1e-9, "cost {}", res.cost);
    }

    #[test]
    fn stays_for_brief_demand() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(1);
        // demand at node 4 for a single round only: paying 4 hops once is
        // cheaper than a 40-cost migration there and 40 back... OPT serves
        // remotely.
        let mut rounds = vec![RoundRequests::new(vec![n(0)]); 6];
        rounds[3] = RoundRequests::new(vec![n(4)]);
        let trace = flexserve_workload::Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        for round in &res.plan {
            assert_eq!(round, &vec![n(0)]);
        }
    }

    #[test]
    fn scales_out_for_persistent_split_demand() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(2);
        let mut batch = RoundRequests::empty();
        batch.push_many(n(0), 20);
        batch.push_many(n(4), 20);
        let trace = flexserve_workload::Trace::new(vec![batch; 50]);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        assert_eq!(res.plan.last().unwrap().len(), 2, "OPT should use 2 servers");
    }

    #[test]
    fn opt_is_lower_bound_for_any_plan() {
        use flexserve_sim::run_plan;
        let fx = Fx::new(4);
        let ctx = fx.ctx(2);
        let mut rounds = Vec::new();
        for t in 0..12u64 {
            let node = if (t / 3) % 2 == 0 { 0 } else { 3 };
            rounds.push(RoundRequests::new(vec![n(node); 3]));
        }
        let trace = flexserve_workload::Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        // compare against a handful of fixed plans
        for static_node in 0..4 {
            let plan: Plan = vec![vec![n(static_node)]; 12];
            let rec = run_plan(&ctx, &trace, &plan, vec![n(0)]);
            assert!(
                res.cost <= rec.total().total() + 1e-9,
                "OPT {} beat by static@{static_node} {}",
                res.cost,
                rec.total().total()
            );
        }
    }

    #[test]
    fn uses_inactive_cache_when_demand_oscillates() {
        let fx = Fx::new(5);
        // cheap creation would make caching pointless; use expensive c and
        // moderate beta so keeping an inactive server at the far end pays.
        let params = CostParams::default()
            .with_max_servers(2)
            .with_costs(40.0, 4000.0)
            .with_running(2.5, 0.1);
        let ctx = SimContext::new(&fx.g, &fx.m, params, LoadModel::None);
        let mut rounds = Vec::new();
        for t in 0..40u64 {
            let node = if (t / 10) % 2 == 0 { 0 } else { 4 };
            rounds.push(RoundRequests::new(vec![n(node); 8]));
        }
        let trace = flexserve_workload::Trace::new(rounds);
        let res = optimal_plan(&ctx, &trace, &[n(0)]);
        // the optimal solution either runs two servers or parks one
        // inactive; either way it never pays full cross-line latency for
        // long.
        let naive_static = 8.0 * 4.0 * 20.0 + 2.5 * 40.0; // stay at 0
        assert!(res.cost < naive_static);
    }

    #[test]
    #[should_panic(expected = "MAX_STATES")]
    fn refuses_big_instances() {
        let g = unit_line(12).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(
            &g,
            &m,
            CostParams::default().with_max_servers(12),
            LoadModel::None,
        );
        let trace = flexserve_workload::Trace::new(vec![RoundRequests::new(vec![n(0)])]);
        optimal_plan(&ctx, &trace, &[n(0)]);
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn refuses_empty_trace() {
        let fx = Fx::new(3);
        let ctx = fx.ctx(1);
        optimal_plan(&ctx, &flexserve_workload::Trace::default(), &[n(0)]);
    }
}
