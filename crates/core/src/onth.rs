//! ONTH — the two-level threshold online strategy (§III-A).
//!
//! "Time is divided into small and large epochs: a small epoch ends when we
//! have accumulated a cost of `y·β` in a given configuration (`y = 2` in
//! our simulations), and a large epoch ends when the accumulated access
//! cost is larger than the accumulated running cost; concretely, we will
//! use the following condition: `Cost_acc/(k_cur+1) − Cost_run > c`, where
//! `k_cur` denotes the current number of active servers.
//!
//! When a small epoch ends ONTH changes to the cheapest configuration
//! among: (1) γ (no change), (2) γ but where one server is migrated,
//! (3) γ but where one server becomes inactive. … When a large epoch ends,
//! a new server is activated at an optimal position with respect to the
//! access cost of the latest large epoch."
//!
//! Intuition: small epochs *track* the demand (move/trim servers cheaply);
//! the large-epoch condition notices that access costs dominate running
//! costs — i.e. servers are too few/too far — and *scales out*.

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, OnlineStrategy, SimContext};
use flexserve_workload::{JsonValue, RoundRequests};

use crate::candidates::{
    best_candidate_with, best_new_server_position_scored, CandidateOptions, CandidateScratch,
    EpochWindow,
};

/// The ONTH strategy.
#[derive(Clone, Debug)]
pub struct OnTh {
    /// Small-epoch threshold factor (`y`; paper default 2).
    y: f64,
    small_window: EpochWindow,
    small_cost: f64,
    large_window: EpochWindow,
    large_access: f64,
    large_running: f64,
    /// Reused window-index buffers; a cache, never checkpointed.
    scratch: CandidateScratch,
}

impl OnTh {
    /// ONTH with the paper's `y = 2`.
    pub fn new() -> Self {
        Self::with_y(2.0)
    }

    /// ONTH with an explicit small-epoch factor (ablations).
    pub fn with_y(y: f64) -> Self {
        assert!(y.is_finite() && y > 0.0, "ONTH: y must be positive");
        OnTh {
            y,
            small_window: EpochWindow::new(),
            small_cost: 0.0,
            large_window: EpochWindow::new(),
            large_access: 0.0,
            large_running: 0.0,
            scratch: CandidateScratch::new(),
        }
    }

    fn reset_small(&mut self) {
        self.small_window.clear();
        self.small_cost = 0.0;
    }

    fn reset_large(&mut self) {
        self.large_window.clear();
        self.large_access = 0.0;
        self.large_running = 0.0;
    }
}

impl Default for OnTh {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStrategy for OnTh {
    fn name(&self) -> String {
        "ONTH".to_string()
    }

    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        _t: u64,
        requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        let running = ctx.running_cost(fleet.active_count(), fleet.inactive_count());
        self.small_window.push(requests);
        self.small_cost += access_cost + running;
        self.large_window.push(requests);
        self.large_access += access_cost;
        self.large_running += running;

        // Large epoch: access costs dominate running costs -> scale out.
        let k_cur = fleet.active_count();
        let can_grow = k_cur < ctx.params.max_servers;
        if can_grow
            && self.large_access / (k_cur as f64 + 1.0) - self.large_running > ctx.params.creation_c
        {
            if let Some((v, _)) =
                best_new_server_position_scored(ctx, fleet, &self.large_window, &mut self.scratch)
            {
                let mut target = fleet.active().to_vec();
                target.push(v);
                self.reset_large();
                self.reset_small();
                return Some(target);
            }
        }

        // Small epoch: track the demand with cheap single-server moves.
        if self.small_cost >= self.y * ctx.params.migration_beta {
            let (target, _) = best_candidate_with(
                ctx,
                fleet,
                &self.small_window,
                CandidateOptions::no_add(),
                &mut self.scratch,
            );
            self.reset_small();
            return Some(target);
        }

        None
    }

    fn export_state(&self) -> Option<JsonValue> {
        Some(JsonValue::Obj(vec![
            ("y".into(), JsonValue::from(self.y)),
            ("small_window".into(), self.small_window.export_json()),
            ("small_cost".into(), JsonValue::from(self.small_cost)),
            ("large_window".into(), self.large_window.export_json()),
            ("large_access".into(), JsonValue::from(self.large_access)),
            ("large_running".into(), JsonValue::from(self.large_running)),
        ]))
    }

    fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
        let f = |key: &str| {
            state
                .get(key)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("ONTH: missing {key:?}"))
        };
        let y = f("y")?;
        if y.to_bits() != self.y.to_bits() {
            return Err(format!(
                "ONTH: checkpoint was taken with y={y}, this instance has y={}",
                self.y
            ));
        }
        let window = |key: &str| {
            state
                .get(key)
                .ok_or_else(|| format!("ONTH: missing {key:?}"))
                .and_then(|v| EpochWindow::import_json(v).map_err(|e| format!("ONTH: {e}")))
        };
        self.small_window = window("small_window")?;
        self.small_cost = f("small_cost")?;
        self.large_window = window("large_window")?;
        self.large_access = f("large_access")?;
        self.large_running = f("large_running")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{run_online, CostParams, LoadModel};
    use flexserve_workload::Trace;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self) -> SimContext<'_> {
            SimContext::new(&self.g, &self.m, CostParams::default(), LoadModel::Linear)
        }
    }

    #[test]
    fn tracks_a_moving_hotspot() {
        let fx = Fx::new(30);
        let ctx = fx.ctx();
        // demand at node 29 persistently
        let trace = Trace::new(vec![RoundRequests::new(vec![n(29); 15]); 80]);
        let mut alg = OnTh::new();
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(0)]);
        assert!(rec.total().migration > 0.0, "should migrate toward demand");
        let tail: f64 = rec.rounds[70..].iter().map(|r| r.costs.access).sum();
        // converged: only load remains (15/round)
        assert!(tail <= 15.0 * 10.0 + 1e-9, "tail access {tail}");
    }

    #[test]
    fn scales_out_under_heavy_split_demand() {
        let fx = Fx::new(60);
        let ctx = fx.ctx();
        // two far-apart heavy clusters: one server cannot serve both
        let mut batch = RoundRequests::empty();
        batch.push_many(n(0), 25);
        batch.push_many(n(59), 25);
        let trace = Trace::new(vec![batch; 150]);
        let mut alg = OnTh::new();
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(30)]);
        let final_servers = rec.rounds.last().unwrap().active_servers;
        assert!(
            final_servers >= 2,
            "expected scale-out, got {final_servers}"
        );
        assert!(rec.total().creation > 0.0 || rec.total().migration > 0.0);
    }

    #[test]
    fn converges_under_constant_demand() {
        let fx = Fx::new(20);
        let ctx = fx.ctx();
        let trace = Trace::new(vec![RoundRequests::new(vec![n(10); 5]); 300]);
        let mut alg = OnTh::new();
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(10)]);
        // "in case of constant demand, they will eventually converge to a
        // stable configuration": second half must be reconfiguration-free
        let late_reconf: f64 = rec.rounds[150..]
            .iter()
            .map(|r| r.costs.migration + r.costs.creation)
            .sum();
        assert_eq!(late_reconf, 0.0);
        assert_eq!(rec.rounds.last().unwrap().active_servers, 1);
    }

    #[test]
    fn respects_server_budget() {
        let fx = Fx::new(40);
        let params = CostParams::default().with_max_servers(2);
        let ctx = SimContext::new(&fx.g, &fx.m, params, LoadModel::Linear);
        let mut batch = RoundRequests::empty();
        for i in 0..4 {
            batch.push_many(n(i * 13), 25);
        }
        let trace = Trace::new(vec![batch; 120]);
        let mut alg = OnTh::new();
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(20)]);
        for r in &rec.rounds {
            assert!(r.active_servers <= 2);
        }
    }

    #[test]
    fn higher_y_reconfigures_less() {
        let fx = Fx::new(30);
        let ctx = fx.ctx();
        // alternating demand
        let mut rounds = Vec::new();
        for t in 0..100u64 {
            let node = if (t / 10) % 2 == 0 { 0 } else { 29 };
            rounds.push(RoundRequests::new(vec![n(node); 8]));
        }
        let trace = Trace::new(rounds);
        let patient = run_online(&ctx, &trace, &mut OnTh::with_y(20.0), vec![n(15)]);
        let eager = run_online(&ctx, &trace, &mut OnTh::with_y(1.0), vec![n(15)]);
        let p_moves = patient.total().migration / ctx.params.migration_beta;
        let e_moves = eager.total().migration / ctx.params.migration_beta;
        assert!(
            e_moves >= p_moves,
            "eager {e_moves} vs patient {p_moves} migrations"
        );
    }

    #[test]
    #[should_panic(expected = "y must be positive")]
    fn bad_y_rejected() {
        OnTh::with_y(-1.0);
    }

    #[test]
    fn name() {
        assert_eq!(OnTh::new().name(), "ONTH");
    }
}
