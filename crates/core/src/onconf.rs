//! ONCONF — the configuration-counter online algorithm (§III).
//!
//! "ONCONF uses a counter `C(γ)` for each configuration γ. Time is divided
//! into epochs. In each epoch ONCONF monitors, for each configuration γ,
//! the cost of serving all requests from this epoch by servers kept in
//! configuration γ, including the access costs (latency plus induced load)
//! of the requests, the server running costs, and possible creation costs.
//! The servers are kept in a given configuration γ̂ until `C(γ̂)` reaches
//! `k·c`. In this case, ONCONF changes to a configuration γ̂′ chosen
//! uniformly at random among configurations with the property
//! `C(γ) < k·c`. If there is no such configuration left, we do not migrate
//! and the epoch ends in that round; the next epoch starts in the next
//! round and the counters are reset to zero."
//!
//! The configuration space has `Σ_{i=1}^{k} (n choose i)` members, so the
//! algorithm "is only acceptable for a small number of servers k" — the
//! constructor refuses instances whose configuration count exceeds a
//! safety bound.

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, OnlineStrategy, SimContext};
use flexserve_workload::RoundRequests;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Hard cap on the number of tracked configurations.
pub const MAX_CONFIGURATIONS: usize = 50_000;

/// The ONCONF strategy.
pub struct OnConf {
    /// All configurations (active sets, sorted node lists).
    configs: Vec<Vec<NodeId>>,
    /// Epoch cost counters `C(γ)`.
    counters: Vec<f64>,
    /// Index of the current configuration γ̂.
    current: usize,
    rng: SmallRng,
}

impl OnConf {
    /// Builds ONCONF over all configurations of at most
    /// `ctx.params.max_servers` servers on the substrate, starting from the
    /// given initial active set.
    ///
    /// # Panics
    ///
    /// Panics if the configuration space exceeds [`MAX_CONFIGURATIONS`] or
    /// the initial configuration is not one of them.
    pub fn new(ctx: &SimContext<'_>, initial: &[NodeId], seed: u64) -> Self {
        let n = ctx.graph.node_count();
        let k = ctx.params.max_servers.min(n);
        let count = config_count(n, k);
        assert!(
            count <= MAX_CONFIGURATIONS,
            "ONCONF: {count} configurations (n={n}, k={k}) exceed the cap of {MAX_CONFIGURATIONS}; \
             use ONBR/ONTH for large instances"
        );
        let mut configs = Vec::with_capacity(count);
        let mut scratch = Vec::new();
        enumerate_subsets(n, k, 0, &mut scratch, &mut configs);
        let mut initial_sorted: Vec<NodeId> = initial.to_vec();
        initial_sorted.sort();
        let current = configs
            .iter()
            .position(|c| *c == initial_sorted)
            .expect("initial configuration not in the enumerated space");
        let counters = vec![0.0; configs.len()];
        OnConf {
            configs,
            counters,
            current,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Number of tracked configurations.
    pub fn config_space(&self) -> usize {
        self.configs.len()
    }
}

/// `Σ_{i=1}^{k} (n choose i)`, saturating: the number of configurations
/// ONCONF tracks for `n` nodes and server budget `k`. Public so callers
/// (e.g. the experiment CLI) can check feasibility against
/// [`MAX_CONFIGURATIONS`] *before* construction instead of hitting the
/// panic in [`OnConf::new`].
pub fn config_count(n: usize, k: usize) -> usize {
    let mut total = 0usize;
    let mut choose = 1usize; // (n choose 0)
    for i in 1..=k.min(n) {
        choose = choose.saturating_mul(n - i + 1) / i;
        total = total.saturating_add(choose);
        if total > MAX_CONFIGURATIONS {
            return total;
        }
    }
    total
}

fn enumerate_subsets(
    n: usize,
    k: usize,
    start: usize,
    scratch: &mut Vec<NodeId>,
    out: &mut Vec<Vec<NodeId>>,
) {
    if !scratch.is_empty() {
        out.push(scratch.clone());
    }
    if scratch.len() == k {
        return;
    }
    for i in start..n {
        scratch.push(NodeId::new(i));
        enumerate_subsets(n, k, i + 1, scratch, out);
        scratch.pop();
    }
}

impl OnlineStrategy for OnConf {
    fn name(&self) -> String {
        "ONCONF".to_string()
    }

    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        _t: u64,
        requests: &RoundRequests,
        _access_cost: f64,
        _fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        let budget = ctx.params.max_servers as f64 * ctx.params.creation_c;

        // Charge every configuration with this round's hypothetical cost.
        for (i, cfg) in self.configs.iter().enumerate() {
            let access = ctx.access_cost(cfg, requests);
            let running = ctx.params.run_active * cfg.len() as f64;
            self.counters[i] += access + running;
        }

        if self.counters[self.current] < budget {
            return None;
        }

        // Move uniformly among configurations still under budget.
        let alive: Vec<usize> = (0..self.configs.len())
            .filter(|&i| self.counters[i] < budget)
            .collect();
        if alive.is_empty() {
            // Epoch over: reset all counters, stay put.
            self.counters.iter_mut().for_each(|c| *c = 0.0);
            return None;
        }
        self.current = alive[self.rng.gen_range(0..alive.len())];
        Some(self.configs[self.current].clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{run_online, CostParams, LoadModel};
    use flexserve_workload::Trace;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self, k: usize) -> SimContext<'_> {
            SimContext::new(
                &self.g,
                &self.m,
                CostParams::default().with_max_servers(k),
                LoadModel::Linear,
            )
        }
    }

    #[test]
    fn config_count_formula() {
        assert_eq!(config_count(4, 1), 4);
        assert_eq!(config_count(4, 2), 4 + 6);
        assert_eq!(config_count(5, 3), 5 + 10 + 10);
        assert_eq!(config_count(3, 5), 3 + 3 + 1); // k clamped by n
    }

    #[test]
    fn enumerates_all_configs() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(2);
        let alg = OnConf::new(&ctx, &[n(2)], 0);
        assert_eq!(alg.config_space(), 15);
    }

    #[test]
    #[should_panic(expected = "exceed the cap")]
    fn refuses_large_spaces() {
        let g = unit_line(200).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(
            &g,
            &m,
            CostParams::default().with_max_servers(5),
            LoadModel::Linear,
        );
        OnConf::new(&ctx, &[n(0)], 0);
    }

    #[test]
    fn stays_put_while_under_budget() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(2);
        // tiny demand: counters grow slowly, no move for a long time
        let trace = Trace::new(vec![RoundRequests::new(vec![n(2)]); 10]);
        let mut alg = OnConf::new(&ctx, &[n(2)], 1);
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(2)]);
        assert_eq!(rec.total().migration + rec.total().creation, 0.0);
    }

    #[test]
    fn eventually_leaves_expensive_configuration() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(1);
        // heavy demand far from the server: C(γ̂) grows fast
        let trace = Trace::new(vec![RoundRequests::new(vec![n(4); 50]); 60]);
        let mut alg = OnConf::new(&ctx, &[n(0)], 7);
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(0)]);
        assert!(
            rec.total().reconfiguration() > 0.0,
            "ONCONF should have moved"
        );
    }

    #[test]
    fn deterministic_under_seed() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(2);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(4); 30]); 50]);
        let r1 = run_online(&ctx, &trace, &mut OnConf::new(&ctx, &[n(0)], 9), vec![n(0)]);
        let r2 = run_online(&ctx, &trace, &mut OnConf::new(&ctx, &[n(0)], 9), vec![n(0)]);
        assert_eq!(r1.total().total(), r2.total().total());
    }
}
