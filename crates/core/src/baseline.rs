//! Static baseline strategy: provision once, never adapt.
//!
//! This is the *online* counterpart of static provisioning: a fixed set of
//! active servers for the whole run. Comparing any adaptive strategy
//! against it quantifies "the benefit of virtualization" from the online
//! side, complementing the OFFSTAT-vs-OPT offline comparison.

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, OnlineStrategy, SimContext};
use flexserve_workload::{JsonValue, RoundRequests};

/// A strategy that never reconfigures.
#[derive(Clone, Debug)]
pub struct StaticStrategy {
    name: String,
}

impl StaticStrategy {
    /// Creates the baseline. The initial configuration is whatever the
    /// engine starts the fleet with.
    pub fn new() -> Self {
        StaticStrategy {
            name: "STATIC".to_string(),
        }
    }
}

impl Default for StaticStrategy {
    fn default() -> Self {
        Self::new()
    }
}

impl OnlineStrategy for StaticStrategy {
    fn name(&self) -> String {
        self.name.clone()
    }

    fn decide(
        &mut self,
        _ctx: &SimContext<'_>,
        _t: u64,
        _requests: &RoundRequests,
        _access_cost: f64,
        _fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        None
    }

    /// Stateless: checkpoints carry `null` and restore accepts only that.
    fn export_state(&self) -> Option<JsonValue> {
        Some(JsonValue::Null)
    }

    fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
        match state {
            JsonValue::Null => Ok(()),
            other => Err(format!("STATIC: unexpected state {}", other.render())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{run_online, CostParams, LoadModel};
    use flexserve_workload::Trace;

    #[test]
    fn never_migrates_or_creates() {
        let g = unit_line(6).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let trace = Trace::new(vec![RoundRequests::new(vec![NodeId::new(5); 4]); 20]);
        let rec = run_online(
            &ctx,
            &trace,
            &mut StaticStrategy::new(),
            vec![NodeId::new(0)],
        );
        let total = rec.total();
        assert_eq!(total.migration, 0.0);
        assert_eq!(total.creation, 0.0);
        assert_eq!(rec.active_series(), vec![1; 20]);
        assert_eq!(StaticStrategy::new().name(), "STATIC");
    }
}
