//! SAMPLEDCONF — the sampling speed-up of ONCONF sketched in §III-A.
//!
//! "There are several ways to speed up ONCONF such as clustering
//! approaches where optimal configurations are only considered on a
//! cluster granularity, or *sampling approaches where, e.g., only k
//! configurations are tracked, one for each possible number of current
//! servers*."
//!
//! This strategy keeps ONCONF's counter discipline but replaces the
//! exponential configuration space with exactly `k` tracked
//! configurations: for each server count `i ∈ {1..k}`, the greedy
//! placement of `i` servers for the demand observed in the current epoch
//! (the same greedy OFFSTAT uses, §V-B). Counters `C(i)` accumulate the
//! hypothetical cost of serving each round from configuration `i`; when
//! the current configuration's counter reaches `k·c`, the strategy jumps
//! to the cheapest still-affordable tracked configuration (recomputing
//! its greedy placement on the epoch so far). When every counter is
//! exhausted the epoch ends, counters reset, and tracking restarts —
//! mirroring ONCONF's epoch semantics at `O(k·n)` per decision instead of
//! `O(Σᵢ (n choose i))`.

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, OnlineStrategy, SimContext};
use flexserve_workload::RoundRequests;

use crate::candidates::{CandidateScratch, EpochWindow};

/// The sampled-configuration strategy.
#[derive(Clone, Debug)]
pub struct SampledConf {
    /// Epoch demand so far (greedy placements are recomputed from it).
    window: EpochWindow,
    /// `C(i)` for server counts `i = 1..=k` (index `i-1`).
    counters: Vec<f64>,
    /// The server count we are currently running.
    current: usize,
    /// Reused window-index buffers; a cache, never checkpointed.
    scratch: CandidateScratch,
}

impl SampledConf {
    /// Creates the strategy. The tracked counts are `1..=k` with `k` from
    /// `ctx.params.max_servers` (clamped to the substrate size).
    pub fn new(ctx: &SimContext<'_>) -> Self {
        let k = ctx.params.max_servers.min(ctx.graph.node_count()).max(1);
        SampledConf {
            window: EpochWindow::new(),
            counters: vec![0.0; k],
            current: 1,
            scratch: CandidateScratch::new(),
        }
    }

    /// Number of tracked configurations (`k`).
    pub fn tracked(&self) -> usize {
        self.counters.len()
    }

    /// Greedy placement of `i` servers for the epoch demand so far —
    /// OFFSTAT's placement rule applied online to the observed window.
    /// Each step scores every remaining node with one transposed
    /// [`crate::candidates::WindowIndex`] scan (bit-identical to the retired
    /// per-candidate `access_cost_window` rescan).
    fn greedy_placement(&mut self, ctx: &SimContext<'_>, i: usize) -> Vec<NodeId> {
        let SampledConf {
            window, scratch, ..
        } = self;
        let CandidateScratch {
            index,
            candidates,
            scores,
            counts,
        } = scratch;
        let mut placed: Vec<NodeId> = Vec::with_capacity(i);
        for _ in 0..i {
            index.rebuild(ctx, &placed, window);
            candidates.clear();
            candidates.extend(ctx.graph.nodes().filter(|v| !placed.contains(v)));
            index.score_all_additions(ctx, candidates, scores, counts);
            let mut best: Option<(NodeId, f64)> = None;
            for (j, &v) in candidates.iter().enumerate() {
                let cost = scores[j];
                if best.is_none_or(|(_, c)| cost < c) {
                    best = Some((v, cost));
                }
            }
            match best {
                Some((v, _)) => placed.push(v),
                None => break,
            }
        }
        placed
    }
}

impl OnlineStrategy for SampledConf {
    fn name(&self) -> String {
        "SAMPLEDCONF".to_string()
    }

    fn initialize(&mut self, _ctx: &SimContext<'_>, fleet: &Fleet) {
        self.current = fleet.active_count().max(1).min(self.counters.len());
    }

    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        _t: u64,
        requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        self.window.push(requests);

        // Charge each tracked count with this round's hypothetical cost:
        // the *current* count is charged its real cost; the others are
        // charged the cost of their greedy-so-far placement. To stay
        // O(k·n) per round we approximate each tracked configuration by
        // "best single server so far + running", refreshing the exact
        // greedy placement only at switch time; the counter for count i
        // uses the observed access cost scaled by the single-server
        // optimum as ONCONF's bookkeeping (documented approximation).
        let running_per_server = ctx.params.run_active;
        for (idx, counter) in self.counters.iter_mut().enumerate() {
            let i = idx + 1;
            if i == fleet.active_count() {
                *counter += access_cost + running_per_server * i as f64;
            } else {
                // Optimistic proxy: with more servers access shrinks at
                // best proportionally; with fewer it grows at least
                // proportionally.
                let scale = fleet.active_count() as f64 / i as f64;
                *counter += access_cost * scale.max(0.25) + running_per_server * i as f64;
            }
        }

        let budget = self.counters.len() as f64 * ctx.params.creation_c;
        let cur_idx = self.current - 1;
        if self.counters[cur_idx] < budget {
            return None;
        }

        // Pick the cheapest still-affordable tracked count.
        let alive: Vec<usize> = (0..self.counters.len())
            .filter(|&i| self.counters[i] < budget)
            .collect();
        if alive.is_empty() {
            // Epoch over: reset and restart tracking.
            self.counters.iter_mut().for_each(|c| *c = 0.0);
            self.window.clear();
            return None;
        }
        let best = alive
            .into_iter()
            .min_by(|&a, &b| self.counters[a].partial_cmp(&self.counters[b]).unwrap())
            .expect("non-empty");
        self.current = best + 1;
        Some(self.greedy_placement(ctx, self.current))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{run_online, CostParams, LoadModel};
    use flexserve_workload::Trace;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self, k: usize) -> SimContext<'_> {
            SimContext::new(
                &self.g,
                &self.m,
                CostParams::default().with_max_servers(k),
                LoadModel::Linear,
            )
        }
    }

    #[test]
    fn tracks_k_configurations() {
        let fx = Fx::new(20);
        let ctx = fx.ctx(4);
        let alg = SampledConf::new(&ctx);
        assert_eq!(alg.tracked(), 4);
        assert_eq!(alg.name(), "SAMPLEDCONF");
    }

    #[test]
    fn k_clamped_by_substrate() {
        let fx = Fx::new(3);
        let ctx = fx.ctx(10);
        assert_eq!(SampledConf::new(&ctx).tracked(), 3);
    }

    #[test]
    fn greedy_placement_matches_demand() {
        let fx = Fx::new(20);
        let ctx = fx.ctx(3);
        let mut alg = SampledConf::new(&ctx);
        let mut batch = RoundRequests::empty();
        batch.push_many(n(2), 5);
        batch.push_many(n(18), 5);
        alg.window.push(&batch);
        let p1 = alg.greedy_placement(&ctx, 1);
        assert_eq!(p1.len(), 1);
        let p2 = alg.greedy_placement(&ctx, 2);
        let mut sorted = p2.clone();
        sorted.sort();
        assert_eq!(sorted, vec![n(2), n(18)]);
    }

    #[test]
    fn runs_and_respects_budget() {
        let fx = Fx::new(30);
        let ctx = fx.ctx(3);
        // demand so heavy the budget trips repeatedly
        let trace = Trace::new(vec![RoundRequests::new(vec![n(29); 40]); 120]);
        let mut alg = SampledConf::new(&ctx);
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(0)]);
        for r in &rec.rounds {
            assert!(r.active_servers >= 1 && r.active_servers <= 3);
        }
        assert!(
            rec.total().reconfiguration() > 0.0,
            "SAMPLEDCONF should have reacted"
        );
    }

    #[test]
    fn cheap_demand_never_triggers() {
        let fx = Fx::new(10);
        let ctx = fx.ctx(2);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(5)]); 20]);
        let mut alg = SampledConf::new(&ctx);
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(5)]);
        assert_eq!(rec.total().reconfiguration(), 0.0);
    }
}
