//! OFFBR — best response with lookahead (§IV-B).
//!
//! "There is an interesting and natural adaption of the best response
//! strategies of Section III: OFFBR is similar to ONBR, but rather than
//! switching to the configuration of lowest cost w.r.t. the passed epoch,
//! we switch to the configuration of lowest cost in the *upcoming* epoch!"
//!
//! OFFBR keeps ONBR's trigger (epoch cost reaching `θ`) but scores the
//! candidate configurations on the requests that are about to arrive. The
//! upcoming epoch is delimited the same way epochs are delimited in the
//! online game: scanning forward, rounds are added until their accumulated
//! cost under the *current* configuration reaches `θ` (or the trace ends).
//!
//! Implemented as an [`OnlineStrategy`] holding the full trace (the
//! "oracle"), so it runs through the identical engine and is charged the
//! identical costs as its online sibling.

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, OnlineStrategy, SimContext};
use flexserve_workload::{RoundRequests, Trace};

use crate::candidates::{best_candidate_with, CandidateOptions, CandidateScratch, EpochWindow};
use crate::onbr::ThresholdMode;

/// The OFFBR strategy (lookahead best response).
pub struct OffBr {
    trace: Trace,
    mode: ThresholdMode,
    base_threshold: f64,
    epoch_cost: f64,
    epoch_len: u64,
    prev_epoch_len: u64,
    /// Reused window-index buffers; a cache, never checkpointed.
    scratch: CandidateScratch,
}

impl OffBr {
    /// OFFBR with the paper's fixed threshold `θ = 2c`.
    pub fn fixed(ctx: &SimContext<'_>, trace: Trace) -> Self {
        Self::new(ctx, trace, ThresholdMode::Fixed)
    }

    /// OFFBR with an explicit threshold mode.
    pub fn new(ctx: &SimContext<'_>, trace: Trace, mode: ThresholdMode) -> Self {
        OffBr {
            trace,
            mode,
            base_threshold: 2.0 * ctx.params.creation_c,
            epoch_cost: 0.0,
            epoch_len: 0,
            prev_epoch_len: 1,
            scratch: CandidateScratch::new(),
        }
    }

    fn threshold(&self) -> f64 {
        match self.mode {
            ThresholdMode::Fixed => self.base_threshold,
            ThresholdMode::Dynamic => self.base_threshold / self.prev_epoch_len.max(1) as f64,
        }
    }

    /// Builds the upcoming-epoch window starting at round `from`.
    fn lookahead_window(&self, ctx: &SimContext<'_>, fleet: &Fleet, from: usize) -> EpochWindow {
        let mut window = EpochWindow::new();
        let mut acc = 0.0;
        let theta = self.threshold();
        let running = ctx.running_cost(fleet.active_count(), fleet.inactive_count());
        for t in from..self.trace.len() {
            let batch = self.trace.round(t);
            window.push(batch);
            acc += ctx.access_cost(fleet.active(), batch) + running;
            if acc >= theta {
                break;
            }
        }
        window
    }
}

impl OnlineStrategy for OffBr {
    fn name(&self) -> String {
        match self.mode {
            ThresholdMode::Fixed => "OFFBR-fixed".to_string(),
            ThresholdMode::Dynamic => "OFFBR-dyn".to_string(),
        }
    }

    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        t: u64,
        _requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        self.epoch_cost +=
            access_cost + ctx.running_cost(fleet.active_count(), fleet.inactive_count());
        self.epoch_len += 1;

        if self.epoch_cost < self.threshold() {
            return None;
        }

        let window = self.lookahead_window(ctx, fleet, t as usize + 1);
        self.prev_epoch_len = self.epoch_len;
        self.epoch_cost = 0.0;
        self.epoch_len = 0;
        if window.is_empty() {
            return None; // end of trace
        }
        let (target, _) = best_candidate_with(
            ctx,
            fleet,
            &window,
            CandidateOptions::all(),
            &mut self.scratch,
        );
        Some(target)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{run_online, CostParams, LoadModel};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn fx(len: usize) -> (flexserve_graph::Graph, DistanceMatrix) {
        let g = unit_line(len).unwrap();
        let m = DistanceMatrix::build(&g);
        (g, m)
    }

    /// Demand flips between the two line ends every `period` rounds.
    fn flip_trace(len: usize, rounds: usize, period: usize, weight: usize) -> Trace {
        let mut out = Vec::new();
        for t in 0..rounds {
            let node = if (t / period).is_multiple_of(2) {
                0
            } else {
                len - 1
            };
            out.push(RoundRequests::new(vec![n(node); weight]));
        }
        Trace::new(out)
    }

    #[test]
    fn lookahead_wins_on_a_permanent_shift() {
        let (g, m) = fx(30);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        // demand sits at node 0, then permanently moves to node 29
        let mut rounds = vec![RoundRequests::new(vec![n(0); 10]); 40];
        rounds.extend(vec![RoundRequests::new(vec![n(29); 10]); 80]);
        let trace = Trace::new(rounds);
        let mut offbr = OffBr::fixed(&ctx, trace.clone());
        let off = run_online(&ctx, &trace, &mut offbr, vec![n(15)]);
        let mut onbr = crate::onbr::OnBr::fixed(&ctx);
        let on = run_online(&ctx, &trace, &mut onbr, vec![n(15)]);
        // Foreknowledge must not hurt on a predictable one-way pattern.
        assert!(
            off.total().total() <= on.total().total() * 1.1,
            "OFFBR {} vs ONBR {}",
            off.total().total(),
            on.total().total()
        );
    }

    #[test]
    fn flip_pattern_stays_within_sanity_bounds() {
        let (g, m) = fx(30);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let trace = flip_trace(30, 120, 15, 10);
        let mut offbr = OffBr::fixed(&ctx, trace.clone());
        let off = run_online(&ctx, &trace, &mut offbr, vec![n(15)]);
        let mut onbr = crate::onbr::OnBr::fixed(&ctx);
        let on = run_online(&ctx, &trace, &mut onbr, vec![n(15)]);
        // Lookahead windows can straddle a flip boundary, so OFFBR is not
        // guaranteed to win here — but it must stay in the same ballpark.
        assert!(
            off.total().total() <= on.total().total() * 3.0,
            "OFFBR {} vs ONBR {}",
            off.total().total(),
            on.total().total()
        );
    }

    #[test]
    fn stable_demand_converges() {
        let (g, m) = fx(12);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(11); 10]); 100]);
        let mut alg = OffBr::fixed(&ctx, trace.clone());
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(0)]);
        let tail: f64 = rec.rounds[80..].iter().map(|r| r.costs.access).sum();
        // converged on the demand: tail access = load only (10/round)
        assert!(tail <= 10.0 * 20.0 + 1e-9, "tail {tail}");
    }

    #[test]
    fn no_decision_after_trace_end() {
        let (g, m) = fx(6);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        // huge demand so the threshold fires on the last round
        let trace = Trace::new(vec![RoundRequests::new(vec![n(5); 300]); 2]);
        let mut alg = OffBr::fixed(&ctx, trace.clone());
        let rec = run_online(&ctx, &trace, &mut alg, vec![n(0)]);
        assert_eq!(rec.len(), 2); // simply completes
    }

    #[test]
    fn names() {
        let (g, m) = fx(4);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let t = Trace::default();
        assert_eq!(OffBr::fixed(&ctx, t.clone()).name(), "OFFBR-fixed");
        assert_eq!(
            OffBr::new(&ctx, t, ThresholdMode::Dynamic).name(),
            "OFFBR-dyn"
        );
    }
}
