//! Shared epoch bookkeeping and fast candidate evaluation.
//!
//! ONBR, ONTH and their offline variants all score the same family of
//! *neighbor configurations* of the current active set `A`:
//!
//! 1. `A` itself (no change),
//! 2. `A − u + v` — migrate one server (`O(n·k)` candidates),
//! 3. `A − u` — deactivate one server (`O(k)` candidates),
//! 4. `A + v` — activate/create one server (`O(n)` candidates),
//!
//! each evaluated against the requests of an epoch. A naive evaluation
//! re-routes every request for every candidate; this module instead
//! precomputes, per distinct origin, the two nearest current servers
//! (`d1/s1`, `d2/s2`), after which any single-server change is scored in
//! `O(1)` per origin — exactly (including non-additive load models),
//! because per-round per-server request counts are re-derived per
//! candidate.
//!
//! Scores include access cost (delay + load), active running cost
//! (`Ra·|A'|` per round) and the transition cost of reaching the candidate
//! (per the planner's pricing rules). The `Ri` cost of cached servers is
//! identical across candidates up to one server and is deliberately left
//! out of the *comparison* (the engine charges it exactly).

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, SimContext};
use flexserve_workload::{JsonValue, RoundRequests};
use rayon::prelude::*;

/// The requests of an epoch, folded to per-round distinct-origin counts.
///
/// Rows cleared by [`EpochWindow::clear`] are parked in a spare pool and
/// reused by later pushes, so a strategy's steady state allocates nothing
/// per round: every epoch recycles the buffers of the previous one.
#[derive(Clone, Debug, Default)]
pub struct EpochWindow {
    rounds: Vec<Vec<(NodeId, usize)>>,
    /// Retired row buffers, kept for their capacity.
    spare: Vec<Vec<(NodeId, usize)>>,
}

impl EpochWindow {
    /// An empty window.
    pub fn new() -> Self {
        EpochWindow::default()
    }

    /// Appends one round of requests.
    pub fn push(&mut self, batch: &RoundRequests) {
        let mut counts = self.spare.pop().unwrap_or_default();
        batch.counts_into(&mut counts);
        self.rounds.push(counts);
    }

    /// Clears the window (start of a new epoch), recycling the row buffers.
    pub fn clear(&mut self) {
        self.spare.append(&mut self.rounds);
    }

    /// Number of rounds currently in the window.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the window holds no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }

    /// Iterates over the folded rounds.
    pub fn rounds(&self) -> impl Iterator<Item = &[(NodeId, usize)]> {
        self.rounds.iter().map(|r| r.as_slice())
    }

    /// Serializes the window for strategy checkpoints: a JSON array of
    /// rounds, each round an array of `[origin, count]` pairs. The spare
    /// pool is a pure allocation optimization and is deliberately not
    /// part of the state.
    pub fn export_json(&self) -> JsonValue {
        JsonValue::Arr(
            self.rounds
                .iter()
                .map(|row| {
                    JsonValue::Arr(
                        row.iter()
                            .map(|&(origin, cnt)| {
                                JsonValue::Arr(vec![
                                    JsonValue::from(origin.index()),
                                    JsonValue::from(cnt),
                                ])
                            })
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Restores a window from [`EpochWindow::export_json`] output. Rows
    /// are re-sorted by origin, so a restored window is byte-for-byte the
    /// window `push` would have built from the same rounds.
    pub fn import_json(value: &JsonValue) -> Result<Self, String> {
        let rows = value.as_array().ok_or("epoch window: expected an array")?;
        let mut rounds = Vec::with_capacity(rows.len());
        for row in rows {
            let pairs = row
                .as_array()
                .ok_or("epoch window: round must be an array")?;
            let mut counts = Vec::with_capacity(pairs.len());
            for pair in pairs {
                match pair.as_array() {
                    Some([origin, cnt]) => counts.push((
                        NodeId::new(origin.as_usize().ok_or("epoch window: bad origin id")?),
                        cnt.as_usize().ok_or("epoch window: bad count")?,
                    )),
                    _ => return Err("epoch window: entry must be [origin, count]".into()),
                }
            }
            counts.sort_unstable_by_key(|&(o, _)| o);
            rounds.push(counts);
        }
        Ok(EpochWindow {
            rounds,
            spare: Vec::new(),
        })
    }
}

/// Which neighbor families to consider.
#[derive(Clone, Copy, Debug)]
pub struct CandidateOptions {
    /// Allow `A − u + v` moves.
    pub migrate: bool,
    /// Allow `A − u` moves (never drops the last server).
    pub deactivate: bool,
    /// Allow `A + v` moves (bounded by the `k` budget).
    pub add: bool,
}

impl CandidateOptions {
    /// ONBR's full neighborhood.
    pub fn all() -> Self {
        CandidateOptions {
            migrate: true,
            deactivate: true,
            add: true,
        }
    }

    /// ONTH's small-epoch neighborhood (no additions — those are the large
    /// epoch's job).
    pub fn no_add() -> Self {
        CandidateOptions {
            migrate: true,
            deactivate: true,
            add: false,
        }
    }
}

/// Exact access cost of serving every round of `window` from `servers`
/// under nearest routing: `Σ_rounds (Σ delay + Σ load)`.
pub fn access_cost_window(ctx: &SimContext<'_>, servers: &[NodeId], window: &EpochWindow) -> f64 {
    if servers.is_empty() {
        return if window.rounds.iter().all(|r| r.is_empty()) {
            0.0
        } else {
            f64::INFINITY
        };
    }
    let mut total = 0.0;
    let mut counts = vec![0usize; servers.len()];
    for round in &window.rounds {
        counts.iter_mut().for_each(|c| *c = 0);
        for &(origin, cnt) in round {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, &s) in servers.iter().enumerate() {
                let d = ctx.dist.get(origin, s);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            total += best_d * cnt as f64;
            counts[best] += cnt;
        }
        for (i, &s) in servers.iter().enumerate() {
            total += ctx.load.load(ctx.graph.strength(s), counts[i]);
        }
    }
    total
}

/// One row of the window scoring index: a `(round, origin)` pair with its
/// folded request count and the nearest server of the indexed active set
/// (first minimum — exactly the tie-breaking of `access_cost_window`'s
/// strict-`<` scan).
#[derive(Clone, Copy, Debug)]
struct IndexEntry {
    /// `NodeId::index()` of the origin.
    origin: u32,
    /// Index in the active set of the nearest server.
    s1: u32,
    /// Folded request count.
    cnt: usize,
    /// Distance to the nearest server (`∞` when unreachable over `A`).
    d1: f64,
}

/// Per-epoch-window scoring index against a fixed active set `A`.
///
/// Built once per scoring pass ([`WindowIndex::rebuild`], reusing its
/// buffers), the index flattens the window to one `(origin, cnt, d1, s1)`
/// entry per `(round, origin)` pair, where `d1`/`s1` are the nearest
/// current server under the exact strict-`<` scan of
/// [`access_cost_window`]. Every `A ∪ {v}` candidate is then scored in a
/// single *transposed* pass ([`WindowIndex::score_all_additions`]): per
/// index entry, the origin's [`DistanceMatrix`] row is walked
/// sequentially across the whole candidate block (one cache-friendly
/// stream instead of per-candidate rescans of the active set),
/// accumulating `Σ cnt · min(d1, d(origin, v))` plus the per-server load
/// terms — per candidate in the exact `(round, origin)` order the naive
/// rescan uses, so each score is **bit-identical** to
/// `access_cost_window` on `A ∪ {v}` (proptest-pinned, including `∞`
/// distances from failed links). Distances are read as `d(origin, v)`,
/// the naive scan's direction — this matters bitwise, because APSP rows
/// are independent per-source float sums and `d(v, origin)` can differ
/// in the last ulp. The candidate axis is rayon-parallel with a serial
/// reference; each candidate's arithmetic is independent of thread
/// count.
///
/// The index also carries the second-nearest server per entry, which is
/// what [`best_candidate`]'s migrate/deactivate scoring needs as the
/// removal fallback — kept out of the hot entry table so the addition
/// scan stays lean.
///
/// [`DistanceMatrix`]: flexserve_graph::DistanceMatrix
#[derive(Debug, Default)]
pub struct WindowIndex {
    /// Hot table of the transposed scan: one entry per `(round, origin)`.
    entries: Vec<IndexEntry>,
    /// Second-nearest `(d2, s2)` per entry, aligned with `entries`.
    seconds: Vec<(f64, u32)>,
    /// Round `r` covers `entries[bounds[r]..bounds[r + 1]]`.
    bounds: Vec<usize>,
    /// `strength(a_i)` per server of the indexed set.
    strengths: Vec<f64>,
}

impl WindowIndex {
    /// An empty index (buffers grow on first [`WindowIndex::rebuild`]).
    pub fn new() -> Self {
        WindowIndex::default()
    }

    /// Number of servers in the indexed active set.
    pub fn servers(&self) -> usize {
        self.strengths.len()
    }

    /// Number of indexed rounds.
    pub fn rounds(&self) -> usize {
        self.bounds.len().saturating_sub(1)
    }

    /// Rebuilds the index for `servers` over `window`, recycling every
    /// buffer — a strategy's steady state allocates nothing per epoch.
    pub fn rebuild(&mut self, ctx: &SimContext<'_>, servers: &[NodeId], window: &EpochWindow) {
        self.entries.clear();
        self.seconds.clear();
        self.bounds.clear();
        self.bounds.push(0);
        self.strengths.clear();
        self.strengths
            .extend(servers.iter().map(|&s| ctx.graph.strength(s)));
        for round in window.rounds() {
            for &(origin, cnt) in round {
                let (mut d1, mut s1, mut d2, mut s2) =
                    (f64::INFINITY, 0usize, f64::INFINITY, 0usize);
                for (i, &s) in servers.iter().enumerate() {
                    let d = ctx.dist.get(origin, s);
                    if d < d1 {
                        d2 = d1;
                        s2 = s1;
                        d1 = d;
                        s1 = i;
                    } else if d < d2 {
                        d2 = d;
                        s2 = i;
                    }
                }
                self.entries.push(IndexEntry {
                    origin: origin.index() as u32,
                    s1: s1 as u32,
                    cnt,
                    d1,
                });
                self.seconds.push((d2, s2 as u32));
            }
            self.bounds.push(self.entries.len());
        }
    }

    /// Exact `access_cost_window(ctx, A ∪ {v}, window)` in one pass over
    /// the index. `counts` is the caller's reusable per-server counter
    /// (resized to `k + 1`; slot `k` is the added server).
    pub fn score_addition(&self, ctx: &SimContext<'_>, v: NodeId, counts: &mut Vec<usize>) -> f64 {
        let k = self.strengths.len();
        let v_strength = ctx.graph.strength(v);
        counts.clear();
        counts.resize(k + 1, 0);
        let mut total = 0.0;
        for r in 0..self.bounds.len() - 1 {
            counts.iter_mut().for_each(|c| *c = 0);
            for e in &self.entries[self.bounds[r]..self.bounds[r + 1]] {
                // d(origin, v): the naive scan's direction (bitwise, the
                // reverse lookup can differ in the last ulp).
                let dv = ctx.dist.get(NodeId::new(e.origin as usize), v);
                // v sits at index k of A ∪ {v}: it wins only on a
                // strictly smaller distance, matching the naive scan.
                let (d, slot) = if dv < e.d1 {
                    (dv, k)
                } else {
                    (e.d1, e.s1 as usize)
                };
                total += d * e.cnt as f64;
                counts[slot] += e.cnt;
            }
            for (i, &c) in counts.iter().enumerate() {
                let strength = if i == k {
                    v_strength
                } else {
                    self.strengths[i]
                };
                total += ctx.load.load(strength, c);
            }
        }
        total
    }

    /// Entry-outer scan of one candidate block: per `(round, origin)`
    /// entry, the origin's distance row is walked sequentially across the
    /// block, accumulating every candidate's score in the exact
    /// per-candidate order of [`WindowIndex::score_addition`] — the two
    /// compute the same sums bitwise, this one with cache-friendly row
    /// streams. `counts` holds `k + 1` slots per candidate.
    fn scan_chunk(
        &self,
        ctx: &SimContext<'_>,
        candidates: &[NodeId],
        out: &mut [f64],
        counts: &mut Vec<usize>,
    ) {
        let k = self.strengths.len();
        let stride = k + 1;
        counts.clear();
        counts.resize(candidates.len() * stride, 0);
        out.fill(0.0);
        for r in 0..self.bounds.len() - 1 {
            counts.iter_mut().for_each(|c| *c = 0);
            for e in &self.entries[self.bounds[r]..self.bounds[r + 1]] {
                let row = ctx.dist.row(NodeId::new(e.origin as usize));
                let cnt = e.cnt as f64;
                for ((slot, &v), c) in out
                    .iter_mut()
                    .zip(candidates)
                    .zip(counts.chunks_mut(stride))
                {
                    let dv = row[v.index()];
                    let (d, s) = if dv < e.d1 {
                        (dv, k)
                    } else {
                        (e.d1, e.s1 as usize)
                    };
                    *slot += d * cnt;
                    c[s] += e.cnt;
                }
            }
            for ((slot, &v), c) in out.iter_mut().zip(candidates).zip(counts.chunks(stride)) {
                for (i, &cc) in c.iter().enumerate() {
                    let strength = if i == k {
                        ctx.graph.strength(v)
                    } else {
                        self.strengths[i]
                    };
                    *slot += ctx.load.load(strength, cc);
                }
            }
        }
    }

    /// Scores every candidate of `candidates` as an `A ∪ {v}` addition in
    /// one transposed pass, rayon-parallel over the candidate axis.
    ///
    /// `scores[j]` is bit-identical to
    /// `access_cost_window(ctx, A ∪ {candidates[j]}, window)` regardless
    /// of `RAYON_NUM_THREADS` (each slot's arithmetic is independent of
    /// the partitioning). On one worker — or for tiny candidate sets —
    /// the scan runs inline on the calling thread with the caller's
    /// `counts` scratch, so the per-round stepping path allocates
    /// nothing in steady state.
    pub fn score_all_additions(
        &self,
        ctx: &SimContext<'_>,
        candidates: &[NodeId],
        scores: &mut Vec<f64>,
        counts: &mut Vec<usize>,
    ) {
        scores.clear();
        scores.resize(candidates.len(), 0.0);
        let block = scan_block(candidates.len());
        if block >= candidates.len() {
            self.scan_chunk(ctx, candidates, scores, counts);
            return;
        }
        scores
            .par_chunks_mut(block)
            .enumerate()
            .for_each(|(b, chunk)| {
                let mut counts = Vec::new();
                let lo = b * block;
                self.scan_chunk(ctx, &candidates[lo..lo + chunk.len()], chunk, &mut counts);
            });
    }

    /// Serial reference for [`WindowIndex::score_all_additions`] — the
    /// parallel path must match it bitwise (proptest-pinned).
    pub fn score_all_additions_serial(
        &self,
        ctx: &SimContext<'_>,
        candidates: &[NodeId],
        scores: &mut Vec<f64>,
        counts: &mut Vec<usize>,
    ) {
        scores.clear();
        scores.resize(candidates.len(), 0.0);
        for (slot, &v) in scores.iter_mut().zip(candidates) {
            *slot = self.score_addition(ctx, v, counts);
        }
    }
}

/// Candidate-block size for the parallel scan: tiny sets (and one-worker
/// runs) stay inline on the calling thread, larger ones split evenly.
fn scan_block(n: usize) -> usize {
    if n <= 4 {
        n.max(1)
    } else {
        n.div_ceil(rayon::current_num_threads()).max(1)
    }
}

/// Reusable buffers for the candidate scan. Strategies own one and thread
/// it through [`best_candidate_with`] /
/// [`best_new_server_position_scored`], so the per-round stepping path
/// ([`SimSession`](flexserve_sim::SimSession), serve sessions) allocates
/// nothing in steady state. The buffers are pure caches: they carry no
/// strategy state, are not checkpointed, and `clone()` starts empty.
#[derive(Debug, Default)]
pub struct CandidateScratch {
    /// The window scoring index of the current pass.
    pub(crate) index: WindowIndex,
    /// Candidate node list of the current pass.
    pub(crate) candidates: Vec<NodeId>,
    /// Per-candidate scores, aligned with `candidates`.
    pub(crate) scores: Vec<f64>,
    /// Per-server request counter (`k + 1` slots).
    pub(crate) counts: Vec<usize>,
}

impl CandidateScratch {
    /// Empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        CandidateScratch::default()
    }
}

impl Clone for CandidateScratch {
    /// Clones start empty: the buffers are allocation caches, not state.
    fn clone(&self) -> Self {
        CandidateScratch::default()
    }
}

/// Analytic transition cost of a single-server change, mirroring the
/// planner's rules (validated against the planner in tests).
fn single_change_cost(ctx: &SimContext<'_>, fleet: &Fleet, kind: ChangeKind) -> f64 {
    let p = &ctx.params;
    match kind {
        ChangeKind::Migrate => {
            if p.migration_useful() {
                p.migration_beta
            } else {
                p.creation_c
            }
        }
        ChangeKind::Add(v) => {
            if fleet.is_inactive_at(v) {
                0.0
            } else if p.migration_useful() && fleet.inactive_count() > 0 {
                p.migration_beta
            } else {
                p.creation_c
            }
        }
    }
}

/// Stays and deactivations are free and need no pricing case.
#[derive(Clone, Copy)]
enum ChangeKind {
    Migrate,
    Add(NodeId),
}

/// The best neighbor configuration of `fleet.active()` w.r.t. `window`.
///
/// Returns `(target_active_set, score)` where the score is
/// `access(window) + Ra·|A'|·window_len + transition_cost`. The current
/// configuration is always a candidate, so callers can compare the winner
/// against "stay" by identity of the returned set.
pub fn best_candidate(
    ctx: &SimContext<'_>,
    fleet: &Fleet,
    window: &EpochWindow,
    options: CandidateOptions,
) -> (Vec<NodeId>, f64) {
    best_candidate_with(ctx, fleet, window, options, &mut CandidateScratch::new())
}

/// [`best_candidate`] with caller-owned scratch: strategies thread their
/// [`CandidateScratch`] through so repeated epoch scoring reuses the
/// window index and every buffer.
pub fn best_candidate_with(
    ctx: &SimContext<'_>,
    fleet: &Fleet,
    window: &EpochWindow,
    options: CandidateOptions,
    scratch: &mut CandidateScratch,
) -> (Vec<NodeId>, f64) {
    let a = fleet.active();
    let k = a.len();
    assert!(k > 0, "best_candidate: no active servers");
    let wlen = window.len() as f64;
    let ra = ctx.params.run_active;

    let CandidateScratch {
        index,
        candidates,
        scores,
        counts,
    } = scratch;

    // Precompute two nearest current servers per (round, origin).
    index.rebuild(ctx, a, window);

    // Scores a candidate: remove server index `remove` (usize::MAX = none)
    // and/or add node `add` (None = none). Exact nearest routing + load.
    // `counts` is scratch of size k+1 (slot k = the added server).
    counts.clear();
    counts.resize(k + 1, 0);
    let mut eval = |remove: usize, add: Option<NodeId>| -> f64 {
        let mut total = 0.0;
        let add_strength = add.map(|v| ctx.graph.strength(v)).unwrap_or(1.0);
        for r in 0..index.bounds.len() - 1 {
            counts.iter_mut().for_each(|c| *c = 0);
            for j in index.bounds[r]..index.bounds[r + 1] {
                let e = &index.entries[j];
                // nearest surviving current server
                let (dcur, scur) = if e.s1 as usize == remove {
                    let (d2, s2) = index.seconds[j];
                    (d2, s2 as usize)
                } else {
                    (e.d1, e.s1 as usize)
                };
                let (d, slot) = match add {
                    Some(v) => {
                        let dv = ctx.dist.get(NodeId::new(e.origin as usize), v);
                        if dv < dcur {
                            (dv, k)
                        } else {
                            (dcur, scur)
                        }
                    }
                    None => (dcur, scur),
                };
                total += d * e.cnt as f64;
                counts[slot] += e.cnt;
            }
            for (i, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                let strength = if i == k {
                    add_strength
                } else {
                    index.strengths[i]
                };
                total += ctx.load.load(strength, c);
            }
        }
        total
    };

    const NONE: usize = usize::MAX;
    let mut best_target: Option<Vec<NodeId>> = None;
    let mut best_score = f64::INFINITY;

    let consider = |score: f64,
                    best_score: &mut f64,
                    best_target: &mut Option<Vec<NodeId>>,
                    target: Vec<NodeId>| {
        if score < *best_score {
            *best_score = score;
            *best_target = Some(target);
        }
    };

    // 1. Stay.
    let stay_score = eval(NONE, None) + ra * k as f64 * wlen;
    consider(stay_score, &mut best_score, &mut best_target, a.to_vec());

    // 2. Migrate u -> v.
    if options.migrate && k >= 1 {
        let mig_cost = single_change_cost(ctx, fleet, ChangeKind::Migrate);
        for v in ctx.graph.nodes() {
            if fleet.is_active_at(v) {
                continue;
            }
            for u_idx in 0..k {
                let score = eval(u_idx, Some(v)) + ra * k as f64 * wlen + mig_cost;
                if score < best_score {
                    let mut target = a.to_vec();
                    target[u_idx] = v;
                    consider(score, &mut best_score, &mut best_target, target);
                }
            }
        }
    }

    // 3. Deactivate u (keep at least one server).
    if options.deactivate && k >= 2 {
        for u_idx in 0..k {
            let score = eval(u_idx, None) + ra * (k - 1) as f64 * wlen;
            if score < best_score {
                let mut target = a.to_vec();
                target.remove(u_idx);
                consider(score, &mut best_score, &mut best_target, target);
            }
        }
    }

    // 4. Add v (respect the k budget) — all additions in one transposed pass.
    if options.add && k < ctx.params.max_servers {
        candidates.clear();
        candidates.extend(ctx.graph.nodes().filter(|&v| !fleet.is_active_at(v)));
        index.score_all_additions(ctx, candidates, scores, counts);
        for (j, &v) in candidates.iter().enumerate() {
            let trans = single_change_cost(ctx, fleet, ChangeKind::Add(v));
            let score = scores[j] + ra * (k + 1) as f64 * wlen + trans;
            if score < best_score {
                let mut target = a.to_vec();
                target.push(v);
                consider(score, &mut best_score, &mut best_target, target);
            }
        }
    }

    (
        best_target.expect("at least the stay candidate exists"),
        best_score,
    )
}

/// The node `v ∉ A` minimizing the pure access cost of `window` served by
/// `A ∪ {v}` — ONTH's "optimal position with respect to the access cost of
/// the latest large epoch". Returns `None` when every node already hosts a
/// server.
pub fn best_new_server_position(
    ctx: &SimContext<'_>,
    fleet: &Fleet,
    window: &EpochWindow,
) -> Option<NodeId> {
    best_new_server_position_scored(ctx, fleet, window, &mut CandidateScratch::new())
        .map(|(v, _)| v)
}

/// [`best_new_server_position`] with caller-owned scratch, also returning
/// the winning access cost. One [`WindowIndex`] rebuild plus a single
/// transposed scan replaces the per-candidate `access_cost_window`
/// rescans (and their per-candidate `A ∪ {v}` allocation), so the
/// steady-state large-epoch trigger allocates nothing.
pub fn best_new_server_position_scored(
    ctx: &SimContext<'_>,
    fleet: &Fleet,
    window: &EpochWindow,
    scratch: &mut CandidateScratch,
) -> Option<(NodeId, f64)> {
    let a = fleet.active();
    let CandidateScratch {
        index,
        candidates,
        scores,
        counts,
    } = scratch;
    index.rebuild(ctx, a, window);
    candidates.clear();
    candidates.extend(ctx.graph.nodes().filter(|&v| !fleet.is_active_at(v)));
    index.score_all_additions(ctx, candidates, scores, counts);
    let mut best: Option<(NodeId, f64)> = None;
    for (j, &v) in candidates.iter().enumerate() {
        let cost = scores[j];
        if best.is_none_or(|(_, c)| cost < c) {
            best = Some((v, cost));
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::{CostParams, LoadModel, TransitionPlanner};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn window_at(origins: &[(usize, usize)], rounds: usize) -> EpochWindow {
        let mut w = EpochWindow::new();
        for _ in 0..rounds {
            let mut batch = RoundRequests::empty();
            for &(o, cnt) in origins {
                batch.push_many(n(o), cnt);
            }
            w.push(&batch);
        }
        w
    }

    struct Fixture {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }

    impl Fixture {
        fn line(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fixture { g, m }
        }
        fn ctx(&self, load: LoadModel) -> SimContext<'_> {
            SimContext::new(&self.g, &self.m, CostParams::default(), load)
        }
    }

    #[test]
    fn window_folds_duplicates() {
        let w = window_at(&[(3, 5)], 2);
        assert_eq!(w.len(), 2);
        let first: Vec<_> = w.rounds().next().unwrap().to_vec();
        assert_eq!(first, vec![(n(3), 5)]);
    }

    #[test]
    fn window_rows_sorted_by_origin() {
        let mut batch = RoundRequests::empty();
        batch.push_many(n(9), 2);
        batch.push_many(n(1), 3);
        let mut w = EpochWindow::new();
        w.push(&batch);
        let row: Vec<_> = w.rounds().next().unwrap().to_vec();
        assert_eq!(row, vec![(n(1), 3), (n(9), 2)]);
    }

    #[test]
    fn clear_recycles_row_buffers() {
        let mut w = EpochWindow::new();
        let batch = RoundRequests::new(vec![n(0); 8]);
        for _ in 0..4 {
            w.push(&batch);
        }
        w.clear();
        assert!(w.is_empty());
        assert_eq!(w.spare.len(), 4, "cleared rows must be pooled");
        for _ in 0..4 {
            w.push(&batch);
        }
        assert_eq!(w.spare.len(), 0, "pushes must drain the pool");
        assert_eq!(w.len(), 4);
    }

    #[test]
    fn window_json_round_trips() {
        let mut w = EpochWindow::new();
        let mut batch = RoundRequests::empty();
        batch.push_many(n(9), 2);
        batch.push_many(n(1), 3);
        w.push(&batch);
        w.push(&RoundRequests::empty());
        let json = w.export_json();
        let back = EpochWindow::import_json(&json).unwrap();
        assert_eq!(back.len(), 2);
        let rows: Vec<Vec<(NodeId, usize)>> = back.rounds().map(|r| r.to_vec()).collect();
        let orig: Vec<Vec<(NodeId, usize)>> = w.rounds().map(|r| r.to_vec()).collect();
        assert_eq!(rows, orig);
        // malformed inputs are rejected
        assert!(EpochWindow::import_json(&JsonValue::Null).is_err());
        assert!(
            EpochWindow::import_json(&JsonValue::parse("[[[1]]]").unwrap()).is_err(),
            "pair arity must be checked"
        );
    }

    #[test]
    fn access_cost_window_matches_route() {
        let f = Fixture::line(10);
        let ctx = f.ctx(LoadModel::Linear);
        let servers = [n(1), n(8)];
        let mut batch = RoundRequests::empty();
        batch.push_many(n(0), 3);
        batch.push_many(n(9), 2);
        batch.push(n(4));
        let mut w = EpochWindow::new();
        w.push(&batch);
        w.push(&batch);
        let direct = ctx.access_cost(&servers, &batch) * 2.0;
        let windowed = access_cost_window(&ctx, &servers, &w);
        assert!((direct - windowed).abs() < 1e-9);
    }

    #[test]
    fn empty_servers_infinite_unless_empty_window() {
        let f = Fixture::line(4);
        let ctx = f.ctx(LoadModel::None);
        let w = window_at(&[(0, 1)], 1);
        assert!(access_cost_window(&ctx, &[], &w).is_infinite());
        let empty = EpochWindow::new();
        assert_eq!(access_cost_window(&ctx, &[], &empty), 0.0);
    }

    #[test]
    fn best_candidate_migrates_toward_demand() {
        let f = Fixture::line(20);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(0)], &ctx.params);
        // heavy demand at node 19 for many rounds: migration (β=40) pays off
        let w = window_at(&[(19, 10)], 5);
        let (target, _) = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
        assert_eq!(target, vec![n(19)]);
    }

    #[test]
    fn best_candidate_stays_for_trivial_demand() {
        let f = Fixture::line(20);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(10)], &ctx.params);
        let w = window_at(&[(10, 1)], 1);
        let (target, score) = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
        assert_eq!(target, vec![n(10)]);
        // score = access 0 + running 2.5
        assert!((score - 2.5).abs() < 1e-9);
    }

    #[test]
    fn best_candidate_adds_server_for_split_demand() {
        let f = Fixture::line(40);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(0)], &ctx.params);
        // two heavy clusters at the ends over many rounds: creating a second
        // server at 39 (cost 400) beats hauling 10 requests 39 hops for 10
        // rounds (3900).
        let w = window_at(&[(0, 10), (39, 10)], 10);
        let (target, _) = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
        assert_eq!(target, vec![n(0), n(39)]);
    }

    #[test]
    fn no_add_options_respected() {
        let f = Fixture::line(40);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(0)], &ctx.params);
        let w = window_at(&[(0, 10), (39, 10)], 10);
        let (target, _) = best_candidate(&ctx, &fleet, &w, CandidateOptions::no_add());
        assert_eq!(target.len(), 1, "no_add must not grow the fleet");
    }

    #[test]
    fn deactivate_wins_when_demand_collapses() {
        let f = Fixture::line(10);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(0), n(9)], &ctx.params);
        // all demand at node 0: the second server only costs Ra
        let w = window_at(&[(0, 3)], 4);
        let (target, _) = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
        assert_eq!(target, vec![n(0)]);
    }

    #[test]
    fn never_drops_last_server() {
        let f = Fixture::line(5);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(2)], &ctx.params);
        let w = window_at(&[], 3); // empty demand
        let (target, _) = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
        assert_eq!(target.len(), 1);
    }

    #[test]
    fn respects_k_budget() {
        let f = Fixture::line(30);
        let params = CostParams {
            max_servers: 1,
            ..CostParams::default()
        };
        let ctx = SimContext::new(&f.g, &f.m, params, LoadModel::None);
        let fleet = Fleet::new(vec![n(0)], &ctx.params);
        let w = window_at(&[(0, 10), (29, 10)], 10);
        let (target, _) = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
        assert!(target.len() <= 1);
    }

    #[test]
    fn analytic_transition_cost_matches_planner() {
        let f = Fixture::line(12);
        for params in [CostParams::default(), CostParams::flipped()] {
            let ctx = SimContext::new(&f.g, &f.m, params, LoadModel::None);
            // fleet with one cached inactive server at node 5
            let mut fleet = Fleet::new(vec![n(0), n(5)], &ctx.params);
            TransitionPlanner::apply(&mut fleet, &[n(0)], &ctx.params);
            assert!(fleet.is_inactive_at(n(5)));

            // Add at the cached node: free
            let analytic = single_change_cost(&ctx, &fleet, ChangeKind::Add(n(5)));
            let planner = TransitionPlanner::price(&fleet, &[n(0), n(5)], &ctx.params);
            assert_eq!(analytic, planner);

            // Add elsewhere: migrate cache (β) or create (c)
            let analytic = single_change_cost(&ctx, &fleet, ChangeKind::Add(n(9)));
            let planner = TransitionPlanner::price(&fleet, &[n(0), n(9)], &ctx.params);
            assert_eq!(analytic, planner);

            // Migrate the active server
            let analytic = single_change_cost(&ctx, &fleet, ChangeKind::Migrate);
            // price from a fleet with no cache: build fresh
            let fresh = Fleet::new(vec![n(0)], &ctx.params);
            let planner = TransitionPlanner::price(&fresh, &[n(9)], &ctx.params);
            assert_eq!(analytic, planner);
        }
    }

    #[test]
    fn quadratic_load_prefers_spreading() {
        let f = Fixture::line(3);
        let ctx = f.ctx(LoadModel::Quadratic);
        let fleet = Fleet::new(vec![n(1)], &ctx.params);
        // 30 requests at the server node each round: quadratic load 900/round.
        // Adding a server at node 0 or 2 halves nothing under nearest
        // routing (all requests at node 1 stay there) — but demand at two
        // origins spreads.
        let w = window_at(&[(0, 15), (2, 15)], 4);
        let (target, _) = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
        assert_eq!(target.len(), 2, "quadratic load should add a server");
    }

    #[test]
    fn best_new_server_position_picks_demand_hotspot() {
        let f = Fixture::line(30);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(0)], &ctx.params);
        let w = window_at(&[(0, 5), (25, 9)], 3);
        let v = best_new_server_position(&ctx, &fleet, &w).unwrap();
        assert_eq!(v, n(25));
    }

    #[test]
    fn best_new_server_position_none_when_full() {
        let f = Fixture::line(2);
        let ctx = f.ctx(LoadModel::None);
        let fleet = Fleet::new(vec![n(0), n(1)], &ctx.params);
        let w = window_at(&[(0, 1)], 1);
        assert_eq!(best_new_server_position(&ctx, &fleet, &w), None);
    }

    #[test]
    fn transposed_scan_matches_naive_rescan_bitwise() {
        let f = Fixture::line(25);
        for load in [LoadModel::None, LoadModel::Linear, LoadModel::Quadratic] {
            let ctx = f.ctx(load);
            let a = [n(2), n(17)];
            let w = window_at(&[(0, 3), (5, 1), (17, 4), (24, 2)], 3);
            let mut index = WindowIndex::new();
            index.rebuild(&ctx, &a, &w);
            let mut counts = Vec::new();
            let candidates: Vec<NodeId> = ctx.graph.nodes().filter(|v| !a.contains(v)).collect();
            let mut scores = Vec::new();
            index.score_all_additions(&ctx, &candidates, &mut scores, &mut counts);
            let mut serial = Vec::new();
            index.score_all_additions_serial(&ctx, &candidates, &mut serial, &mut counts);
            for (j, &v) in candidates.iter().enumerate() {
                let naive = access_cost_window(&ctx, &[a[0], a[1], v], &w);
                let scanned = index.score_addition(&ctx, v, &mut counts);
                assert_eq!(naive.to_bits(), scanned.to_bits(), "v={v:?} load={load:?}");
                assert_eq!(naive.to_bits(), scores[j].to_bits());
                assert_eq!(naive.to_bits(), serial[j].to_bits());
            }
        }
    }

    #[test]
    fn scan_handles_unreachable_origins_bitwise() {
        // Node 2 is an isolated component: every distance to it is ∞, so the
        // naive rescan and the transposed scan must both report ∞ access cost
        // for windows that contain its demand.
        let mut g = flexserve_graph::Graph::new();
        for _ in 0..3 {
            g.add_node(1.0);
        }
        g.add_edge(n(0), n(1), 1.0, flexserve_graph::Bandwidth::T1)
            .unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let w = window_at(&[(1, 2), (2, 5)], 2);
        let mut index = WindowIndex::new();
        index.rebuild(&ctx, &[n(0)], &w);
        let mut counts = Vec::new();
        let naive = access_cost_window(&ctx, &[n(0), n(1)], &w);
        let scanned = index.score_addition(&ctx, n(1), &mut counts);
        assert!(naive.is_infinite());
        assert_eq!(naive.to_bits(), scanned.to_bits());
    }

    #[test]
    fn scored_position_matches_retired_per_candidate_rescan() {
        // Micro-assert for the allocation fix: the transposed
        // `best_new_server_position_scored` returns the exact `(v, cost)`
        // the retired per-candidate `access_cost_window(A ∪ {v})` loop did.
        let f = Fixture::line(30);
        for load in [LoadModel::None, LoadModel::Quadratic] {
            let ctx = f.ctx(load);
            let fleet = Fleet::new(vec![n(0), n(12)], &ctx.params);
            let w = window_at(&[(0, 5), (7, 2), (25, 9)], 3);
            let mut naive: Option<(NodeId, f64)> = None;
            let mut with_v: Vec<NodeId> = fleet.active().to_vec();
            with_v.push(n(0)); // placeholder, replaced per candidate
            for v in ctx.graph.nodes() {
                if fleet.is_active_at(v) {
                    continue;
                }
                *with_v.last_mut().unwrap() = v;
                let cost = access_cost_window(&ctx, &with_v, &w);
                if naive.is_none_or(|(_, c)| cost < c) {
                    naive = Some((v, cost));
                }
            }
            let mut scratch = CandidateScratch::new();
            let scored = best_new_server_position_scored(&ctx, &fleet, &w, &mut scratch);
            let (nv, nc) = naive.unwrap();
            let (sv, sc) = scored.unwrap();
            assert_eq!(nv, sv);
            assert_eq!(nc.to_bits(), sc.to_bits());
        }
    }

    #[test]
    fn best_candidate_with_reuses_scratch_across_epochs() {
        let f = Fixture::line(40);
        let ctx = f.ctx(LoadModel::Linear);
        let fleet = Fleet::new(vec![n(0)], &ctx.params);
        let mut scratch = CandidateScratch::new();
        for rounds in [1usize, 5, 10] {
            let w = window_at(&[(0, 10), (39, 10)], rounds);
            let fresh = best_candidate(&ctx, &fleet, &w, CandidateOptions::all());
            let reused =
                best_candidate_with(&ctx, &fleet, &w, CandidateOptions::all(), &mut scratch);
            assert_eq!(fresh.0, reused.0);
            assert_eq!(fresh.1.to_bits(), reused.1.to_bits());
        }
        // The scratch is a cache, not state: clones start empty.
        assert!(scratch.clone().index.rounds() == 0);
    }
}
