//! # flexserve-core
//!
//! The paper's contribution: online and offline strategies for flexible
//! server allocation and migration.
//!
//! ## Online strategies (§III)
//!
//! * [`onconf::OnConf`] — the configuration-counter algorithm ONCONF:
//!   maintains a counter per configuration and randomly moves among
//!   configurations whose epoch cost is still below `k·c`. Exponential
//!   state space; only for small instances (as in the paper).
//! * [`onbr::OnBr`] — ONBR, the sequential best-response variant: when the
//!   epoch cost reaches a threshold `θ` (fixed `2c` or dynamic `2c/ℓ`), it
//!   switches to the cheapest single-server change (stay / migrate one /
//!   deactivate one / activate-or-create one) w.r.t. the passed epoch.
//! * [`onth::OnTh`] — ONTH, the threshold algorithm with small epochs
//!   (cost `y·β`: stay / migrate one / deactivate one) and large epochs
//!   (`Cost_acc/(k_cur+1) − Cost_run > c`: activate a new server at the
//!   best position of the passed large epoch).
//! * [`sampledconf::SampledConf`] — the §III-A *sampling* speed-up of
//!   ONCONF: only `k` configurations are tracked, one per server count.
//! * [`baseline::StaticStrategy`] — never reconfigures (the online
//!   counterpart of static provisioning).
//!
//! ## Offline strategies (§IV)
//!
//! * [`opt::optimal_plan`] — the optimal offline dynamic program over
//!   time × configurations, with path reconstruction.
//! * [`offbr::OffBr`] / [`offth::OffTh`] — the best-response/threshold
//!   strategies with one-epoch lookahead ("switch to the configuration of
//!   lowest cost in the *upcoming* epoch").
//! * [`offstat::offstat`] — OFFSTAT, the optimal *static* allocation:
//!   greedy placement of `i = 1..k` always-active servers, picking the
//!   cheapest `i` (`k_opt`); [`offstat::OffStatPlacement`] is its
//!   servable form (applied at round 0 through the engine, checkpointable
//!   like any online strategy).
//!
//! All strategies price configuration changes through the shared
//! transition planner of `flexserve-sim`, so costs are directly comparable.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod baseline;
pub mod candidates;
pub mod competitive;
pub mod offbr;
pub mod offstat;
pub mod offth;
pub mod onbr;
pub mod onconf;
pub mod onth;
pub mod opt;
pub mod sampledconf;

pub use baseline::StaticStrategy;
pub use candidates::{
    access_cost_window, best_candidate, best_candidate_with, best_new_server_position,
    best_new_server_position_scored, CandidateOptions, CandidateScratch, EpochWindow, WindowIndex,
};
pub use competitive::competitive_ratio;
pub use offbr::OffBr;
pub use offstat::{offstat, OffStatPlacement, OffStatResult};
pub use offth::OffTh;
pub use onbr::{OnBr, ThresholdMode};
pub use onconf::OnConf;
pub use onth::OnTh;
pub use opt::{optimal_plan, OptResult};
pub use sampledconf::SampledConf;

use flexserve_graph::NodeId;
use flexserve_sim::SimContext;

/// The paper's canonical initial configuration: one server at the network
/// center.
pub fn initial_center(ctx: &SimContext<'_>) -> Vec<NodeId> {
    vec![flexserve_graph::metrics::metrics_from_matrix(ctx.dist).center]
}
