//! OFFSTAT — the optimal static allocation (§V-B).
//!
//! "For a given request sequence σ, OFFSTAT determines the optimal number
//! of servers `k_opt` as follows. For each `i ∈ {1,…,k}`, we compute the
//! cost of the following greedy static configuration for σ: one active
//! server `j ∈ {1,…,i}` after the other is placed greedily at the location
//! which yields the lowest cost for σ, given the already placed servers
//! `{1,…,j−1}`. `k_opt` is defined as the `i` with minimal cost."
//!
//! OFFSTAT is the paper's reference point for "what does a system without
//! allocation/migration flexibility cost" — Figures 12–19 all build on it.
//!
//! Cost of the `i`-server configuration = access cost of the whole trace
//! plus running cost `Ra·i·|trace|` plus creation cost `c·(i−1)` (the
//! first server is the free initial configuration, matching how OPT and
//! the online algorithms start with one free server).

use flexserve_graph::NodeId;
use flexserve_sim::{Fleet, LoadModel, OnlineStrategy, SimContext};
use flexserve_workload::{JsonValue, RoundRequests, Trace};

use crate::candidates::{EpochWindow, WindowIndex};

/// Result of the OFFSTAT computation.
#[derive(Clone, Debug)]
pub struct OffStatResult {
    /// Greedy placement order (first `i` entries = the `i`-server config).
    pub placements: Vec<NodeId>,
    /// Total cost for each `i = 1..=k` (index `i-1`).
    pub cost_curve: Vec<f64>,
    /// The optimal number of servers.
    pub k_opt: usize,
    /// The cost at `k_opt`.
    pub best_cost: f64,
}

impl OffStatResult {
    /// The active set of the optimal static configuration.
    pub fn best_placement(&self) -> &[NodeId] {
        &self.placements[..self.k_opt]
    }
}

/// Runs OFFSTAT over `trace` with up to `ctx.params.max_servers` servers.
///
/// Greedy placement uses an incremental exact evaluation for the `None`
/// and `Linear` load models (per-request cost decomposes as
/// `d(o,s) + 1/ω(s)` under nearest routing); for non-additive load models
/// the greedy picks locations by the linear proxy and the reported cost
/// curve is then evaluated exactly.
pub fn offstat(ctx: &SimContext<'_>, trace: &Trace) -> OffStatResult {
    assert!(!trace.is_empty(), "OFFSTAT: empty trace");
    let k = ctx.params.max_servers.min(ctx.graph.node_count());
    let rounds = trace.len() as f64;

    // Flatten the trace to (origin, cnt) entries (per round; rounds do not
    // interact under additive evaluation, so one flat list suffices for the
    // greedy; exact non-additive evaluation re-walks the trace).
    #[derive(Clone, Copy)]
    struct Entry {
        origin: NodeId,
        cnt: f64,
        /// current best d(o,s) (+ 1/ω(s) for linear) over placed servers
        best: f64,
    }
    let mut entries: Vec<Entry> = Vec::new();
    for round in trace.iter() {
        for &(origin, cnt) in round.counts_slice() {
            entries.push(Entry {
                origin,
                cnt: cnt as f64,
                best: f64::INFINITY,
            });
        }
    }

    let linearish = matches!(ctx.load, LoadModel::None | LoadModel::Linear);
    let metric = |v: NodeId, origin: NodeId| -> f64 {
        let d = ctx.dist.get(origin, v);
        match ctx.load {
            LoadModel::None => d,
            // exact per-request cost under nearest-by-latency routing is
            // d + 1/ω(nearest); using d + 1/ω(v) as the greedy metric is
            // exact when strengths are uniform and a tight proxy otherwise.
            _ => d + 1.0 / ctx.graph.strength(v),
        }
    };

    let mut placements: Vec<NodeId> = Vec::with_capacity(k);
    let mut cost_curve: Vec<f64> = Vec::with_capacity(k);

    // For exact evaluation of non-additive loads: the newest server is
    // scored as a single addition against a window index over the
    // already-placed servers (bit-identical to `access_cost_window` on the
    // full placement, see `WindowIndex`).
    let mut full_window = EpochWindow::new();
    if !linearish {
        for round in trace.iter() {
            full_window.push(round);
        }
    }
    let mut index = WindowIndex::new();
    let mut counts_scratch: Vec<usize> = Vec::new();

    for i in 1..=k {
        // Greedy: pick v minimizing the flat additive cost.
        let mut best_v: Option<NodeId> = None;
        let mut best_total = f64::INFINITY;
        for v in ctx.graph.nodes() {
            if placements.contains(&v) {
                continue;
            }
            let mut total = 0.0;
            for e in &entries {
                total += e.cnt * e.best.min(metric(v, e.origin));
            }
            if total < best_total {
                best_total = total;
                best_v = Some(v);
            }
        }
        let v = best_v.expect("fewer nodes than servers is prevented by k clamp");
        placements.push(v);
        for e in &mut entries {
            e.best = e.best.min(metric(v, e.origin));
        }

        let access = if linearish {
            best_total
        } else {
            index.rebuild(ctx, &placements[..i - 1], &full_window);
            index.score_addition(ctx, v, &mut counts_scratch)
        };
        let running = ctx.params.run_active * i as f64 * rounds;
        let creation = ctx.params.creation_c * (i as f64 - 1.0);
        cost_curve.push(access + running + creation);
    }

    let (k_opt_idx, &best_cost) = cost_curve
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .expect("k >= 1");

    OffStatResult {
        placements,
        cost_curve,
        k_opt: k_opt_idx + 1,
        best_cost,
    }
}

/// OFFSTAT as a servable strategy: the precomputed optimal static
/// placement, applied once at round 0 and never changed.
///
/// This is the streaming/serving form of [`offstat`] — where the batch
/// form reports one scalar optimum, this wrapper actually *plays* the
/// static configuration through the engine (paying real creation and
/// access costs round by round), so OFFSTAT can be driven by a
/// [`SimSession`](flexserve_sim::SimSession) and checkpointed like any
/// online strategy.
#[derive(Clone, Debug)]
pub struct OffStatPlacement {
    target: Vec<NodeId>,
    applied: bool,
}

impl OffStatPlacement {
    /// Wraps an explicit placement (e.g. [`OffStatResult::best_placement`]).
    pub fn new(target: Vec<NodeId>) -> Self {
        OffStatPlacement {
            target,
            applied: false,
        }
    }

    /// Computes the optimal static placement for `trace` and wraps it.
    pub fn from_trace(ctx: &SimContext<'_>, trace: &Trace) -> Self {
        Self::new(offstat(ctx, trace).best_placement().to_vec())
    }

    /// The placement this strategy applies at round 0.
    pub fn target(&self) -> &[NodeId] {
        &self.target
    }
}

impl OnlineStrategy for OffStatPlacement {
    fn name(&self) -> String {
        "OFFSTAT".to_string()
    }

    fn decide(
        &mut self,
        _ctx: &SimContext<'_>,
        _t: u64,
        _requests: &RoundRequests,
        _access_cost: f64,
        _fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        if self.applied {
            None
        } else {
            self.applied = true;
            Some(self.target.clone())
        }
    }

    fn export_state(&self) -> Option<JsonValue> {
        Some(JsonValue::Obj(vec![
            ("applied".into(), JsonValue::from(self.applied)),
            (
                "target".into(),
                JsonValue::Arr(
                    self.target
                        .iter()
                        .map(|n| JsonValue::from(n.index()))
                        .collect(),
                ),
            ),
        ]))
    }

    /// Restores both fields — the placement is part of the checkpoint, so
    /// resuming does not require recomputing [`offstat`] over the
    /// original trace.
    fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
        self.applied = state
            .get("applied")
            .and_then(JsonValue::as_bool)
            .ok_or("OFFSTAT: missing \"applied\"")?;
        self.target = state
            .get("target")
            .and_then(JsonValue::as_array)
            .ok_or("OFFSTAT: missing \"target\"")?
            .iter()
            .map(|n| n.as_usize().map(NodeId::new))
            .collect::<Option<Vec<_>>>()
            .ok_or("OFFSTAT: bad target node id")?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_sim::CostParams;
    use flexserve_workload::RoundRequests;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self, k: usize, load: LoadModel) -> SimContext<'_> {
            SimContext::new(
                &self.g,
                &self.m,
                CostParams::default().with_max_servers(k),
                load,
            )
        }
    }

    #[test]
    fn single_hotspot_needs_one_server_on_it() {
        let fx = Fx::new(9);
        let ctx = fx.ctx(4, LoadModel::None);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(7); 10]); 20]);
        let res = offstat(&ctx, &trace);
        assert_eq!(res.k_opt, 1);
        assert_eq!(res.best_placement(), &[n(7)]);
        // cost = running only
        assert!((res.best_cost - 2.5 * 20.0).abs() < 1e-9);
    }

    #[test]
    fn split_demand_prefers_two_servers() {
        let fx = Fx::new(41);
        let ctx = fx.ctx(4, LoadModel::None);
        let mut batch = RoundRequests::empty();
        batch.push_many(n(0), 10);
        batch.push_many(n(40), 10);
        // long trace so 2nd server's creation (400) + running amortizes
        let trace = Trace::new(vec![batch; 100]);
        let res = offstat(&ctx, &trace);
        assert_eq!(res.k_opt, 2);
        let mut placed = res.best_placement().to_vec();
        placed.sort();
        assert_eq!(placed, vec![n(0), n(40)]);
    }

    #[test]
    fn cost_curve_matches_definition() {
        let fx = Fx::new(10);
        let ctx = fx.ctx(3, LoadModel::None);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(0), n(9)]); 10]);
        let res = offstat(&ctx, &trace);
        assert_eq!(res.cost_curve.len(), 3);
        // curve at k_opt equals best_cost
        assert_eq!(res.cost_curve[res.k_opt - 1], res.best_cost);
        // all other points are >= best
        for &c in &res.cost_curve {
            assert!(c >= res.best_cost - 1e-12);
        }
    }

    #[test]
    fn k_clamped_by_node_count() {
        let fx = Fx::new(3);
        let ctx = fx.ctx(10, LoadModel::None);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(1)]); 5]);
        let res = offstat(&ctx, &trace);
        assert!(res.placements.len() <= 3);
    }

    #[test]
    fn linear_curve_is_exact() {
        // verify the incremental evaluation against direct routing
        let fx = Fx::new(12);
        let ctx = fx.ctx(3, LoadModel::Linear);
        let mut batch = RoundRequests::empty();
        batch.push_many(n(1), 4);
        batch.push_many(n(10), 2);
        let trace = Trace::new(vec![batch.clone(); 7]);
        let res = offstat(&ctx, &trace);
        for i in 1..=3usize {
            let servers = &res.placements[..i];
            let direct: f64 = trace
                .iter()
                .map(|r| ctx.access_cost(servers, r))
                .sum::<f64>()
                + 2.5 * i as f64 * 7.0
                + 400.0 * (i as f64 - 1.0);
            assert!(
                (direct - res.cost_curve[i - 1]).abs() < 1e-6,
                "i={i}: {direct} vs {}",
                res.cost_curve[i - 1]
            );
        }
    }

    #[test]
    fn quadratic_load_spreads_servers() {
        let fx = Fx::new(5);
        let ctx = fx.ctx(4, LoadModel::Quadratic);
        // heavy single-origin demand: quadratic load can't be split by
        // nearest routing from one origin, but two origins can.
        let mut batch = RoundRequests::empty();
        batch.push_many(n(1), 12);
        batch.push_many(n(3), 12);
        let trace = Trace::new(vec![batch; 50]);
        let res = offstat(&ctx, &trace);
        assert!(res.k_opt >= 2, "quadratic load should favor >= 2 servers");
    }

    #[test]
    #[should_panic(expected = "empty trace")]
    fn refuses_empty_trace() {
        let fx = Fx::new(3);
        let ctx = fx.ctx(2, LoadModel::None);
        offstat(&ctx, &Trace::default());
    }

    #[test]
    fn placement_wrapper_plays_the_static_config() {
        let fx = Fx::new(9);
        let ctx = fx.ctx(4, LoadModel::None);
        let trace = Trace::new(vec![RoundRequests::new(vec![n(7); 10]); 20]);
        let mut strat = OffStatPlacement::from_trace(&ctx, &trace);
        assert_eq!(strat.target(), &[n(7)]);
        assert_eq!(strat.name(), "OFFSTAT");
        let rec = flexserve_sim::run_online(&ctx, &trace, &mut strat, vec![n(0)]);
        // moved once at round 0, then static forever
        assert_eq!(rec.rounds[0].costs.migration, 40.0);
        let later: f64 = rec.rounds[1..]
            .iter()
            .map(|r| r.costs.migration + r.costs.creation)
            .sum();
        assert_eq!(later, 0.0);
    }

    #[test]
    fn placement_wrapper_state_round_trips() {
        let mut strat = OffStatPlacement::new(vec![n(2), n(5)]);
        strat.applied = true;
        let state = strat.export_state().unwrap();
        let mut fresh = OffStatPlacement::new(Vec::new());
        fresh.import_state(&state).unwrap();
        assert!(fresh.applied);
        assert_eq!(fresh.target(), &[n(2), n(5)]);
        assert!(fresh.import_state(&JsonValue::Null).is_err());
    }
}
