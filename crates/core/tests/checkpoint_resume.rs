//! Checkpoint/restore determinism: a run snapshotted at round T/2,
//! serialized to checkpoint JSON, and resumed into freshly constructed
//! strategy instances must be **bit-identical** to an uninterrupted run —
//! for ONTH, ONBR (both threshold modes), OFFSTAT and the static
//! baseline. This is the contract `flexserve serve` relies on when a
//! daemon is restarted from a checkpoint file.

use flexserve_core::{OffStatPlacement, OnBr, OnTh, StaticStrategy};
use flexserve_graph::gen::{erdos_renyi, GenConfig};
use flexserve_graph::{DistanceMatrix, Graph, NodeId};
use flexserve_sim::{
    run_online, CostParams, LoadModel, OnlineStrategy, RunRecord, SessionSnapshot, SimContext,
    SimSession,
};
use flexserve_workload::{record, CommuterScenario, LoadVariant, Trace};

use rand::rngs::SmallRng;
use rand::SeedableRng;

const ROUNDS: u64 = 120;

struct Fx {
    graph: Graph,
    matrix: DistanceMatrix,
}

impl Fx {
    fn new() -> Self {
        let mut rng = SmallRng::seed_from_u64(42);
        let graph = erdos_renyi(60, 0.05, &GenConfig::default(), &mut rng).unwrap();
        let matrix = DistanceMatrix::build(&graph);
        Fx { graph, matrix }
    }

    fn ctx(&self) -> SimContext<'_> {
        SimContext::new(
            &self.graph,
            &self.matrix,
            CostParams::default().with_max_servers(4),
            LoadModel::Linear,
        )
    }

    fn trace(&self) -> Trace {
        let mut scenario =
            CommuterScenario::with_matrix(&self.graph, &self.matrix, 8, 5, LoadVariant::Dynamic, 7);
        record(&mut scenario, ROUNDS)
    }
}

fn assert_bit_identical(label: &str, a: &RunRecord, b: &RunRecord) {
    assert_eq!(a.len(), b.len(), "{label}: round count");
    for (x, y) in a.rounds.iter().zip(&b.rounds) {
        assert_eq!(x.t, y.t, "{label}: round index");
        for (cx, cy, part) in [
            (x.costs.access, y.costs.access, "access"),
            (x.costs.running, y.costs.running, "running"),
            (x.costs.migration, y.costs.migration, "migration"),
            (x.costs.creation, y.costs.creation, "creation"),
        ] {
            assert_eq!(
                cx.to_bits(),
                cy.to_bits(),
                "{label}: {part} cost differs at t={} ({cx} vs {cy})",
                x.t
            );
        }
        assert_eq!(x.active_servers, y.active_servers, "{label}: t={}", x.t);
        assert_eq!(x.inactive_servers, y.inactive_servers, "{label}: t={}", x.t);
        assert_eq!(x.requests, y.requests, "{label}: t={}", x.t);
    }
}

/// Runs `make()`'s strategy uninterrupted, then again with a
/// snapshot → JSON → restore cycle at round `ROUNDS/2` into a *fresh*
/// `make()` instance, and asserts the two logs match bit for bit.
fn check_resume<S, F>(label: &str, fx: &Fx, trace: &Trace, make: F)
where
    S: OnlineStrategy,
    F: Fn() -> S,
{
    let ctx = fx.ctx();
    let initial = vec![NodeId::new(0)];

    let uninterrupted = run_online(&ctx, trace, &mut make(), initial.clone());

    let half = (ROUNDS / 2) as usize;
    let mut session = SimSession::new(ctx, make(), initial);
    let mut resumed = RunRecord::default();
    for round in trace.iter().take(half) {
        resumed.rounds.push(session.step(round));
    }

    // Serialize exactly as the serve daemon writes the checkpoint file…
    let text = session.snapshot().expect("snapshot").to_json();
    drop(session);
    // …and restart from the bytes alone.
    let snapshot = SessionSnapshot::from_json(&text).expect("parse checkpoint");
    let mut session = SimSession::resume(ctx, make(), &snapshot).expect("resume");
    assert_eq!(session.t(), half as u64, "{label}: resumed position");
    for round in trace.iter().skip(half) {
        resumed.rounds.push(session.step(round));
    }

    assert_bit_identical(label, &uninterrupted, &resumed);
    // The strategies did real work — otherwise this test proves nothing.
    assert!(
        uninterrupted.total().total() > 0.0,
        "{label}: trivial run, test is vacuous"
    );
}

#[test]
fn onth_resumes_bit_identically() {
    let fx = Fx::new();
    let trace = fx.trace();
    check_resume("ONTH", &fx, &trace, OnTh::new);
    let reconf = run_online(&fx.ctx(), &trace, &mut OnTh::new(), vec![NodeId::new(0)])
        .total()
        .migration;
    assert!(reconf > 0.0, "ONTH must actually reconfigure in this cell");
}

#[test]
fn onbr_fixed_resumes_bit_identically() {
    let fx = Fx::new();
    let trace = fx.trace();
    check_resume("ONBR-fixed", &fx, &trace, || OnBr::fixed(&fx.ctx()));
}

#[test]
fn onbr_dyn_resumes_bit_identically() {
    let fx = Fx::new();
    let trace = fx.trace();
    check_resume("ONBR-dyn", &fx, &trace, || OnBr::dynamic(&fx.ctx()));
}

#[test]
fn offstat_resumes_bit_identically() {
    let fx = Fx::new();
    let trace = fx.trace();
    let ctx = fx.ctx();
    // The placement is derived from the trace once; resume restores it
    // from the checkpoint, so the fresh instances start empty.
    let placement = OffStatPlacement::from_trace(&ctx, &trace).target().to_vec();
    assert!(!placement.is_empty());
    check_resume("OFFSTAT", &fx, &trace, || {
        OffStatPlacement::new(placement.clone())
    });
}

#[test]
fn static_baseline_resumes_bit_identically() {
    let fx = Fx::new();
    let trace = fx.trace();
    check_resume("STATIC", &fx, &trace, StaticStrategy::new);
}

#[test]
fn v1_checkpoints_resume_bit_identically() {
    // Files written before the v2 metrics bump must keep restoring: a v1
    // document is byte-for-byte a v2 document with the old format tag and
    // no metrics block, and the simulation state it carries is identical.
    let fx = Fx::new();
    let trace = fx.trace();
    let ctx = fx.ctx();
    let initial = vec![NodeId::new(0)];

    let uninterrupted = run_online(&ctx, &trace, &mut OnTh::new(), initial.clone());

    let half = (ROUNDS / 2) as usize;
    let mut session = SimSession::new(ctx, OnTh::new(), initial);
    let mut resumed = RunRecord::default();
    for round in trace.iter().take(half) {
        resumed.rounds.push(session.step(round));
    }
    let text = session.snapshot().expect("snapshot").to_json().replace(
        flexserve_sim::CHECKPOINT_FORMAT,
        flexserve_sim::CHECKPOINT_FORMAT_V1,
    );
    assert!(text.contains("flexserve-checkpoint-v1"), "{text}");
    assert!(!text.contains("\"metrics\""), "{text}");
    drop(session);

    let snapshot = SessionSnapshot::from_json(&text).expect("parse v1 checkpoint");
    assert!(snapshot.metrics.is_none());
    let mut session = SimSession::resume(ctx, OnTh::new(), &snapshot).expect("resume from v1");
    for round in trace.iter().skip(half) {
        resumed.rounds.push(session.step(round));
    }
    assert_bit_identical("ONTH-v1", &uninterrupted, &resumed);
}

#[test]
fn snapshot_rejects_import_into_mismatched_construction() {
    let fx = Fx::new();
    let ctx = fx.ctx();
    let trace = fx.trace();
    let mut session = SimSession::new(ctx, OnTh::with_y(2.0), vec![NodeId::new(0)]);
    for round in trace.iter().take(10) {
        session.step(round);
    }
    let snap = session.snapshot().unwrap();
    // Same strategy name, different construction parameter: refused.
    let err = SimSession::resume(ctx, OnTh::with_y(3.0), &snap).unwrap_err();
    assert!(err.contains("y="), "{err}");
}
