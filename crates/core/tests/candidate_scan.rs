//! Property tests pinning the transposed candidate scan **bitwise** to the
//! naive per-candidate rescan.
//!
//! Invariants checked, at whatever `RAYON_NUM_THREADS` the harness sets
//! (CI runs the suite at 1 and 4):
//! * `WindowIndex::score_addition(v)` == `access_cost_window(A ∪ {v})`
//!   `to_bits`-equal on arbitrary random graphs, windows, active sets and
//!   load models — including failed links (`set_edge_latency(∞)`), where
//!   both sides must report the same `∞`;
//! * the rayon-parallel `score_all_additions` == the serial reference ==
//!   the naive rescan, bitwise;
//! * `best_new_server_position_scored` returns the exact `(v, cost)` of
//!   the retired per-candidate loop;
//! * the window-scoring plane (∞ for unreachable demand) stays distinct
//!   from the serving plane's `UNREACHABLE_PENALTY` clamp, and the scan
//!   follows the former.

use proptest::prelude::*;

use flexserve_core::{
    access_cost_window, best_new_server_position_scored, CandidateScratch, EpochWindow, WindowIndex,
};
use flexserve_graph::{DistanceMatrix, Graph, NodeId};
use flexserve_sim::{CostParams, Fleet, LoadModel, SimContext, UNREACHABLE_PENALTY};
use flexserve_workload::RoundRequests;

/// Builds a random graph from proptest-chosen edges; roughly one edge in
/// seven (`fail == 0`) is set to infinite latency afterwards (the
/// fault-injection convention), which can disconnect the graph.
fn graph_from_edges(n: usize, edges: &[(usize, usize, f64, usize)]) -> Graph {
    let mut g = Graph::new();
    for _ in 0..n {
        g.add_node(1.0);
    }
    for &(a, b, lat, fail) in edges {
        let (a, b) = (a % n, b % n);
        if a == b {
            continue;
        }
        let (a, b) = (NodeId::new(a), NodeId::new(b));
        let _ = g.add_edge(a, b, lat, flexserve_graph::Bandwidth::T1);
        if fail == 0 {
            let _ = g.set_edge_latency(a, b, f64::INFINITY);
        }
    }
    g
}

fn load_model(pick: usize) -> LoadModel {
    match pick {
        0 => LoadModel::None,
        1 => LoadModel::Linear,
        2 => LoadModel::Quadratic,
        _ => LoadModel::Power(1.5),
    }
}

fn window_from(n: usize, rounds: &[Vec<(usize, usize)>]) -> EpochWindow {
    let mut w = EpochWindow::new();
    for round in rounds {
        let mut batch = RoundRequests::empty();
        for &(origin, cnt) in round {
            batch.push_many(NodeId::new(origin % n), cnt);
        }
        w.push(&batch);
    }
    w
}

/// Deduped active set (at least one server), in first-mention order like
/// a real fleet's.
fn active_from(n: usize, picks: &[usize]) -> Vec<NodeId> {
    let mut active: Vec<NodeId> = Vec::new();
    for &p in picks {
        let v = NodeId::new(p % n);
        if !active.contains(&v) {
            active.push(v);
        }
    }
    if active.is_empty() {
        active.push(NodeId::new(0));
    }
    active
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_matches_naive_rescan_bitwise(
        n in 3usize..16,
        edges in prop::collection::vec(
            (0usize..16, 0usize..16, 0.5f64..50.0, 0usize..7), 2..40),
        rounds in prop::collection::vec(
            prop::collection::vec((0usize..16, 1usize..6), 0..5), 1..4),
        picks in prop::collection::vec(0usize..16, 1..4),
        lm in 0usize..4,
    ) {
        let g = graph_from_edges(n, &edges);
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), load_model(lm));
        let active = active_from(n, &picks);
        let w = window_from(n, &rounds);

        let mut index = WindowIndex::new();
        index.rebuild(&ctx, &active, &w);
        let candidates: Vec<NodeId> =
            g.nodes().filter(|v| !active.contains(v)).collect();
        let mut scores = Vec::new();
        let mut serial = Vec::new();
        let mut counts = Vec::new();
        index.score_all_additions(&ctx, &candidates, &mut scores, &mut counts);
        index.score_all_additions_serial(&ctx, &candidates, &mut serial, &mut counts);

        let mut with_v = active.clone();
        with_v.push(NodeId::new(0)); // placeholder, replaced per candidate
        for (j, &v) in candidates.iter().enumerate() {
            *with_v.last_mut().unwrap() = v;
            let naive = access_cost_window(&ctx, &with_v, &w);
            let single = index.score_addition(&ctx, v, &mut counts);
            prop_assert_eq!(naive.to_bits(), single.to_bits(),
                "score_addition: v={:?} naive={} scan={}", v, naive, single);
            prop_assert_eq!(naive.to_bits(), scores[j].to_bits(),
                "score_all_additions: v={:?}", v);
            prop_assert_eq!(naive.to_bits(), serial[j].to_bits(),
                "score_all_additions_serial: v={:?}", v);
        }
    }

    #[test]
    fn scored_position_matches_naive_loop(
        n in 3usize..14,
        edges in prop::collection::vec(
            (0usize..14, 0usize..14, 0.5f64..50.0, 0usize..9), 2..30),
        rounds in prop::collection::vec(
            prop::collection::vec((0usize..14, 1usize..6), 0..5), 1..3),
        picks in prop::collection::vec(0usize..14, 1..3),
        lm in 0usize..4,
    ) {
        let g = graph_from_edges(n, &edges);
        let m = DistanceMatrix::build(&g);
        let params = CostParams::default().with_max_servers(n);
        let ctx = SimContext::new(&g, &m, params, load_model(lm));
        let active = active_from(n, &picks);
        let fleet = Fleet::new(active.clone(), &ctx.params);
        let w = window_from(n, &rounds);

        // The retired implementation, verbatim.
        let mut naive: Option<(NodeId, f64)> = None;
        let mut with_v = fleet.active().to_vec();
        with_v.push(NodeId::new(0));
        for v in g.nodes() {
            if fleet.is_active_at(v) {
                continue;
            }
            *with_v.last_mut().unwrap() = v;
            let cost = access_cost_window(&ctx, &with_v, &w);
            if naive.is_none_or(|(_, c)| cost < c) {
                naive = Some((v, cost));
            }
        }

        let mut scratch = CandidateScratch::new();
        let scored = best_new_server_position_scored(&ctx, &fleet, &w, &mut scratch);
        match (naive, scored) {
            (Some((nv, nc)), Some((sv, sc))) => {
                prop_assert_eq!(nv, sv);
                prop_assert_eq!(nc.to_bits(), sc.to_bits());
            }
            (a, b) => prop_assert!(a.is_none() && b.is_none()),
        }
    }
}

/// The two planes treat unreachable demand differently by design: window
/// scoring (placement plane) propagates `∞`, the serving plane clamps each
/// unreachable request at [`UNREACHABLE_PENALTY`]. The scan must follow
/// the former bitwise while the latter stays finite.
#[test]
fn unreachable_demand_is_infinite_here_but_clamped_when_serving() {
    let mut g = Graph::new();
    for _ in 0..4 {
        g.add_node(1.0);
    }
    g.add_edge(
        NodeId::new(0),
        NodeId::new(1),
        1.0,
        flexserve_graph::Bandwidth::T1,
    )
    .unwrap();
    g.add_edge(
        NodeId::new(2),
        NodeId::new(3),
        1.0,
        flexserve_graph::Bandwidth::T1,
    )
    .unwrap();
    // Nodes {2,3} are a separate component from {0,1}.
    let m = DistanceMatrix::build(&g);
    let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);

    let mut batch = RoundRequests::empty();
    batch.push_many(NodeId::new(1), 2);
    batch.push_many(NodeId::new(3), 5);
    let mut w = EpochWindow::new();
    w.push(&batch);

    let active = [NodeId::new(0)];
    let mut index = WindowIndex::new();
    index.rebuild(&ctx, &active, &w);
    let mut counts = Vec::new();
    let naive = access_cost_window(&ctx, &[NodeId::new(0), NodeId::new(1)], &w);
    let scanned = index.score_addition(&ctx, NodeId::new(1), &mut counts);
    assert!(naive.is_infinite(), "placement plane propagates ∞");
    assert_eq!(naive.to_bits(), scanned.to_bits());

    // The serving plane charges the same round a finite clamped penalty.
    let served = ctx.access_cost(&[NodeId::new(0), NodeId::new(1)], &batch);
    assert!(served.is_finite());
    assert!(served >= 5.0 * UNREACHABLE_PENALTY);
}
