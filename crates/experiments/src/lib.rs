//! # flexserve-experiments
//!
//! The experiment harness that regenerates every figure and table of the
//! paper's evaluation (§V). One binary per figure lives in `src/bin/`; this
//! library holds the shared machinery:
//!
//! * [`setup`] — substrate/scenario/context builders matching the paper's
//!   parameters (Erdős–Rényi p=1%, T1/T2 bandwidths, β=40/c=400, …),
//! * [`runner`] — strategy dispatch and seed-parallel averaging,
//! * [`output`] — aligned-table stdout reporting plus CSV files under
//!   `results/`.
//!
//! Every binary prints the series the paper plots and records the same
//! numbers as CSV, which `EXPERIMENTS.md` summarizes against the paper's
//! qualitative claims.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod figures;
pub mod output;
pub mod runner;
pub mod setup;

pub use output::{write_csv, Table};
pub use runner::{average, average_serial, run_algorithm, Algorithm, SeedSummary};
pub use setup::{build_context_graph, make_scenario, paper_t_for, ExperimentEnv, ScenarioKind};
