//! # flexserve-experiments
//!
//! The experiment harness that regenerates every figure and table of the
//! paper's evaluation (§V), driven by the single `flexserve` CLI
//! (`cargo run --release -p flexserve-experiments --bin flexserve -- list`).
//! This library holds the machinery:
//!
//! * [`spec`] — declarative [`TopologySpec`] /
//!   [`WorkloadSpec`] /
//!   [`StrategySpec`] /
//!   [`CellSpec`]: every experiment axis as parseable data,
//! * [`registry`] — the name → figure/topology/workload/strategy catalogs
//!   behind `flexserve list` and `flexserve run`,
//! * [`cache`] — the process-wide distance-matrix cache keyed by
//!   `(topology spec, seed)` that de-duplicates APSP work across cells,
//! * [`traces`] — its demand-plane sibling: the process-wide recorded
//!   [`RoundTrace`](flexserve_workload::RoundTrace) cache that lets every
//!   strategy of a figure/sweep evaluate against one shared demand
//!   materialization,
//! * [`manifest`] — the `results/manifest.json` provenance record (spec,
//!   seeds, git describe, cache counters for every artifact),
//! * [`setup`] — substrate/scenario/context builders matching the paper's
//!   parameters (Erdős–Rényi p=1%, T1/T2 bandwidths, β=40/c=400, …),
//! * [`figures`] — one pipeline function per paper figure/table,
//! * [`runner`] — strategy dispatch and seed-parallel averaging,
//! * [`serve`] — the `flexserve serve` daemon: a concurrent multi-session
//!   streaming placement service (a `SessionManager` of per-session actor
//!   threads behind a worker-pool HTTP front end) with per-session
//!   checkpoint/restore, documented in `docs/SERVING.md`,
//! * [`output`] — aligned-table stdout reporting plus CSV files under
//!   `results/` (override with `FLEXSERVE_RESULTS_DIR`).
//!
//! Every figure prints the series the paper plots and records the same
//! numbers as CSV; `docs/FIGURES.md` maps each figure to its registry name
//! and output file.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod cache;
pub mod figures;
pub mod manifest;
pub mod output;
pub mod registry;
pub mod runner;
pub mod serve;
pub mod setup;
pub mod spec;
pub mod traces;

pub use cache::{CacheStats, DistCache};
pub use manifest::{Manifest, ManifestEntry};
pub use output::{write_csv, Table};
pub use runner::{
    average, average_multi, average_serial, run_algorithm, run_algorithms, Algorithm, SeedSummary,
};
pub use setup::{build_context_graph, make_scenario, paper_t_for, ExperimentEnv, ScenarioKind};
pub use spec::{CellBuilder, CellSpec, StrategySpec, TopologySpec, WorkloadSpec};
pub use traces::{clear_global_caches, TraceCache, TraceKey};
