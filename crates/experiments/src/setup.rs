//! Substrate, scenario and context builders mirroring the paper's set-up
//! (§V-A): Erdős–Rényi random graphs with 1% connection probability and
//! random T1/T2 bandwidths; commuter and time-zone demand; β=40, c=400
//! (flipped to β=400, c=40 for the migration-useless regime).

use std::sync::Arc;

use flexserve_graph::{DistanceMatrix, Graph};
use flexserve_sim::{CostParams, LoadModel, SimContext};
use flexserve_workload::{CommuterScenario, LoadVariant, Scenario, TimeZonesScenario, Trace};

use crate::cache::DistCache;
use crate::spec::TopologySpec;
use crate::traces::{TraceCache, TraceKey};

/// A substrate and its distance matrix, shared by `Arc` so a
/// [`SimContext`] can borrow both and many runs (and cache entries) can
/// share one APSP computation.
///
/// All seeded constructors go through the process-wide
/// [`DistCache`]: requesting the same
/// `(topology, seed)` twice returns the *same* graph and matrix instead of
/// recomputing the all-pairs shortest paths — the dominant redundant cost
/// when a figure evaluates several algorithms or workloads on one
/// substrate. Cached or fresh, the contents are bit-identical, so results
/// never depend on cache state.
#[derive(Clone)]
pub struct ExperimentEnv {
    /// The substrate graph.
    pub graph: Arc<Graph>,
    /// Its all-pairs shortest-path matrix.
    pub matrix: Arc<DistanceMatrix>,
}

impl ExperimentEnv {
    /// Builds (or fetches from the cache) the substrate a
    /// [`TopologySpec`] describes for `seed`.
    pub fn from_spec(spec: &TopologySpec, seed: u64) -> Result<Self, String> {
        // Seed-insensitive topologies (as7018, rocketfuel, unit-line)
        // normalize to one cache entry instead of an identical build per
        // seed.
        let seed = if spec.is_seeded() { seed } else { 0 };
        DistCache::global().get_or_build(&spec.to_string(), seed, || spec.build(seed))
    }

    /// Erdős–Rényi substrate with the paper's 1% connection probability.
    pub fn erdos_renyi(n: usize, seed: u64) -> Self {
        Self::from_spec(&TopologySpec::ErdosRenyi { n }, seed).expect("valid ER parameters")
    }

    /// Unit-latency line substrate (tests and deterministic examples).
    pub fn line(n: usize) -> Self {
        Self::from_spec(&TopologySpec::UnitLine { n }, 0).expect("n >= 1")
    }

    /// Line substrate with the same random latency (1–10 ms) and T1/T2
    /// bandwidth conventions as the Erdős–Rényi substrates — the topology
    /// the OPT experiments run on ("to simulate OPT, we constrain
    /// ourselves to line graphs"; link properties random as elsewhere).
    pub fn random_line(n: usize, seed: u64) -> Self {
        Self::from_spec(&TopologySpec::Line { n }, seed).expect("n >= 1")
    }

    /// Wraps a prebuilt graph (e.g. the Rocketfuel-like AS-7018). Not
    /// cached: the caller owns the graph's provenance.
    pub fn from_graph(graph: Graph) -> Self {
        let matrix = DistanceMatrix::build(&graph);
        ExperimentEnv {
            graph: Arc::new(graph),
            matrix: Arc::new(matrix),
        }
    }

    /// A [`SimContext`] over this environment.
    pub fn context(&self, params: CostParams, load: LoadModel) -> SimContext<'_> {
        SimContext::new(&self.graph, &self.matrix, params, load)
    }
}

/// Builds an [`ExperimentEnv`] and context parameters in one call.
pub fn build_context_graph(n: usize, seed: u64) -> ExperimentEnv {
    ExperimentEnv::erdos_renyi(n, seed)
}

/// The three demand scenarios of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Commuter scenario, dynamic load (total volume varies over the day).
    CommuterDynamic,
    /// Commuter scenario, static load (total fixed to `2^{T/2}`).
    CommuterStatic,
    /// Time-zones scenario with `p = 50%` hot traffic.
    TimeZones,
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioKind::CommuterDynamic => write!(f, "commuter-dynamic"),
            ScenarioKind::CommuterStatic => write!(f, "commuter-static"),
            ScenarioKind::TimeZones => write!(f, "time-zones"),
        }
    }
}

impl ScenarioKind {
    /// The canonical workload spec string of this scenario as
    /// [`make_scenario`] instantiates it — the demand half of a
    /// [`TraceKey`]. Matches the
    /// [`WorkloadSpec`](crate::spec::WorkloadSpec) grammar so figure
    /// pipelines and `CellSpec::run` share cache entries when they share
    /// demand.
    pub fn workload_str(self, requests_per_round: usize) -> String {
        match self {
            ScenarioKind::CommuterDynamic => "commuter-dynamic".to_string(),
            ScenarioKind::CommuterStatic => "commuter-static".to_string(),
            ScenarioKind::TimeZones => format!("time-zones:p=50,req={requests_per_round}"),
        }
    }
}

/// Requests per round used by the time-zones scenario on mid-size
/// substrates (docs/DESIGN.md §5: the paper leaves this unspecified; 50 keeps
/// volumes comparable to the commuter peaks).
pub const TIME_ZONES_REQUESTS_PER_ROUND: usize = 50;

/// The paper's scaling of `T` with network size (matches the explicit
/// pairs n=1000→14, 500→12, 200→10; see docs/DESIGN.md §5).
pub fn paper_t_for(n: usize) -> u32 {
    CommuterScenario::t_for_network_size(n)
}

/// Instantiates a scenario with the paper's parameters.
///
/// * `t_periods` — the `T` parameter (periods per day),
/// * `lambda` — rounds per period (`λ`, the sweeps' x-axis),
/// * `requests_per_round` — only used by the time-zones scenario.
pub fn make_scenario(
    kind: ScenarioKind,
    env: &ExperimentEnv,
    t_periods: u32,
    lambda: u64,
    requests_per_round: usize,
    seed: u64,
) -> Box<dyn Scenario> {
    match kind {
        ScenarioKind::CommuterDynamic => Box::new(CommuterScenario::with_matrix(
            &env.graph,
            &env.matrix,
            t_periods,
            lambda,
            LoadVariant::Dynamic,
            seed,
        )),
        ScenarioKind::CommuterStatic => Box::new(CommuterScenario::with_matrix(
            &env.graph,
            &env.matrix,
            t_periods,
            lambda,
            LoadVariant::Static,
            seed,
        )),
        ScenarioKind::TimeZones => Box::new(TimeZonesScenario::new(
            &env.graph,
            t_periods,
            lambda,
            0.5,
            requests_per_round,
            seed,
        )),
    }
}

/// Records `rounds` rounds of a scenario **through the process-wide
/// trace cache**: the first caller per
/// `(substrate, workload, T, λ, rounds, seed)` materializes the trace,
/// every further strategy/figure cell on the same demand shares the
/// `Arc`. Cached or fresh, the trace is bit-identical (deterministic
/// generators), so routing figure pipelines through here can never change
/// their CSVs — it only removes the k× re-recording per strategy.
pub fn record_shared(
    kind: ScenarioKind,
    env: &ExperimentEnv,
    t_periods: u32,
    lambda: u64,
    requests_per_round: usize,
    seed: u64,
    rounds: u64,
) -> Trace {
    let key = TraceKey {
        substrate: env.graph.fingerprint(),
        workload: kind.workload_str(requests_per_round),
        t_periods,
        lambda,
        rounds,
        seed,
    };
    TraceCache::global().get_or_record(key, || {
        let mut scenario = make_scenario(kind, env, t_periods, lambda, requests_per_round, seed);
        Trace::record(scenario.as_mut(), rounds)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_workload::record;

    #[test]
    fn er_env_is_connected_and_sized() {
        let env = ExperimentEnv::erdos_renyi(80, 3);
        assert_eq!(env.graph.node_count(), 80);
        assert!(env.matrix.is_connected());
    }

    #[test]
    fn line_env() {
        let env = ExperimentEnv::line(5);
        assert_eq!(env.graph.node_count(), 5);
        assert_eq!(
            env.matrix.get(
                flexserve_graph::NodeId::new(0),
                flexserve_graph::NodeId::new(4)
            ),
            4.0
        );
    }

    #[test]
    fn scenarios_instantiate_and_generate() {
        let env = ExperimentEnv::erdos_renyi(64, 1);
        for kind in [
            ScenarioKind::CommuterDynamic,
            ScenarioKind::CommuterStatic,
            ScenarioKind::TimeZones,
        ] {
            let mut s = make_scenario(kind, &env, 8, 5, 20, 7);
            let trace = record(s.as_mut(), 30);
            assert_eq!(trace.len(), 30);
            assert!(trace.total_requests() > 0, "{kind} generated nothing");
        }
    }

    #[test]
    fn record_shared_is_bit_identical_to_fresh_recording() {
        let env = ExperimentEnv::erdos_renyi(48, 5);
        let shared = record_shared(ScenarioKind::CommuterDynamic, &env, 8, 5, 20, 7, 25);
        let mut fresh = make_scenario(ScenarioKind::CommuterDynamic, &env, 8, 5, 20, 7);
        let direct = record(fresh.as_mut(), 25);
        assert_eq!(shared, direct);
        // a second fetch shares the materialization
        let again = record_shared(ScenarioKind::CommuterDynamic, &env, 8, 5, 20, 7, 25);
        assert!(std::ptr::eq(shared.round(0), again.round(0)));
    }

    #[test]
    fn paper_t_pairs() {
        assert_eq!(paper_t_for(1000), 14);
        assert_eq!(paper_t_for(500), 12);
        assert_eq!(paper_t_for(200), 10);
    }
}
