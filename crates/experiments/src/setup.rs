//! Substrate, scenario and context builders mirroring the paper's set-up
//! (§V-A): Erdős–Rényi random graphs with 1% connection probability and
//! random T1/T2 bandwidths; commuter and time-zone demand; β=40, c=400
//! (flipped to β=400, c=40 for the migration-useless regime).

use flexserve_graph::gen::{erdos_renyi, unit_line, GenConfig};
use flexserve_graph::{DistanceMatrix, Graph};
use flexserve_sim::{CostParams, LoadModel, SimContext};
use flexserve_workload::{CommuterScenario, LoadVariant, Scenario, TimeZonesScenario};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Owns a substrate and its distance matrix so a [`SimContext`] can borrow
/// both (contexts are borrow-based to let many runs share one matrix).
pub struct ExperimentEnv {
    /// The substrate graph.
    pub graph: Graph,
    /// Its all-pairs shortest-path matrix.
    pub matrix: DistanceMatrix,
}

impl ExperimentEnv {
    /// Erdős–Rényi substrate with the paper's 1% connection probability.
    pub fn erdos_renyi(n: usize, seed: u64) -> Self {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = erdos_renyi(n, 0.01, &cfg, &mut rng).expect("valid ER parameters");
        let matrix = DistanceMatrix::build(&graph);
        ExperimentEnv { graph, matrix }
    }

    /// Unit-latency line substrate (tests and deterministic examples).
    pub fn line(n: usize) -> Self {
        let graph = unit_line(n).expect("n >= 1");
        let matrix = DistanceMatrix::build(&graph);
        ExperimentEnv { graph, matrix }
    }

    /// Line substrate with the same random latency (1–10 ms) and T1/T2
    /// bandwidth conventions as the Erdős–Rényi substrates — the topology
    /// the OPT experiments run on ("to simulate OPT, we constrain
    /// ourselves to line graphs"; link properties random as elsewhere).
    pub fn random_line(n: usize, seed: u64) -> Self {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let graph = flexserve_graph::gen::line(n, &cfg, &mut rng).expect("n >= 1");
        let matrix = DistanceMatrix::build(&graph);
        ExperimentEnv { graph, matrix }
    }

    /// Wraps a prebuilt graph (e.g. the Rocketfuel-like AS-7018).
    pub fn from_graph(graph: Graph) -> Self {
        let matrix = DistanceMatrix::build(&graph);
        ExperimentEnv { graph, matrix }
    }

    /// A [`SimContext`] over this environment.
    pub fn context(&self, params: CostParams, load: LoadModel) -> SimContext<'_> {
        SimContext::new(&self.graph, &self.matrix, params, load)
    }
}

/// Builds an [`ExperimentEnv`] and context parameters in one call.
pub fn build_context_graph(n: usize, seed: u64) -> ExperimentEnv {
    ExperimentEnv::erdos_renyi(n, seed)
}

/// The three demand scenarios of the evaluation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScenarioKind {
    /// Commuter scenario, dynamic load (total volume varies over the day).
    CommuterDynamic,
    /// Commuter scenario, static load (total fixed to `2^{T/2}`).
    CommuterStatic,
    /// Time-zones scenario with `p = 50%` hot traffic.
    TimeZones,
}

impl std::fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScenarioKind::CommuterDynamic => write!(f, "commuter-dynamic"),
            ScenarioKind::CommuterStatic => write!(f, "commuter-static"),
            ScenarioKind::TimeZones => write!(f, "time-zones"),
        }
    }
}

/// Requests per round used by the time-zones scenario on mid-size
/// substrates (DESIGN.md §5: the paper leaves this unspecified; 50 keeps
/// volumes comparable to the commuter peaks).
pub const TIME_ZONES_REQUESTS_PER_ROUND: usize = 50;

/// The paper's scaling of `T` with network size (matches the explicit
/// pairs n=1000→14, 500→12, 200→10; see DESIGN.md §5).
pub fn paper_t_for(n: usize) -> u32 {
    CommuterScenario::t_for_network_size(n)
}

/// Instantiates a scenario with the paper's parameters.
///
/// * `t_periods` — the `T` parameter (periods per day),
/// * `lambda` — rounds per period (`λ`, the sweeps' x-axis),
/// * `requests_per_round` — only used by the time-zones scenario.
pub fn make_scenario(
    kind: ScenarioKind,
    env: &ExperimentEnv,
    t_periods: u32,
    lambda: u64,
    requests_per_round: usize,
    seed: u64,
) -> Box<dyn Scenario> {
    match kind {
        ScenarioKind::CommuterDynamic => Box::new(CommuterScenario::with_matrix(
            &env.graph,
            &env.matrix,
            t_periods,
            lambda,
            LoadVariant::Dynamic,
            seed,
        )),
        ScenarioKind::CommuterStatic => Box::new(CommuterScenario::with_matrix(
            &env.graph,
            &env.matrix,
            t_periods,
            lambda,
            LoadVariant::Static,
            seed,
        )),
        ScenarioKind::TimeZones => Box::new(TimeZonesScenario::new(
            &env.graph,
            t_periods,
            lambda,
            0.5,
            requests_per_round,
            seed,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_workload::record;

    #[test]
    fn er_env_is_connected_and_sized() {
        let env = ExperimentEnv::erdos_renyi(80, 3);
        assert_eq!(env.graph.node_count(), 80);
        assert!(env.matrix.is_connected());
    }

    #[test]
    fn line_env() {
        let env = ExperimentEnv::line(5);
        assert_eq!(env.graph.node_count(), 5);
        assert_eq!(
            env.matrix.get(
                flexserve_graph::NodeId::new(0),
                flexserve_graph::NodeId::new(4)
            ),
            4.0
        );
    }

    #[test]
    fn scenarios_instantiate_and_generate() {
        let env = ExperimentEnv::erdos_renyi(64, 1);
        for kind in [
            ScenarioKind::CommuterDynamic,
            ScenarioKind::CommuterStatic,
            ScenarioKind::TimeZones,
        ] {
            let mut s = make_scenario(kind, &env, 8, 5, 20, 7);
            let trace = record(s.as_mut(), 30);
            assert_eq!(trace.len(), 30);
            assert!(trace.total_requests() > 0, "{kind} generated nothing");
        }
    }

    #[test]
    fn paper_t_pairs() {
        assert_eq!(paper_t_for(1000), 14);
        assert_eq!(paper_t_for(500), 12);
        assert_eq!(paper_t_for(200), 10);
    }
}
