//! Process-wide cache of recorded demand traces — the demand plane's
//! sibling of the distance-matrix cache.
//!
//! The paper's figures compare several placement strategies on the *same*
//! substrate under the *same* demand process. The [`DistCache`] (PR 2)
//! already shares the substrate; this cache shares the **demand**: the
//! first strategy cell of a `(substrate, workload, T, λ, rounds, seed)`
//! group records the scenario into an `Arc`-shared [`RoundTrace`], and
//! every further
//! strategy of the figure or sweep evaluates against that one
//! materialization instead of regenerating (and re-folding) the workload.
//!
//! Keys carry the substrate's `Graph::fingerprint` rather than a topology
//! string, so figure pipelines (which build environments directly) and
//! `CellSpec::run` share entries whenever they truly share a substrate.
//! Every scenario is deterministic under its seed, so a cached trace is
//! **bit-identical** to a fresh recording and cache state can never change
//! experiment output (pinned by the golden fig03 CSV and the
//! shared-vs-independent equivalence proptest).
//!
//! The cache is bounded: entries are evicted least-recently-used once the
//! stored counts exceed [`TraceCache::DEFAULT_CAPACITY_BYTES`] (override
//! with `FLEXSERVE_TRACE_BYTES`; `0` disables caching). Counters land in
//! `results/manifest.json` next to the distance-matrix counters.
//!
//! Replay cells (`wl=replay:<path>`, packed or JSONL — see
//! `docs/TRACES.md`) flow through here too: the batch pipeline's offline
//! strategies need the full materialized [`RoundTrace`], so a replay
//! cell records its scenario once per group like any generator (packed
//! replays *generate* through an O(window) sliding reader, but the
//! recorded result is the whole horizon). Traces larger than the byte
//! budget are handed out uncached rather than evicting everything else.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};

use flexserve_workload::RoundTrace;

pub use crate::cache::CacheStats;
use crate::cache::DistCache;

/// Identity of one recorded demand process. Two cells with equal keys see
/// byte-identical demand, so they may share one materialized trace.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct TraceKey {
    /// `Graph::fingerprint` of the substrate the workload runs over.
    pub substrate: u64,
    /// Canonical workload spec string (e.g. `commuter-dynamic`,
    /// `time-zones:p=50,req=50`).
    pub workload: String,
    /// Periods per day `T` (scenarios without a daily rhythm ignore it,
    /// but it is part of the instantiation and therefore of the key).
    pub t_periods: u32,
    /// Rounds per period `λ`.
    pub lambda: u64,
    /// Recorded rounds.
    pub rounds: u64,
    /// The workload's RNG seed.
    pub seed: u64,
}

struct Entry {
    trace: RoundTrace,
    last_used: u64,
    bytes: usize,
}

/// An LRU cache of `TraceKey → RoundTrace` with hit/miss/eviction
/// counters, sharing recorded demand across the strategy cells of a
/// figure or sweep.
///
/// Thread-safe with the same discipline as [`DistCache`]: recordings run
/// outside the lock (concurrent misses on different keys proceed in
/// parallel; racing recorders of one key produce bit-identical traces and
/// only the first insert is kept).
///
/// ```
/// use flexserve_experiments::{TraceCache, TraceKey};
/// use flexserve_workload::{RoundRequests, RoundTrace};
///
/// let cache = TraceCache::with_capacity_bytes(1 << 20);
/// let key = TraceKey {
///     substrate: 0xfeed,
///     workload: "uniform:req=1".into(),
///     t_periods: 8,
///     lambda: 10,
///     rounds: 2,
///     seed: 1,
/// };
/// let rounds = || RoundTrace::new(vec![RoundRequests::empty(); 2]);
/// let first = cache.get_or_record(key.clone(), rounds);
/// let again = cache.get_or_record(key, || panic!("must not re-record"));
/// assert_eq!(first, again);
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct TraceCache {
    inner: Mutex<HashMap<TraceKey, Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    clock: AtomicU64,
    capacity_bytes: usize,
}

impl TraceCache {
    /// Default byte budget for cached traces (64 MiB — a 500-round trace
    /// of ~100 distinct origins per round is under 1 MB, so whole figure
    /// suites fit).
    pub const DEFAULT_CAPACITY_BYTES: usize = 64 * 1024 * 1024;

    /// Creates an empty cache with the given byte budget. A budget of `0`
    /// disables caching (every lookup records afresh, nothing retained).
    pub fn with_capacity_bytes(capacity_bytes: usize) -> Self {
        TraceCache {
            inner: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            capacity_bytes,
        }
    }

    /// The process-wide cache, sitting beside [`DistCache::global`].
    /// Budget from `FLEXSERVE_TRACE_BYTES` when set, else
    /// [`Self::DEFAULT_CAPACITY_BYTES`].
    pub fn global() -> &'static TraceCache {
        static GLOBAL: OnceLock<TraceCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let capacity = std::env::var("FLEXSERVE_TRACE_BYTES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(Self::DEFAULT_CAPACITY_BYTES);
            TraceCache::with_capacity_bytes(capacity)
        })
    }

    /// Returns the cached trace for `key`, recording it with `record` on
    /// a miss. Hits hand out an `Arc`-shared view — O(1), no copying.
    pub fn get_or_record(&self, key: TraceKey, record: impl FnOnce() -> RoundTrace) -> RoundTrace {
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        if let Some(entry) = self.inner.lock().unwrap().get_mut(&key) {
            entry.last_used = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return entry.trace.clone();
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Record outside the lock: misses on different keys proceed in
        // parallel under the seed-fanning runner.
        let trace = record();
        let bytes = trace.memory_bytes();
        if bytes > self.capacity_bytes {
            return trace; // too large to retain (or caching disabled)
        }
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(key).or_insert_with(|| Entry {
            trace: trace.clone(),
            last_used: now,
            bytes,
        });
        entry.last_used = now;
        let trace = entry.trace.clone();
        self.evict_to_capacity(&mut map);
        trace
    }

    /// Evicts least-recently-used entries until the byte budget holds.
    /// Caller must hold the lock.
    fn evict_to_capacity(&self, map: &mut HashMap<TraceKey, Entry>) {
        let mut total: usize = map.values().map(|e| e.bytes).sum();
        while total > self.capacity_bytes && !map.is_empty() {
            let oldest = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            if let Some(e) = map.remove(&oldest) {
                total -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache currently retains nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops all entries and resets the counters.
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

/// Clears both process-wide caches and their counters (between unrelated
/// CLI invocations, so manifests report per-run stats).
pub fn clear_global_caches() {
    DistCache::global().clear();
    TraceCache::global().clear();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::NodeId;
    use flexserve_workload::RoundRequests;

    fn key(substrate: u64, seed: u64) -> TraceKey {
        TraceKey {
            substrate,
            workload: "uniform:req=2".into(),
            t_periods: 8,
            lambda: 10,
            rounds: 3,
            seed,
        }
    }

    fn trace(origin: usize) -> RoundTrace {
        RoundTrace::new(vec![RoundRequests::new(vec![NodeId::new(origin)]); 3])
    }

    #[test]
    fn hit_miss_accounting_and_sharing() {
        let cache = TraceCache::with_capacity_bytes(1 << 20);
        let a = cache.get_or_record(key(1, 1), || trace(0));
        assert_eq!(cache.stats().misses, 1);
        let b = cache.get_or_record(key(1, 1), || panic!("must not re-record"));
        assert_eq!(cache.stats().hits, 1);
        assert_eq!(a, b);
        assert!(
            std::ptr::eq(a.round(0), b.round(0)),
            "hits share the Arc storage"
        );
    }

    #[test]
    fn keys_isolate_substrate_seed_and_workload() {
        let cache = TraceCache::with_capacity_bytes(1 << 20);
        cache.get_or_record(key(1, 1), || trace(0));
        cache.get_or_record(key(2, 1), || trace(1));
        cache.get_or_record(key(1, 2), || trace(2));
        let mut other = key(1, 1);
        other.workload = "uniform:req=9".into();
        cache.get_or_record(other, || trace(3));
        assert_eq!(cache.stats().misses, 4);
        assert_eq!(cache.len(), 4);
    }

    #[test]
    fn lru_eviction_respects_budget() {
        let bytes = trace(0).memory_bytes();
        let cache = TraceCache::with_capacity_bytes(2 * bytes);
        cache.get_or_record(key(1, 1), || trace(0));
        cache.get_or_record(key(1, 2), || trace(1));
        assert_eq!(cache.len(), 2);
        // touch (1,1) so (1,2) is the LRU victim
        cache.get_or_record(key(1, 1), || panic!("cached"));
        cache.get_or_record(key(1, 3), || trace(2));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        cache.get_or_record(key(1, 1), || panic!("survivor"));
        let misses = cache.stats().misses;
        cache.get_or_record(key(1, 2), || trace(1));
        assert_eq!(cache.stats().misses, misses + 1, "evicted entry re-records");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = TraceCache::with_capacity_bytes(0);
        cache.get_or_record(key(1, 1), || trace(0));
        cache.get_or_record(key(1, 1), || trace(0));
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.is_empty());
        cache.clear();
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_same_key_lookups_converge() {
        use rayon::prelude::*;
        let cache = TraceCache::with_capacity_bytes(1 << 20);
        let traces: Vec<RoundTrace> = (0..8)
            .into_par_iter()
            .map(|_| cache.get_or_record(key(7, 7), || trace(4)))
            .collect();
        assert_eq!(cache.len(), 1);
        for t in traces {
            assert_eq!(t, trace(4));
        }
        let s = cache.stats();
        assert!(s.hits + s.misses >= 8);
    }
}
