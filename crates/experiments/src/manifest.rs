//! The `results/manifest.json` provenance record.
//!
//! Every `flexserve` CLI invocation writes one manifest describing the
//! artifacts it produced: which spec generated each CSV, over which seeds,
//! at which git revision, plus the distance-matrix and demand-trace cache
//! counters for the whole run (so multi-cell sweeps document how much APSP
//! and workload-recording work the caches saved). JSON is emitted by hand — the workspace deliberately has no
//! serde (no network, vendored deps only) and the schema is flat.

use std::fmt::Write as _;
use std::path::PathBuf;

use crate::cache::CacheStats;
use crate::output::results_dir;

/// Provenance of one artifact (one CSV file).
#[derive(Clone, Debug)]
pub struct ManifestEntry {
    /// Artifact file name (`fig03.csv`, `sweep.csv`, …).
    pub artifact: String,
    /// What produced it: `figure`, `cell` or `sweep`.
    pub kind: String,
    /// Canonical spec: registry figure name, or the cell description
    /// including topology/workload/strategy and parameters.
    pub spec: String,
    /// Seeds averaged over (empty for figures, which pick seeds per
    /// profile internally).
    pub seeds: Vec<u64>,
    /// `Graph::fingerprint` of the substrates involved (first seed per
    /// cell; empty when not applicable).
    pub fingerprints: Vec<u64>,
}

/// A whole-run manifest: entries plus run-level provenance.
#[derive(Clone, Debug, Default)]
pub struct Manifest {
    entries: Vec<ManifestEntry>,
}

/// Escapes a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// `git describe --always --dirty` of the working tree, or `"unknown"`
/// when git is unavailable (e.g. running from an exported tarball).
pub fn git_describe() -> String {
    std::process::Command::new("git")
        .args(["describe", "--always", "--dirty"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .and_then(|o| String::from_utf8(o.stdout).ok())
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

impl Manifest {
    /// An empty manifest.
    pub fn new() -> Self {
        Manifest::default()
    }

    /// Records one produced artifact.
    pub fn add(&mut self, entry: ManifestEntry) {
        self.entries.push(entry);
    }

    /// Number of recorded artifacts.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no artifacts were recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Renders the manifest as pretty-printed JSON.
    /// Renders the manifest as pretty-printed JSON. Top-level `command`,
    /// `git` and cache counters describe this invocation; `carried` holds
    /// pre-rendered artifact blocks of *earlier* invocations (see
    /// [`Manifest::write`]) appended after this run's entries, so the
    /// manifest accumulates provenance for everything still in the
    /// results directory. Each entry records its own `git` revision.
    pub fn to_json(
        &self,
        command: &str,
        cache: CacheStats,
        traces: CacheStats,
        carried: &[String],
    ) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"tool\": \"flexserve\",");
        let _ = writeln!(out, "  \"command\": \"{}\",", json_escape(command));
        let git = git_describe();
        let _ = writeln!(out, "  \"git\": \"{}\",", json_escape(&git));
        let render_cache = |out: &mut String, name: &str, stats: CacheStats| {
            let _ = writeln!(out, "  \"{name}\": {{");
            let _ = writeln!(out, "    \"hits\": {},", stats.hits);
            let _ = writeln!(out, "    \"misses\": {},", stats.misses);
            let _ = writeln!(out, "    \"evictions\": {},", stats.evictions);
            let _ = writeln!(out, "    \"hit_rate\": {:.4}", stats.hit_rate());
            let _ = writeln!(out, "  }},");
        };
        render_cache(&mut out, "distance_matrix_cache", cache);
        render_cache(&mut out, "trace_cache", traces);
        let _ = writeln!(out, "  \"artifacts\": [");
        let total = self.entries.len() + carried.len();
        let mut blocks = Vec::with_capacity(total);
        for e in &self.entries {
            blocks.push(render_entry(e, &git));
        }
        blocks.extend(carried.iter().cloned());
        for (i, block) in blocks.iter().enumerate() {
            out.push_str(block);
            let _ = writeln!(out, "{}", if i + 1 < total { "," } else { "" });
        }
        let _ = writeln!(out, "  ]");
        out.push_str("}\n");
        out
    }

    /// Writes the manifest to `<results dir>/manifest.json`, creating the
    /// directory, and returns the path. An existing manifest's entries are
    /// carried forward for artifacts this run did *not* (re)produce, so
    /// `run fig03` followed by `run fig04` leaves provenance for both
    /// CSVs on disk; re-produced artifacts replace their old entry.
    pub fn write(
        &self,
        command: &str,
        cache: CacheStats,
        traces: CacheStats,
    ) -> std::io::Result<PathBuf> {
        self.write_to(&results_dir(), command, cache, traces)
    }

    /// [`Manifest::write`] with an explicit directory (tests use this to
    /// avoid touching process environment).
    pub fn write_to(
        &self,
        dir: &std::path::Path,
        command: &str,
        cache: CacheStats,
        traces: CacheStats,
    ) -> std::io::Result<PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join("manifest.json");
        let produced: Vec<&str> = self.entries.iter().map(|e| e.artifact.as_str()).collect();
        let carried = match std::fs::read_to_string(&path) {
            Ok(prev) => carry_blocks(&prev, &produced),
            Err(_) => Vec::new(),
        };
        std::fs::write(&path, self.to_json(command, cache, traces, &carried))?;
        Ok(path)
    }
}

/// Renders one artifact entry as a JSON block (4-space indent, no
/// trailing comma or newline — [`Manifest::to_json`] adds those).
fn render_entry(e: &ManifestEntry, git: &str) -> String {
    let seeds = e
        .seeds
        .iter()
        .map(|s| s.to_string())
        .collect::<Vec<_>>()
        .join(", ");
    let fps = e
        .fingerprints
        .iter()
        .map(|f| format!("\"{f:016x}\""))
        .collect::<Vec<_>>()
        .join(", ");
    let mut out = String::new();
    let _ = writeln!(out, "    {{");
    let _ = writeln!(out, "      \"artifact\": \"{}\",", json_escape(&e.artifact));
    let _ = writeln!(out, "      \"kind\": \"{}\",", json_escape(&e.kind));
    let _ = writeln!(out, "      \"spec\": \"{}\",", json_escape(&e.spec));
    let _ = writeln!(out, "      \"git\": \"{}\",", json_escape(git));
    let _ = writeln!(out, "      \"seeds\": [{seeds}],");
    let _ = writeln!(out, "      \"substrate_fingerprints\": [{fps}]");
    out.push_str("    }");
    out
}

/// Extracts the artifact blocks of a previously written manifest whose
/// `artifact` is not in `produced` (those entries describe files still on
/// disk that this run did not touch). Only understands the fixed format
/// [`render_entry`] emits — a hand-edited manifest may lose carried
/// entries, which the next full `run all` regenerates.
fn carry_blocks(prev: &str, produced: &[&str]) -> Vec<String> {
    let mut carried = Vec::new();
    let mut block: Option<Vec<&str>> = None;
    for line in prev.lines() {
        match (&mut block, line) {
            (None, "    {") => block = Some(vec![line]),
            (Some(lines), "    }" | "    },") => {
                lines.push("    }");
                let artifact = lines.iter().find_map(|l| {
                    l.trim_start()
                        .strip_prefix("\"artifact\": \"")?
                        .strip_suffix("\",")
                });
                if let Some(a) = artifact {
                    if !produced.contains(&a) {
                        carried.push(lines.join("\n"));
                    }
                }
                block = None;
            }
            (Some(lines), l) => lines.push(l),
            (None, _) => {}
        }
    }
    carried
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest::new();
        m.add(ManifestEntry {
            artifact: "fig03.csv".into(),
            kind: "figure".into(),
            spec: "fig03".into(),
            seeds: vec![1000, 1001],
            fingerprints: vec![0xdead_beef],
        });
        m
    }

    #[test]
    fn json_shape_is_valid_enough() {
        let cache = CacheStats {
            hits: 3,
            misses: 1,
            evictions: 0,
        };
        let traces = CacheStats {
            hits: 2,
            misses: 1,
            evictions: 0,
        };
        let json = sample().to_json("run fig03", cache, traces, &[]);
        // Structural smoke checks (no JSON parser in-tree by design).
        assert!(json.starts_with("{\n"));
        assert!(json.ends_with("}\n"));
        assert!(json.contains("\"command\": \"run fig03\""));
        assert!(json.contains("\"hits\": 3"));
        assert!(json.contains("\"hit_rate\": 0.7500"));
        assert!(json.contains("\"trace_cache\""));
        assert!(json.contains("\"hit_rate\": 0.6667"));
        assert!(json.contains("\"seeds\": [1000, 1001]"));
        assert!(json.contains("\"00000000deadbeef\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    fn one_entry(artifact: &str, spec: &str) -> Manifest {
        let mut m = Manifest::new();
        m.add(ManifestEntry {
            artifact: artifact.into(),
            kind: "figure".into(),
            spec: spec.into(),
            seeds: vec![1],
            fingerprints: vec![7],
        });
        m
    }

    #[test]
    fn write_accumulates_and_replaces_entries() {
        let dir = std::env::temp_dir().join("flexserve-manifest-merge-test");
        let _ = std::fs::remove_dir_all(&dir);
        let cache = CacheStats::default();

        one_entry("fig03.csv", "fig03 v1")
            .write_to(&dir, "run fig03", cache, cache)
            .unwrap();
        one_entry("fig04.csv", "fig04 v1")
            .write_to(&dir, "run fig04", cache, cache)
            .unwrap();
        let json = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        // Both artifacts' provenance survives; balance still holds.
        assert!(json.contains("\"artifact\": \"fig03.csv\""), "{json}");
        assert!(json.contains("\"artifact\": \"fig04.csv\""), "{json}");
        assert!(json.contains("\"command\": \"run fig04\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());

        // Re-producing fig03 replaces its entry rather than duplicating.
        one_entry("fig03.csv", "fig03 v2")
            .write_to(&dir, "run fig03", cache, cache)
            .unwrap();
        let json = std::fs::read_to_string(dir.join("manifest.json")).unwrap();
        assert_eq!(json.matches("\"artifact\": \"fig03.csv\"").count(), 1);
        assert!(json.contains("fig03 v2"));
        assert!(!json.contains("fig03 v1"));
        assert!(json.contains("\"artifact\": \"fig04.csv\""));
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn escaping_handles_quotes_and_newlines() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn git_describe_never_panics() {
        let d = git_describe();
        assert!(!d.is_empty());
    }
}
