//! Process-wide cache of substrates and their distance matrices.
//!
//! The dominant redundant cost in multi-cell experiment runs is the
//! all-pairs shortest-path build: a figure sweep evaluates three
//! algorithms × several seeds on the *same* `(topology, seed)` substrate,
//! and consecutive figures (e.g. Figs 3–5) reuse identical substrates with
//! different workloads. Before this cache every cell rebuilt graph and
//! matrix from scratch; now the first builder per key pays and everyone
//! else shares the [`Arc`].
//!
//! Keys are `(canonical topology spec string, seed)` — see
//! [`TopologySpec`](crate::spec::TopologySpec), whose `Display` impl
//! produces the canonical string. Because every generator is deterministic
//! under its seed, a cached entry is bit-identical to a fresh build, so
//! cache hits can never change experiment output (the golden CSV tests pin
//! this).
//!
//! The cache is bounded: entries are evicted least-recently-used once the
//! matrices exceed [`DistCache::DEFAULT_CAPACITY_BYTES`] (override with the
//! `FLEXSERVE_CACHE_BYTES` environment variable; `0` disables caching).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use flexserve_graph::{DistanceMatrix, Graph};

use crate::setup::ExperimentEnv;

struct Entry {
    env: ExperimentEnv,
    /// Monotone counter value of the last access (for LRU eviction).
    last_used: u64,
    bytes: usize,
}

/// Hit/miss/eviction counters of a [`DistCache`], snapshotted by
/// [`DistCache::stats`] and recorded in the result manifest.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Lookups that had to build graph + matrix.
    pub misses: u64,
    /// Entries evicted to stay within the byte budget.
    pub evictions: u64,
}

impl CacheStats {
    /// `hits / (hits + misses)`, or 0 when the cache was never consulted.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// An LRU cache of `(topology spec, seed) → (graph, distance matrix)`.
///
/// Thread-safe: concurrent lookups of the same missing key may both build
/// (builds happen outside the lock so they don't serialize unrelated
/// cells), but only the first result is inserted and later callers adopt
/// it, so all callers observe identical `Arc`s afterwards. A process-wide
/// instance is available via [`DistCache::global`].
///
/// ```
/// use flexserve_experiments::{DistCache, TopologySpec};
///
/// let cache = DistCache::with_capacity_bytes(DistCache::DEFAULT_CAPACITY_BYTES);
/// let spec: TopologySpec = "unit-line:6".parse().unwrap();
///
/// let first = cache
///     .get_or_build(&spec.to_string(), 0, || spec.build(0))
///     .unwrap();
/// // The second lookup is a hit: same Arc, no rebuild.
/// let again = cache
///     .get_or_build(&spec.to_string(), 0, || panic!("must not rebuild"))
///     .unwrap();
/// assert!(std::sync::Arc::ptr_eq(&first.graph, &again.graph));
/// assert_eq!(cache.stats().hits, 1);
/// assert_eq!(cache.stats().misses, 1);
/// ```
pub struct DistCache {
    inner: Mutex<HashMap<(String, u64), Entry>>,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
    clock: AtomicU64,
    capacity_bytes: usize,
}

impl DistCache {
    /// Default byte budget for cached matrices (256 MiB — a 1000-node
    /// matrix is 8 MB, so even full-profile sweeps fit comfortably).
    pub const DEFAULT_CAPACITY_BYTES: usize = 256 * 1024 * 1024;

    /// Creates an empty cache with the given byte budget for matrices.
    /// A budget of `0` disables caching (every lookup is a miss and
    /// nothing is retained).
    pub fn with_capacity_bytes(capacity_bytes: usize) -> Self {
        DistCache {
            inner: Mutex::new(HashMap::new()),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            clock: AtomicU64::new(0),
            capacity_bytes,
        }
    }

    /// The process-wide cache used by
    /// [`ExperimentEnv`]. Budget comes from
    /// `FLEXSERVE_CACHE_BYTES` when set, else
    /// [`Self::DEFAULT_CAPACITY_BYTES`].
    pub fn global() -> &'static DistCache {
        static GLOBAL: OnceLock<DistCache> = OnceLock::new();
        GLOBAL.get_or_init(|| {
            let capacity = std::env::var("FLEXSERVE_CACHE_BYTES")
                .ok()
                .and_then(|v| v.parse().ok())
                .unwrap_or(Self::DEFAULT_CAPACITY_BYTES);
            DistCache::with_capacity_bytes(capacity)
        })
    }

    /// Returns the cached substrate for `(topology, seed)`, building it
    /// with `build` on a miss. `build` returns the graph only; the matrix
    /// is computed here so every entry pairs a graph with *its own* APSP.
    /// A failed build inserts nothing (the error propagates unchanged).
    pub fn get_or_build(
        &self,
        topology: &str,
        seed: u64,
        build: impl FnOnce() -> Result<Graph, String>,
    ) -> Result<ExperimentEnv, String> {
        let key = (topology.to_string(), seed);
        let now = self.clock.fetch_add(1, Ordering::Relaxed);
        if let Some(entry) = self.inner.lock().unwrap().get_mut(&key) {
            entry.last_used = now;
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(entry.env.clone());
        }
        self.misses.fetch_add(1, Ordering::Relaxed);
        // Build outside the lock: misses on different keys proceed in
        // parallel (rayon runs seeds concurrently). Two racing builders of
        // the same key do duplicate work, but the results are bit-identical
        // and only the first insert is kept.
        let graph = build()?;
        let matrix = DistanceMatrix::build(&graph);
        let env = ExperimentEnv {
            graph: Arc::new(graph),
            matrix: Arc::new(matrix),
        };
        let n = env.matrix.node_count();
        let bytes = n * n * std::mem::size_of::<f64>();
        if bytes > self.capacity_bytes {
            return Ok(env); // too large to retain (or caching disabled)
        }
        let mut map = self.inner.lock().unwrap();
        let entry = map.entry(key).or_insert_with(|| Entry {
            env: env.clone(),
            last_used: now,
            bytes,
        });
        entry.last_used = now;
        let env = entry.env.clone();
        self.evict_to_capacity(&mut map);
        Ok(env)
    }

    /// Evicts least-recently-used entries until the byte budget holds.
    /// Caller must hold the lock.
    fn evict_to_capacity(&self, map: &mut HashMap<(String, u64), Entry>) {
        let mut total: usize = map.values().map(|e| e.bytes).sum();
        while total > self.capacity_bytes && !map.is_empty() {
            let oldest = map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
                .expect("non-empty map has a minimum");
            if let Some(e) = map.remove(&oldest) {
                total -= e.bytes;
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.inner.lock().unwrap().len()
    }

    /// Whether the cache currently retains nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the hit/miss/eviction counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }

    /// Drops all entries and resets the counters (between unrelated CLI
    /// runs, so manifests report per-run stats).
    pub fn clear(&self) {
        self.inner.lock().unwrap().clear();
        self.hits.store(0, Ordering::Relaxed);
        self.misses.store(0, Ordering::Relaxed);
        self.evictions.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;

    fn build_line(n: usize) -> Graph {
        unit_line(n).unwrap()
    }

    #[test]
    fn hit_and_miss_accounting() {
        let cache = DistCache::with_capacity_bytes(1 << 20);
        let a = cache
            .get_or_build("unit-line:5", 1, || Ok(build_line(5)))
            .unwrap();
        assert_eq!(
            cache.stats(),
            CacheStats {
                hits: 0,
                misses: 1,
                evictions: 0
            }
        );
        let b = cache
            .get_or_build("unit-line:5", 1, || panic!("must not rebuild"))
            .unwrap();
        assert_eq!(cache.stats().hits, 1);
        assert!(Arc::ptr_eq(&a.matrix, &b.matrix), "hits share the Arc");
        assert!((cache.stats().hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn cross_seed_isolation() {
        // Same topology string, different seeds → distinct entries; the
        // seed part of the key must never alias.
        let cache = DistCache::with_capacity_bytes(1 << 20);
        let a = cache
            .get_or_build("unit-line:4", 1, || Ok(build_line(4)))
            .unwrap();
        let b = cache
            .get_or_build("unit-line:4", 2, || Ok(build_line(4)))
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert_eq!(cache.len(), 2);
        assert!(!Arc::ptr_eq(&a.matrix, &b.matrix));
        // and different topology strings with the same seed likewise
        let c = cache
            .get_or_build("unit-line:5", 1, || Ok(build_line(5)))
            .unwrap();
        assert_eq!(cache.stats().misses, 3);
        assert_ne!(c.matrix.node_count(), a.matrix.node_count());
    }

    #[test]
    fn cached_entry_is_bit_identical_to_fresh_build() {
        let cache = DistCache::with_capacity_bytes(1 << 20);
        let cached = cache
            .get_or_build("unit-line:9", 3, || Ok(build_line(9)))
            .unwrap();
        let fresh = DistanceMatrix::build(&build_line(9));
        for u in cached.graph.nodes() {
            for v in cached.graph.nodes() {
                assert_eq!(cached.matrix.get(u, v).to_bits(), fresh.get(u, v).to_bits());
            }
        }
    }

    #[test]
    fn lru_eviction_respects_budget() {
        // Budget fits exactly two 5-node matrices (5*5*8 = 200 bytes each).
        let cache = DistCache::with_capacity_bytes(400);
        cache
            .get_or_build("unit-line:5", 1, || Ok(build_line(5)))
            .unwrap();
        cache
            .get_or_build("unit-line:5", 2, || Ok(build_line(5)))
            .unwrap();
        assert_eq!(cache.len(), 2);
        // Touch seed 1 so seed 2 is the LRU victim.
        cache
            .get_or_build("unit-line:5", 1, || panic!("cached"))
            .unwrap();
        cache
            .get_or_build("unit-line:5", 3, || Ok(build_line(5)))
            .unwrap();
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.stats().evictions, 1);
        // Seed 1 survived, seed 2 was evicted.
        cache
            .get_or_build("unit-line:5", 1, || panic!("should still be cached"))
            .unwrap();
        let before = cache.stats().misses;
        cache
            .get_or_build("unit-line:5", 2, || Ok(build_line(5)))
            .unwrap();
        assert_eq!(cache.stats().misses, before + 1, "evicted entry rebuilds");
    }

    #[test]
    fn zero_capacity_disables_caching() {
        let cache = DistCache::with_capacity_bytes(0);
        cache
            .get_or_build("unit-line:4", 1, || Ok(build_line(4)))
            .unwrap();
        cache
            .get_or_build("unit-line:4", 1, || Ok(build_line(4)))
            .unwrap();
        assert_eq!(cache.stats().misses, 2);
        assert!(cache.is_empty());
    }

    #[test]
    fn clear_resets_everything() {
        let cache = DistCache::with_capacity_bytes(1 << 20);
        cache
            .get_or_build("unit-line:4", 1, || Ok(build_line(4)))
            .unwrap();
        cache
            .get_or_build("unit-line:4", 1, || Ok(build_line(4)))
            .unwrap();
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.stats(), CacheStats::default());
    }

    #[test]
    fn concurrent_same_key_lookups_converge() {
        use rayon::prelude::*;
        let cache = DistCache::with_capacity_bytes(1 << 20);
        let envs: Vec<ExperimentEnv> = (0..8)
            .into_par_iter()
            .map(|_| {
                cache
                    .get_or_build("unit-line:6", 7, || Ok(build_line(6)))
                    .unwrap()
            })
            .collect();
        assert_eq!(cache.len(), 1);
        let canonical = cache
            .get_or_build("unit-line:6", 7, || panic!("cached"))
            .unwrap();
        for env in envs {
            // Racing builders may hold a pre-insert copy, but contents are
            // identical; post-race lookups all share the inserted Arc.
            assert_eq!(env.matrix.node_count(), canonical.matrix.node_count());
        }
        let s = cache.stats();
        assert!(s.hits + s.misses >= 9);
    }
}
