//! Runs every figure and table of the paper in sequence.
//!
//! Profiles: `FLEXSERVE_QUICK=1` for a fast smoke pass,
//! `FLEXSERVE_FULL=1` for the paper-exact sweep sizes (slow on one core),
//! default is the standard profile.
use flexserve_experiments::figures as f;

fn main() {
    let p = f::profile_from_env();
    eprintln!("profile: {p:?}");
    let t0 = std::time::Instant::now();
    type FigFn = fn(f::Profile) -> flexserve_experiments::Table;
    let figs: &[(&str, FigFn)] = &[
        ("fig01", f::fig01),
        ("fig02", f::fig02),
        ("fig03", f::fig03),
        ("fig04", f::fig04),
        ("fig05", f::fig05),
        ("fig06", f::fig06),
        ("fig07", f::fig07),
        ("fig08", f::fig08),
        ("fig09", f::fig09),
        ("fig10", f::fig10),
        ("fig11", f::fig11),
        ("fig12", f::fig12),
        ("fig13", f::fig13),
        ("fig14", f::fig14),
        ("fig15", f::fig15),
        ("fig16", f::fig16),
        ("fig17", f::fig17),
        ("fig18", f::fig18),
        ("fig19", f::fig19),
        ("table1", f::table1),
    ];
    for (name, fun) in figs {
        let t = std::time::Instant::now();
        fun(p);
        eprintln!("[{name}] done in {:.1}s", t.elapsed().as_secs_f64());
        println!();
    }
    eprintln!("all figures done in {:.1}s", t0.elapsed().as_secs_f64());
}
