//! Ablation studies for the design choices docs/DESIGN.md calls out.
//!
//! Unlike the criterion benches (which track *runtime*), these report the
//! *cost* impact of each design knob, averaged over seeds:
//!
//! 1. inactive-cache capacity (paper: 3),
//! 2. inactive-cache expiry (paper: 20 epochs),
//! 3. ONTH's small-epoch factor `y` (paper: 2),
//! 4. ONBR fixed vs dynamic threshold,
//! 5. routing policy: nearest vs load-aware (under quadratic load),
//! 6. T1/T2 bandwidth mix (documents that the simplified cost model is
//!    bandwidth-insensitive, as in the paper).
//!
//! ```sh
//! cargo run -p flexserve-experiments --release --bin ablations
//! ```

use flexserve_experiments::{average, run_algorithm, Algorithm, ExperimentEnv, Table};
use flexserve_graph::gen::{erdos_renyi, GenConfig};
use flexserve_sim::{run_online, CostParams, LoadModel, RoutingPolicy};
use flexserve_workload::{record, CommuterScenario, LoadVariant};

use flexserve_core::{initial_center, OnTh};

use rand::rngs::SmallRng;
use rand::SeedableRng;

const N: usize = 150;
const ROUNDS: u64 = 400;
const SEEDS: [u64; 3] = [11, 22, 33];

fn run_with(params: CostParams, load: LoadModel, seed: u64, alg: Algorithm) -> f64 {
    let env = ExperimentEnv::erdos_renyi(N, seed);
    let ctx = env.context(params, load);
    let mut scenario =
        CommuterScenario::with_matrix(&env.graph, &env.matrix, 8, 10, LoadVariant::Dynamic, seed);
    let trace = record(&mut scenario, ROUNDS);
    run_algorithm(&ctx, &trace, alg).total().total()
}

fn ablate_cache_capacity() {
    let mut t = Table::new(
        "Ablation 1: inactive-cache capacity (ONTH, commuter dynamic)",
        &["capacity", "mean total cost"],
    );
    for cap in [0usize, 1, 3, 8] {
        let params = CostParams {
            inactive_queue_len: cap,
            ..CostParams::default()
        };
        let s = average(&SEEDS, |seed| {
            flexserve_sim::CostBreakdown::from_access(run_with(
                params,
                LoadModel::Linear,
                seed,
                Algorithm::OnTh,
            ))
        });
        t.row_f64(cap, &[s.mean_total()]);
    }
    t.print();
    t.save_csv("ablation_cache_capacity").unwrap();
}

fn ablate_cache_expiry() {
    let mut t = Table::new(
        "Ablation 2: inactive-cache expiry in epochs (ONTH)",
        &["expiry", "mean total cost"],
    );
    for expiry in [1u64, 5, 20, 100] {
        let params = CostParams {
            inactive_expiry_epochs: expiry,
            ..CostParams::default()
        };
        let s = average(&SEEDS, |seed| {
            flexserve_sim::CostBreakdown::from_access(run_with(
                params,
                LoadModel::Linear,
                seed,
                Algorithm::OnTh,
            ))
        });
        t.row_f64(expiry, &[s.mean_total()]);
    }
    t.print();
    t.save_csv("ablation_cache_expiry").unwrap();
}

fn ablate_onth_y() {
    let mut t = Table::new(
        "Ablation 3: ONTH small-epoch factor y (paper: 2)",
        &["y", "mean total cost"],
    );
    for y in [0.5f64, 1.0, 2.0, 4.0, 8.0] {
        let s = average(&SEEDS, |seed| {
            let env = ExperimentEnv::erdos_renyi(N, seed);
            let ctx = env.context(CostParams::default(), LoadModel::Linear);
            let mut scenario = CommuterScenario::with_matrix(
                &env.graph,
                &env.matrix,
                8,
                10,
                LoadVariant::Dynamic,
                seed,
            );
            let trace = record(&mut scenario, ROUNDS);
            let cost = run_online(&ctx, &trace, &mut OnTh::with_y(y), initial_center(&ctx))
                .total()
                .total();
            flexserve_sim::CostBreakdown::from_access(cost)
        });
        t.row_f64(y, &[s.mean_total()]);
    }
    t.print();
    t.save_csv("ablation_onth_y").unwrap();
}

fn ablate_onbr_threshold() {
    let mut t = Table::new(
        "Ablation 4: ONBR threshold mode",
        &["mode", "mean total cost"],
    );
    for (label, alg) in [
        ("fixed 2c", Algorithm::OnBrFixed),
        ("dyn 2c/l", Algorithm::OnBrDyn),
    ] {
        let s = average(&SEEDS, |seed| {
            flexserve_sim::CostBreakdown::from_access(run_with(
                CostParams::default(),
                LoadModel::Linear,
                seed,
                alg,
            ))
        });
        t.row(vec![label.to_string(), format!("{:.2}", s.mean_total())]);
    }
    t.print();
    t.save_csv("ablation_onbr_threshold").unwrap();
}

fn ablate_routing_policy() {
    let mut t = Table::new(
        "Ablation 5: routing policy under quadratic load (ONTH)",
        &["policy", "mean total cost"],
    );
    for (label, policy) in [
        ("nearest", RoutingPolicy::Nearest),
        ("load-aware", RoutingPolicy::LoadAware),
    ] {
        let s = average(&SEEDS, |seed| {
            let env = ExperimentEnv::erdos_renyi(N, seed);
            let ctx = env
                .context(CostParams::default(), LoadModel::Quadratic)
                .with_routing(policy);
            let mut scenario = CommuterScenario::with_matrix(
                &env.graph,
                &env.matrix,
                8,
                10,
                LoadVariant::Dynamic,
                seed,
            );
            let trace = record(&mut scenario, ROUNDS);
            let cost = run_online(&ctx, &trace, &mut OnTh::new(), initial_center(&ctx))
                .total()
                .total();
            flexserve_sim::CostBreakdown::from_access(cost)
        });
        t.row(vec![label.to_string(), format!("{:.2}", s.mean_total())]);
    }
    t.print();
    t.save_csv("ablation_routing").unwrap();
}

fn ablate_bandwidth_mix() {
    let mut t = Table::new(
        "Ablation 6: T1 share of links (cost model is bandwidth-insensitive)",
        &["t1 share", "mean total cost"],
    );
    for t1 in [0.0f64, 0.5, 1.0] {
        let s = average(&SEEDS, |seed| {
            let cfg = GenConfig {
                t1_probability: t1,
                ..GenConfig::default()
            };
            let mut rng = SmallRng::seed_from_u64(seed);
            let graph = erdos_renyi(N, 0.01, &cfg, &mut rng).unwrap();
            let env = ExperimentEnv::from_graph(graph);
            let ctx = env.context(CostParams::default(), LoadModel::Linear);
            let mut scenario = CommuterScenario::with_matrix(
                &env.graph,
                &env.matrix,
                8,
                10,
                LoadVariant::Dynamic,
                seed,
            );
            let trace = record(&mut scenario, ROUNDS);
            let cost = run_online(&ctx, &trace, &mut OnTh::new(), initial_center(&ctx))
                .total()
                .total();
            flexserve_sim::CostBreakdown::from_access(cost)
        });
        t.row_f64(t1, &[s.mean_total()]);
    }
    t.print();
    t.save_csv("ablation_bandwidth").unwrap();
}

fn main() {
    ablate_cache_capacity();
    println!();
    ablate_cache_expiry();
    println!();
    ablate_onth_y();
    println!();
    ablate_onbr_threshold();
    println!();
    ablate_routing_policy();
    println!();
    ablate_bandwidth_mix();
}
