//! The unified experiment CLI: one binary for every figure, table, cell
//! and sweep of the evaluation.
//!
//! ```text
//! flexserve list
//! flexserve run fig03 [fig04 ...] | all        [--profile quick|standard|full]
//! flexserve run topo=er:100 wl=commuter-dynamic strat=onth [t=8 lambda=10 ...]
//! flexserve sweep topo=er:100 wl=commuter-dynamic strat=onth+onbr-fixed lambda=5+10 ...
//! flexserve serve topo=er:100 wl=commuter-dynamic strat=onth port=7788 [...]
//! flexserve route workers=127.0.0.1:7788+127.0.0.1:7789 port=7787 [...]
//! ```
//!
//! Cell/sweep keys: `topo`, `wl`, `strat` (see `flexserve list` for the
//! spec grammar), `t`, `lambda`, `rounds`, `seeds` (`a..b` range or
//! `a+b+c` list), `load` (`linear`, `quadratic`, `power(<p>)`), `beta`,
//! `c`, `ra`, `ri`, `k`, `flipped`, `events` (a substrate-event schedule,
//! e.g. `events=5:fail-link:2-7,10:recover-link:2-7`; see docs/FAULTS.md)
//! and `out` (CSV base name). In `sweep`, the axes
//! `topo`/`wl`/`strat`/`t`/`lambda` accept `+`-separated lists and the
//! cross product of all lists is run, cell by cell.
//!
//! Every invocation writes `manifest.json` next to its CSVs (under
//! `results/` or `$FLEXSERVE_RESULTS_DIR`) recording the spec, seeds, git
//! revision and the distance-matrix cache counters of the run.

use std::process::ExitCode;

use flexserve_experiments::figures::{profile_from_env, Profile};
use flexserve_experiments::manifest::{Manifest, ManifestEntry};
use flexserve_experiments::output::results_dir;
use flexserve_experiments::registry;
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::spec::{CellSpec, StrategySpec, TopologySpec, WorkloadSpec};
use flexserve_experiments::{DistCache, Table, TraceCache};
use flexserve_sim::{CostParams, LoadModel, SubstrateEvents};
use flexserve_workload::Trace;

const USAGE: &str = "\
usage: flexserve <subcommand> [args]

subcommands:
  list                         print every figure, topology, workload and strategy
  run <figure>... | all        regenerate paper figures by registry name
  run <key=value>...           run a single experiment cell
  sweep <key=value>...         run the cross product of +-separated axis lists
  trace record <key=value>...  record a workload into a JSONL demand trace
                               (topo=, wl= required; t, lambda, rounds, seed,
                               out=<path.jsonl>, default results/trace.jsonl)
  trace pack <jsonl> [out=]    pack a JSONL trace into the framed binary
                               format flexserve-trace-v1 (mmap/windowed
                               replay; out= defaults to the input with a
                               .ftr extension; see docs/TRACES.md)
  trace replay <key=value>...  run a cell whose demand is a recorded trace
                               (file=<path> packed or JSONL + the usual
                               cell keys; sugar for run ... wl=replay:<path>)
  serve <key=value>...         run the multi-session streaming placement daemon
                               (the command line describes the default session;
                               more sessions via POST /sessions, stepped through
                               POST /sessions/<name>/step etc., legacy aliases
                               /step /placement /metrics /checkpoint; extra
                               keys: seed, port, bind, workers, max-sessions,
                               checkpoint, resume,
                               source=scenario|stdin|<path.jsonl>; see
                               docs/SERVING.md)
  route <key=value>...         run the consistent-hash routing tier over a
                               fleet of serve daemons (workers=host:port+...
                               required; extra keys: port, bind, threads,
                               replicas, health-interval, mark-down, skew,
                               request-timeout; live-migrates sessions
                               bit-identically on ring changes and load
                               skew; see docs/CLUSTER.md)
  help                         this text

options for `run <figure>`:
  --profile quick|standard|full   sweep sizing (default: standard, or
                                  FLEXSERVE_QUICK=1 / FLEXSERVE_FULL=1)

cell/sweep keys (see `flexserve list` for spec grammars):
  topo=er:100   wl=commuter-dynamic   strat=onth
  t=8  lambda=10  rounds=200  seeds=1000..1003  load=linear
  beta=40  c=400  ra=2.5  ri=0.5  k=16  flipped=true  out=sweep
  events=5:fail-link:2-7,10:recover-link:2-7   (see docs/FAULTS.md)
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let command_line = args.join(" ");
    let result = match args.first().map(String::as_str) {
        Some("list") => {
            print!("{}", registry::list_text());
            Ok(Manifest::new())
        }
        Some("run") => run(&args[1..]),
        Some("sweep") => sweep(&args[1..], false),
        Some("trace") => trace(&args[1..]),
        Some("serve") => {
            flexserve_experiments::serve::serve_cmd(&args[1..]).map(|()| Manifest::new())
        }
        Some("route") => {
            flexserve_experiments::serve::route::route_cmd(&args[1..]).map(|()| Manifest::new())
        }
        Some("help") | Some("--help") | Some("-h") | None => {
            print!("{USAGE}");
            Ok(Manifest::new())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };
    match result {
        Ok(manifest) => {
            if !manifest.is_empty() {
                let stats = DistCache::global().stats();
                let trace_stats = TraceCache::global().stats();
                match manifest.write(&command_line, stats, trace_stats) {
                    Ok(path) => eprintln!(
                        "manifest: {} ({} artifacts; dist cache {} hits / {} misses; \
                         trace cache {} hits / {} misses)",
                        path.display(),
                        manifest.len(),
                        stats.hits,
                        stats.misses,
                        trace_stats.hits,
                        trace_stats.misses
                    ),
                    Err(e) => {
                        eprintln!("error: cannot write manifest: {e}");
                        return ExitCode::from(1);
                    }
                }
            }
            ExitCode::SUCCESS
        }
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::from(2)
        }
    }
}

/// `trace` dispatch: `record` materializes a workload into a JSONL demand
/// trace; `pack` converts a JSONL trace into the framed binary
/// `flexserve-trace-v1` format; `replay` runs a cell against a recorded
/// trace (sugar for `run ... wl=replay:<path>`), making a recorded trace
/// a scenario like any other.
fn trace(args: &[String]) -> Result<Manifest, String> {
    match args.first().map(String::as_str) {
        Some("record") => trace_record(&args[1..]),
        Some("pack") => trace_pack(&args[1..]),
        Some("replay") => trace_replay(&args[1..]),
        _ => Err(format!(
            "trace: expected `trace record`, `trace pack` or `trace replay`\n{USAGE}"
        )),
    }
}

/// `flexserve trace record topo=... wl=... [t= lambda= rounds= seed= out=]`
/// — builds the substrate (through the distance-matrix cache), records
/// the workload (through the trace cache) and writes the rounds in the
/// JSONL replay schema of `docs/SERVING.md`.
fn trace_record(args: &[String]) -> Result<Manifest, String> {
    let mut topology: Option<TopologySpec> = None;
    let mut workload: Option<WorkloadSpec> = None;
    let mut t_periods = 8u32;
    let mut lambda = 10u64;
    let mut rounds = 200u64;
    let mut seed = 1000u64;
    let mut out: Option<String> = None;
    for arg in args {
        let (key, v) = arg
            .split_once('=')
            .ok_or_else(|| format!("trace record: expected key=value, got {arg:?}"))?;
        match key {
            "topo" => topology = Some(v.parse().map_err(|e| format!("topo: {e}"))?),
            "wl" => workload = Some(v.parse().map_err(|e| format!("wl: {e}"))?),
            "t" => t_periods = v.parse().map_err(|_| format!("t: bad value {v:?}"))?,
            "lambda" => lambda = v.parse().map_err(|_| format!("lambda: bad value {v:?}"))?,
            "rounds" => rounds = v.parse().map_err(|_| format!("rounds: bad value {v:?}"))?,
            "seed" => seed = v.parse().map_err(|_| format!("seed: bad value {v:?}"))?,
            "out" => out = Some(v.to_string()),
            _ => return Err(format!("trace record: unknown key {key:?}")),
        }
    }
    let (topology, workload) = match (topology, workload) {
        (Some(t), Some(w)) => (t, w),
        _ => return Err("trace record: topo= and wl= are required".into()),
    };
    if rounds == 0 || t_periods == 0 || lambda == 0 {
        return Err("trace record: t, lambda and rounds must be >= 1".into());
    }
    let out = out
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| results_dir().join("trace.jsonl"));

    let env = ExperimentEnv::from_spec(&topology, seed)?;
    workload.validate_replay(env.graph.node_count())?;
    let mut cell = CellSpec::new(topology.clone(), workload.clone(), StrategySpec::Static);
    cell.t_periods = t_periods;
    cell.lambda = lambda;
    cell.rounds = rounds;
    cell.seeds = vec![seed];
    let trace: Trace = cell.shared_trace(&env, seed);

    if let Some(dir) = out.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    std::fs::write(&out, trace.to_jsonl())
        .map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    eprintln!(
        "recorded {} rounds ({} requests) of {workload} over {topology} -> {}",
        trace.len(),
        trace.total_requests(),
        out.display()
    );

    let mut manifest = Manifest::new();
    manifest.add(ManifestEntry {
        artifact: out.display().to_string(),
        kind: "trace".into(),
        spec: format!(
            "{topology} x {workload} (T={t_periods}, lambda={lambda}, rounds={rounds}, seed={seed})"
        ),
        seeds: vec![seed],
        fingerprints: vec![env.graph.fingerprint()],
    });
    Ok(manifest)
}

/// `flexserve trace pack <jsonl> [out=<path>]` — streams a JSONL demand
/// trace into the framed binary `flexserve-trace-v1` format (one round
/// resident at a time on both sides). The output defaults to the input
/// path with a `.ftr` extension; every replay entry point
/// (`wl=replay:`, `source=`, `trace replay`) auto-detects the format by
/// magic, so the pack is a drop-in replacement for the JSONL original.
fn trace_pack(args: &[String]) -> Result<Manifest, String> {
    let mut input: Option<String> = None;
    let mut out: Option<String> = None;
    for arg in args {
        match arg.split_once('=') {
            Some(("out", v)) => out = Some(v.to_string()),
            Some((key, _)) => return Err(format!("trace pack: unknown key {key:?}")),
            None if input.is_none() => input = Some(arg.clone()),
            None => return Err(format!("trace pack: unexpected argument {arg:?}")),
        }
    }
    let input = input.ok_or("trace pack: expected `trace pack <trace.jsonl> [out=<path>]`")?;
    let out = out.unwrap_or_else(|| {
        std::path::Path::new(&input)
            .with_extension("ftr")
            .display()
            .to_string()
    });
    if out == input {
        return Err(format!(
            "trace pack: out={out} would overwrite the input; pick another path"
        ));
    }
    let jsonl_bytes = std::fs::metadata(&input)
        .map_err(|e| format!("cannot open {input}: {e}"))?
        .len();
    let summary = flexserve_workload::pack_jsonl_file(&input, &out)?;
    let ratio = if summary.bytes > 0 {
        jsonl_bytes as f64 / summary.bytes as f64
    } else {
        0.0
    };
    eprintln!(
        "packed {} rounds ({} origins universe) {} -> {}: {} -> {} bytes ({ratio:.2}x)",
        summary.rounds, summary.universe, input, out, jsonl_bytes, summary.bytes
    );

    let mut manifest = Manifest::new();
    manifest.add(ManifestEntry {
        artifact: out.clone(),
        kind: "trace-pack".into(),
        spec: format!(
            "{} <- {input} (rounds={}, universe={}, {jsonl_bytes} -> {} bytes, ratio={ratio:.2})",
            flexserve_workload::PACKED_FORMAT,
            summary.rounds,
            summary.universe,
            summary.bytes
        ),
        seeds: Vec::new(),
        fingerprints: Vec::new(),
    });
    Ok(manifest)
}

/// `flexserve trace replay file=<path> topo=... strat=... [cell keys]` —
/// runs a cell whose workload is the recorded trace.
fn trace_replay(args: &[String]) -> Result<Manifest, String> {
    let mut cell_args: Vec<String> = Vec::new();
    let mut file: Option<String> = None;
    for arg in args {
        match arg.split_once('=') {
            Some(("file", v)) => file = Some(v.to_string()),
            Some(("wl", _)) => {
                return Err("trace replay: the workload is the trace; use file=, not wl=".into())
            }
            _ => cell_args.push(arg.clone()),
        }
    }
    let file = file.ok_or("trace replay: file=<path> is required (packed or JSONL)")?;
    cell_args.push(format!("wl=replay:{file}"));
    sweep(&cell_args, true)
}

/// `run` dispatch: figure names (or `all`) vs a cell expression.
fn run(args: &[String]) -> Result<Manifest, String> {
    if args.is_empty() {
        return Err(format!("run: nothing to run\n{USAGE}"));
    }
    if args.iter().any(|a| a.contains('=') && !a.starts_with("--")) {
        return sweep(args, true);
    }

    let mut profile = profile_from_env();
    let mut names: Vec<&str> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--profile" => {
                let v = it.next().ok_or("run: --profile needs a value")?;
                profile = match v.as_str() {
                    "quick" => Profile::Quick,
                    "standard" => Profile::Standard,
                    "full" => Profile::Full,
                    _ => return Err(format!("run: unknown profile {v:?}")),
                };
            }
            name => names.push(name),
        }
    }
    if names == ["all"] {
        names = registry::FIGURES.iter().map(|f| f.name).collect();
    }
    for name in &names {
        if registry::figure(name).is_none() {
            return Err(format!(
                "run: unknown figure {name:?} (see `flexserve list`)"
            ));
        }
    }

    let mut manifest = Manifest::new();
    for name in names {
        let entry = registry::figure(name).expect("checked above");
        let t0 = std::time::Instant::now();
        (entry.run)(profile);
        eprintln!("[{name}] done in {:.1}s", t0.elapsed().as_secs_f64());
        manifest.add(ManifestEntry {
            artifact: format!("{name}.csv"),
            kind: "figure".into(),
            spec: format!("{name} ({profile:?} profile)"),
            seeds: Vec::new(),
            fingerprints: Vec::new(),
        });
    }
    Ok(manifest)
}

/// Parsed key=value arguments of a cell expression or sweep.
struct SweepArgs {
    topologies: Vec<TopologySpec>,
    workloads: Vec<WorkloadSpec>,
    strategies: Vec<StrategySpec>,
    t_values: Vec<u32>,
    lambdas: Vec<u64>,
    rounds: u64,
    seeds: Vec<u64>,
    load: LoadModel,
    params: CostParams,
    events: SubstrateEvents,
    out: String,
}

fn parse_seeds(v: &str) -> Result<Vec<u64>, String> {
    if let Some((a, b)) = v.split_once("..") {
        let a: u64 = a.parse().map_err(|_| format!("seeds: bad start {a:?}"))?;
        let b: u64 = b.parse().map_err(|_| format!("seeds: bad end {b:?}"))?;
        if b <= a {
            return Err(format!("seeds: empty range {v:?}"));
        }
        Ok((a..b).collect())
    } else {
        v.split('+')
            .map(|s| s.parse().map_err(|_| format!("seeds: bad seed {s:?}")))
            .collect()
    }
}

fn parse_list<T, E: std::fmt::Display>(
    key: &str,
    v: &str,
    parse: impl Fn(&str) -> Result<T, E>,
) -> Result<Vec<T>, String> {
    v.split('+')
        .map(|part| parse(part).map_err(|e| format!("{key}: {e}")))
        .collect()
}

fn parse_args(args: &[String], single_cell: bool) -> Result<SweepArgs, String> {
    let mut parsed = SweepArgs {
        topologies: Vec::new(),
        workloads: Vec::new(),
        strategies: Vec::new(),
        t_values: vec![8],
        lambdas: vec![10],
        rounds: 200,
        seeds: vec![1000, 1001, 1002],
        load: LoadModel::Linear,
        params: CostParams::default(),
        events: SubstrateEvents::new(),
        out: if single_cell { "cell" } else { "sweep" }.to_string(),
    };
    // `flipped=true` is a shorthand for the paper's beta=400/c=40 regime;
    // explicit beta=/c= arguments always win, regardless of order.
    let mut flipped = false;
    let (mut beta, mut c): (Option<f64>, Option<f64>) = (None, None);
    for arg in args {
        let (key, v) = arg
            .split_once('=')
            .ok_or_else(|| format!("expected key=value, got {arg:?}\n{USAGE}"))?;
        match key {
            "topo" => parsed.topologies = parse_list(key, v, str::parse::<TopologySpec>)?,
            "wl" => parsed.workloads = parse_list(key, v, str::parse::<WorkloadSpec>)?,
            "strat" => parsed.strategies = parse_list(key, v, str::parse::<StrategySpec>)?,
            "t" => {
                parsed.t_values = parse_list(key, v, |s| s.parse::<u32>().map_err(|_| "bad value"))?
            }
            "lambda" => {
                parsed.lambdas = parse_list(key, v, |s| s.parse::<u64>().map_err(|_| "bad value"))?
            }
            "rounds" => {
                parsed.rounds = v.parse().map_err(|_| format!("rounds: bad value {v:?}"))?
            }
            "seeds" => parsed.seeds = parse_seeds(v)?,
            "load" => parsed.load = v.parse()?,
            "beta" => beta = Some(v.parse().map_err(|_| format!("beta: bad value {v:?}"))?),
            "c" => c = Some(v.parse().map_err(|_| format!("c: bad value {v:?}"))?),
            "ra" => {
                parsed.params.run_active = v.parse().map_err(|_| format!("ra: bad value {v:?}"))?
            }
            "ri" => {
                parsed.params.run_inactive =
                    v.parse().map_err(|_| format!("ri: bad value {v:?}"))?
            }
            "k" => {
                parsed.params.max_servers = v.parse().map_err(|_| format!("k: bad value {v:?}"))?
            }
            "flipped" => flipped = v.parse().map_err(|_| format!("flipped: bad value {v:?}"))?,
            "events" => parsed.events = SubstrateEvents::parse(v)?,
            "out" => parsed.out = v.to_string(),
            _ => return Err(format!("unknown key {key:?}\n{USAGE}")),
        }
    }
    if flipped {
        parsed.params = parsed.params.with_costs(
            CostParams::flipped().migration_beta,
            CostParams::flipped().creation_c,
        );
    }
    if let Some(beta) = beta {
        parsed.params.migration_beta = beta;
    }
    if let Some(c) = c {
        parsed.params.creation_c = c;
    }
    if parsed.topologies.is_empty() || parsed.workloads.is_empty() || parsed.strategies.is_empty() {
        return Err("topo=, wl= and strat= are required (see `flexserve list`)".into());
    }
    if single_cell {
        let cells = parsed.topologies.len()
            * parsed.workloads.len()
            * parsed.strategies.len()
            * parsed.t_values.len()
            * parsed.lambdas.len();
        if cells != 1 {
            return Err(format!(
                "run: a cell expression must name exactly one cell ({cells} given); \
                 use `flexserve sweep` for lists"
            ));
        }
    }
    Ok(parsed)
}

/// Runs all cells of the cross product and writes one CSV + manifest.
fn sweep(args: &[String], single_cell: bool) -> Result<Manifest, String> {
    let parsed = parse_args(args, single_cell)?;
    let mut table = Table::new(
        format!(
            "flexserve {}: {} (rounds={}, {} seeds, load={}, {})",
            if single_cell { "cell" } else { "sweep" },
            parsed.out,
            parsed.rounds,
            parsed.seeds.len(),
            parsed.load,
            parsed.params.summary()
        ),
        &[
            "topology",
            "workload",
            "strategy",
            "T",
            "lambda",
            "mean_total",
            "std_total",
            "access",
            "running",
            "migration",
            "creation",
        ],
    );

    // Materialize the cross product and validate every cell before any
    // expensive work: a mid-sweep infeasibility (e.g. OPT on a too-large
    // substrate) must reject the sweep up front, not discard hours of
    // completed cells.
    let mut cells = Vec::new();
    for topo in &parsed.topologies {
        for wl in &parsed.workloads {
            for strat in &parsed.strategies {
                for &t in &parsed.t_values {
                    for &lambda in &parsed.lambdas {
                        cells.push(CellSpec {
                            topology: topo.clone(),
                            workload: wl.clone(),
                            strategy: *strat,
                            t_periods: t,
                            lambda,
                            rounds: parsed.rounds,
                            seeds: parsed.seeds.clone(),
                            params: parsed.params,
                            load: parsed.load,
                            events: parsed.events.clone(),
                        });
                    }
                }
            }
        }
    }
    for cell in &cells {
        cell.validate()
            .map_err(|e| format!("infeasible cell [{}]: {e}", cell.describe()))?;
    }

    let mut manifest = Manifest::new();
    for cell in &cells {
        let res = cell.run()?;
        let mean = res.summary.mean();
        table.row(vec![
            cell.topology.to_string(),
            cell.workload.to_string(),
            cell.strategy.to_string(),
            cell.t_periods.to_string(),
            cell.lambda.to_string(),
            format!("{:.2}", res.summary.mean_total()),
            format!("{:.2}", res.summary.std_total()),
            format!("{:.2}", mean.access),
            format!("{:.2}", mean.running),
            format!("{:.2}", mean.migration),
            format!("{:.2}", mean.creation),
        ]);
        manifest.add(ManifestEntry {
            artifact: format!("{}.csv", parsed.out),
            kind: if single_cell { "cell" } else { "sweep" }.into(),
            spec: cell.describe(),
            seeds: parsed.seeds.clone(),
            fingerprints: vec![res.fingerprint],
        });
    }
    table.print();
    table
        .save_csv(&parsed.out)
        .map_err(|e| format!("cannot write {}.csv: {e}", parsed.out))?;
    eprintln!(
        "wrote {}",
        results_dir().join(format!("{}.csv", parsed.out)).display()
    );
    Ok(manifest)
}
