//! Regenerates Figure 17 of the paper. See `flexserve_experiments::figures`.
fn main() {
    let profile = flexserve_experiments::figures::profile_from_env();
    flexserve_experiments::figures::fig17(profile);
}
