//! The `flexserve serve` daemon: a concurrent, multi-session streaming
//! placement service.
//!
//! Where `flexserve run` replays a recorded trace in a closed loop,
//! `serve` keeps the loop open — and since this revision it keeps *many*
//! loops open: a [`SessionManager`] owns any number of named
//! [`EventedSession`](flexserve_sim::EventedSession)s (each on its own
//! actor thread, with its own strategy, its own mutable substrate world,
//! and its own [`RequestSource`](flexserve_workload::RequestSource),
//! sharing pristine substrates through the process-wide
//! [`DistCache`](crate::cache::DistCache)), behind an event-driven HTTP
//! front end (hand-rolled HTTP/1.1, as ever): a small pool of epoll
//! reactor threads owns every connection and parses requests
//! incrementally off readiness events, so 10k idle keep-alive clients
//! cost file descriptors, not threads, and only complete requests occupy
//! the `workers=` pool (see `event_loop.rs`; non-Linux hosts fall back to
//! the previous blocking accept-loop + worker-pool front end):
//!
//! | endpoint                             | effect                                   |
//! |--------------------------------------|------------------------------------------|
//! | `POST /sessions`                     | create a session (`{"name", "args"}`)    |
//! | `GET /sessions`                      | list live sessions with their cell specs |
//! | `POST /sessions/<name>/step`         | play one round — or a batch of rounds    |
//! | `GET /sessions/<name>/placement`     | its servers and epoch                    |
//! | `GET /sessions/<name>/metrics`       | its counters (process + cumulative)      |
//! | `POST /sessions/<name>/checkpoint`   | snapshot it to its checkpoint file       |
//! | `POST /sessions/<name>/events`       | append substrate events to its schedule  |
//! | `DELETE /sessions/<name>`            | stop and evict it                        |
//! | `POST /shutdown`                     | stop the daemon                          |
//!
//! The pre-session-manager single-session routes (`POST /step`,
//! `GET /placement`, `GET /metrics`, `POST /checkpoint`) remain as
//! aliases for the *default* session — the one the command line
//! describes, created at startup — so existing clients and scripts keep
//! working unchanged (pinned by `tests/serve_http.rs`).
//!
//! Concurrency follows the problem's shape: each session is a sequential
//! online game, so its operations serialize through its actor's channel;
//! distinct sessions share no mutable state and step in parallel across
//! workers, bit-identical to each cell served alone (pinned by
//! `tests/serve_sessions.rs`). Checkpoints use the v2 engine format
//! carrying cumulative metrics and the substrate-event schedule; v1 files
//! still restore. Restarting with `resume=true` continues the default
//! session **bit-identically** to a daemon that was never stopped — event
//! history included (the snapshot's schedule is replayed onto a pristine
//! substrate and fingerprint-checked).
//!
//! Robustness is part of the contract: every request read is bounded
//! (`request-timeout=` plus header/body caps, answered with 408/413), and
//! shutdown is graceful — `POST /shutdown` *and* SIGTERM both drain the
//! worker pool and checkpoint every live session to its checkpoint file
//! before exiting. Endpoint reference, JSONL replay schema and the
//! checkpoint format live in `docs/SERVING.md`; the substrate-event
//! plane (grammar, penalty costs, replay semantics) in `docs/FAULTS.md`.
//!
//! To scale past one machine, the [`route`] submodule ships
//! `flexserve route`: a consistent-hash front tier that shards sessions
//! over a fleet of these daemons and live-migrates them bit-identically
//! (checkpoint → resume → `migrated_to` tombstone); see `docs/CLUSTER.md`.

mod event_loop;
mod handlers;
mod http;
pub mod route;
pub mod sessions;

pub use event_loop::raise_nofile_limit;
pub use sessions::{
    ServeError, SessionConfig, SessionManager, SessionStats, SourceKind, DEFAULT_SESSION,
};

use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use flexserve_workload::JsonValue;

use crate::output::results_dir;

/// Parsed `flexserve serve` options: the default session plus the server
/// shape (listener address, worker pool, session budget).
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The default session, served by the legacy single-session routes.
    pub session: SessionConfig,
    /// Listener address (`bind=` key; loopback unless asked otherwise).
    pub bind: IpAddr,
    /// Listener port (0 = ephemeral, the chosen port is announced on
    /// stdout).
    pub port: u16,
    /// HTTP worker threads executing complete requests concurrently.
    pub workers: usize,
    /// Reactor threads of the epoll front end, each multiplexing a share
    /// of all open connections (`reactor-threads=` key; ignored on the
    /// non-Linux fallback front end).
    pub reactor_threads: usize,
    /// Maximum concurrently live sessions.
    pub max_sessions: usize,
    /// `idle-evict=<secs>`: sessions no client has touched for this long
    /// are auto-checkpointed and evicted by a reaper thread (`None` =
    /// never, the default).
    pub idle_evict: Option<std::time::Duration>,
    /// `request-timeout=<secs>`: per-request read/write bound on every
    /// connection — a stalled client gets a 408 instead of pinning a
    /// worker (default 30s; the shorter keep-alive idle window still
    /// governs gaps *between* requests).
    pub request_timeout: std::time::Duration,
}

const SERVE_USAGE: &str = "\
usage: flexserve serve topo=<spec> wl=<spec> strat=<name> [key=value...]

cell keys:    t, lambda, rounds (scenario-source cap), seed, load, beta, c,
              ra, ri, k, flipped, events (substrate-event schedule;
              see docs/FAULTS.md)
session keys: checkpoint=<path> (default <results dir>/checkpoint.json),
              resume=true|false, source=scenario|stdin|<path.jsonl>
server keys:  port (default 7788, 0 = ephemeral),
              bind=<ip>[:<port>] (default 127.0.0.1; non-loopback logs a warning),
              workers=<n> (default 4), max-sessions=<n> (default 16),
              reactor-threads=<n> (epoll event-loop threads owning the
              connections; default 2, range 1-16),
              idle-evict=<secs> (auto-checkpoint + evict idle sessions;
              default off),
              request-timeout=<secs> (per-request read/write bound; default 30)
";

impl ServeOptions {
    /// Parses `serve` arguments (`key=value` pairs, single-valued axes):
    /// the server keys are peeled off here, everything else goes through
    /// [`SessionConfig::parse_with_default`] — one grammar for the CLI's
    /// default session and `POST /sessions` bodies.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut bind = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let mut port = 7788u16;
        let mut workers = 4usize;
        let mut reactor_threads = 2usize;
        let mut max_sessions = 16usize;
        let mut idle_evict = None;
        let mut request_timeout = std::time::Duration::from_secs(30);
        let mut session_args: Vec<String> = Vec::new();

        for arg in args {
            let (key, v) = arg
                .split_once('=')
                .ok_or_else(|| format!("serve: expected key=value, got {arg:?}\n{SERVE_USAGE}"))?;
            match key {
                "port" => port = v.parse().map_err(|_| format!("port: bad value {v:?}"))?,
                "bind" => {
                    if let Ok(addr) = v.parse::<SocketAddr>() {
                        bind = addr.ip();
                        port = addr.port();
                    } else {
                        bind = v.parse().map_err(|_| {
                            format!("bind: bad value {v:?} (want <ip> or <ip>:<port>)")
                        })?;
                    }
                }
                "workers" => {
                    workers = v.parse().map_err(|_| format!("workers: bad value {v:?}"))?;
                    if workers == 0 || workers > 64 {
                        return Err(format!("workers: {workers} out of range (1-64)"));
                    }
                }
                "reactor-threads" => {
                    reactor_threads = v
                        .parse()
                        .map_err(|_| format!("reactor-threads: bad value {v:?}"))?;
                    if reactor_threads == 0 || reactor_threads > 16 {
                        return Err(format!(
                            "reactor-threads: {reactor_threads} out of range (1-16)"
                        ));
                    }
                }
                "max-sessions" => {
                    max_sessions = v
                        .parse()
                        .map_err(|_| format!("max-sessions: bad value {v:?}"))?;
                    if max_sessions == 0 {
                        return Err("max-sessions: must be >= 1".into());
                    }
                }
                "idle-evict" => {
                    let secs: f64 = v
                        .parse()
                        .map_err(|_| format!("idle-evict: bad value {v:?} (want seconds)"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(format!("idle-evict: {v} out of range (want > 0 seconds)"));
                    }
                    idle_evict = Some(std::time::Duration::from_secs_f64(secs));
                }
                "request-timeout" => {
                    let secs: f64 = v
                        .parse()
                        .map_err(|_| format!("request-timeout: bad value {v:?} (want seconds)"))?;
                    if !secs.is_finite() || secs <= 0.0 {
                        return Err(format!(
                            "request-timeout: {v} out of range (want > 0 seconds)"
                        ));
                    }
                    request_timeout = std::time::Duration::from_secs_f64(secs);
                }
                _ => session_args.push(arg.clone()),
            }
        }
        let session =
            SessionConfig::parse_with_default(&session_args, results_dir().join("checkpoint.json"))
                .map_err(|e| format!("serve: {e}\n{SERVE_USAGE}"))?;
        Ok(ServeOptions {
            session,
            bind,
            port,
            workers,
            reactor_threads,
            max_sessions,
            idle_evict,
            request_timeout,
        })
    }
}

/// What a finished daemon reports (mainly for tests and logs): the
/// default session's tallies.
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// Rounds the default session stepped in this process (excludes
    /// checkpointed history).
    pub rounds_served: u64,
    /// The default session's round counter at shutdown.
    pub final_t: u64,
}

/// State every HTTP worker shares: the session table, the shutdown flag
/// and the listener address (for the shutdown self-poke).
pub(crate) struct ServeShared {
    pub(crate) manager: SessionManager,
    pub(crate) shutdown: AtomicBool,
    pub(crate) addr: SocketAddr,
    pub(crate) request_timeout: std::time::Duration,
}

/// SIGTERM handling for the daemon: the signal handler only flips a flag
/// (the whole async-signal-safe budget); a watcher thread in [`serve_on`]
/// turns the flag into the same graceful shutdown as `POST /shutdown`.
#[cfg(unix)]
mod sigterm {
    use std::sync::atomic::{AtomicBool, Ordering};

    static TERM: AtomicBool = AtomicBool::new(false);

    extern "C" fn on_term(_signum: i32) {
        TERM.store(true, Ordering::SeqCst);
    }

    /// Installs the handler and clears any flag left by a previous daemon
    /// in this process (tests run several serve lifecycles per binary).
    pub(crate) fn install() {
        const SIGTERM: i32 = 15;
        extern "C" {
            fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        }
        TERM.store(false, Ordering::SeqCst);
        unsafe {
            signal(SIGTERM, on_term);
        }
    }

    /// True once SIGTERM has been received.
    pub(crate) fn pending() -> bool {
        TERM.load(Ordering::SeqCst)
    }
}

/// The startup warning for listeners reachable from other hosts, or
/// `None` on loopback.
pub(crate) fn non_loopback_warning(addr: &SocketAddr) -> Option<String> {
    (!addr.ip().is_loopback()).then(|| {
        format!(
            "flexserve serve: WARNING: listening on non-loopback {addr} — the daemon \
             has no authentication; only expose it on trusted networks"
        )
    })
}

/// Binds `bind:port` and serves until `POST /shutdown`. The bound address
/// is announced on stdout (`port=0` picks an ephemeral port, so scripts
/// must parse the announcement).
pub fn serve(opts: &ServeOptions) -> Result<ServeSummary, String> {
    let listener = TcpListener::bind((opts.bind, opts.port))
        .map_err(|e| format!("serve: cannot bind {}:{}: {e}", opts.bind, opts.port))?;
    serve_on(listener, opts)
}

/// [`serve`] over an already-bound listener (tests bind port 0 themselves
/// to learn the address before starting the daemon thread).
pub fn serve_on(listener: TcpListener, opts: &ServeOptions) -> Result<ServeSummary, String> {
    let addr = listener
        .local_addr()
        .map_err(|e| format!("serve: local_addr: {e}"))?;
    let shared = Arc::new(ServeShared {
        manager: SessionManager::new(opts.max_sessions),
        shutdown: AtomicBool::new(false),
        addr,
        request_timeout: opts.request_timeout,
    });

    // The default session comes up before the listener answers, so a bad
    // spec or checkpoint aborts the start instead of a half-served
    // daemon.
    let info = shared
        .manager
        .create(DEFAULT_SESSION, opts.session.clone())
        .map_err(|e| format!("serve: {e}"))?;
    let field = |name: &str| {
        info.get(name)
            .and_then(JsonValue::as_str)
            .unwrap_or_default()
            .to_string()
    };
    println!(
        "flexserve serve: listening on http://{addr} [{}] source={} checkpoint={} \
         workers={} reactor-threads={} max-sessions={}{}",
        field("spec"),
        field("source"),
        opts.session.checkpoint.display(),
        opts.workers,
        opts.reactor_threads,
        opts.max_sessions,
        if opts.session.resume {
            format!(
                " (resumed at t={})",
                info.get("resumed_at")
                    .and_then(JsonValue::as_u64)
                    .unwrap_or(0)
            )
        } else {
            String::new()
        }
    );
    if let Some(warning) = non_loopback_warning(&addr) {
        eprintln!("{warning}");
    }
    let _ = std::io::Write::flush(&mut std::io::stdout());

    // The idle-evict reaper: with `idle-evict=<secs>` set, a background
    // thread sweeps the session table and auto-checkpoints + evicts
    // sessions no client has touched for the window (the `evicted: true`
    // tombstones in `GET /sessions`). Polling granularity is a quarter of
    // the window, bounded to [50ms, 1s] so shutdown never waits long.
    let reaper = opts.idle_evict.map(|window| {
        let shared = Arc::clone(&shared);
        let tick = (window / 4)
            .max(std::time::Duration::from_millis(50))
            .min(std::time::Duration::from_secs(1));
        std::thread::Builder::new()
            .name("serve-reaper".into())
            .spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    for name in shared.manager.evict_idle(window) {
                        eprintln!(
                            "flexserve serve: idle-evicted session {name:?} \
                             (untouched for {}s; checkpointed)",
                            window.as_secs_f64()
                        );
                    }
                }
            })
            .expect("spawn reaper thread")
    });

    // SIGTERM watcher: the handler itself only flips a flag, this thread
    // notices it and triggers the same graceful shutdown as
    // `POST /shutdown` (drain workers, checkpoint every session). Exits
    // within a tick once the shutdown flag is set by any path.
    #[cfg(unix)]
    let term_watcher = {
        sigterm::install();
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("serve-sigterm".into())
            .spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    if sigterm::pending() {
                        eprintln!("flexserve serve: SIGTERM — checkpointing and shutting down");
                        handlers::begin_shutdown(&shared);
                        break;
                    }
                    std::thread::sleep(std::time::Duration::from_millis(100));
                }
            })
            .map_err(|e| format!("serve: cannot spawn sigterm watcher: {e}"))?
    };

    // The front end: on Linux, the epoll reactor pool in `event_loop.rs`
    // (connections cost fds, complete requests occupy workers); elsewhere
    // the blocking accept-loop + worker-pool fallback. Returns once the
    // shutdown flag is set and every connection has drained.
    event_loop::run_front_end(listener, &shared, opts.workers, opts.reactor_threads)?;
    if let Some(reaper) = reaper {
        let _ = reaper.join(); // observes the shutdown flag within a tick
    }
    #[cfg(unix)]
    let _ = term_watcher.join(); // likewise bounded by its poll tick
                                 // Graceful shutdown: snapshot every live session to its checkpoint
                                 // file before stopping it, so a daemon going down (POST /shutdown or
                                 // SIGTERM) never loses state nobody checkpointed explicitly.
    let saved = shared.manager.checkpoint_all();
    if !saved.is_empty() {
        eprintln!(
            "flexserve serve: checkpointed {} session(s) on shutdown: {}",
            saved.len(),
            saved.join(", ")
        );
    }
    shared.manager.shutdown_all();
    let stats = shared.manager.default_session_stats().unwrap_or_default();
    Ok(ServeSummary {
        rounds_served: stats.rounds_served,
        final_t: stats.final_t,
    })
}

/// CLI entry point for `flexserve serve <args>`.
pub fn serve_cmd(args: &[String]) -> Result<(), String> {
    let opts = ServeOptions::parse(args)?;
    let summary = serve(&opts)?;
    eprintln!(
        "flexserve serve: stopped after {} rounds (t={})",
        summary.rounds_served, summary.final_t
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_requires_the_three_axes() {
        let err = ServeOptions::parse(&args(&["topo=er:50"])).unwrap_err();
        assert!(err.contains("required"), "{err}");
        let err = ServeOptions::parse(&args(&["bogus"])).unwrap_err();
        assert!(err.contains("key=value"), "{err}");
        let err = ServeOptions::parse(&args(&["topo=er:50", "wl=uniform", "strat=onth", "zap=1"]))
            .unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn parse_builds_a_cell_with_defaults_and_overrides() {
        let opts = ServeOptions::parse(&args(&[
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=onth",
            "rounds=50",
            "seed=7",
            "k=4",
            "port=0",
            "checkpoint=/tmp/ck.json",
            "source=stdin",
        ]))
        .unwrap();
        assert_eq!(opts.session.cell.rounds, 50);
        assert_eq!(opts.session.cell.seeds, vec![7]);
        assert_eq!(opts.session.cell.params.max_servers, 4);
        assert_eq!(opts.port, 0);
        assert_eq!(opts.session.checkpoint, PathBuf::from("/tmp/ck.json"));
        assert_eq!(opts.session.source, SourceKind::Stdin);
        assert!(!opts.session.resume);
        // server defaults
        assert_eq!(opts.bind, IpAddr::V4(Ipv4Addr::LOCALHOST));
        assert_eq!(opts.workers, 4);
        assert_eq!(opts.max_sessions, 16);

        let opts = ServeOptions::parse(&args(&[
            "topo=er:50",
            "wl=commuter-dynamic",
            "strat=onbr",
            "source=demand.jsonl",
            "resume=true",
            "flipped=true",
        ]))
        .unwrap();
        assert_eq!(opts.session.source, SourceKind::File("demand.jsonl".into()));
        assert!(opts.session.resume);
        assert_eq!(opts.session.cell.params.migration_beta, 400.0);
        assert_eq!(opts.session.cell.params.creation_c, 40.0);
    }

    #[test]
    fn parse_server_keys() {
        let base = ["topo=unit-line:8", "wl=uniform:req=3", "strat=onth"];
        let with = |extra: &[&str]| {
            let mut a = base.to_vec();
            a.extend_from_slice(extra);
            ServeOptions::parse(&args(&a))
        };

        // bind=<ip>:<port> sets both
        let opts = with(&["bind=0.0.0.0:9000"]).unwrap();
        assert_eq!(opts.bind, "0.0.0.0".parse::<IpAddr>().unwrap());
        assert_eq!(opts.port, 9000);
        // bind=<ip> keeps the port key
        let opts = with(&["bind=0.0.0.0", "port=8111"]).unwrap();
        assert_eq!(opts.bind, "0.0.0.0".parse::<IpAddr>().unwrap());
        assert_eq!(opts.port, 8111);
        assert!(with(&["bind=not-an-ip"]).unwrap_err().contains("bind"));

        let opts = with(&["workers=2", "max-sessions=3"]).unwrap();
        assert_eq!(opts.workers, 2);
        assert_eq!(opts.max_sessions, 3);
        assert!(opts.idle_evict.is_none(), "idle-evict defaults to off");
        assert!(with(&["workers=0"]).is_err());
        assert!(with(&["max-sessions=0"]).is_err());

        // reactor-threads: the epoll front end's event-loop pool
        let opts = with(&[]).unwrap();
        assert_eq!(opts.reactor_threads, 2, "reactor-threads defaults to 2");
        let opts = with(&["reactor-threads=4"]).unwrap();
        assert_eq!(opts.reactor_threads, 4);
        assert!(with(&["reactor-threads=0"]).is_err());
        assert!(with(&["reactor-threads=17"]).is_err());
        assert!(with(&["reactor-threads=many"]).is_err());

        // idle-evict takes seconds (fractions allowed), strictly positive
        let opts = with(&["idle-evict=30"]).unwrap();
        assert_eq!(opts.idle_evict, Some(std::time::Duration::from_secs(30)));
        let opts = with(&["idle-evict=0.5"]).unwrap();
        assert_eq!(opts.idle_evict, Some(std::time::Duration::from_millis(500)));
        assert!(with(&["idle-evict=0"]).is_err());
        assert!(with(&["idle-evict=-1"]).is_err());
        assert!(with(&["idle-evict=soon"]).is_err());

        // request-timeout: same shape, with a 30s default
        let opts = with(&[]).unwrap();
        assert_eq!(opts.request_timeout, std::time::Duration::from_secs(30));
        let opts = with(&["request-timeout=2.5"]).unwrap();
        assert_eq!(
            opts.request_timeout,
            std::time::Duration::from_millis(2_500)
        );
        assert!(with(&["request-timeout=0"]).is_err());
        assert!(with(&["request-timeout=never"]).is_err());
    }

    #[test]
    fn loopback_vs_non_loopback_warning() {
        let quiet: SocketAddr = "127.0.0.1:7788".parse().unwrap();
        assert!(non_loopback_warning(&quiet).is_none());
        let loud: SocketAddr = "0.0.0.0:7788".parse().unwrap();
        let warning = non_loopback_warning(&loud).unwrap();
        assert!(warning.contains("WARNING"), "{warning}");
        assert!(warning.contains("0.0.0.0:7788"), "{warning}");
    }

    #[test]
    fn offstat_needs_a_scenario_source() {
        let opts = ServeOptions::parse(&args(&[
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=offstat",
            "source=stdin",
            "k=4",
        ]))
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve_on(listener, &opts).unwrap_err();
        assert!(err.contains("source=scenario"), "{err}");
    }
}
