//! The nonblocking epoll front end: a small fixed pool of reactor
//! threads owns every client connection, parses requests incrementally
//! off readiness events, and hands complete requests to the worker pool.
//!
//! The point is the cost model. The old front end parked one worker
//! thread per in-flight connection, so 10k idle keep-alive clients meant
//! 10k blocked threads (or, with a bounded pool, a starved daemon). Under
//! the reactor an idle connection costs one file descriptor and ~100
//! bytes of table state: `reactor-threads=` (default 2) threads multiplex
//! *all* connections through `epoll_wait`, and only connections with a
//! complete request in hand occupy a worker.
//!
//! Like the mmap shim in `flexserve_workload::packed`, the epoll plumbing
//! is a hand-rolled `extern "C"` shim over raw syscalls
//! (`epoll_create1` / `epoll_ctl` / `epoll_wait`, `pipe2` for cross-thread
//! wakeups, `setrlimit` to lift the fd soft cap) — no new dependencies.
//! On non-Linux hosts the daemon falls back to the previous blocking
//! accept-loop + worker-pool front end; the HTTP semantics
//! (keep-alive, 408 stalled-request timeouts, 413 caps, graceful
//! shutdown) are identical either way and pinned by `tests/serve_http.rs`.
//!
//! Division of labor per connection:
//!
//! ```text
//!  accept loop ──round robin──▶ reactor: epoll_wait ──▶ read, buffer,
//!                                        try_parse_request (incremental)
//!                                │ complete request
//!                                ▼
//!                        worker pool: route → dispatch → render_response,
//!                        write on the connection (nonblocking)
//!                                │ Done / Flush{rest}
//!                                ▼
//!                        reactor: finish partial writes (EPOLLOUT),
//!                        re-arm EPOLLIN, sweep idle/stalled deadlines
//! ```
//!
//! A connection is in exactly one of three states: `Reading` (reactor
//! owns it, EPOLLIN armed), `Busy` (a worker owns it, no interest mask so
//! a flooding client cannot buffer unboundedly), or `Writing` (reactor
//! drains a response the worker could not finish, EPOLLOUT armed).
//! Deadlines mirror the blocking front end exactly: a connection that has
//! never completed a request gets `request-timeout=`, an idle keep-alive
//! connection gets [`KEEP_ALIVE_IDLE`], expiry with a half-read request
//! answers 408 and closes, expiry with an empty buffer closes quietly.

#[cfg(target_os = "linux")]
pub use linux::raise_nofile_limit;
#[cfg(target_os = "linux")]
pub(crate) use linux::run_front_end;

#[cfg(target_os = "linux")]
mod linux {
    use std::collections::HashMap;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::sync::atomic::Ordering;
    use std::sync::{mpsc, Arc, Mutex};
    use std::time::{Duration, Instant};

    use super::super::handlers::{self, KEEP_ALIVE_IDLE};
    use super::super::http::{render_response, try_parse_request, HttpError, HttpRequest};
    use super::super::ServeShared;

    /// Raw syscall shims (same vendoring philosophy as the mmap shim in
    /// `flexserve_workload::packed`): just the epoll, pipe and rlimit
    /// surface the reactor needs, against the platform libc the binary
    /// already links.
    mod sys {
        use std::ffi::c_void;

        pub const EPOLLIN: u32 = 0x1;
        pub const EPOLLOUT: u32 = 0x4;
        pub const EPOLLERR: u32 = 0x8;
        pub const EPOLLHUP: u32 = 0x10;
        pub const EPOLL_CTL_ADD: i32 = 1;
        pub const EPOLL_CTL_DEL: i32 = 2;
        pub const EPOLL_CTL_MOD: i32 = 3;
        const EPOLL_CLOEXEC: i32 = 0o2000000;
        const O_NONBLOCK: i32 = 0o4000;
        const O_CLOEXEC: i32 = 0o2000000;
        const RLIMIT_NOFILE: i32 = 7;

        /// The kernel's `struct epoll_event`; packed on x86 so the
        /// 64-bit data member sits at offset 4, matching the ABI.
        #[repr(C)]
        #[cfg_attr(any(target_arch = "x86_64", target_arch = "x86"), repr(packed))]
        #[derive(Clone, Copy)]
        pub struct EpollEvent {
            pub events: u32,
            pub data: u64,
        }

        #[repr(C)]
        struct RLimit {
            cur: u64,
            max: u64,
        }

        extern "C" {
            fn epoll_create1(flags: i32) -> i32;
            fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
            fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
            fn pipe2(fds: *mut i32, flags: i32) -> i32;
            fn read(fd: i32, buf: *mut c_void, count: usize) -> isize;
            fn write(fd: i32, buf: *const c_void, count: usize) -> isize;
            fn close(fd: i32) -> i32;
            fn getrlimit(resource: i32, rlim: *mut RLimit) -> i32;
            fn setrlimit(resource: i32, rlim: *const RLimit) -> i32;
        }

        pub fn create() -> std::io::Result<i32> {
            let fd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if fd < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(fd)
        }

        pub fn ctl(epfd: i32, op: i32, fd: i32, events: u32, data: u64) -> std::io::Result<()> {
            let mut ev = EpollEvent { events, data };
            let rc = unsafe { epoll_ctl(epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(())
        }

        pub fn wait(
            epfd: i32,
            events: &mut [EpollEvent],
            timeout_ms: i32,
        ) -> std::io::Result<usize> {
            let n =
                unsafe { epoll_wait(epfd, events.as_mut_ptr(), events.len() as i32, timeout_ms) };
            if n < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok(n as usize)
        }

        /// A nonblocking self-pipe: `(read_end, write_end)`.
        pub fn wake_pipe() -> std::io::Result<(i32, i32)> {
            let mut fds = [0i32; 2];
            let rc = unsafe { pipe2(fds.as_mut_ptr(), O_NONBLOCK | O_CLOEXEC) };
            if rc < 0 {
                return Err(std::io::Error::last_os_error());
            }
            Ok((fds[0], fds[1]))
        }

        /// One byte down the wake pipe; a full pipe means a wakeup is
        /// already pending, so failures are ignored.
        pub fn poke(fd: i32) {
            let byte = [1u8];
            let _ = unsafe { write(fd, byte.as_ptr() as *const c_void, 1) };
        }

        /// Drains every pending wake byte.
        pub fn drain(fd: i32) {
            let mut buf = [0u8; 256];
            while unsafe { read(fd, buf.as_mut_ptr() as *mut c_void, buf.len()) } > 0 {}
        }

        pub fn close_fd(fd: i32) {
            let _ = unsafe { close(fd) };
        }

        /// Lifts the `RLIMIT_NOFILE` soft limit to the hard limit and
        /// returns the resulting soft limit (connections cost fds under
        /// the reactor, so the default 1024 would cap the daemon long
        /// before memory does).
        pub fn raise_nofile() -> u64 {
            let mut lim = RLimit { cur: 0, max: 0 };
            if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
                return 0;
            }
            if lim.cur < lim.max {
                let want = RLimit {
                    cur: lim.max,
                    max: lim.max,
                };
                if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
                    return want.cur;
                }
            }
            lim.cur
        }
    }

    /// Lifts this process's fd soft limit (`RLIMIT_NOFILE`) to its hard
    /// limit and returns the new soft limit. Exposed for the soak tests
    /// and benches whose *clients* also hold 10k sockets.
    pub fn raise_nofile_limit() -> u64 {
        sys::raise_nofile()
    }

    /// The epoll token of the wake pipe (connection ids start at 0 and
    /// count up, so the maximum is free).
    const WAKE_TOKEN: u64 = u64::MAX;
    /// How long `epoll_wait` may sleep between deadline sweeps.
    const TICK_MS: i32 = 100;
    /// Stop pulling bytes off a connection once this much is buffered
    /// unparsed; level-triggered epoll resumes the read once the buffer
    /// drains (the HTTP caps bound any *single* request much earlier —
    /// this bounds a pipelined flood).
    const READ_HIGH_WATER: usize = 1024 * 1024;
    /// How long a shutting-down reactor waits for in-flight responses
    /// before force-closing what's left.
    const SHUTDOWN_GRACE: Duration = Duration::from_secs(30);

    /// A complete request handed from a reactor to the worker pool. The
    /// worker computes and writes the response on its own dup of the
    /// stream, then posts [`Msg::Done`] (or [`Msg::Flush`] with the
    /// unwritten tail) back to the owning reactor.
    pub(crate) struct Job {
        reactor: usize,
        conn: u64,
        stream: TcpStream,
        request: HttpRequest,
    }

    /// Cross-thread mail for one reactor: new connections from the
    /// accept loop, completions from the workers.
    enum Msg {
        Conn(TcpStream),
        Done {
            conn: u64,
            keep_alive: bool,
        },
        Flush {
            conn: u64,
            rest: Vec<u8>,
            keep_alive: bool,
        },
    }

    /// The half of a reactor other threads may touch: the mailbox and
    /// the write end of its wake pipe (closed when the last clone drops,
    /// i.e. after the workers are joined).
    struct ReactorHandle {
        inbox: Mutex<Vec<Msg>>,
        wake_w: i32,
    }

    impl ReactorHandle {
        fn send(&self, msg: Msg) {
            self.inbox.lock().unwrap().push(msg);
            sys::poke(self.wake_w);
        }

        fn wake(&self) {
            sys::poke(self.wake_w);
        }
    }

    impl Drop for ReactorHandle {
        fn drop(&mut self) {
            sys::close_fd(self.wake_w);
        }
    }

    #[derive(Clone, Copy, PartialEq, Eq)]
    enum State {
        /// The reactor is accumulating request bytes (EPOLLIN armed).
        Reading,
        /// A worker owns the connection; no epoll interest.
        Busy,
        /// The reactor is draining response bytes (EPOLLOUT armed).
        Writing,
    }

    /// Per-connection state: ~100 bytes plus whatever is buffered, which
    /// is the whole cost of an idle keep-alive client.
    struct Conn {
        stream: TcpStream,
        /// Received-but-unparsed bytes.
        buf: Vec<u8>,
        /// Response bytes the worker could not write without blocking.
        out: Vec<u8>,
        out_pos: usize,
        state: State,
        /// Whether any request has completed on this connection — picks
        /// between the first-request timeout and the keep-alive window.
        served_any: bool,
        /// The peer half-closed; serve what is buffered, then close.
        peer_eof: bool,
        close_after_write: bool,
        /// Whether the fd is currently in the epoll set.
        registered: bool,
        /// Last byte received or response finished; deadlines key off it.
        last: Instant,
    }

    struct Reactor {
        index: usize,
        epfd: i32,
        wake_r: i32,
        handle: Arc<ReactorHandle>,
        conns: HashMap<u64, Conn>,
        next_id: u64,
        job_tx: mpsc::Sender<Job>,
        serve: Arc<ServeShared>,
        /// Last deadline sweep; the sweep walks every connection, so it
        /// runs at most once per tick rather than on every wakeup (a busy
        /// reactor holding 10k idle connections would otherwise pay an
        /// O(connections) scan per request).
        last_sweep: Instant,
    }

    impl Drop for Reactor {
        fn drop(&mut self) {
            sys::close_fd(self.epfd);
            sys::close_fd(self.wake_r);
        }
    }

    impl Reactor {
        fn new(
            index: usize,
            job_tx: mpsc::Sender<Job>,
            serve: Arc<ServeShared>,
        ) -> Result<(Arc<ReactorHandle>, Reactor), String> {
            let epfd = sys::create().map_err(|e| format!("serve: epoll_create1: {e}"))?;
            let (wake_r, wake_w) = match sys::wake_pipe() {
                Ok(p) => p,
                Err(e) => {
                    sys::close_fd(epfd);
                    return Err(format!("serve: pipe2: {e}"));
                }
            };
            if let Err(e) = sys::ctl(epfd, sys::EPOLL_CTL_ADD, wake_r, sys::EPOLLIN, WAKE_TOKEN) {
                sys::close_fd(epfd);
                sys::close_fd(wake_r);
                sys::close_fd(wake_w);
                return Err(format!("serve: epoll_ctl(wake): {e}"));
            }
            let handle = Arc::new(ReactorHandle {
                inbox: Mutex::new(Vec::new()),
                wake_w,
            });
            Ok((
                Arc::clone(&handle),
                Reactor {
                    index,
                    epfd,
                    wake_r,
                    handle,
                    conns: HashMap::new(),
                    next_id: 0,
                    job_tx,
                    serve,
                    last_sweep: Instant::now(),
                },
            ))
        }

        fn run(mut self) {
            let mut events = vec![sys::EpollEvent { events: 0, data: 0 }; 1024];
            let mut shutdown_seen: Option<Instant> = None;
            loop {
                let n = match sys::wait(self.epfd, &mut events, TICK_MS) {
                    Ok(n) => n,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => 0,
                    Err(e) => {
                        eprintln!("serve: epoll_wait: {e}");
                        break;
                    }
                };
                self.drain_inbox();
                for ev in events.iter().take(n) {
                    let ev = *ev; // copy out of the (possibly packed) slot
                    self.handle_event(ev.events, ev.data);
                }
                let now = Instant::now();
                if now.duration_since(self.last_sweep).as_millis() >= TICK_MS as u128 {
                    self.last_sweep = now;
                    self.sweep(now);
                }
                if self.serve.shutdown.load(Ordering::SeqCst) {
                    let now = Instant::now();
                    let started = *shutdown_seen.get_or_insert(now);
                    // Close idle connections outright; in-flight requests
                    // finish (their responses carry `Connection: close`).
                    let idle: Vec<u64> = self
                        .conns
                        .iter()
                        .filter(|(_, c)| c.state == State::Reading)
                        .map(|(&id, _)| id)
                        .collect();
                    for id in idle {
                        self.close(id);
                    }
                    if self.conns.is_empty() || now.duration_since(started) > SHUTDOWN_GRACE {
                        break;
                    }
                }
            }
        }

        fn drain_inbox(&mut self) {
            sys::drain(self.wake_r);
            let msgs: Vec<Msg> = std::mem::take(&mut *self.handle.inbox.lock().unwrap());
            for msg in msgs {
                match msg {
                    Msg::Conn(stream) => self.add_conn(stream),
                    Msg::Done { conn, keep_alive } => self.on_done(conn, keep_alive),
                    Msg::Flush {
                        conn,
                        rest,
                        keep_alive,
                    } => {
                        if let Some(c) = self.conns.get_mut(&conn) {
                            c.served_any = true;
                        }
                        self.start_write(conn, rest, keep_alive);
                    }
                }
            }
        }

        fn add_conn(&mut self, stream: TcpStream) {
            let id = self.next_id;
            self.next_id += 1;
            self.conns.insert(
                id,
                Conn {
                    stream,
                    buf: Vec::new(),
                    out: Vec::new(),
                    out_pos: 0,
                    state: State::Reading,
                    served_any: false,
                    peer_eof: false,
                    close_after_write: false,
                    registered: false,
                    last: Instant::now(),
                },
            );
            if !self.set_interest(id, sys::EPOLLIN) {
                self.close(id);
            }
        }

        /// Points the epoll entry for `id` at `events` (0 = parked while
        /// a worker owns the connection). Returns false when the kernel
        /// refuses — the connection is unusable then.
        fn set_interest(&mut self, id: u64, events: u32) -> bool {
            let Some(conn) = self.conns.get_mut(&id) else {
                return false;
            };
            let fd = conn.stream.as_raw_fd();
            let op = if conn.registered {
                sys::EPOLL_CTL_MOD
            } else {
                sys::EPOLL_CTL_ADD
            };
            match sys::ctl(self.epfd, op, fd, events, id) {
                Ok(()) => {
                    conn.registered = true;
                    true
                }
                Err(_) => false,
            }
        }

        fn handle_event(&mut self, bits: u32, token: u64) {
            if token == WAKE_TOKEN {
                sys::drain(self.wake_r);
                return;
            }
            let Some(conn) = self.conns.get_mut(&token) else {
                return; // closed earlier in this batch
            };
            if bits & (sys::EPOLLERR | sys::EPOLLHUP) != 0 {
                match conn.state {
                    // The worker's write will surface the error; drop the
                    // fd from the set so a level-triggered HUP can't spin.
                    State::Busy => {
                        let fd = conn.stream.as_raw_fd();
                        let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
                        conn.registered = false;
                    }
                    _ => self.close(token),
                }
                return;
            }
            if bits & sys::EPOLLIN != 0 {
                self.on_readable(token);
            }
            if bits & sys::EPOLLOUT != 0 {
                self.on_writable(token);
            }
        }

        fn on_readable(&mut self, id: u64) {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.state != State::Reading || conn.peer_eof {
                return;
            }
            let mut chunk = [0u8; 16 * 1024];
            loop {
                match conn.stream.read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.buf.extend_from_slice(&chunk[..n]);
                        conn.last = Instant::now();
                        if conn.buf.len() >= READ_HIGH_WATER {
                            break;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        self.close(id);
                        return;
                    }
                }
            }
            self.try_dispatch(id);
        }

        /// Attempts to cut one complete request off the buffer and hand
        /// it to the workers; on a framing error, queues the error
        /// response (which always closes, like the blocking front end).
        fn try_dispatch(&mut self, id: u64) {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            if conn.state != State::Reading {
                return;
            }
            match try_parse_request(&conn.buf) {
                Ok(None) => {
                    // Half a request and a half-closed peer can never
                    // complete; an empty buffer + EOF is just a close.
                    if conn.peer_eof {
                        self.close(id);
                    }
                }
                Ok(Some((request, consumed))) => {
                    conn.buf.drain(..consumed);
                    let stream = match conn.stream.try_clone() {
                        Ok(s) => s,
                        Err(_) => {
                            self.close(id);
                            return;
                        }
                    };
                    conn.state = State::Busy;
                    let job = Job {
                        reactor: self.index,
                        conn: id,
                        stream,
                        request,
                    };
                    if self.job_tx.send(job).is_err() {
                        // workers are gone: tearing down
                        self.close(id);
                        return;
                    }
                    self.set_interest(id, 0);
                }
                Err(e) => {
                    let body = handlers::error_json(&e.message()).render();
                    let bytes = render_response(e.status(), &body, false);
                    self.start_write(id, bytes, false);
                }
            }
        }

        /// A worker finished writing a response in full.
        fn on_done(&mut self, id: u64, keep_alive: bool) {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            conn.served_any = true;
            if !keep_alive {
                self.close(id);
                return;
            }
            conn.state = State::Reading;
            conn.last = Instant::now();
            if !self.set_interest(id, sys::EPOLLIN) {
                self.close(id);
                return;
            }
            // Pipelined bytes may already hold the next request.
            self.try_dispatch(id);
            if let Some(conn) = self.conns.get(&id) {
                if conn.state == State::Reading && conn.peer_eof && conn.buf.is_empty() {
                    self.close(id);
                }
            }
        }

        /// Takes over a response the worker could not finish (or an
        /// error/408 response originated by the reactor itself).
        fn start_write(&mut self, id: u64, bytes: Vec<u8>, keep_alive: bool) {
            let Some(conn) = self.conns.get_mut(&id) else {
                return;
            };
            conn.out = bytes;
            conn.out_pos = 0;
            conn.state = State::Writing;
            conn.close_after_write = !keep_alive;
            conn.last = Instant::now();
            self.on_writable(id); // the common case completes immediately
        }

        fn on_writable(&mut self, id: u64) {
            loop {
                let Some(conn) = self.conns.get_mut(&id) else {
                    return;
                };
                if conn.state != State::Writing {
                    return;
                }
                if conn.out_pos >= conn.out.len() {
                    conn.out = Vec::new();
                    conn.out_pos = 0;
                    conn.served_any = true;
                    if conn.close_after_write {
                        self.close(id);
                        return;
                    }
                    conn.state = State::Reading;
                    conn.last = Instant::now();
                    if !self.set_interest(id, sys::EPOLLIN) {
                        self.close(id);
                        return;
                    }
                    self.try_dispatch(id);
                    if let Some(conn) = self.conns.get(&id) {
                        if conn.state == State::Reading && conn.peer_eof && conn.buf.is_empty() {
                            self.close(id);
                        }
                    }
                    return;
                }
                let pos = conn.out_pos;
                match conn.stream.write(&conn.out[pos..]) {
                    Ok(0) => {
                        self.close(id);
                        return;
                    }
                    Ok(n) => {
                        if let Some(conn) = self.conns.get_mut(&id) {
                            conn.out_pos += n;
                        }
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        conn.last = Instant::now();
                        if !self.set_interest(id, sys::EPOLLOUT) {
                            self.close(id);
                        }
                        return;
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                    Err(_) => {
                        self.close(id);
                        return;
                    }
                }
            }
        }

        /// Expires deadlines, mirroring the blocking front end: stalled
        /// mid-request → 408 and close; idle with nothing buffered →
        /// quiet close; a response the peer won't drain → close.
        fn sweep(&mut self, now: Instant) {
            let request_timeout = self.serve.request_timeout;
            let mut expired: Vec<(u64, bool)> = Vec::new();
            for (&id, conn) in &self.conns {
                let (limit, stalled_request) = match conn.state {
                    State::Busy => continue, // the worker owns the clock
                    State::Writing => (request_timeout, false),
                    State::Reading => {
                        let limit = if conn.served_any {
                            KEEP_ALIVE_IDLE
                        } else {
                            request_timeout
                        };
                        (limit, !conn.buf.is_empty())
                    }
                };
                if now.duration_since(conn.last) > limit {
                    expired.push((id, stalled_request));
                }
            }
            for (id, stalled_request) in expired {
                if stalled_request {
                    let e = HttpError::Timeout;
                    let body = handlers::error_json(&e.message()).render();
                    let bytes = render_response(e.status(), &body, false);
                    self.start_write(id, bytes, false);
                } else {
                    self.close(id);
                }
            }
        }

        fn close(&mut self, id: u64) {
            if let Some(conn) = self.conns.remove(&id) {
                if conn.registered {
                    let fd = conn.stream.as_raw_fd();
                    let _ = sys::ctl(self.epfd, sys::EPOLL_CTL_DEL, fd, 0, 0);
                }
                // dropping the stream closes the fd
            }
        }
    }

    /// The worker half: pull a complete request, run it through the
    /// route/dispatch pipeline, write the response on the worker's dup of
    /// the stream, and post the outcome back to the owning reactor. The
    /// response write happens *here* so a request's client-visible
    /// latency never pays a second reactor hop.
    fn worker_loop(
        job_rx: &Arc<Mutex<mpsc::Receiver<Job>>>,
        shared: &Arc<ServeShared>,
        reactors: &[Arc<ReactorHandle>],
    ) {
        loop {
            let job = { job_rx.lock().unwrap().recv() };
            let Ok(job) = job else {
                break; // reactors are gone
            };
            let outcome = handlers::process_request(&job.request, shared);
            let bytes = render_response(outcome.status, &outcome.body, outcome.keep_alive);
            let reactor = &reactors[job.reactor];
            match write_nonblocking(&job.stream, &bytes) {
                WriteOutcome::Complete => reactor.send(Msg::Done {
                    conn: job.conn,
                    keep_alive: outcome.keep_alive,
                }),
                WriteOutcome::Partial(rest) => reactor.send(Msg::Flush {
                    conn: job.conn,
                    rest,
                    keep_alive: outcome.keep_alive,
                }),
                WriteOutcome::Failed => reactor.send(Msg::Done {
                    conn: job.conn,
                    keep_alive: false,
                }),
            }
            // After the response, like the blocking front end: the
            // shutdown answer reaches the client before the teardown.
            if outcome.shutdown {
                handlers::begin_shutdown(shared);
            }
        }
    }

    enum WriteOutcome {
        Complete,
        Partial(Vec<u8>),
        Failed,
    }

    /// Writes as much of `bytes` as the socket accepts without blocking;
    /// the tail (if any) goes back to the reactor for EPOLLOUT draining.
    fn write_nonblocking(mut stream: &TcpStream, bytes: &[u8]) -> WriteOutcome {
        let mut pos = 0usize;
        while pos < bytes.len() {
            match stream.write(&bytes[pos..]) {
                Ok(0) => return WriteOutcome::Failed,
                Ok(n) => pos += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    return WriteOutcome::Partial(bytes[pos..].to_vec())
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(_) => return WriteOutcome::Failed,
            }
        }
        WriteOutcome::Complete
    }

    /// Runs the event-driven front end until shutdown: spawns the
    /// reactor pool and the worker pool, then accepts connections on the
    /// caller's thread, handing each to a reactor round-robin. Returns
    /// once every connection is drained and every thread joined; the
    /// caller (`serve_on`) then checkpoints and stops the sessions.
    pub(crate) fn run_front_end(
        listener: TcpListener,
        shared: &Arc<ServeShared>,
        workers: usize,
        reactor_threads: usize,
    ) -> Result<(), String> {
        raise_nofile_limit();
        let (job_tx, job_rx) = mpsc::channel::<Job>();
        let job_rx = Arc::new(Mutex::new(job_rx));

        let mut handles: Vec<Arc<ReactorHandle>> = Vec::with_capacity(reactor_threads);
        let mut reactor_joins = Vec::with_capacity(reactor_threads);
        for i in 0..reactor_threads {
            let (handle, reactor) = Reactor::new(i, job_tx.clone(), Arc::clone(shared))?;
            handles.push(handle);
            reactor_joins.push(
                std::thread::Builder::new()
                    .name(format!("serve-reactor-{i}"))
                    .spawn(move || reactor.run())
                    .map_err(|e| format!("serve: cannot spawn reactor: {e}"))?,
            );
        }
        // The reactors hold the only senders now, so the workers unblock
        // exactly when the last reactor exits.
        drop(job_tx);

        let mut worker_joins = Vec::with_capacity(workers);
        for i in 0..workers {
            let rx = Arc::clone(&job_rx);
            let shared = Arc::clone(shared);
            let reactors = handles.clone();
            worker_joins.push(
                std::thread::Builder::new()
                    .name(format!("serve-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &shared, &reactors))
                    .map_err(|e| format!("serve: cannot spawn worker: {e}"))?,
            );
        }

        let mut next = 0usize;
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            match stream {
                Ok(s) => {
                    // O_NONBLOCK before the reactor ever sees the fd; the
                    // worker's dup shares the flag. NODELAY because every
                    // exchange is a small request/response pair.
                    let _ = s.set_nonblocking(true);
                    let _ = s.set_nodelay(true);
                    handles[next % reactor_threads].send(Msg::Conn(s));
                    next += 1;
                }
                Err(e) => eprintln!("serve: accept error: {e}"),
            }
        }
        for handle in &handles {
            handle.wake();
        }
        for join in reactor_joins {
            let _ = join.join();
        }
        for join in worker_joins {
            let _ = join.join();
        }
        Ok(())
    }
}

/// Non-Linux fallback: the previous blocking accept-loop + worker-pool
/// front end, byte-identical HTTP semantics (each worker owns whole
/// connections via `handlers::handle_connection`).
#[cfg(not(target_os = "linux"))]
pub(crate) fn run_front_end(
    listener: std::net::TcpListener,
    shared: &std::sync::Arc<super::ServeShared>,
    workers: usize,
    _reactor_threads: usize,
) -> Result<(), String> {
    use std::sync::atomic::Ordering;
    use std::sync::{mpsc, Arc, Mutex};

    let (conn_tx, conn_rx) = mpsc::channel::<std::net::TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let mut joins = Vec::with_capacity(workers);
    for i in 0..workers {
        let rx = Arc::clone(&conn_rx);
        let shared = Arc::clone(shared);
        joins.push(
            std::thread::Builder::new()
                .name(format!("serve-worker-{i}"))
                .spawn(move || loop {
                    let conn = { rx.lock().unwrap().recv() };
                    match conn {
                        Ok(stream) => {
                            if let Err(e) = super::handlers::handle_connection(stream, &shared) {
                                eprintln!("serve: connection error: {e}");
                            }
                        }
                        Err(_) => break, // accept loop is gone
                    }
                })
                .map_err(|e| format!("serve: cannot spawn worker: {e}"))?,
        );
    }
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                if conn_tx.send(s).is_err() {
                    break;
                }
            }
            Err(e) => eprintln!("serve: accept error: {e}"),
        }
    }
    drop(conn_tx); // workers drain the queue, then exit
    for join in joins {
        let _ = join.join();
    }
    Ok(())
}

/// No rlimit shim off Linux; reports 0 ("unknown").
#[cfg(not(target_os = "linux"))]
pub fn raise_nofile_limit() -> u64 {
    0
}
