//! Minimal hand-rolled HTTP/1.1 plumbing for the serve daemon: request
//! reading, response writing, and the route table mapping paths onto
//! session operations. No external HTTP crate — the daemon speaks just
//! enough HTTP for `curl` and the integration tests, exactly like the
//! rest of the workspace hand-rolls its JSON.

use std::io::BufRead;
use std::io::Write;
use std::net::TcpStream;

use super::sessions::DEFAULT_SESSION;

/// One parsed HTTP request: the request line, the body, and whether the
/// client wants the connection kept open afterwards (only the
/// `Content-Length` and `Connection` headers matter).
#[derive(Debug)]
pub(crate) struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: String,
    /// `Connection: keep-alive` semantics: the HTTP/1.1 default unless
    /// the client sends `Connection: close` (HTTP/1.0 defaults to close
    /// unless it asks for `keep-alive`).
    pub keep_alive: bool,
}

/// Per-line cap on the request line and each header line.
const MAX_HEADER_LINE: usize = 8 * 1024;
/// Cap on the whole header block, request line included.
const MAX_HEADER_BYTES: usize = 32 * 1024;
/// Cap on a declared request body: a daemon on loopback still shouldn't
/// let one request balloon the process.
const MAX_BODY_BYTES: usize = 16 * 1024 * 1024;

/// Why reading a request off the wire failed; each variant maps onto the
/// HTTP status the daemon answers with before closing the connection.
#[derive(Debug)]
pub(crate) enum HttpError {
    /// The connection stalled mid-request — bytes were received, then the
    /// read timeout fired (408).
    Timeout,
    /// A header line, the header block, or the declared body exceeds its
    /// cap (413).
    TooLarge(String),
    /// Any other framing error (400).
    Malformed(String),
}

impl HttpError {
    /// The HTTP status this error is reported as.
    pub(crate) fn status(&self) -> u16 {
        match self {
            HttpError::Timeout => 408,
            HttpError::TooLarge(_) => 413,
            HttpError::Malformed(_) => 400,
        }
    }

    /// The error body text.
    pub(crate) fn message(&self) -> String {
        match self {
            HttpError::Timeout => "request timed out mid-read".into(),
            HttpError::TooLarge(m) | HttpError::Malformed(m) => m.clone(),
        }
    }
}

fn is_timeout(e: &std::io::Error) -> bool {
    matches!(
        e.kind(),
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
    )
}

/// Reads one `\n`-terminated line of at most [`MAX_HEADER_LINE`] bytes
/// into `line`, returning the bytes read (0 = EOF). Reading through a
/// `take` bounds memory *before* the terminator check: a gigabyte header
/// line trips the cap after 8 KiB instead of being buffered whole.
fn read_line_capped<R: BufRead>(reader: &mut R, line: &mut String) -> Result<usize, HttpError> {
    let mut limited = std::io::Read::take(&mut *reader, (MAX_HEADER_LINE + 1) as u64);
    let n = limited.read_line(line).map_err(|e| {
        if is_timeout(&e) {
            HttpError::Timeout
        } else {
            HttpError::Malformed(format!("read header: {e}"))
        }
    })?;
    if line.len() > MAX_HEADER_LINE {
        return Err(HttpError::TooLarge(format!(
            "header line exceeds the {MAX_HEADER_LINE}-byte cap"
        )));
    }
    Ok(n)
}

/// Reads one HTTP request from `reader`. `Ok(None)` is a clean end of the
/// connection: the client closed (EOF) or idled past the read timeout
/// *between* requests — normal in a keep-alive loop, never an error.
/// Every read is bounded: header lines at [`MAX_HEADER_LINE`], the header
/// block at [`MAX_HEADER_BYTES`], the body at [`MAX_BODY_BYTES`], and a
/// timeout mid-request surfaces as [`HttpError::Timeout`] (408) instead
/// of holding the worker hostage to a stalled client.
pub(crate) fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<HttpRequest>, HttpError> {
    let mut line = String::new();
    match read_line_capped(reader, &mut line) {
        Ok(0) => return Ok(None), // client closed between requests
        Ok(_) => {}
        // An idle timeout with nothing received yet is a quiet close; a
        // timeout mid-request-line means the client stalled (408).
        Err(HttpError::Timeout) if line.is_empty() => return Ok(None),
        Err(e) => return Err(e),
    }
    let mut header_bytes = line.len();
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_string();
    // HTTP/1.1 (and anything newer) defaults to persistent connections;
    // a bare HTTP/1.0 client must opt in.
    let mut keep_alive = parts.next() != Some("HTTP/1.0");

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = read_line_capped(reader, &mut header)?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        header_bytes += n;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge(format!(
                "header block exceeds the {MAX_HEADER_BYTES}-byte cap"
            )));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the 16 MiB cap"
        )));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if is_timeout(&e) {
            HttpError::Timeout
        } else {
            HttpError::Malformed(format!("read body: {e}"))
        }
    })?;
    let body =
        String::from_utf8(body).map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?;
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// Finds the next `\n` at or after `from`.
fn find_nl(buf: &[u8], from: usize) -> Option<usize> {
    buf[from..]
        .iter()
        .position(|&b| b == b'\n')
        .map(|i| from + i)
}

/// Incremental counterpart of [`read_request`] for the epoll front end:
/// parses one request out of a reactor's accumulated byte buffer.
/// Returns `Ok(None)` while the buffer holds only a request prefix,
/// `Ok(Some((request, consumed)))` once a whole request (headers + body)
/// is present — `consumed` bytes belong to it and any remainder is the
/// next pipelined request — and `Err` exactly where [`read_request`]
/// would fail, with the same cap thresholds and messages (pinned by the
/// `incremental_parse_agrees_with_read_request` test below).
pub(crate) fn try_parse_request(buf: &[u8]) -> Result<Option<(HttpRequest, usize)>, HttpError> {
    let line_too_large = || {
        HttpError::TooLarge(format!(
            "header line exceeds the {MAX_HEADER_LINE}-byte cap"
        ))
    };
    // request line
    let nl = match find_nl(buf, 0) {
        Some(i) => i,
        None => {
            // more than a full line's worth of bytes with no terminator
            // can never become a valid request line
            if buf.len() > MAX_HEADER_LINE {
                return Err(line_too_large());
            }
            return Ok(None);
        }
    };
    if nl + 1 > MAX_HEADER_LINE {
        return Err(line_too_large());
    }
    let line = std::str::from_utf8(&buf[..nl])
        .map_err(|_| HttpError::Malformed("request line is not UTF-8".into()))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("empty request line".into()))?
        .to_string();
    let path = parts
        .next()
        .ok_or_else(|| HttpError::Malformed("request line has no path".into()))?
        .to_string();
    let mut keep_alive = parts.next() != Some("HTTP/1.0");

    let mut header_bytes = nl + 1;
    let mut content_length = 0usize;
    let mut pos = nl + 1;
    loop {
        let hnl = match find_nl(buf, pos) {
            Some(i) => i,
            None => {
                if buf.len() - pos > MAX_HEADER_LINE {
                    return Err(line_too_large());
                }
                return Ok(None); // header block still arriving
            }
        };
        if hnl + 1 - pos > MAX_HEADER_LINE {
            return Err(line_too_large());
        }
        let header = std::str::from_utf8(&buf[pos..hnl])
            .map_err(|_| HttpError::Malformed("header is not UTF-8".into()))?;
        let line_len = hnl + 1 - pos;
        pos = hnl + 1;
        if header.trim().is_empty() {
            break; // blank line ends the headers (uncounted, as in read_request)
        }
        header_bytes += line_len;
        if header_bytes > MAX_HEADER_BYTES {
            return Err(HttpError::TooLarge(format!(
                "header block exceeds the {MAX_HEADER_BYTES}-byte cap"
            )));
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| HttpError::Malformed(format!("bad Content-Length {value:?}")))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::TooLarge(format!(
            "body of {content_length} bytes exceeds the 16 MiB cap"
        )));
    }
    if buf.len() - pos < content_length {
        return Ok(None); // body still arriving
    }
    let body = std::str::from_utf8(&buf[pos..pos + content_length])
        .map_err(|_| HttpError::Malformed("body is not UTF-8".into()))?
        .to_string();
    Ok(Some((
        HttpRequest {
            method,
            path,
            body,
            keep_alive,
        },
        pos + content_length,
    )))
}

/// The reason phrase for the status codes the daemon emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        408 => "Request Timeout",
        409 => "Conflict",
        410 => "Gone",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        502 => "Bad Gateway",
        _ => "Internal Server Error",
    }
}

/// Writes a JSON response. With `keep_alive` the connection stays open
/// for the next request of the per-connection loop (`Connection:
/// keep-alive`); without it the exchange is closed (`Connection: close`).
/// Bodies always carry an exact `Content-Length`, so persistent
/// connections stay framed.
pub(crate) fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> Result<(), String> {
    let response = render_response(status, body, keep_alive);
    stream
        .write_all(&response)
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

/// Renders a full JSON response to bytes — the wire format behind
/// [`respond_json`], split out so the epoll front end's workers and
/// reactors can write it nonblockingly themselves.
pub(crate) fn render_response(status: u16, body: &str, keep_alive: bool) -> Vec<u8> {
    let mut body = body.to_string();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    )
    .into_bytes()
}

/// A resolved endpoint. The legacy single-session paths (`/step`,
/// `/placement`, `/metrics`, `/checkpoint`) are aliases for the same
/// operations on the session named [`DEFAULT_SESSION`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Route {
    /// `POST /sessions` — create a session from a JSON body.
    CreateSession,
    /// `GET /sessions` — list live sessions.
    ListSessions,
    /// `POST /sessions/<name>/step` (alias `POST /step`).
    Step(String),
    /// `GET /sessions/<name>/placement` (alias `GET /placement`).
    Placement(String),
    /// `GET /sessions/<name>/metrics` (alias `GET /metrics`).
    Metrics(String),
    /// `POST /sessions/<name>/checkpoint` (alias `POST /checkpoint`).
    Checkpoint(String),
    /// `POST /sessions/<name>/events` — append substrate events to the
    /// session's live schedule (no legacy alias; fault injection is a
    /// deliberate, session-scoped act).
    Events(String),
    /// `DELETE /sessions/<name>` — stop and evict a session.
    DeleteSession(String),
    /// `POST /shutdown` — stop the whole daemon.
    Shutdown,
}

/// Maps `(method, path)` onto a [`Route`]; `None` is a 404.
pub(crate) fn route(method: &str, path: &str) -> Option<Route> {
    let legacy = || DEFAULT_SESSION.to_string();
    match (method, path) {
        ("POST", "/sessions") => return Some(Route::CreateSession),
        ("GET", "/sessions") => return Some(Route::ListSessions),
        ("POST", "/step") => return Some(Route::Step(legacy())),
        ("GET", "/placement") => return Some(Route::Placement(legacy())),
        ("GET", "/metrics") => return Some(Route::Metrics(legacy())),
        ("POST", "/checkpoint") => return Some(Route::Checkpoint(legacy())),
        ("POST", "/shutdown") => return Some(Route::Shutdown),
        _ => {}
    }
    let rest = path.strip_prefix("/sessions/")?;
    match rest.split_once('/') {
        None => {
            (method == "DELETE" && !rest.is_empty()).then(|| Route::DeleteSession(rest.to_string()))
        }
        Some((name, action)) if !name.is_empty() => match (method, action) {
            ("POST", "step") => Some(Route::Step(name.to_string())),
            ("GET", "placement") => Some(Route::Placement(name.to_string())),
            ("GET", "metrics") => Some(Route::Metrics(name.to_string())),
            ("POST", "checkpoint") => Some(Route::Checkpoint(name.to_string())),
            ("POST", "events") => Some(Route::Events(name.to_string())),
            _ => None,
        },
        Some(_) => None,
    }
}

/// The 404 body's endpoint inventory (kept in sync with `docs/SERVING.md`
/// by `tests/docs_drift.rs`).
pub(crate) const ENDPOINT_LIST: &str = "POST /sessions, GET /sessions, \
     POST /sessions/<name>/step, GET /sessions/<name>/placement, \
     GET /sessions/<name>/metrics, POST /sessions/<name>/checkpoint, \
     POST /sessions/<name>/events, DELETE /sessions/<name>, POST /step, \
     GET /placement, GET /metrics, POST /checkpoint, POST /shutdown";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve_sessions_and_legacy_aliases() {
        assert_eq!(route("POST", "/sessions"), Some(Route::CreateSession));
        assert_eq!(route("GET", "/sessions"), Some(Route::ListSessions));
        assert_eq!(
            route("POST", "/sessions/alpha/step"),
            Some(Route::Step("alpha".into()))
        );
        assert_eq!(
            route("GET", "/sessions/b2/placement"),
            Some(Route::Placement("b2".into()))
        );
        assert_eq!(
            route("GET", "/sessions/b2/metrics"),
            Some(Route::Metrics("b2".into()))
        );
        assert_eq!(
            route("POST", "/sessions/b2/checkpoint"),
            Some(Route::Checkpoint("b2".into()))
        );
        assert_eq!(
            route("POST", "/sessions/b2/events"),
            Some(Route::Events("b2".into()))
        );
        assert_eq!(
            route("DELETE", "/sessions/alpha"),
            Some(Route::DeleteSession("alpha".into()))
        );
        // legacy aliases hit the default session
        assert_eq!(route("POST", "/step"), Some(Route::Step("default".into())));
        assert_eq!(
            route("GET", "/placement"),
            Some(Route::Placement("default".into()))
        );
        assert_eq!(
            route("GET", "/metrics"),
            Some(Route::Metrics("default".into()))
        );
        assert_eq!(
            route("POST", "/checkpoint"),
            Some(Route::Checkpoint("default".into()))
        );
        assert_eq!(route("POST", "/shutdown"), Some(Route::Shutdown));
    }

    #[test]
    fn read_request_parses_connection_semantics() {
        let parse = |raw: &str| read_request(&mut raw.as_bytes()).unwrap();
        // HTTP/1.1 defaults to keep-alive
        let req = parse("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        // explicit close wins
        let req = parse("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        // HTTP/1.0 defaults to close, opts back in with keep-alive
        let req = parse("GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /m HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        // body framing is unchanged
        let req = parse("POST /step HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, "abcd");
        // EOF between requests is a clean end, not an error
        assert!(parse("").is_none());
    }

    #[test]
    fn bad_routes_are_none() {
        assert_eq!(route("GET", "/step"), None); // wrong method
        assert_eq!(route("GET", "/sessions/a/events"), None); // wrong method
        assert_eq!(route("POST", "/sessions/"), None); // empty name
        assert_eq!(route("DELETE", "/sessions/a/step"), None);
        assert_eq!(route("POST", "/sessions//step"), None);
        assert_eq!(route("POST", "/sessions/a/evict"), None);
        assert_eq!(route("GET", "/nope"), None);
    }

    #[test]
    fn oversized_requests_are_413() {
        // a single runaway request line
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(9_000));
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("header line"), "{}", err.message());
        // a runaway header line
        let raw = format!("GET /m HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(9_000));
        assert_eq!(read_request(&mut raw.as_bytes()).unwrap_err().status(), 413);
        // many medium header lines trip the block cap
        let mut raw = String::from("GET /m HTTP/1.1\r\n");
        for i in 0..10 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "z".repeat(4_000)));
        }
        raw.push_str("\r\n");
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("header block"), "{}", err.message());
        // a declared body beyond the 16 MiB cap is refused before reading
        let raw = "POST /step HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        let err = read_request(&mut raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("16 MiB"), "{}", err.message());
    }

    /// The incremental parser must agree with the streaming one byte for
    /// byte: same requests, same consumed lengths, same cap errors — and
    /// return `Ok(None)` on every strict prefix of a valid request.
    #[test]
    fn incremental_parse_agrees_with_read_request() {
        let cases = [
            "GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n",
            "GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n",
            "GET /metrics HTTP/1.0\r\n\r\n",
            "GET /m HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n",
            "POST /step HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd",
        ];
        for raw in cases {
            let streamed = read_request(&mut raw.as_bytes()).unwrap().unwrap();
            let (incremental, consumed) = try_parse_request(raw.as_bytes()).unwrap().unwrap();
            assert_eq!(consumed, raw.len(), "{raw:?}");
            assert_eq!(incremental.method, streamed.method);
            assert_eq!(incremental.path, streamed.path);
            assert_eq!(incremental.body, streamed.body);
            assert_eq!(incremental.keep_alive, streamed.keep_alive);
            // every strict prefix is "keep reading", never an error
            for cut in 0..raw.len() {
                assert!(
                    try_parse_request(&raw.as_bytes()[..cut]).unwrap().is_none(),
                    "prefix of {raw:?} at {cut}"
                );
            }
        }
        // pipelined requests: the first parse consumes exactly one
        let two = "GET /metrics HTTP/1.1\r\n\r\nPOST /step HTTP/1.1\r\nContent-Length: 2\r\n\r\nok";
        let (first, consumed) = try_parse_request(two.as_bytes()).unwrap().unwrap();
        assert_eq!(first.path, "/metrics");
        let (second, rest) = try_parse_request(&two.as_bytes()[consumed..])
            .unwrap()
            .unwrap();
        assert_eq!(second.body, "ok");
        assert_eq!(consumed + rest, two.len());
    }

    #[test]
    fn incremental_parse_enforces_the_same_caps() {
        // runaway request line: same status and message as read_request
        let raw = format!("GET /{} HTTP/1.1\r\n\r\n", "x".repeat(9_000));
        let err = try_parse_request(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("header line"), "{}", err.message());
        // ... even before the newline ever arrives
        let err = try_parse_request("G".repeat(9_000).as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
        // header-block cap
        let mut raw = String::from("GET /m HTTP/1.1\r\n");
        for i in 0..10 {
            raw.push_str(&format!("X-Pad-{i}: {}\r\n", "z".repeat(4_000)));
        }
        raw.push_str("\r\n");
        let err = try_parse_request(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("header block"), "{}", err.message());
        // declared-body cap fires before the body arrives
        let raw = "POST /step HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n";
        let err = try_parse_request(raw.as_bytes()).unwrap_err();
        assert_eq!(err.status(), 413);
        assert!(err.message().contains("16 MiB"), "{}", err.message());
        // malformed framing is still a 400
        let raw = "POST /step HTTP/1.1\r\nContent-Length: nope\r\n\r\n";
        assert_eq!(try_parse_request(raw.as_bytes()).unwrap_err().status(), 400);
    }

    #[test]
    fn render_response_matches_respond_json_wire_format() {
        let bytes = render_response(200, "{\"ok\":true}", true);
        let text = String::from_utf8(bytes).unwrap();
        assert_eq!(
            text,
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Content-Length: 12\r\nConnection: keep-alive\r\n\r\n{\"ok\":true}\n"
        );
        let bytes = render_response(404, "{}\n", false);
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.starts_with("HTTP/1.1 404 Not Found\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.ends_with("\r\n\r\n{}\n"));
    }

    /// A reader that yields its bytes, then stalls with the timeout error
    /// a blocking socket read returns when `set_read_timeout` fires.
    struct Stall<'a>(&'a [u8]);

    impl std::io::Read for Stall<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.0.is_empty() {
                return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "stall"));
            }
            let n = self.0.len().min(buf.len());
            buf[..n].copy_from_slice(&self.0[..n]);
            self.0 = &self.0[n..];
            Ok(n)
        }
    }

    #[test]
    fn stalled_requests_are_408_but_idle_connections_close_quietly() {
        // nothing received yet: the keep-alive idle case, a quiet close
        let mut idle = std::io::BufReader::new(Stall(b""));
        assert!(read_request(&mut idle).unwrap().is_none());
        // a stall mid-request-line holds half a request: 408
        let mut stalled = std::io::BufReader::new(Stall(b"GET /metr"));
        let err = read_request(&mut stalled).unwrap_err();
        assert_eq!(err.status(), 408);
        // a stall mid-body: also 408
        let mut stalled =
            std::io::BufReader::new(Stall(b"POST /step HTTP/1.1\r\nContent-Length: 8\r\n\r\nab"));
        let err = read_request(&mut stalled).unwrap_err();
        assert_eq!(err.status(), 408);
    }
}
