//! Minimal hand-rolled HTTP/1.1 plumbing for the serve daemon: request
//! reading, response writing, and the route table mapping paths onto
//! session operations. No external HTTP crate — the daemon speaks just
//! enough HTTP for `curl` and the integration tests, exactly like the
//! rest of the workspace hand-rolls its JSON.

use std::io::BufRead;
use std::io::Write;
use std::net::TcpStream;

use super::sessions::DEFAULT_SESSION;

/// One parsed HTTP request: the request line, the body, and whether the
/// client wants the connection kept open afterwards (only the
/// `Content-Length` and `Connection` headers matter).
pub(crate) struct HttpRequest {
    pub method: String,
    pub path: String,
    pub body: String,
    /// `Connection: keep-alive` semantics: the HTTP/1.1 default unless
    /// the client sends `Connection: close` (HTTP/1.0 defaults to close
    /// unless it asks for `keep-alive`).
    pub keep_alive: bool,
}

/// Reads one HTTP request from `reader`. `Ok(None)` is a clean end of the
/// connection: the client closed (EOF) or idled past the read timeout
/// *between* requests — normal in a keep-alive loop, never an error.
pub(crate) fn read_request<R: BufRead>(reader: &mut R) -> Result<Option<HttpRequest>, String> {
    let mut line = String::new();
    match reader.read_line(&mut line) {
        Ok(0) => return Ok(None), // client closed between requests
        Ok(_) => {}
        // An idle timeout with nothing received yet is a quiet close; a
        // timeout mid-request-line is a framing error like any other.
        Err(e)
            if line.is_empty()
                && matches!(
                    e.kind(),
                    std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut
                ) =>
        {
            return Ok(None)
        }
        Err(e) => return Err(format!("read request line: {e}")),
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line has no path")?.to_string();
    // HTTP/1.1 (and anything newer) defaults to persistent connections;
    // a bare HTTP/1.0 client must opt in.
    let mut keep_alive = parts.next() != Some("HTTP/1.0");

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            } else if name.eq_ignore_ascii_case("connection") {
                let value = value.trim();
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
        }
    }
    // Cap bodies at 16 MiB: a daemon on loopback still shouldn't let one
    // request balloon the process.
    if content_length > 16 * 1024 * 1024 {
        return Err(format!(
            "body of {content_length} bytes exceeds the 16 MiB cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok(Some(HttpRequest {
        method,
        path,
        body,
        keep_alive,
    }))
}

/// The reason phrase for the status codes the daemon emits.
pub(crate) fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        410 => "Gone",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes a JSON response. With `keep_alive` the connection stays open
/// for the next request of the per-connection loop (`Connection:
/// keep-alive`); without it the exchange is closed (`Connection: close`).
/// Bodies always carry an exact `Content-Length`, so persistent
/// connections stay framed.
pub(crate) fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    body: &str,
    keep_alive: bool,
) -> Result<(), String> {
    let mut body = body.to_string();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let response = format!(
        "HTTP/1.1 {status} {}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n{body}",
        reason(status),
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    stream
        .write_all(response.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

/// A resolved endpoint. The legacy single-session paths (`/step`,
/// `/placement`, `/metrics`, `/checkpoint`) are aliases for the same
/// operations on the session named [`DEFAULT_SESSION`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) enum Route {
    /// `POST /sessions` — create a session from a JSON body.
    CreateSession,
    /// `GET /sessions` — list live sessions.
    ListSessions,
    /// `POST /sessions/<name>/step` (alias `POST /step`).
    Step(String),
    /// `GET /sessions/<name>/placement` (alias `GET /placement`).
    Placement(String),
    /// `GET /sessions/<name>/metrics` (alias `GET /metrics`).
    Metrics(String),
    /// `POST /sessions/<name>/checkpoint` (alias `POST /checkpoint`).
    Checkpoint(String),
    /// `DELETE /sessions/<name>` — stop and evict a session.
    DeleteSession(String),
    /// `POST /shutdown` — stop the whole daemon.
    Shutdown,
}

/// Maps `(method, path)` onto a [`Route`]; `None` is a 404.
pub(crate) fn route(method: &str, path: &str) -> Option<Route> {
    let legacy = || DEFAULT_SESSION.to_string();
    match (method, path) {
        ("POST", "/sessions") => return Some(Route::CreateSession),
        ("GET", "/sessions") => return Some(Route::ListSessions),
        ("POST", "/step") => return Some(Route::Step(legacy())),
        ("GET", "/placement") => return Some(Route::Placement(legacy())),
        ("GET", "/metrics") => return Some(Route::Metrics(legacy())),
        ("POST", "/checkpoint") => return Some(Route::Checkpoint(legacy())),
        ("POST", "/shutdown") => return Some(Route::Shutdown),
        _ => {}
    }
    let rest = path.strip_prefix("/sessions/")?;
    match rest.split_once('/') {
        None => {
            (method == "DELETE" && !rest.is_empty()).then(|| Route::DeleteSession(rest.to_string()))
        }
        Some((name, action)) if !name.is_empty() => match (method, action) {
            ("POST", "step") => Some(Route::Step(name.to_string())),
            ("GET", "placement") => Some(Route::Placement(name.to_string())),
            ("GET", "metrics") => Some(Route::Metrics(name.to_string())),
            ("POST", "checkpoint") => Some(Route::Checkpoint(name.to_string())),
            _ => None,
        },
        Some(_) => None,
    }
}

/// The 404 body's endpoint inventory (kept in sync with `docs/SERVING.md`
/// by `tests/docs_drift.rs`).
pub(crate) const ENDPOINT_LIST: &str = "POST /sessions, GET /sessions, \
     POST /sessions/<name>/step, GET /sessions/<name>/placement, \
     GET /sessions/<name>/metrics, POST /sessions/<name>/checkpoint, \
     DELETE /sessions/<name>, POST /step, GET /placement, GET /metrics, \
     POST /checkpoint, POST /shutdown";

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn routes_resolve_sessions_and_legacy_aliases() {
        assert_eq!(route("POST", "/sessions"), Some(Route::CreateSession));
        assert_eq!(route("GET", "/sessions"), Some(Route::ListSessions));
        assert_eq!(
            route("POST", "/sessions/alpha/step"),
            Some(Route::Step("alpha".into()))
        );
        assert_eq!(
            route("GET", "/sessions/b2/placement"),
            Some(Route::Placement("b2".into()))
        );
        assert_eq!(
            route("GET", "/sessions/b2/metrics"),
            Some(Route::Metrics("b2".into()))
        );
        assert_eq!(
            route("POST", "/sessions/b2/checkpoint"),
            Some(Route::Checkpoint("b2".into()))
        );
        assert_eq!(
            route("DELETE", "/sessions/alpha"),
            Some(Route::DeleteSession("alpha".into()))
        );
        // legacy aliases hit the default session
        assert_eq!(route("POST", "/step"), Some(Route::Step("default".into())));
        assert_eq!(
            route("GET", "/placement"),
            Some(Route::Placement("default".into()))
        );
        assert_eq!(
            route("GET", "/metrics"),
            Some(Route::Metrics("default".into()))
        );
        assert_eq!(
            route("POST", "/checkpoint"),
            Some(Route::Checkpoint("default".into()))
        );
        assert_eq!(route("POST", "/shutdown"), Some(Route::Shutdown));
    }

    #[test]
    fn read_request_parses_connection_semantics() {
        let parse = |raw: &str| read_request(&mut raw.as_bytes()).unwrap();
        // HTTP/1.1 defaults to keep-alive
        let req = parse("GET /metrics HTTP/1.1\r\nHost: x\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/metrics");
        // explicit close wins
        let req = parse("GET /metrics HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        // HTTP/1.0 defaults to close, opts back in with keep-alive
        let req = parse("GET /metrics HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET /m HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(req.keep_alive);
        // body framing is unchanged
        let req = parse("POST /step HTTP/1.1\r\nContent-Length: 4\r\n\r\nabcd").unwrap();
        assert_eq!(req.body, "abcd");
        // EOF between requests is a clean end, not an error
        assert!(parse("").is_none());
    }

    #[test]
    fn bad_routes_are_none() {
        assert_eq!(route("GET", "/step"), None); // wrong method
        assert_eq!(route("POST", "/sessions/"), None); // empty name
        assert_eq!(route("DELETE", "/sessions/a/step"), None);
        assert_eq!(route("POST", "/sessions//step"), None);
        assert_eq!(route("POST", "/sessions/a/evict"), None);
        assert_eq!(route("GET", "/nope"), None);
    }
}
