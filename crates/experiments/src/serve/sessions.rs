//! The session layer of the serve daemon: many named, concurrently
//! stepping [`EventedSession`]s under one [`SessionManager`].
//!
//! Each session runs on its **own actor thread** that owns the full
//! per-session world — an owned substrate clone (fetched through the
//! process-wide [`DistCache`](crate::cache::DistCache) and cloned once,
//! because substrate events mutate link latencies in place while the
//! cache copy must stay pristine), the boxed strategy, the
//! [`EventedSession`] and its [`RequestSource`] — and serializes that
//! session's operations through an `mpsc` command channel. This gives
//! exactly the concurrency the placement game allows: *within* a session
//! the online game stays strictly sequential (channel FIFO), while
//! *distinct* sessions step in parallel with no shared mutable state, so
//! every session's placements are bit-identical to the same cell served
//! alone (pinned by `tests/serve_sessions.rs`).
//!
//! The manager is the only cross-session structure: a mutex-guarded name
//! table (plus the retired default session's stats for the daemon
//! summary), locked only long enough to clone a channel sender — never
//! across a step.

use std::collections::{HashMap, VecDeque};
use std::path::PathBuf;
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use flexserve_core::{initial_center, OffStatPlacement};
use flexserve_sim::{
    CostBreakdown, EventedSession, OnlineStrategy, RoundRecord, SessionMetrics, SessionSnapshot,
    SubstrateEvents,
};
use flexserve_workload::{
    parse_round, record, replay_source, stdin_source, JsonValue, RequestSource, RoundRequests,
    ScenarioStream, Trace,
};

use crate::output::results_dir;
use crate::setup::ExperimentEnv;
use crate::spec::{CellBuilder, CellSpec, StrategySpec};

/// The session that the legacy single-session routes (`/step`,
/// `/placement`, `/metrics`, `/checkpoint`) address; created at daemon
/// startup from the `flexserve serve` command line.
pub const DEFAULT_SESSION: &str = "default";

/// Largest accepted `/step` batch (both the JSON-array and the
/// `{"n": <k>}` forms). A batch occupies its session's actor for the
/// whole run, so the cap bounds how long other commands (checkpoint,
/// eviction) can queue behind one request; oversized batches are a 413.
pub const MAX_BATCH_ROUNDS: usize = 4096;

/// Where a session's rounds come from when `POST .../step` has an empty
/// body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// The cell's workload scenario, streamed round by round (capped at
    /// the cell's `rounds`).
    Scenario,
    /// A JSONL replay file (`source=<path>`).
    File(String),
    /// JSONL on standard input (`source=stdin`; sensible for at most one
    /// session — concurrent stdin readers would race for lines).
    Stdin,
}

/// Everything needed to open one session: the cell plus the session-level
/// keys (`checkpoint=`, `resume=`, `source=`).
#[derive(Clone, Debug)]
pub struct SessionConfig {
    /// The cell to serve (strategy, substrate, workload, cost model; the
    /// cell's `rounds` caps the scenario source, its first seed drives
    /// substrate and workload randomness).
    pub cell: CellSpec,
    /// Checkpoint file written by `POST .../checkpoint` and read on
    /// `resume=true`.
    pub checkpoint: PathBuf,
    /// Resume from the checkpoint file instead of starting at round 0.
    pub resume: bool,
    /// Demand source for source-driven stepping.
    pub source: SourceKind,
}

impl SessionConfig {
    /// Parses a session description from `key=value` pairs: the
    /// [`CellBuilder`] cell grammar plus `checkpoint=`, `resume=` and
    /// `source=`. Used by `POST /sessions` bodies; `name` only picks the
    /// default checkpoint path (`<results dir>/checkpoint-<name>.json`).
    pub fn parse(args: &[String], name: &str) -> Result<Self, String> {
        Self::parse_with_default(args, results_dir().join(format!("checkpoint-{name}.json")))
    }

    /// [`parse`](Self::parse) with an explicit fallback checkpoint path —
    /// the one grammar shared by `POST /sessions` bodies and the
    /// `flexserve serve` command line (which layers the server keys on
    /// top and keeps the legacy `<results dir>/checkpoint.json` default).
    pub fn parse_with_default(
        args: &[String],
        default_checkpoint: PathBuf,
    ) -> Result<Self, String> {
        let mut cell = CellBuilder::new();
        let mut checkpoint = None;
        let mut resume = false;
        let mut source = SourceKind::Scenario;
        for arg in args {
            let (key, v) = arg
                .split_once('=')
                .ok_or_else(|| format!("session: expected key=value, got {arg:?}"))?;
            if cell.apply(key, v)? {
                continue;
            }
            match key {
                "checkpoint" => checkpoint = Some(PathBuf::from(v)),
                "resume" => resume = v.parse().map_err(|_| format!("resume: bad value {v:?}"))?,
                "source" => source = SourceKind::parse(v),
                _ => {
                    return Err(format!(
                        "session: unknown key {key:?} (cell keys plus checkpoint=, \
                         resume=, source=)"
                    ))
                }
            }
        }
        Ok(SessionConfig {
            cell: cell.build()?,
            checkpoint: checkpoint.unwrap_or(default_checkpoint),
            resume,
            source,
        })
    }
}

impl SourceKind {
    /// Parses a `source=` value.
    pub fn parse(v: &str) -> SourceKind {
        match v {
            "scenario" => SourceKind::Scenario,
            "stdin" => SourceKind::Stdin,
            path => SourceKind::File(path.to_string()),
        }
    }
}

/// What a stopped session reports (daemon summaries and `DELETE`
/// responses).
#[derive(Clone, Copy, Debug, Default)]
pub struct SessionStats {
    /// Rounds stepped by this process (excludes checkpointed history).
    pub rounds_served: u64,
    /// The session's round counter when it stopped.
    pub final_t: u64,
}

/// Why a session operation failed; each variant maps onto one HTTP
/// status.
#[derive(Clone, Debug)]
pub enum ServeError {
    /// No session under that name (404).
    NotFound(String),
    /// Name taken, or the session is mid-startup (409).
    Conflict(String),
    /// The `max-sessions` cap is reached (429).
    Capacity(String),
    /// Malformed request or infeasible session spec (400).
    Bad(String),
    /// The session's request source ran dry (410).
    Exhausted,
    /// A step batch exceeds [`MAX_BATCH_ROUNDS`] (413).
    TooLarge(String),
    /// The session thread died or checkpointing failed (500).
    Internal(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::NotFound(name) => write!(f, "no session {name:?}"),
            ServeError::Conflict(msg)
            | ServeError::Capacity(msg)
            | ServeError::Bad(msg)
            | ServeError::TooLarge(msg)
            | ServeError::Internal(msg) => write!(f, "{msg}"),
            ServeError::Exhausted => write!(f, "request source exhausted"),
        }
    }
}

/// One request to a session actor; replies come back over a one-shot
/// channel so the calling HTTP worker blocks only on its own session.
enum Command {
    /// Play one round (empty body = pull the configured source).
    Step {
        body: String,
        reply: Sender<Result<JsonValue, ServeError>>,
    },
    /// Play a whole batch of rounds in one actor hop — the batched
    /// `/step` forms. Replies with the array of per-round step
    /// documents, bit-identical to stepping the same rounds singly; a
    /// malformed batch applies nothing, and a source shortfall restores
    /// every pulled round before failing (410).
    StepBatch {
        spec: BatchSpec,
        reply: Sender<Result<JsonValue, ServeError>>,
    },
    /// Current placement without playing a round.
    Placement { reply: Sender<JsonValue> },
    /// Cumulative counters.
    Metrics { reply: Sender<JsonValue> },
    /// Snapshot to the checkpoint file; replies with the document text.
    Checkpoint {
        reply: Sender<Result<String, ServeError>>,
    },
    /// Append substrate events to the live schedule.
    Events {
        body: String,
        reply: Sender<Result<JsonValue, ServeError>>,
    },
    /// One row of `GET /sessions`.
    Info { reply: Sender<JsonValue> },
    /// Checkpoint and stop in **one** command — the idle reaper's and
    /// the migration hand-off's atomic finish. Because the actor
    /// serializes commands, no step (single or batch) can land between
    /// the snapshot and the stop, so every round ever acknowledged to a
    /// client is in the checkpoint. On a checkpoint failure the actor
    /// replies `Err` and *keeps running*; the caller decides whether to
    /// abort (migration) or force a plain `Stop` (idle eviction).
    Finish {
        reply: Sender<Result<SessionStats, ServeError>>,
    },
    /// Stop the actor (evict / daemon shutdown).
    Stop { reply: Sender<SessionStats> },
}

/// What a batched step plays: explicit round bodies, or the next `k`
/// rounds of the session's demand source.
enum BatchSpec {
    /// A JSON-array `/step` body; each element uses the single-step
    /// round schema (`{"origins": [...]}`).
    Rounds(Vec<JsonValue>),
    /// An `{"n": <k>}` body: pull the next `k` source rounds.
    FromSource(u64),
}

enum Entry {
    /// Reserved while the actor builds its substrate — holds the name
    /// against duplicates without blocking the table during a long build.
    Starting,
    Live(Handle),
}

struct Handle {
    tx: Sender<Command>,
    join: JoinHandle<()>,
    /// Distinguishes incarnations of a reused name, so a failed
    /// round-trip can only [`reap`](SessionManager::reap) the exact
    /// incarnation it talked to — never a session recreated under the
    /// same name in the meantime.
    generation: u64,
    /// When a client last operated on this session (step / placement /
    /// metrics / checkpoint). `GET /sessions` info rows do *not* count —
    /// listing the daemon must not keep every session warm forever.
    last_used: Instant,
    /// The session's checkpoint file — where
    /// [`evict_idle`](SessionManager::evict_idle) snapshots it to.
    checkpoint: PathBuf,
}

/// Tombstone of a session that left this daemon: enough for the
/// `GET /sessions` row and for the operator to find the checkpoint. Two
/// flavors share the struct: an idle eviction (`migrated_to: None`,
/// rendered with `evicted: true`) and a router-driven migration
/// (`migrated_to: Some(worker)`, rendered with `status: "migrated"` so
/// the departure never reads as local data loss).
#[derive(Clone, Debug)]
struct EvictedRow {
    checkpoint: PathBuf,
    final_t: u64,
    /// Insertion order, for FIFO capping at [`MAX_TOMBSTONES`].
    order: u64,
    /// The worker the session moved to, when the eviction was the first
    /// half of a live migration (`DELETE` with a `migrated_to` body).
    migrated_to: Option<String>,
}

/// Retained idle-eviction tombstones. A daemon cycling uniquely named
/// sessions must not accumulate state, so the oldest tombstone is dropped
/// once this many are held.
const MAX_TOMBSTONES: usize = 64;

struct Inner {
    entries: HashMap<String, Entry>,
    /// Sessions removed by the idle-evict reaper, kept as tombstones so
    /// `GET /sessions` can report `evicted: true` (direct requests see a
    /// plain 404). Recreating the name clears its tombstone, as does
    /// `DELETE`; beyond that the map is FIFO-capped at
    /// [`MAX_TOMBSTONES`].
    evicted: HashMap<String, EvictedRow>,
    /// Monotonic [`EvictedRow::order`] source.
    next_evicted_order: u64,
    /// Monotonic [`Handle::generation`] source.
    next_generation: u64,
    /// Final stats of the retired default session — what the daemon
    /// summary reports after shutdown. Other sessions' stats are returned
    /// by [`SessionManager::remove`] and not retained (a long-running
    /// daemon cycling uniquely named sessions must not accumulate state).
    default_stats: Option<SessionStats>,
}

/// Owns every live session of one daemon: create / address / evict by
/// name, bounded by `max_sessions`.
pub struct SessionManager {
    inner: Mutex<Inner>,
    max_sessions: usize,
}

impl SessionManager {
    /// An empty manager admitting at most `max_sessions` concurrent
    /// sessions.
    pub fn new(max_sessions: usize) -> Self {
        SessionManager {
            inner: Mutex::new(Inner {
                entries: HashMap::new(),
                evicted: HashMap::new(),
                next_evicted_order: 0,
                next_generation: 0,
                default_stats: None,
            }),
            max_sessions,
        }
    }

    /// Creates and starts a session, blocking until its substrate is
    /// built (or resumed from checkpoint) so a broken spec fails the
    /// request instead of a half-started session. Returns the session's
    /// info document.
    pub fn create(&self, name: &str, cfg: SessionConfig) -> Result<JsonValue, ServeError> {
        validate_name(name)?;
        cfg.cell.validate().map_err(ServeError::Bad)?;
        {
            let mut inner = self.inner.lock().unwrap();
            if inner.entries.contains_key(name) {
                return Err(ServeError::Conflict(format!(
                    "session {name:?} already exists"
                )));
            }
            if inner.entries.len() >= self.max_sessions {
                return Err(ServeError::Capacity(format!(
                    "session limit reached ({} of max-sessions={})",
                    inner.entries.len(),
                    self.max_sessions
                )));
            }
            inner.entries.insert(name.to_string(), Entry::Starting);
        }
        let (ready_tx, ready_rx) = mpsc::channel();
        let (cmd_tx, cmd_rx) = mpsc::channel();
        let checkpoint = cfg.checkpoint.clone();
        let actor_name = name.to_string();
        let spawned = std::thread::Builder::new()
            .name(format!("session-{name}"))
            .spawn(move || run_session(&actor_name, cfg, &ready_tx, &cmd_rx));
        let join = match spawned {
            Ok(join) => join,
            Err(e) => {
                self.inner.lock().unwrap().entries.remove(name);
                return Err(ServeError::Internal(format!("cannot spawn session: {e}")));
            }
        };
        match ready_rx.recv() {
            Ok(Ok(info)) => {
                let mut inner = self.inner.lock().unwrap();
                let generation = inner.next_generation;
                inner.next_generation += 1;
                // A recreated name supersedes its idle-eviction tombstone.
                inner.evicted.remove(name);
                inner.entries.insert(
                    name.to_string(),
                    Entry::Live(Handle {
                        tx: cmd_tx,
                        join,
                        generation,
                        last_used: Instant::now(),
                        checkpoint,
                    }),
                );
                Ok(info)
            }
            Ok(Err(e)) => {
                let _ = join.join();
                self.inner.lock().unwrap().entries.remove(name);
                Err(ServeError::Bad(e))
            }
            Err(_) => {
                let _ = join.join();
                self.inner.lock().unwrap().entries.remove(name);
                Err(ServeError::Internal(format!(
                    "session {name:?} died during startup"
                )))
            }
        }
    }

    /// Plays one round on `name` — an empty `body` pulls the session's
    /// demand source, a `{"origins": [...]}` body plays that multi-set —
    /// or a whole batch in one actor round-trip: a JSON array body is a
    /// batch of explicit rounds, `{"n": <k>}` pulls the next `k` source
    /// rounds. A batch replies with the array of per-round step
    /// documents, bit-identical to stepping the same rounds singly.
    pub fn step(&self, name: &str, body: &str) -> Result<JsonValue, ServeError> {
        if let Some(spec) = parse_batch_body(body)? {
            return self.roundtrip(name, |reply| Command::StepBatch { spec, reply })?;
        }
        let body = body.to_string();
        self.roundtrip(name, |reply| Command::Step { body, reply })?
    }

    /// Current placement of `name`.
    pub fn placement(&self, name: &str) -> Result<JsonValue, ServeError> {
        self.roundtrip(name, |reply| Command::Placement { reply })
    }

    /// Cumulative counters of `name`.
    pub fn metrics(&self, name: &str) -> Result<JsonValue, ServeError> {
        self.roundtrip(name, |reply| Command::Metrics { reply })
    }

    /// Checkpoints `name`; returns the written document text.
    pub fn checkpoint(&self, name: &str) -> Result<String, ServeError> {
        self.roundtrip(name, |reply| Command::Checkpoint { reply })?
    }

    /// Appends substrate events to `name`'s live schedule — the
    /// `POST /sessions/<name>/events` endpoint. The body is a JSON
    /// object with an `events` string in the schedule grammar
    /// (`docs/FAULTS.md`); events scheduled before the session's current
    /// round are refused.
    pub fn events(&self, name: &str, body: &str) -> Result<JsonValue, ServeError> {
        let body = body.to_string();
        self.roundtrip(name, |reply| Command::Events { body, reply })?
    }

    /// Checkpoints every live session to its checkpoint file without
    /// stopping it — the first half of a graceful daemon shutdown
    /// (SIGTERM or `POST /shutdown`), so no session loses state even if
    /// nobody checkpointed it explicitly. Failures are logged and
    /// skipped (a full disk must not wedge the shutdown). Returns the
    /// names checkpointed, sorted.
    pub fn checkpoint_all(&self) -> Vec<String> {
        let targets: Vec<(String, Sender<Command>)> = {
            let inner = self.inner.lock().unwrap();
            inner
                .entries
                .iter()
                .filter_map(|(name, e)| match e {
                    Entry::Live(h) => Some((name.clone(), h.tx.clone())),
                    Entry::Starting => None,
                })
                .collect()
        };
        let mut saved = Vec::with_capacity(targets.len());
        for (name, tx) in targets {
            let (rtx, rrx) = mpsc::channel();
            if tx.send(Command::Checkpoint { reply: rtx }).is_err() {
                eprintln!("serve: shutdown checkpoint {name:?}: session died");
                continue;
            }
            match rrx.recv() {
                Ok(Ok(_)) => saved.push(name),
                Ok(Err(e)) => eprintln!("serve: shutdown checkpoint {name:?}: {e}"),
                Err(_) => eprintln!("serve: shutdown checkpoint {name:?}: session died"),
            }
        }
        saved.sort();
        saved
    }

    /// Stops and evicts `name`, returning its final stats. `DELETE` on an
    /// idle-evicted name clears its tombstone instead (the checkpoint
    /// file stays on disk).
    pub fn remove(&self, name: &str) -> Result<SessionStats, ServeError> {
        let handle = {
            let mut inner = self.inner.lock().unwrap();
            match inner.entries.get(name) {
                None => {
                    return match inner.evicted.remove(name) {
                        Some(row) => Ok(SessionStats {
                            rounds_served: 0,
                            final_t: row.final_t,
                        }),
                        None => Err(ServeError::NotFound(name.to_string())),
                    }
                }
                Some(Entry::Starting) => {
                    return Err(ServeError::Conflict(format!(
                        "session {name:?} is still starting"
                    )))
                }
                Some(Entry::Live(_)) => {}
            }
            match inner.entries.remove(name) {
                Some(Entry::Live(handle)) => handle,
                _ => unreachable!("checked above"),
            }
        };
        let stats = stop_actor(handle);
        if name == DEFAULT_SESSION {
            self.inner.lock().unwrap().default_stats = Some(stats);
        }
        Ok(stats)
    }

    /// Stops and evicts `name` as the hand-off half of a live migration
    /// (`DELETE /sessions/<name>` with a `{"migrated_to": ...}` body —
    /// the routing tier's protocol, `docs/CLUSTER.md`): the session is
    /// checkpointed to its checkpoint file, stopped, and replaced by a
    /// `migrated` tombstone naming the worker it moved to, so the
    /// departure never reads as local data loss. Unlike
    /// [`evict_idle`](Self::evict_idle), a failed checkpoint *aborts* the
    /// eviction and the session keeps running — a migration must never
    /// destroy state it could not save.
    pub fn remove_migrated(
        &self,
        name: &str,
        migrated_to: &str,
    ) -> Result<SessionStats, ServeError> {
        // Reserve the name while the checkpoint is written (the
        // evict_idle discipline): a concurrent create gets a clean 409
        // instead of racing the tombstone swap.
        let handle = {
            let mut inner = self.inner.lock().unwrap();
            match inner.entries.get(name) {
                None => return Err(ServeError::NotFound(name.to_string())),
                Some(Entry::Starting) => {
                    return Err(ServeError::Conflict(format!(
                        "session {name:?} is still starting"
                    )))
                }
                Some(Entry::Live(_)) => {}
            }
            match inner.entries.insert(name.to_string(), Entry::Starting) {
                Some(Entry::Live(handle)) => handle,
                _ => unreachable!("checked above"),
            }
        };
        // Checkpoint-and-stop in ONE actor command (`Finish`): a step
        // batch already queued on the actor is either fully applied
        // before the snapshot or never runs — no acknowledged round can
        // fall between the checkpoint and the stop.
        let (rtx, rrx) = mpsc::channel();
        let finished = match handle.tx.send(Command::Finish { reply: rtx }) {
            Err(_) => None, // actor dead: fall through to plain removal
            Ok(()) => rrx.recv().ok(),
        };
        let checkpoint = handle.checkpoint.clone();
        let stats = match finished {
            Some(Ok(stats)) => {
                // The actor checkpointed and exited after replying.
                drop(handle.tx);
                let _ = handle.join.join();
                stats
            }
            Some(Err(e)) => {
                // Checkpointing failed but the actor lives: put the entry
                // back and report, so the caller's migration aborts with
                // the session still serving where it was.
                let mut inner = self.inner.lock().unwrap();
                debug_assert!(matches!(inner.entries.get(name), Some(Entry::Starting)));
                inner.entries.insert(name.to_string(), Entry::Live(handle));
                return Err(e);
            }
            None => {
                // The actor died under us — nothing left to migrate.
                let mut inner = self.inner.lock().unwrap();
                inner.entries.remove(name);
                drop(handle.tx);
                let _ = handle.join.join();
                return Err(ServeError::Internal(format!("session {name:?} died")));
            }
        };
        let mut inner = self.inner.lock().unwrap();
        debug_assert!(matches!(inner.entries.get(name), Some(Entry::Starting)));
        inner.entries.remove(name);
        if name == DEFAULT_SESSION {
            inner.default_stats = Some(stats);
        }
        insert_tombstone(
            &mut inner,
            name,
            checkpoint,
            stats.final_t,
            Some(migrated_to.to_string()),
        );
        Ok(stats)
    }

    /// Evicts every live session no client has touched for `idle`:
    /// each victim is **checkpointed to its checkpoint file first**, then
    /// stopped and replaced by a tombstone (`GET /sessions` shows it with
    /// `evicted: true`; direct requests get a clean 404; recreating the
    /// name with `resume=true` continues from the auto-checkpoint).
    /// Returns the evicted names. Driven by the daemon's reaper thread
    /// when the `idle-evict=<secs>` serve key is set.
    pub fn evict_idle(&self, idle: std::time::Duration) -> Vec<String> {
        // Swap each victim's entry for a `Starting` reservation while the
        // checkpoint is written: a concurrent create of the same name
        // gets a clean 409 instead of racing the eviction (and possibly
        // resuming from a checkpoint the evictor has not written yet).
        let victims: Vec<(String, Handle)> = {
            let mut inner = self.inner.lock().unwrap();
            let names: Vec<String> = inner
                .entries
                .iter()
                .filter_map(|(name, e)| match e {
                    Entry::Live(h) if h.last_used.elapsed() >= idle => Some(name.clone()),
                    _ => None,
                })
                .collect();
            names
                .into_iter()
                .map(
                    |name| match inner.entries.insert(name.clone(), Entry::Starting) {
                        Some(Entry::Live(handle)) => (name, handle),
                        _ => unreachable!("filtered on Live above"),
                    },
                )
                .collect()
        };
        let mut evicted = Vec::with_capacity(victims.len());
        for (name, handle) in victims {
            // Checkpoint-and-stop in ONE actor command (`Finish`), so the
            // idle state is recoverable and a step batch racing the
            // eviction is either fully in the snapshot or cleanly 404s —
            // never acknowledged and then lost. A checkpoint failure
            // (full disk, dead actor) still evicts, via a plain `Stop` —
            // an unreapable session would defeat the whole mechanism.
            let (rtx, rrx) = mpsc::channel();
            let finished = if handle.tx.send(Command::Finish { reply: rtx }).is_ok() {
                rrx.recv().ok()
            } else {
                None
            };
            let checkpoint = handle.checkpoint.clone();
            let stats = match finished {
                Some(Ok(stats)) => {
                    drop(handle.tx);
                    let _ = handle.join.join();
                    stats
                }
                Some(Err(e)) => {
                    eprintln!("serve: idle-evict {name:?}: checkpoint failed: {e}");
                    stop_actor(handle)
                }
                None => {
                    eprintln!("serve: idle-evict {name:?}: session died");
                    stop_actor(handle)
                }
            };
            // Swap our reservation for the tombstone. Nothing can have
            // replaced it: create refuses existing names and reap only
            // matches Live generations.
            let mut inner = self.inner.lock().unwrap();
            debug_assert!(matches!(inner.entries.get(&name), Some(Entry::Starting)));
            inner.entries.remove(&name);
            if name == DEFAULT_SESSION {
                inner.default_stats = Some(stats);
            }
            insert_tombstone(&mut inner, &name, checkpoint, stats.final_t, None);
            drop(inner);
            evicted.push(name);
        }
        evicted.sort();
        evicted
    }

    /// Stops every live session (daemon shutdown).
    pub fn shutdown_all(&self) {
        loop {
            let name = {
                let inner = self.inner.lock().unwrap();
                inner
                    .entries
                    .iter()
                    .find_map(|(name, e)| matches!(e, Entry::Live(_)).then(|| name.clone()))
            };
            match name {
                Some(name) => {
                    let _ = self.remove(&name);
                }
                None => break,
            }
        }
    }

    /// Final stats of the stopped default session, if it ever ran — the
    /// daemon summary. Other sessions' stats are reported once by
    /// [`remove`](Self::remove) and not retained.
    pub fn default_session_stats(&self) -> Option<SessionStats> {
        self.inner.lock().unwrap().default_stats
    }

    /// The `GET /sessions` document: every live session (sorted by name)
    /// with its info row, followed by the idle-evicted tombstones
    /// (`evicted: true`, with the checkpoint file the session was
    /// snapshotted to). `count` counts live sessions only.
    pub fn list(&self) -> JsonValue {
        type LiveRows = Vec<(String, Option<Sender<Command>>)>;
        let (mut rows, mut tombstones): (LiveRows, Vec<(String, EvictedRow)>) = {
            let inner = self.inner.lock().unwrap();
            (
                inner
                    .entries
                    .iter()
                    .map(|(name, e)| {
                        let tx = match e {
                            Entry::Starting => None,
                            Entry::Live(h) => Some(h.tx.clone()),
                        };
                        (name.clone(), tx)
                    })
                    .collect(),
                inner
                    .evicted
                    .iter()
                    .map(|(name, row)| (name.clone(), row.clone()))
                    .collect(),
            )
        };
        rows.sort_by(|a, b| a.0.cmp(&b.0));
        tombstones.sort_by(|a, b| a.0.cmp(&b.0));
        let count = rows.len();
        let mut sessions: Vec<JsonValue> = rows
            .into_iter()
            .map(|(name, tx)| {
                let starting = || {
                    JsonValue::Obj(vec![
                        ("name".into(), JsonValue::from(name.as_str())),
                        ("status".into(), JsonValue::from("starting")),
                    ])
                };
                match tx {
                    None => starting(),
                    Some(tx) => {
                        let (rtx, rrx) = mpsc::channel();
                        if tx.send(Command::Info { reply: rtx }).is_err() {
                            return starting();
                        }
                        rrx.recv().unwrap_or_else(|_| starting())
                    }
                }
            })
            .collect();
        sessions.extend(tombstones.into_iter().map(|(name, row)| {
            let mut pairs = vec![("name".into(), JsonValue::from(name.as_str()))];
            // Two tombstone flavors: idle-evicted locally vs migrated to
            // another worker by the routing tier (docs/CLUSTER.md) — the
            // latter names its destination so it never reads as data loss.
            match &row.migrated_to {
                Some(target) => {
                    pairs.push(("status".into(), JsonValue::from("migrated")));
                    pairs.push(("migrated_to".into(), JsonValue::from(target.as_str())));
                }
                None => {
                    pairs.push(("status".into(), JsonValue::from("evicted")));
                    pairs.push(("evicted".into(), JsonValue::Bool(true)));
                }
            }
            pairs.push((
                "checkpoint".into(),
                JsonValue::from(row.checkpoint.display().to_string()),
            ));
            pairs.push(("final_t".into(), JsonValue::from(row.final_t)));
            JsonValue::Obj(pairs)
        }));
        JsonValue::Obj(vec![
            ("sessions".into(), JsonValue::Arr(sessions)),
            ("count".into(), JsonValue::from(count)),
            ("max_sessions".into(), JsonValue::from(self.max_sessions)),
        ])
    }

    /// Sends one command to a live session and waits for its reply. A
    /// dead actor (panicked strategy) is evicted so later requests see a
    /// clean 404 instead of a wedged name.
    fn roundtrip<T>(
        &self,
        name: &str,
        make: impl FnOnce(Sender<T>) -> Command,
    ) -> Result<T, ServeError> {
        let (tx, generation) = {
            let mut inner = self.inner.lock().unwrap();
            match inner.entries.get_mut(name) {
                None => return Err(ServeError::NotFound(name.to_string())),
                Some(Entry::Starting) => {
                    return Err(ServeError::Conflict(format!(
                        "session {name:?} is still starting"
                    )))
                }
                Some(Entry::Live(h)) => {
                    h.last_used = Instant::now();
                    (h.tx.clone(), h.generation)
                }
            }
        };
        let (rtx, rrx) = mpsc::channel();
        let died = |this: &Self| {
            this.reap(name, generation);
            // The common way to lose this race is the idle reaper (or a
            // migration) finishing the session between our table lookup
            // and the actor hearing from us — that is an eviction, and
            // must read like one (404 with the tombstone in place), not
            // an internal error. A genuinely crashed actor leaves no
            // tombstone and still reports 500.
            let inner = this.inner.lock().unwrap();
            if !inner.entries.contains_key(name) && inner.evicted.contains_key(name) {
                ServeError::NotFound(name.to_string())
            } else {
                ServeError::Internal(format!("session {name:?} died"))
            }
        };
        if tx.send(make(rtx)).is_err() {
            return Err(died(self));
        }
        rrx.recv().map_err(|_| died(self))
    }

    /// Removes a dead session's entry so later requests see a clean 404.
    /// Only the incarnation the failed round-trip actually talked to is
    /// removed (by generation) — a session recreated under the same name
    /// in the meantime is left alone.
    fn reap(&self, name: &str, generation: u64) {
        let handle = {
            let mut inner = self.inner.lock().unwrap();
            match inner.entries.get(name) {
                Some(Entry::Live(h)) if h.generation == generation => {
                    match inner.entries.remove(name) {
                        Some(Entry::Live(handle)) => Some(handle),
                        _ => unreachable!("checked above"),
                    }
                }
                _ => None,
            }
        };
        if let Some(handle) = handle {
            // Close our command sender before joining: if the actor were
            // somehow still draining its queue, a held sender would keep
            // its recv() loop alive and wedge this join forever.
            drop(handle.tx);
            let _ = handle.join.join();
        }
    }
}

/// Records a tombstone for a session that left the table (idle eviction
/// or migration hand-off), FIFO-capped at [`MAX_TOMBSTONES`] so a daemon
/// cycling uniquely named sessions never accumulates state.
fn insert_tombstone(
    inner: &mut Inner,
    name: &str,
    checkpoint: PathBuf,
    final_t: u64,
    migrated_to: Option<String>,
) {
    let order = inner.next_evicted_order;
    inner.next_evicted_order += 1;
    inner.evicted.insert(
        name.to_string(),
        EvictedRow {
            checkpoint,
            final_t,
            order,
            migrated_to,
        },
    );
    while inner.evicted.len() > MAX_TOMBSTONES {
        let oldest = inner
            .evicted
            .iter()
            .min_by_key(|(_, row)| row.order)
            .map(|(n, _)| n.clone())
            .expect("non-empty map has a minimum");
        inner.evicted.remove(&oldest);
    }
}

/// Stops one live actor and collects its stats.
fn stop_actor(handle: Handle) -> SessionStats {
    let (rtx, rrx) = mpsc::channel();
    let stats = if handle.tx.send(Command::Stop { reply: rtx }).is_ok() {
        rrx.recv().unwrap_or_default()
    } else {
        SessionStats::default()
    };
    let _ = handle.join.join();
    stats
}

/// Recognizes the batched `/step` body forms: a JSON array of rounds, or
/// an object with an `"n"` count (and no `"origins"`). Anything else —
/// empty body, an `{"origins": ...}` object, malformed JSON — returns
/// `None` and takes the single-step path, so its errors read exactly as
/// before batching existed.
fn parse_batch_body(body: &str) -> Result<Option<BatchSpec>, ServeError> {
    let trimmed = body.trim();
    if trimmed.is_empty() {
        return Ok(None);
    }
    let Ok(value) = JsonValue::parse(trimmed) else {
        return Ok(None);
    };
    match value {
        JsonValue::Arr(rounds) => {
            if rounds.is_empty() {
                return Err(ServeError::Bad("batch: empty round array".into()));
            }
            if rounds.len() > MAX_BATCH_ROUNDS {
                return Err(ServeError::TooLarge(format!(
                    "batch of {} rounds exceeds the {MAX_BATCH_ROUNDS}-round cap",
                    rounds.len()
                )));
            }
            Ok(Some(BatchSpec::Rounds(rounds)))
        }
        obj @ JsonValue::Obj(_) => {
            if obj.get("origins").is_some() {
                return Ok(None);
            }
            match obj.get("n") {
                None => Ok(None),
                Some(n) => match n.as_u64() {
                    Some(0) | None => Err(ServeError::Bad(
                        "batch: \"n\" must be a positive integer".into(),
                    )),
                    Some(n) if n as usize > MAX_BATCH_ROUNDS => Err(ServeError::TooLarge(format!(
                        "batch of {n} rounds exceeds the {MAX_BATCH_ROUNDS}-round cap"
                    ))),
                    Some(n) => Ok(Some(BatchSpec::FromSource(n))),
                },
            }
        }
        _ => Ok(None),
    }
}

/// Session names are path segments and file-name fragments: short,
/// URL-safe, no separators.
fn validate_name(name: &str) -> Result<(), ServeError> {
    let ok = !name.is_empty()
        && name.len() <= 64
        && name
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '-' || c == '_' || c == '.');
    if ok {
        Ok(())
    } else {
        Err(ServeError::Bad(format!(
            "bad session name {name:?} (1-64 chars from [A-Za-z0-9._-])"
        )))
    }
}

// ---------------------------------------------------------------------
// The per-session actor.
// ---------------------------------------------------------------------

/// Mutable per-session serving state, owned by the actor thread.
struct SessionState<'s> {
    name: &'s str,
    session: &'s mut EventedSession<Box<dyn OnlineStrategy>>,
    source: &'s mut dyn RequestSource,
    spec: String,
    checkpoint: PathBuf,
    resumed_at: u64,
    /// Rounds ever pulled from the demand source (including checkpointed
    /// history) — the resume fast-forward distance. Explicit-body steps
    /// advance `t` but not this.
    source_consumed: u64,
    /// Source rounds pulled for a batch that could not run (a shortfall
    /// fails the whole batch), restored here so the next pull sees them
    /// in order — a failed batch must not eat demand. Checkpoints and
    /// `/metrics` report `source_consumed` minus this backlog, so a
    /// resume re-pulls exactly the unplayed rounds.
    pending: VecDeque<RoundRequests>,
    rounds_served: u64,
    totals: CostBreakdown,
    step_seconds_total: f64,
    /// Lifetime metrics carried in from the checkpoint (v2; zeros for a
    /// fresh session, round-counter-only for a v1 file).
    carried: SessionMetrics,
    started: Instant,
}

impl SessionState<'_> {
    /// Lifetime totals right now: checkpoint-carried plus this process.
    fn cumulative(&self) -> SessionMetrics {
        SessionMetrics {
            rounds_served: self.carried.rounds_served + self.rounds_served,
            total_cost: self.carried.total_cost + self.totals,
            uptime_seconds: self.carried.uptime_seconds + self.started.elapsed().as_secs_f64(),
        }
    }

    fn stats(&self) -> SessionStats {
        SessionStats {
            rounds_served: self.rounds_served,
            final_t: self.session.t(),
        }
    }

    /// Source rounds actually *played* (or lost to a failed step) — what
    /// a resume must fast-forward past. Rounds sitting in the restored
    /// [`pending`](Self::pending) backlog are excluded: they were pulled
    /// but never served, so a resumed session must see them again.
    fn source_rounds(&self) -> u64 {
        self.source_consumed - self.pending.len() as u64
    }
}

/// The actor body: build the session world (reporting the outcome over
/// `ready`), then serve commands until `Stop` or the manager hangs up.
fn run_session(
    name: &str,
    cfg: SessionConfig,
    ready: &Sender<Result<JsonValue, String>>,
    commands: &Receiver<Command>,
) {
    let fail = |e: String| {
        let _ = ready.send(Err(e));
    };
    let seed = cfg.cell.seeds[0];
    let env = match ExperimentEnv::from_spec(&cfg.cell.topology, seed) {
        Ok(env) => env,
        Err(e) => return fail(e),
    };
    let ctx = env.context(cfg.cell.params, cfg.cell.load);
    let node_count = env.graph.node_count();
    // Every serve session owns its substrate world: substrate events
    // mutate link latencies in place, so the shared cache `Arc`s are
    // cloned exactly once here and the cache copy stays pristine for
    // other sessions on the same topology.
    let graph = (*env.graph).clone();
    let dist = (*env.matrix).clone();

    // Resume state, read before anything is constructed so a bad
    // checkpoint aborts the creation instead of a half-served session.
    let (snapshot, source_consumed) = if cfg.resume {
        let text = match std::fs::read_to_string(&cfg.checkpoint) {
            Ok(text) => text,
            Err(e) => {
                return fail(format!(
                    "cannot read checkpoint {}: {e}",
                    cfg.checkpoint.display()
                ))
            }
        };
        let snap = match SessionSnapshot::from_json(&text) {
            Ok(snap) => snap,
            Err(e) => return fail(e),
        };
        // The daemon's sidecar field (see `checkpoint()`): how many rounds
        // came out of the demand source, as opposed to explicit-body
        // steps. Fast-forwarding by `t` instead would over-skip source
        // rounds whenever the two were mixed.
        let consumed = JsonValue::parse(&text)
            .ok()
            .and_then(|v| v.get("source_rounds").and_then(JsonValue::as_u64))
            .unwrap_or(snap.t);
        if consumed > snap.t {
            return fail(format!(
                "corrupt checkpoint: source_rounds {consumed} exceeds t {}",
                snap.t
            ));
        }
        (Some(snap), consumed)
    } else {
        (None, 0)
    };
    let resumed_at = snapshot.as_ref().map(|s| s.t).unwrap_or(0);
    // v2 checkpoints carry lifetime metrics; a v1 file carries none, so
    // the cumulative cost/uptime restart (the round counter is still
    // exact — every round ever played is in `t`).
    let carried = match snapshot.as_ref() {
        Some(snap) => snap.metrics.unwrap_or(SessionMetrics {
            rounds_served: snap.t,
            total_cost: CostBreakdown::zero(),
            uptime_seconds: 0.0,
        }),
        None => SessionMetrics::default(),
    };

    // The strategy. OFFSTAT has no pure-streaming form: its placement is
    // computed from the recorded scenario trace (scenario sources only) —
    // on resume the placement travels inside the checkpoint instead.
    let strategy: Box<dyn OnlineStrategy> = if cfg.cell.strategy == StrategySpec::OffStat {
        if snapshot.is_some() {
            Box::new(OffStatPlacement::new(Vec::new()))
        } else if cfg.source == SourceKind::Scenario {
            let trace = record_cell_trace(&cfg.cell, &env, seed);
            Box::new(OffStatPlacement::from_trace(&ctx, &trace))
        } else {
            return fail(
                "strat=offstat needs source=scenario (the placement is computed \
                 from the recorded scenario trace)"
                    .into(),
            );
        }
    } else {
        match cfg.cell.strategy.instantiate_online(&ctx, seed) {
            Ok(s) => s,
            Err(e) => return fail(e),
        }
    };

    let mut session = match &snapshot {
        Some(snap) => {
            // The checkpoint's recorded schedule is authoritative on
            // resume: an `events=` key restating it verbatim is accepted
            // (so the same command line restarts cleanly), anything else
            // is refused rather than silently merged or doubled.
            let recorded = snap.substrate_events.clone().unwrap_or_default();
            if !cfg.cell.events.is_empty() && cfg.cell.events.render() != recorded {
                return fail(format!(
                    "resume: events= ({}) conflicts with the checkpointed schedule ({}); \
                     the checkpoint restores its own events — append new ones via \
                     POST /sessions/<name>/events",
                    cfg.cell.events.render(),
                    if recorded.is_empty() {
                        "none"
                    } else {
                        recorded.as_str()
                    },
                ));
            }
            match EventedSession::resume(
                graph,
                dist,
                cfg.cell.params,
                cfg.cell.load,
                strategy,
                snap,
            ) {
                Ok(session) => session,
                Err(e) => return fail(e),
            }
        }
        None => EventedSession::new(
            graph,
            dist,
            cfg.cell.events.clone(),
            cfg.cell.params,
            cfg.cell.load,
            strategy,
            initial_center(&ctx),
        ),
    };

    // The demand source, fast-forwarded past the rounds the checkpointed
    // history actually consumed from it (explicit-body steps do not
    // advance the source), so a resumed session sees the same source
    // rounds an uninterrupted one would.
    let mut source: Box<dyn RequestSource> = match &cfg.source {
        SourceKind::Scenario => {
            let scenario = cfg.cell.workload.instantiate(
                &env.graph,
                &env.matrix,
                cfg.cell.t_periods,
                cfg.cell.lambda,
                seed,
            );
            let mut stream = ScenarioStream::new(scenario, Some(cfg.cell.rounds));
            stream.skip_to(source_consumed);
            Box::new(stream)
        }
        SourceKind::File(path) => {
            // Packed or JSONL, sniffed by magic. A packed replay skips by
            // an O(1) frame-index seek; JSONL pulls and discards.
            let mut replay = match replay_source(path, node_count) {
                Ok(replay) => replay,
                Err(e) => return fail(e),
            };
            if let Err(e) = replay.skip(source_consumed) {
                return fail(if e.contains("exhausted") {
                    format!(
                        "replay {path} is shorter than the checkpoint \
                         (source_rounds={source_consumed})"
                    )
                } else {
                    e
                });
            }
            replay
        }
        SourceKind::Stdin => Box::new(stdin_source(node_count)),
    };

    let mut state = SessionState {
        name,
        session: &mut session,
        source: source.as_mut(),
        spec: cfg.cell.describe(),
        checkpoint: cfg.checkpoint.clone(),
        resumed_at,
        source_consumed,
        pending: VecDeque::new(),
        rounds_served: 0,
        totals: CostBreakdown::zero(),
        step_seconds_total: 0.0,
        carried,
        started: Instant::now(),
    };
    if ready.send(Ok(info_json(&state))).is_err() {
        return; // manager gave up on us
    }

    while let Ok(cmd) = commands.recv() {
        match cmd {
            Command::Step { body, reply } => {
                let _ = reply.send(step(&mut state, &body));
            }
            Command::StepBatch { spec, reply } => {
                let _ = reply.send(step_batch(&mut state, spec));
            }
            Command::Placement { reply } => {
                let _ = reply.send(placement_json(&state));
            }
            Command::Metrics { reply } => {
                let _ = reply.send(metrics_json(&state));
            }
            Command::Checkpoint { reply } => {
                let _ = reply.send(checkpoint(&mut state).map_err(ServeError::Internal));
            }
            Command::Events { body, reply } => {
                let _ = reply.send(append_events(&mut state, &body));
            }
            Command::Info { reply } => {
                let _ = reply.send(info_json(&state));
            }
            Command::Finish { reply } => match checkpoint(&mut state) {
                Ok(_) => {
                    let _ = reply.send(Ok(state.stats()));
                    return;
                }
                Err(e) => {
                    let _ = reply.send(Err(ServeError::Internal(e)));
                }
            },
            Command::Stop { reply } => {
                let _ = reply.send(state.stats());
                return;
            }
        }
    }
}

/// Records the cell's scenario into a trace (OFFSTAT placement input).
fn record_cell_trace(cell: &CellSpec, env: &ExperimentEnv, seed: u64) -> Trace {
    let mut scenario =
        cell.workload
            .instantiate(&env.graph, &env.matrix, cell.t_periods, cell.lambda, seed);
    record(scenario.as_mut(), cell.rounds)
}

fn step(state: &mut SessionState<'_>, body: &str) -> Result<JsonValue, ServeError> {
    let batch = if body.trim().is_empty() {
        // A round restored by a failed batch is replayed before the
        // source is pulled again (it was already counted at pull time).
        match state.pending.pop_front() {
            Some(batch) => batch,
            None => {
                let batch = state
                    .source
                    .next_round()
                    .map_err(ServeError::Bad)?
                    .ok_or(ServeError::Exhausted)?;
                state.source_consumed += 1;
                batch
            }
        }
    } else {
        let value = JsonValue::parse(body.trim()).map_err(ServeError::Bad)?;
        parse_round(&value, state.session.world().graph().node_count()).map_err(ServeError::Bad)?
    };
    let started = Instant::now();
    // A failing event aborts the round before any cost is charged: `t`
    // does not advance, so the schedule stays addressable and the error
    // is reported to the caller instead of silently skipping the event.
    let rec = state.session.step(&batch).map_err(ServeError::Bad)?;
    state.step_seconds_total += started.elapsed().as_secs_f64();
    state.rounds_served += 1;
    state.totals += rec.costs;
    Ok(round_json(state, &rec))
}

/// Plays a whole batch in one actor hop. Explicit rounds are parsed
/// up front, so a malformed batch applies nothing; a source shortfall
/// restores every pulled round to the pending backlog and fails the
/// whole batch with 410. A mid-batch step failure (a substrate event
/// that cannot apply) reports how far the batch got — exactly the state
/// the same rounds stepped singly would have left.
fn step_batch(state: &mut SessionState<'_>, spec: BatchSpec) -> Result<JsonValue, ServeError> {
    let (mut rounds, from_source) = match spec {
        BatchSpec::Rounds(values) => {
            let node_count = state.session.world().graph().node_count();
            let mut rounds = Vec::with_capacity(values.len());
            for (i, value) in values.iter().enumerate() {
                let round = parse_round(value, node_count)
                    .map_err(|e| ServeError::Bad(format!("batch[{i}]: {e}")))?;
                rounds.push(round);
            }
            (rounds, false)
        }
        BatchSpec::FromSource(k) => {
            let mut rounds: Vec<RoundRequests> = Vec::with_capacity(k as usize);
            while (rounds.len() as u64) < k {
                match state.pending.pop_front() {
                    Some(round) => rounds.push(round),
                    None => break,
                }
            }
            let missing = k - rounds.len() as u64;
            if missing > 0 {
                match state.source.next_rounds(missing) {
                    Ok(pulled) => {
                        state.source_consumed += pulled.len() as u64;
                        rounds.extend(pulled);
                    }
                    Err(e) => {
                        restore_pending(state, rounds);
                        return Err(ServeError::Bad(e));
                    }
                }
            }
            if (rounds.len() as u64) < k {
                // Shortfall: the whole batch fails, nothing is applied,
                // and every pulled round goes back in order.
                restore_pending(state, rounds);
                return Err(ServeError::Exhausted);
            }
            (rounds, true)
        }
    };
    let started = Instant::now();
    let mut bodies = Vec::with_capacity(rounds.len());
    for i in 0..rounds.len() {
        let rec = match state.session.step(&rounds[i]) {
            Ok(rec) => rec,
            Err(e) => {
                state.step_seconds_total += started.elapsed().as_secs_f64();
                let total = rounds.len();
                if from_source {
                    // The failed round is lost (single-step semantics);
                    // the unplayed tail goes back so no demand is eaten.
                    restore_pending(state, rounds.split_off(i + 1));
                }
                return Err(ServeError::Bad(format!(
                    "batch[{i}]: {e} ({i} of {total} rounds applied)"
                )));
            }
        };
        state.rounds_served += 1;
        state.totals += rec.costs;
        bodies.push(round_json(state, &rec));
    }
    state.step_seconds_total += started.elapsed().as_secs_f64();
    Ok(JsonValue::Arr(bodies))
}

/// Puts pulled-but-unplayed source rounds back at the head of the
/// pending backlog, preserving demand order.
fn restore_pending(state: &mut SessionState<'_>, rounds: Vec<RoundRequests>) {
    for round in rounds.into_iter().rev() {
        state.pending.push_front(round);
    }
}

/// Handles `POST /sessions/<name>/events`: parses `{"events": "<schedule
/// grammar>"}` from the body and appends to the live schedule. Past
/// events (before the session's current round) are refused by
/// [`EventedSession::append_events`].
fn append_events(state: &mut SessionState<'_>, body: &str) -> Result<JsonValue, ServeError> {
    let value = JsonValue::parse(body.trim()).map_err(ServeError::Bad)?;
    let text = value
        .get("events")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServeError::Bad("events: body needs an \"events\" string".into()))?;
    let more = SubstrateEvents::parse(text).map_err(ServeError::Bad)?;
    if more.is_empty() {
        return Err(ServeError::Bad("events: empty schedule".into()));
    }
    state
        .session
        .append_events(&more)
        .map_err(ServeError::Bad)?;
    Ok(JsonValue::Obj(vec![
        ("ok".into(), JsonValue::Bool(true)),
        ("session".into(), JsonValue::from(state.name)),
        ("appended".into(), JsonValue::from(more.len())),
        (
            "events".into(),
            JsonValue::from(state.session.schedule().render()),
        ),
        ("next_t".into(), JsonValue::from(state.session.t())),
    ]))
}

fn checkpoint(state: &mut SessionState<'_>) -> Result<String, String> {
    let mut snap = state.session.snapshot()?;
    // v2: the checkpoint carries the session's lifetime totals, so a
    // restarted daemon keeps counting where this one stops.
    snap.metrics = Some(state.cumulative());
    let text = snap.to_json();
    // Sidecar field for the resume fast-forward: how much of the demand
    // source the checkpointed history consumed. `SessionSnapshot` ignores
    // unknown keys, so the file stays a valid engine checkpoint.
    let mut value = JsonValue::parse(&text).expect("own render must parse");
    if let JsonValue::Obj(pairs) = &mut value {
        pairs.push((
            "source_rounds".into(),
            JsonValue::from(state.source_rounds()),
        ));
    }
    let mut text = value.render();
    text.push('\n');
    if let Some(dir) = state.checkpoint.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    // Write-then-rename so a crash mid-write can't truncate the previous
    // good checkpoint — the one artifact meant to survive crashes.
    let tmp = state.checkpoint.with_extension("json.tmp");
    std::fs::write(&tmp, &text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &state.checkpoint)
        .map_err(|e| format!("cannot rename into {}: {e}", state.checkpoint.display()))?;
    Ok(text)
}

fn costs_json(costs: &CostBreakdown) -> JsonValue {
    JsonValue::Obj(vec![
        ("access".into(), JsonValue::from(costs.access)),
        ("running".into(), JsonValue::from(costs.running)),
        ("migration".into(), JsonValue::from(costs.migration)),
        ("creation".into(), JsonValue::from(costs.creation)),
        ("total".into(), JsonValue::from(costs.total())),
    ])
}

fn fleet_json(state: &SessionState<'_>) -> Vec<(String, JsonValue)> {
    let fleet = state.session.fleet();
    vec![
        (
            "active".into(),
            JsonValue::Arr(
                fleet
                    .active()
                    .iter()
                    .map(|n| JsonValue::from(n.index()))
                    .collect(),
            ),
        ),
        (
            "inactive".into(),
            JsonValue::Arr(
                fleet
                    .inactive_entries()
                    .map(|s| {
                        JsonValue::Arr(vec![
                            JsonValue::from(s.node.index()),
                            JsonValue::from(s.expires_epoch),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("epoch".into(), JsonValue::from(fleet.epoch())),
    ]
}

fn round_json(state: &SessionState<'_>, rec: &RoundRecord) -> JsonValue {
    let mut pairs = vec![
        ("t".into(), JsonValue::from(rec.t)),
        ("requests".into(), JsonValue::from(rec.requests)),
        ("costs".into(), costs_json(&rec.costs)),
    ];
    pairs.extend(fleet_json(state));
    JsonValue::Obj(pairs)
}

fn placement_json(state: &SessionState<'_>) -> JsonValue {
    let mut pairs = vec![("t".into(), JsonValue::from(state.session.t()))];
    pairs.extend(fleet_json(state));
    JsonValue::Obj(pairs)
}

fn metrics_json(state: &SessionState<'_>) -> JsonValue {
    let cumulative = state.cumulative();
    JsonValue::Obj(vec![
        ("session".into(), JsonValue::from(state.name)),
        (
            "strategy".into(),
            JsonValue::from(state.session.strategy().name()),
        ),
        ("spec".into(), JsonValue::from(state.spec.clone())),
        ("source".into(), JsonValue::from(state.source.describe())),
        ("next_t".into(), JsonValue::from(state.session.t())),
        ("resumed_at".into(), JsonValue::from(state.resumed_at)),
        ("rounds_served".into(), JsonValue::from(state.rounds_served)),
        (
            "source_rounds".into(),
            JsonValue::from(state.source_rounds()),
        ),
        ("total_cost".into(), costs_json(&state.totals)),
        (
            "active_servers".into(),
            JsonValue::from(state.session.fleet().active_count()),
        ),
        (
            "step_seconds_total".into(),
            JsonValue::from(state.step_seconds_total),
        ),
        (
            "cumulative".into(),
            JsonValue::Obj(vec![
                (
                    "rounds_served".into(),
                    JsonValue::from(cumulative.rounds_served),
                ),
                ("total_cost".into(), costs_json(&cumulative.total_cost)),
                (
                    "uptime_seconds".into(),
                    JsonValue::from(cumulative.uptime_seconds),
                ),
            ]),
        ),
    ])
}

/// One `GET /sessions` row (also the `POST /sessions` response).
fn info_json(state: &SessionState<'_>) -> JsonValue {
    let mut pairs = vec![
        ("name".into(), JsonValue::from(state.name)),
        ("status".into(), JsonValue::from("live")),
        ("spec".into(), JsonValue::from(state.spec.clone())),
        (
            "strategy".into(),
            JsonValue::from(state.session.strategy().name()),
        ),
        ("source".into(), JsonValue::from(state.source.describe())),
        ("next_t".into(), JsonValue::from(state.session.t())),
        ("resumed_at".into(), JsonValue::from(state.resumed_at)),
        ("rounds_served".into(), JsonValue::from(state.rounds_served)),
        (
            "uptime_seconds".into(),
            JsonValue::from(state.started.elapsed().as_secs_f64()),
        ),
    ];
    let schedule = state.session.schedule();
    if !schedule.is_empty() {
        pairs.push(("events".into(), JsonValue::from(schedule.render())));
    }
    JsonValue::Obj(pairs)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tiny(name: &str, extra: &[&str]) -> SessionConfig {
        let mut base = vec![
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=onth",
            "rounds=40",
            "seed=3",
            "k=4",
        ];
        base.extend_from_slice(extra);
        SessionConfig::parse(&args(&base), name).unwrap()
    }

    #[test]
    fn config_parse_defaults_and_unknown_keys() {
        let cfg = tiny("alpha", &[]);
        assert_eq!(cfg.cell.seeds, vec![3]);
        assert!(!cfg.resume);
        assert_eq!(cfg.source, SourceKind::Scenario);
        assert!(cfg
            .checkpoint
            .to_string_lossy()
            .ends_with("checkpoint-alpha.json"));

        let err = SessionConfig::parse(&args(&["port=1"]), "x").unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
        let err = SessionConfig::parse(&args(&["topo=er:50"]), "x").unwrap_err();
        assert!(err.contains("required"), "{err}");
    }

    #[test]
    fn manager_lifecycle_create_step_list_remove() {
        let mgr = SessionManager::new(4);
        let info = mgr.create("alpha", tiny("alpha", &[])).unwrap();
        assert_eq!(info.get("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(info.get("status").unwrap().as_str(), Some("live"));

        // duplicate names are refused
        match mgr.create("alpha", tiny("alpha", &[])) {
            Err(ServeError::Conflict(_)) => {}
            other => panic!("expected Conflict, got {other:?}"),
        }

        let round = mgr.step("alpha", "").unwrap();
        assert_eq!(round.get("t").unwrap().as_u64(), Some(0));
        let metrics = mgr.metrics("alpha").unwrap();
        assert_eq!(metrics.get("rounds_served").unwrap().as_u64(), Some(1));
        assert_eq!(
            metrics
                .get("cumulative")
                .unwrap()
                .get("rounds_served")
                .unwrap()
                .as_u64(),
            Some(1)
        );

        let list = mgr.list();
        assert_eq!(list.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(list.get("max_sessions").unwrap().as_u64(), Some(4));

        let stats = mgr.remove("alpha").unwrap();
        assert_eq!(stats.rounds_served, 1);
        assert_eq!(stats.final_t, 1);
        match mgr.step("alpha", "") {
            Err(ServeError::NotFound(_)) => {}
            other => panic!("expected NotFound, got {other:?}"),
        }

        // only the default session's stats are retained for the daemon
        // summary; others are reported once by remove()
        assert!(mgr.default_session_stats().is_none());
        mgr.create(DEFAULT_SESSION, tiny(DEFAULT_SESSION, &[]))
            .unwrap();
        mgr.step(DEFAULT_SESSION, "").unwrap();
        mgr.shutdown_all();
        assert_eq!(mgr.default_session_stats().unwrap().final_t, 1);
    }

    #[test]
    fn manager_enforces_capacity_and_names() {
        let mgr = SessionManager::new(1);
        mgr.create("one", tiny("one", &[])).unwrap();
        match mgr.create("two", tiny("two", &[])) {
            Err(ServeError::Capacity(_)) => {}
            other => panic!("expected Capacity, got {other:?}"),
        }
        for bad in ["", "a/b", "x y", &"n".repeat(65)] {
            match mgr.create(bad, tiny("z", &[])) {
                Err(ServeError::Bad(_)) => {}
                other => panic!("name {bad:?}: expected Bad, got {other:?}"),
            }
        }
        mgr.shutdown_all();
        assert_eq!(mgr.list().get("count").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn idle_evict_checkpoints_tombstones_and_allows_resume() {
        let dir = std::env::temp_dir().join(format!("flexserve-idle-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("idle.json");
        let ck_arg = format!("checkpoint={}", ck.display());
        let mgr = SessionManager::new(4);
        mgr.create("idler", tiny("idler", &[&ck_arg])).unwrap();
        mgr.step("idler", "").unwrap();
        mgr.step("idler", "").unwrap();

        // Nothing is idle against a long window...
        assert!(mgr
            .evict_idle(std::time::Duration::from_secs(3600))
            .is_empty());
        // ...while a zero window reaps immediately: checkpointed + gone.
        assert_eq!(mgr.evict_idle(std::time::Duration::ZERO), vec!["idler"]);
        let text = std::fs::read_to_string(&ck).expect("auto-checkpoint written");
        assert!(text.contains("flexserve-checkpoint-v2"), "{text}");
        match mgr.step("idler", "") {
            Err(ServeError::NotFound(_)) => {}
            other => panic!("evicted session must 404, got {other:?}"),
        }

        // The tombstone shows up in the listing (count stays live-only).
        let list = mgr.list();
        assert_eq!(list.get("count").unwrap().as_u64(), Some(0));
        let rows = match list.get("sessions").unwrap() {
            JsonValue::Arr(rows) => rows.clone(),
            other => panic!("sessions must be an array, got {other:?}"),
        };
        let row = rows
            .iter()
            .find(|r| r.get("name").and_then(JsonValue::as_str) == Some("idler"))
            .expect("tombstone row");
        assert_eq!(row.get("evicted").unwrap(), &JsonValue::Bool(true));
        assert_eq!(row.get("status").unwrap().as_str(), Some("evicted"));
        assert_eq!(row.get("final_t").unwrap().as_u64(), Some(2));
        assert!(row
            .get("checkpoint")
            .unwrap()
            .as_str()
            .unwrap()
            .ends_with("idle.json"));

        // Recreating with resume=true continues from the auto-checkpoint
        // and clears the tombstone.
        let info = mgr
            .create("idler", tiny("idler", &[&ck_arg, "resume=true"]))
            .unwrap();
        assert_eq!(info.get("resumed_at").unwrap().as_u64(), Some(2));
        let list = mgr.list();
        assert_eq!(list.get("count").unwrap().as_u64(), Some(1));
        let rows = match list.get("sessions").unwrap() {
            JsonValue::Arr(rows) => rows.clone(),
            other => panic!("sessions must be an array, got {other:?}"),
        };
        assert!(
            rows.iter().all(|r| r.get("evicted").is_none()
                && r.get("status").and_then(JsonValue::as_str) == Some("live")),
            "recreation must supersede the tombstone"
        );

        // DELETE on an evicted name clears the tombstone (second
        // eviction; the resumed session is at t=2 with 0 new rounds).
        assert_eq!(mgr.evict_idle(std::time::Duration::ZERO), vec!["idler"]);
        let stats = mgr.remove("idler").unwrap();
        assert_eq!(stats.final_t, 2);
        assert_eq!(stats.rounds_served, 0);
        assert!(matches!(mgr.remove("idler"), Err(ServeError::NotFound(_))));
        let list = mgr.list();
        assert_eq!(list.get("count").unwrap().as_u64(), Some(0));
        assert!(
            matches!(list.get("sessions").unwrap(), JsonValue::Arr(rows) if rows.is_empty()),
            "DELETE must clear the tombstone"
        );
        mgr.shutdown_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn remove_migrated_leaves_a_migrated_tombstone() {
        let dir = std::env::temp_dir().join(format!("flexserve-migrate-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("mig.json");
        let ck_arg = format!("checkpoint={}", ck.display());
        let mgr = SessionManager::new(4);
        mgr.create("mover", tiny("mover", &[&ck_arg])).unwrap();
        mgr.step("mover", "").unwrap();
        mgr.step("mover", "").unwrap();
        mgr.step("mover", "").unwrap();

        let stats = mgr.remove_migrated("mover", "127.0.0.1:9999").unwrap();
        assert_eq!(stats.final_t, 3);
        assert_eq!(stats.rounds_served, 3);
        // The checkpoint was written on the way out, so the destination
        // worker can resume from it.
        let text = std::fs::read_to_string(&ck).expect("migration checkpoint written");
        assert!(text.contains("flexserve-checkpoint-v2"), "{text}");
        match mgr.step("mover", "") {
            Err(ServeError::NotFound(_)) => {}
            other => panic!("migrated session must 404 locally, got {other:?}"),
        }
        match mgr.remove_migrated("mover", "127.0.0.1:9999") {
            Err(ServeError::NotFound(_)) => {}
            other => panic!("second migration must 404, got {other:?}"),
        }

        // The tombstone names its destination and does NOT read as an
        // eviction: status is "migrated", there is no `evicted` flag.
        let list = mgr.list();
        assert_eq!(list.get("count").unwrap().as_u64(), Some(0));
        let rows = match list.get("sessions").unwrap() {
            JsonValue::Arr(rows) => rows.clone(),
            other => panic!("sessions must be an array, got {other:?}"),
        };
        let row = rows
            .iter()
            .find(|r| r.get("name").and_then(JsonValue::as_str) == Some("mover"))
            .expect("migrated tombstone row");
        assert_eq!(row.get("status").unwrap().as_str(), Some("migrated"));
        assert_eq!(
            row.get("migrated_to").unwrap().as_str(),
            Some("127.0.0.1:9999")
        );
        assert!(row.get("evicted").is_none());
        assert_eq!(row.get("final_t").unwrap().as_u64(), Some(3));
        assert!(row
            .get("checkpoint")
            .unwrap()
            .as_str()
            .unwrap()
            .ends_with("mig.json"));

        // Both tombstone flavors coexist: idle-evict a second session and
        // check the rows stay distinguishable.
        let ck2 = dir.join("idle2.json");
        let ck2_arg = format!("checkpoint={}", ck2.display());
        mgr.create("idler", tiny("idler", &[&ck2_arg])).unwrap();
        mgr.step("idler", "").unwrap();
        assert_eq!(mgr.evict_idle(std::time::Duration::ZERO), vec!["idler"]);
        let list = mgr.list();
        let rows = match list.get("sessions").unwrap() {
            JsonValue::Arr(rows) => rows.clone(),
            other => panic!("sessions must be an array, got {other:?}"),
        };
        let idle = rows
            .iter()
            .find(|r| r.get("name").and_then(JsonValue::as_str) == Some("idler"))
            .expect("evicted tombstone row");
        assert_eq!(idle.get("status").unwrap().as_str(), Some("evicted"));
        assert_eq!(idle.get("evicted").unwrap(), &JsonValue::Bool(true));
        assert!(idle.get("migrated_to").is_none());

        // Recreating the migrated name (resume on the "destination", here
        // the same manager) clears the tombstone like any recreation.
        let info = mgr
            .create("mover", tiny("mover", &[&ck_arg, "resume=true"]))
            .unwrap();
        assert_eq!(info.get("resumed_at").unwrap().as_u64(), Some(3));
        mgr.shutdown_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn events_append_checkpoint_all_and_resume() {
        let dir =
            std::env::temp_dir().join(format!("flexserve-serve-events-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("events.json");
        let ck_arg = format!("checkpoint={}", ck.display());
        let mgr = SessionManager::new(4);
        let info = mgr
            .create("ev", tiny("ev", &[&ck_arg, "events=2:fail-link:0-1"]))
            .unwrap();
        assert_eq!(
            info.get("events").unwrap().as_str(),
            Some("2:fail-link:0-1")
        );
        for _ in 0..4 {
            mgr.step("ev", "").unwrap();
        }

        // Live append of a future recovery; past events are refused.
        let out = mgr
            .events("ev", r#"{"events": "6:recover-link:0-1"}"#)
            .unwrap();
        assert_eq!(out.get("appended").unwrap().as_u64(), Some(1));
        assert_eq!(
            out.get("events").unwrap().as_str(),
            Some("2:fail-link:0-1,6:recover-link:0-1")
        );
        assert_eq!(out.get("next_t").unwrap().as_u64(), Some(4));
        match mgr.events("ev", r#"{"events": "1:fail-node:5"}"#) {
            Err(ServeError::Bad(msg)) => assert!(msg.contains("round"), "{msg}"),
            other => panic!("past events must be Bad, got {other:?}"),
        }
        match mgr.events("ev", r#"{"nope": true}"#) {
            Err(ServeError::Bad(_)) => {}
            other => panic!("bodies without events must be Bad, got {other:?}"),
        }

        // Graceful-shutdown checkpointing records the full schedule.
        assert_eq!(mgr.checkpoint_all(), vec!["ev".to_string()]);
        let text = std::fs::read_to_string(&ck).expect("shutdown checkpoint written");
        assert!(
            text.contains("\"substrate_events\":\"2:fail-link:0-1,6:recover-link:0-1\""),
            "{text}"
        );
        mgr.shutdown_all();

        // Resume restores the schedule from the checkpoint itself...
        let mgr = SessionManager::new(4);
        let info = mgr
            .create("ev", tiny("ev", &[&ck_arg, "resume=true"]))
            .unwrap();
        assert_eq!(info.get("resumed_at").unwrap().as_u64(), Some(4));
        assert_eq!(
            info.get("events").unwrap().as_str(),
            Some("2:fail-link:0-1,6:recover-link:0-1")
        );
        mgr.shutdown_all();

        // ...an events= key restating it verbatim is accepted, anything
        // else conflicts.
        let mgr = SessionManager::new(4);
        mgr.create(
            "ev",
            tiny(
                "ev",
                &[
                    &ck_arg,
                    "resume=true",
                    "events=2:fail-link:0-1,6:recover-link:0-1",
                ],
            ),
        )
        .unwrap();
        mgr.shutdown_all();
        let mgr = SessionManager::new(4);
        match mgr.create(
            "ev",
            tiny("ev", &[&ck_arg, "resume=true", "events=3:fail-node:5"]),
        ) {
            Err(ServeError::Bad(msg)) => assert!(msg.contains("conflicts"), "{msg}"),
            other => panic!("conflicting schedules must be Bad, got {other:?}"),
        }
        mgr.shutdown_all();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bad_specs_fail_creation_not_the_daemon() {
        let mgr = SessionManager::new(4);
        // infeasible cell (offline strategy)
        let cfg = tiny("x", &["strat=opt"]);
        assert!(matches!(mgr.create("x", cfg), Err(ServeError::Bad(_))));
        // missing checkpoint on resume
        let cfg = tiny("y", &["resume=true", "checkpoint=/nonexistent/ck.json"]);
        assert!(matches!(mgr.create("y", cfg), Err(ServeError::Bad(_))));
        // failed creations free the name slot
        assert_eq!(mgr.list().get("count").unwrap().as_u64(), Some(0));
    }

    #[test]
    fn batch_step_matches_singles_and_validates() {
        let mgr = SessionManager::new(4);
        mgr.create("solo", tiny("solo", &[])).unwrap();
        mgr.create("batch", tiny("batch", &[])).unwrap();

        // Source-driven: {"n": k} replies with the same documents the
        // same rounds produce singly, byte for byte.
        let mut singles = Vec::new();
        for _ in 0..6 {
            singles.push(mgr.step("solo", "").unwrap().render());
        }
        let mut batched = Vec::new();
        for body in [r#"{"n": 2}"#, r#"{"n": 4}"#] {
            match mgr.step("batch", body).unwrap() {
                JsonValue::Arr(rows) => batched.extend(rows.iter().map(JsonValue::render)),
                other => panic!("batch reply must be an array, got {other:?}"),
            }
        }
        assert_eq!(batched, singles);
        assert_eq!(
            mgr.metrics("batch").unwrap().get("source_rounds").unwrap(),
            &JsonValue::from(6u64)
        );

        // Explicit-array form: the elements use the single-step schema.
        let one = mgr
            .step("solo", r#"{"origins": [1, 3, 3]}"#)
            .unwrap()
            .render();
        let arr = mgr.step("batch", r#"[{"origins": [1, 3, 3]}]"#).unwrap();
        match arr {
            JsonValue::Arr(rows) => assert_eq!(rows[0].render(), one),
            other => panic!("batch reply must be an array, got {other:?}"),
        }

        // A malformed element fails the whole batch before anything runs.
        let before = mgr.metrics("batch").unwrap().get("next_t").unwrap().clone();
        match mgr.step("batch", r#"[{"origins": [1]}, {"origins": [99]}]"#) {
            Err(ServeError::Bad(e)) => assert!(e.contains("batch[1]"), "{e}"),
            other => panic!("expected Bad, got {other:?}"),
        }
        assert_eq!(
            mgr.metrics("batch").unwrap().get("next_t").unwrap(),
            &before,
            "malformed batch must apply nothing"
        );

        // Cap and shape validation.
        assert!(matches!(mgr.step("batch", "[]"), Err(ServeError::Bad(_))));
        assert!(matches!(
            mgr.step("batch", r#"{"n": 0}"#),
            Err(ServeError::Bad(_))
        ));
        assert!(matches!(
            mgr.step("batch", r#"{"n": "three"}"#),
            Err(ServeError::Bad(_))
        ));
        assert!(matches!(
            mgr.step("batch", r#"{"n": 4097}"#),
            Err(ServeError::TooLarge(_))
        ));
        let huge = format!("[{}]", vec!["{}"; MAX_BATCH_ROUNDS + 1].join(","));
        assert!(matches!(
            mgr.step("batch", &huge),
            Err(ServeError::TooLarge(_))
        ));
        mgr.shutdown_all();
    }

    #[test]
    fn source_batch_shortfall_is_atomic() {
        let cfg = |name: &str| {
            SessionConfig::parse(
                &args(&[
                    "topo=unit-line:8",
                    "wl=uniform:req=3",
                    "strat=onth",
                    "rounds=5",
                    "seed=3",
                    "k=4",
                ]),
                name,
            )
            .unwrap()
        };
        let mgr = SessionManager::new(4);
        mgr.create("short", cfg("short")).unwrap();
        mgr.create("ref", cfg("ref")).unwrap();
        for _ in 0..3 {
            mgr.step("short", "").unwrap();
            mgr.step("ref", "").unwrap();
        }

        // Only 2 source rounds remain: a batch of 4 fails whole...
        assert!(matches!(
            mgr.step("short", r#"{"n": 4}"#),
            Err(ServeError::Exhausted)
        ));
        let metrics = mgr.metrics("short").unwrap();
        assert_eq!(metrics.get("next_t").unwrap(), &JsonValue::from(3u64));
        // ...and eats no demand: the pulled rounds are restored, so the
        // reported source position stays at what was actually played...
        assert_eq!(
            metrics.get("source_rounds").unwrap(),
            &JsonValue::from(3u64)
        );
        // ...and the next batch plays exactly the restored rounds.
        let replayed = match mgr.step("short", r#"{"n": 2}"#).unwrap() {
            JsonValue::Arr(rows) => rows.iter().map(JsonValue::render).collect::<Vec<_>>(),
            other => panic!("batch reply must be an array, got {other:?}"),
        };
        let expected = [
            mgr.step("ref", "").unwrap().render(),
            mgr.step("ref", "").unwrap().render(),
        ];
        assert_eq!(replayed, expected);
        assert!(matches!(mgr.step("short", ""), Err(ServeError::Exhausted)));
        mgr.shutdown_all();
    }

    #[test]
    fn finish_is_atomic_against_queued_batches() {
        let dir =
            std::env::temp_dir().join(format!("flexserve-batch-evict-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let ck = dir.join("racer.json");
        let ck_arg = format!("checkpoint={}", ck.display());
        let mgr = SessionManager::new(4);
        mgr.create("racer", tiny("racer", &[&ck_arg])).unwrap();
        mgr.step("racer", "").unwrap();

        // Queue a batch directly on the actor channel, then run the
        // evictor: command FIFO means the batch lands before the
        // evictor's atomic checkpoint-and-stop, so every acknowledged
        // round must be in the auto-checkpoint.
        let tx = {
            let inner = mgr.inner.lock().unwrap();
            match inner.entries.get("racer") {
                Some(Entry::Live(h)) => h.tx.clone(),
                _ => panic!("racer must be live"),
            }
        };
        let (rtx, rrx) = mpsc::channel();
        tx.send(Command::StepBatch {
            spec: BatchSpec::FromSource(3),
            reply: rtx,
        })
        .unwrap();
        assert_eq!(mgr.evict_idle(std::time::Duration::ZERO), vec!["racer"]);
        let rows = match rrx.recv().unwrap().unwrap() {
            JsonValue::Arr(rows) => rows,
            other => panic!("batch reply must be an array, got {other:?}"),
        };
        assert_eq!(rows.len(), 3, "the queued batch was acknowledged in full");
        let text = std::fs::read_to_string(&ck).expect("auto-checkpoint written");
        assert!(
            text.contains("\"t\":4"),
            "checkpoint must include the acknowledged batch: {text}"
        );

        // After the eviction the whole batch path reads as a clean 404 —
        // no partial rounds anywhere.
        match mgr.step("racer", r#"{"n": 2}"#) {
            Err(ServeError::NotFound(_)) => {}
            other => panic!("evicted session must 404, got {other:?}"),
        }
        let _ = std::fs::remove_dir_all(&dir);
    }
}
