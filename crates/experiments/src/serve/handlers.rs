//! Request handlers: one HTTP exchange in, one response out. Workers call
//! [`handle_connection`] with the shared daemon state; everything
//! session-shaped is delegated to the [`SessionManager`] (and thus to the
//! per-session actor threads), so handlers never touch simulation state
//! directly.

use std::net::{IpAddr, Ipv4Addr, Ipv6Addr, TcpStream};
use std::sync::atomic::Ordering;

use flexserve_workload::JsonValue;

use super::http::{route, HttpRequest, Route, ENDPOINT_LIST};
use super::sessions::{ServeError, SessionConfig};
use super::ServeShared;

/// How long a persistent connection may sit idle between requests before
/// the daemon closes it. Short on purpose: an idle connection still costs
/// a file descriptor and a reactor-table slot (and, on the non-Linux
/// fallback front end, a whole worker thread).
pub(crate) const KEEP_ALIVE_IDLE: std::time::Duration = std::time::Duration::from_secs(10);

/// The front-end-agnostic result of one routed exchange: what to answer,
/// whether the connection survives it, and whether the daemon should
/// begin shutting down *after* the response is on the wire.
pub(crate) struct Outcome {
    pub(crate) status: u16,
    pub(crate) body: String,
    pub(crate) keep_alive: bool,
    pub(crate) shutdown: bool,
}

/// Routes and executes one parsed request. Both front ends — the epoll
/// reactor's workers and the blocking fallback loop — funnel through
/// here, so the HTTP surface cannot drift between them.
pub(crate) fn process_request(request: &HttpRequest, shared: &ServeShared) -> Outcome {
    // A daemon going down closes as it answers, so the front end drains
    // instead of waiting out every open keep-alive window.
    let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
    match route(&request.method, &request.path) {
        None => Outcome {
            status: 404,
            body: error_json(&format!(
                "no {} {}; endpoints: {ENDPOINT_LIST}",
                request.method, request.path
            ))
            .render(),
            keep_alive,
            shutdown: false,
        },
        Some(Route::Shutdown) => Outcome {
            status: 200,
            body: JsonValue::Obj(vec![("ok".into(), JsonValue::Bool(true))]).render(),
            keep_alive: false,
            shutdown: true,
        },
        Some(resolved) => match dispatch(resolved, &request.body, shared) {
            Ok(body) => Outcome {
                status: 200,
                body,
                keep_alive,
                shutdown: false,
            },
            Err(e) => Outcome {
                status: status_of(&e),
                body: error_json(&e.to_string()).render(),
                keep_alive,
                shutdown: false,
            },
        },
    }
}

/// Handles one connection on the blocking fallback front end (non-Linux
/// hosts, where the epoll reactor in `event_loop.rs` is unavailable): a
/// request loop that honors `Connection: keep-alive` (the HTTP/1.1
/// default), serving any number of exchanges until the client closes,
/// asks for `Connection: close`, idles past [`KEEP_ALIVE_IDLE`], or the
/// daemon shuts down.
#[cfg(not(target_os = "linux"))]
pub(crate) fn handle_connection(stream: TcpStream, shared: &ServeShared) -> Result<(), String> {
    use super::http::{read_request, respond_json};

    // One slow (or silent) client must not pin its worker forever: the
    // first request gets the configured request timeout, later idle gaps
    // the short keep-alive window (applied at the bottom of the loop).
    let _ = stream.set_read_timeout(Some(shared.request_timeout));
    let _ = stream.set_write_timeout(Some(shared.request_timeout));
    let mut reader = std::io::BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            // Clean end of the connection: client closed or idled out.
            Ok(None) => return Ok(()),
            // Framing errors poison the stream — answer with the error's
            // status (408 stalled, 413 oversized, 400 malformed) and
            // close.
            Err(e) => {
                return respond_json(
                    reader.get_mut(),
                    e.status(),
                    &error_json(&e.message()).render(),
                    false,
                )
            }
        };
        let outcome = process_request(&request, shared);
        respond_json(
            reader.get_mut(),
            outcome.status,
            &outcome.body,
            outcome.keep_alive,
        )?;
        if outcome.shutdown {
            begin_shutdown(shared);
            return Ok(());
        }
        if !outcome.keep_alive {
            return Ok(());
        }
        let _ = reader.get_ref().set_read_timeout(Some(KEEP_ALIVE_IDLE));
    }
}

/// Executes a routed request against the session manager; returns the
/// 200-response body.
fn dispatch(route: Route, body: &str, shared: &ServeShared) -> Result<String, ServeError> {
    let manager = &shared.manager;
    match route {
        Route::CreateSession => {
            let (name, cfg) = parse_create_body(body)?;
            manager.create(&name, cfg).map(|info| info.render())
        }
        Route::ListSessions => Ok(manager.list().render()),
        Route::Step(name) => manager.step(&name, body).map(|v| v.render()),
        Route::Placement(name) => manager.placement(&name).map(|v| v.render()),
        Route::Metrics(name) => manager.metrics(&name).map(|v| v.render()),
        Route::Checkpoint(name) => manager.checkpoint(&name),
        Route::Events(name) => manager.events(&name, body).map(|v| v.render()),
        Route::DeleteSession(name) => {
            // An optional `{"migrated_to": "<worker>"}` body turns the
            // eviction into a migration hand-off: the session is
            // checkpointed and its tombstone names the destination
            // instead of reading as data loss (docs/CLUSTER.md).
            let migrated_to = parse_delete_body(body)?;
            let stats = match &migrated_to {
                Some(target) => manager.remove_migrated(&name, target)?,
                None => manager.remove(&name)?,
            };
            let mut pairs = vec![
                ("ok".into(), JsonValue::Bool(true)),
                ("name".into(), JsonValue::from(name.as_str())),
                ("rounds_served".into(), JsonValue::from(stats.rounds_served)),
                ("final_t".into(), JsonValue::from(stats.final_t)),
            ];
            if let Some(target) = migrated_to {
                pairs.push(("migrated_to".into(), JsonValue::from(target.as_str())));
            }
            Ok(JsonValue::Obj(pairs).render())
        }
        Route::Shutdown => unreachable!("handled by the caller"),
    }
}

/// Parses a `POST /sessions` body:
/// `{"name": "<session>", "args": ["topo=...", "wl=...", ...]}` — the
/// `args` entries use exactly the `flexserve serve` cell/session grammar.
fn parse_create_body(body: &str) -> Result<(String, SessionConfig), ServeError> {
    let v = JsonValue::parse(body.trim()).map_err(ServeError::Bad)?;
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| ServeError::Bad("create: missing \"name\" string".into()))?
        .to_string();
    let args = match v.get("args") {
        None => Vec::new(),
        Some(args) => args.as_str_array().ok_or_else(|| {
            ServeError::Bad("create: \"args\" must be an array of strings".into())
        })?,
    };
    let cfg = SessionConfig::parse(&args, &name).map_err(ServeError::Bad)?;
    Ok((name, cfg))
}

/// Parses an optional `DELETE /sessions/<name>` body. Empty means a plain
/// eviction; `{"migrated_to": "<worker>"}` marks the removal as a
/// migration hand-off. Anything else is a 400.
fn parse_delete_body(body: &str) -> Result<Option<String>, ServeError> {
    let body = body.trim();
    if body.is_empty() {
        return Ok(None);
    }
    let v = JsonValue::parse(body).map_err(ServeError::Bad)?;
    match v.get("migrated_to") {
        Some(target) => match target.as_str() {
            Some(target) if !target.is_empty() => Ok(Some(target.to_string())),
            _ => Err(ServeError::Bad(
                "delete: \"migrated_to\" must be a non-empty string".into(),
            )),
        },
        None => Err(ServeError::Bad(
            "delete: body must be empty or {\"migrated_to\": \"<worker>\"}".into(),
        )),
    }
}

/// Flags the daemon down and pokes the accept loop awake with a dummy
/// connection so it observes the flag without waiting for a real client.
/// Also the SIGTERM path: the signal watcher in `serve_on` calls this so
/// a terminated daemon drains and checkpoints exactly like
/// `POST /shutdown`.
pub(crate) fn begin_shutdown(shared: &ServeShared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let mut addr = shared.addr;
    // A wildcard bind (0.0.0.0 / ::) is not a connectable address.
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&addr, std::time::Duration::from_secs(1));
}

/// The HTTP status each [`ServeError`] maps to.
fn status_of(e: &ServeError) -> u16 {
    match e {
        ServeError::NotFound(_) => 404,
        ServeError::Conflict(_) => 409,
        ServeError::Capacity(_) => 429,
        ServeError::Bad(_) => 400,
        ServeError::Exhausted => 410,
        ServeError::TooLarge(_) => 413,
        ServeError::Internal(_) => 500,
    }
}

pub(crate) fn error_json(message: &str) -> JsonValue {
    JsonValue::Obj(vec![("error".into(), JsonValue::from(message))])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn create_body_parses_name_and_args() {
        let (name, cfg) = parse_create_body(
            r#"{"name":"beta","args":["topo=unit-line:8","wl=uniform:req=3","strat=onth","seed=2"]}"#,
        )
        .unwrap();
        assert_eq!(name, "beta");
        assert_eq!(cfg.cell.seeds, vec![2]);
        assert!(cfg
            .checkpoint
            .to_string_lossy()
            .ends_with("checkpoint-beta.json"));

        assert!(matches!(parse_create_body("{}"), Err(ServeError::Bad(_))));
        assert!(matches!(
            parse_create_body(r#"{"name":"x","args":"topo=er:50"}"#),
            Err(ServeError::Bad(_))
        ));
        assert!(matches!(
            parse_create_body(r#"{"name":"x","args":[1]}"#),
            Err(ServeError::Bad(_))
        ));
        // args must still name a full cell
        assert!(matches!(
            parse_create_body(r#"{"name":"x","args":[]}"#),
            Err(ServeError::Bad(_))
        ));
    }

    #[test]
    fn delete_body_is_empty_or_a_migration_marker() {
        assert_eq!(parse_delete_body("").unwrap(), None);
        assert_eq!(parse_delete_body("  \n").unwrap(), None);
        assert_eq!(
            parse_delete_body(r#"{"migrated_to": "10.0.0.2:7777"}"#).unwrap(),
            Some("10.0.0.2:7777".to_string())
        );
        assert!(matches!(
            parse_delete_body(r#"{"migrated_to": ""}"#),
            Err(ServeError::Bad(_))
        ));
        assert!(matches!(
            parse_delete_body(r#"{"migrated_to": 7}"#),
            Err(ServeError::Bad(_))
        ));
        assert!(matches!(
            parse_delete_body(r#"{"nope": true}"#),
            Err(ServeError::Bad(_))
        ));
        assert!(matches!(
            parse_delete_body("not json"),
            Err(ServeError::Bad(_))
        ));
    }

    #[test]
    fn statuses_cover_every_error_kind() {
        assert_eq!(status_of(&ServeError::NotFound("x".into())), 404);
        assert_eq!(status_of(&ServeError::Conflict("x".into())), 409);
        assert_eq!(status_of(&ServeError::Capacity("x".into())), 429);
        assert_eq!(status_of(&ServeError::Bad("x".into())), 400);
        assert_eq!(status_of(&ServeError::Exhausted), 410);
        assert_eq!(status_of(&ServeError::TooLarge("x".into())), 413);
        assert_eq!(status_of(&ServeError::Internal("x".into())), 500);
    }
}
