//! The `flexserve route` daemon: a consistent-hash front tier over a
//! fleet of `flexserve serve` workers.
//!
//! The router owns no simulation state. It keeps a [`ring::HashRing`]
//! mapping session names onto worker addresses, a routing table of the
//! sessions it created, and proxies the whole `/sessions` API
//! transparently — same endpoints, same bodies, same error contract
//! (404/409/413/408/429 relayed verbatim; transport failures become 502).
//! Two router-only surfaces are added on top:
//!
//! | endpoint                  | effect                                    |
//! |---------------------------|-------------------------------------------|
//! | `GET /cluster`            | worker health + session placement table   |
//! | `POST /workers`           | join a worker (`{"addr": "host:port"}`)   |
//! | `DELETE /workers/<addr>`  | drain a worker (migrate its sessions off) |
//!
//! **Live migration** is the router's load-bearing trick: to move a
//! session from worker A to worker B it checkpoints on A
//! (`POST /sessions/<name>/checkpoint`), recreates on B with
//! `resume=true` from the same checkpoint file, then evicts the A copy
//! with a `{"migrated_to": B}` tombstone. Because the v2 checkpoint
//! carries cumulative metrics, the demand cursor and the substrate-event
//! schedule, the moved session is **bit-identical** to one that never
//! moved — placement, per-round costs and checkpoint bytes all pinned by
//! `tests/route_cluster.rs`. Migrations trigger on ring changes (worker
//! join/drain/death) and on a load-skew threshold (`skew=`).
//!
//! **Health**: a background thread probes every worker (`GET /sessions`)
//! each `health-interval=`; `mark-down=` consecutive failures take a
//! worker off the ring and its sessions are *resurrected* on the ring
//! owners — recreated from their last checkpoints with the rounds lost
//! since the snapshot replayed (scenario-source sessions only; see
//! `docs/CLUSTER.md`). A probe success while down marks the worker back
//! up and re-syncs the ring.
//!
//! Deployment assumption: workers share a filesystem (checkpoint hand-off
//! is path-based). Lock discipline: the router state mutex is an *inner*
//! lock — it is never held while acquiring a per-session mutex, and each
//! proxied operation holds its session mutex end-to-end, so a migration
//! is atomic with respect to every other operation on that session.

pub mod proxy;
pub mod ring;

use std::collections::BTreeMap;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Duration;

use flexserve_workload::JsonValue;

use super::handlers::KEEP_ALIVE_IDLE;
use super::http::{read_request, respond_json, Route};
use super::sessions::SessionConfig;
use crate::spec::CellBuilder;
use proxy::http_call;
use ring::HashRing;

/// Parsed `flexserve route` options: the worker fleet plus the router's
/// own server shape.
#[derive(Clone, Debug)]
pub struct RouteOptions {
    /// The worker fleet (`workers=host:port+host:port+...`; required).
    pub workers: Vec<String>,
    /// Listener address (`bind=`; loopback unless asked otherwise).
    pub bind: IpAddr,
    /// Listener port (default 7787; 0 = ephemeral, announced on stdout).
    pub port: u16,
    /// HTTP worker threads handling router connections.
    pub threads: usize,
    /// Virtual ring points per worker.
    pub replicas: usize,
    /// Worker probe period.
    pub health_interval: Duration,
    /// Consecutive probe failures before a worker is marked down.
    pub mark_down: u32,
    /// Migrate sessions when `max - min` per-worker session counts
    /// exceed this (`None` = no skew balancing, the default).
    pub skew: Option<u64>,
    /// Per-exchange read/write bound, client side and worker side.
    pub request_timeout: Duration,
}

const ROUTE_USAGE: &str = "\
usage: flexserve route workers=<host:port>+<host:port>... [key=value...]

router keys: workers=<addr>+<addr>+... (the worker fleet; required),
             port (default 7787, 0 = ephemeral),
             bind=<ip>[:<port>] (default 127.0.0.1),
             threads=<n> (HTTP pool; default 4),
             replicas=<n> (ring points per worker; default 32),
             health-interval=<secs> (worker probe period; default 2),
             mark-down=<k> (probe failures before mark-down; default 3),
             skew=<n> (migrate when max-min session counts exceed n;
             default off),
             request-timeout=<secs> (proxy read/write bound; default 30)
";

impl RouteOptions {
    /// Parses `route` arguments (`key=value` pairs). Unlike `serve`,
    /// *every* key is a router key — sessions are created over HTTP, not
    /// on the command line.
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let mut workers: Vec<String> = Vec::new();
        let mut bind = IpAddr::V4(Ipv4Addr::LOCALHOST);
        let mut port = 7787u16;
        let mut threads = 4usize;
        let mut replicas = ring::DEFAULT_REPLICAS;
        let mut health_interval = Duration::from_secs(2);
        let mut mark_down = 3u32;
        let mut skew = None;
        let mut request_timeout = Duration::from_secs(30);

        let seconds = |key: &str, v: &str| -> Result<Duration, String> {
            let secs: f64 = v
                .parse()
                .map_err(|_| format!("{key}: bad value {v:?} (want seconds)"))?;
            if !secs.is_finite() || secs <= 0.0 {
                return Err(format!("{key}: {v} out of range (want > 0 seconds)"));
            }
            Ok(Duration::from_secs_f64(secs))
        };

        for arg in args {
            let (key, v) = arg
                .split_once('=')
                .ok_or_else(|| format!("route: expected key=value, got {arg:?}\n{ROUTE_USAGE}"))?;
            match key {
                "workers" => {
                    for addr in v.split('+') {
                        let addr = addr.trim();
                        if addr.is_empty() || !addr.contains(':') {
                            return Err(format!("workers: bad address {addr:?} (want host:port)"));
                        }
                        if workers.iter().any(|w| w == addr) {
                            return Err(format!("workers: duplicate address {addr:?}"));
                        }
                        workers.push(addr.to_string());
                    }
                }
                "port" => port = v.parse().map_err(|_| format!("port: bad value {v:?}"))?,
                "bind" => {
                    if let Ok(addr) = v.parse::<SocketAddr>() {
                        bind = addr.ip();
                        port = addr.port();
                    } else {
                        bind = v.parse().map_err(|_| {
                            format!("bind: bad value {v:?} (want <ip> or <ip>:<port>)")
                        })?;
                    }
                }
                "threads" => {
                    threads = v.parse().map_err(|_| format!("threads: bad value {v:?}"))?;
                    if threads == 0 || threads > 64 {
                        return Err(format!("threads: {threads} out of range (1-64)"));
                    }
                }
                "replicas" => {
                    replicas = v
                        .parse()
                        .map_err(|_| format!("replicas: bad value {v:?}"))?;
                    if replicas == 0 || replicas > 1024 {
                        return Err(format!("replicas: {replicas} out of range (1-1024)"));
                    }
                }
                "health-interval" => health_interval = seconds(key, v)?,
                "mark-down" => {
                    mark_down = v
                        .parse()
                        .map_err(|_| format!("mark-down: bad value {v:?}"))?;
                    if mark_down == 0 {
                        return Err("mark-down: must be >= 1".into());
                    }
                }
                "skew" => {
                    let n: u64 = v.parse().map_err(|_| format!("skew: bad value {v:?}"))?;
                    if n == 0 {
                        return Err("skew: must be >= 1 (use a larger value to \
                                    tolerate more imbalance)"
                            .into());
                    }
                    skew = Some(n);
                }
                "request-timeout" => request_timeout = seconds(key, v)?,
                _ => return Err(format!("route: unknown key {key:?}\n{ROUTE_USAGE}")),
            }
        }
        if workers.is_empty() {
            return Err(format!("route: workers= is required\n{ROUTE_USAGE}"));
        }
        Ok(RouteOptions {
            workers,
            bind,
            port,
            threads,
            replicas,
            health_interval,
            mark_down,
            skew,
            request_timeout,
        })
    }
}

/// One configured worker's health record.
struct WorkerEntry {
    addr: String,
    /// On the ring and receiving traffic.
    alive: bool,
    /// Consecutive probe failures (reset on success).
    failures: u32,
}

/// Where one session lives and what the router knows about it.
struct SessionRoute {
    /// The worker currently hosting the session.
    worker: String,
    /// The creation args, kept for migration/resurrection re-creates.
    args: Vec<String>,
    /// The next round the session will play (tracked from step
    /// responses; used to replay rounds lost to a worker death).
    next_t: u64,
}

/// The router's mutable state: worker fleet, ring, and routing table.
/// The per-session `Arc<Mutex<_>>` is the router's unit of serialization —
/// proxied operations and migrations on one session exclude each other,
/// while distinct sessions proceed in parallel.
struct RouterState {
    workers: Vec<WorkerEntry>,
    ring: HashRing,
    sessions: HashMap<String, Arc<Mutex<SessionRoute>>>,
}

/// State every router HTTP thread shares.
struct RouterShared {
    state: Mutex<RouterState>,
    shutdown: AtomicBool,
    addr: SocketAddr,
    timeout: Duration,
    mark_down: u32,
    skew: Option<u64>,
}

impl RouterShared {
    /// The probe timeout: snappier than the proxy timeout so a hung
    /// worker can't stall the health loop for the full request bound.
    fn probe_timeout(&self) -> Duration {
        self.timeout.min(Duration::from_secs(1))
    }
}

fn error_json(message: &str) -> String {
    JsonValue::Obj(vec![("error".into(), JsonValue::from(message))]).render()
}

/// The 404 body's endpoint inventory for the router (kept in sync with
/// `docs/CLUSTER.md` by `tests/docs_drift.rs`, which is why it is
/// public).
pub const ROUTER_ENDPOINT_LIST: &str = "GET /cluster, POST /workers, \
     DELETE /workers/<addr>, POST /sessions, GET /sessions, \
     POST /sessions/<name>/step, GET /sessions/<name>/placement, \
     GET /sessions/<name>/metrics, POST /sessions/<name>/checkpoint, \
     POST /sessions/<name>/events, DELETE /sessions/<name>, POST /step, \
     GET /placement, GET /metrics, POST /checkpoint, POST /shutdown";

/// A resolved router endpoint: the two router-only surfaces, the relayed
/// session surface, or the router's own shutdown.
enum RouterRoute {
    Cluster,
    Join,
    Drain(String),
    Proxy(Route),
    Shutdown,
}

fn router_route(method: &str, path: &str) -> Option<RouterRoute> {
    match (method, path) {
        ("GET", "/cluster") => return Some(RouterRoute::Cluster),
        ("POST", "/workers") => return Some(RouterRoute::Join),
        _ => {}
    }
    if let Some(addr) = path.strip_prefix("/workers/") {
        return (method == "DELETE" && !addr.is_empty())
            .then(|| RouterRoute::Drain(addr.to_string()));
    }
    match super::http::route(method, path)? {
        Route::Shutdown => Some(RouterRoute::Shutdown),
        r => Some(RouterRoute::Proxy(r)),
    }
}

/// The args a migrated session is re-created with on its destination:
/// the cell keys (minus `events=`, restored from the checkpoint itself)
/// plus `checkpoint=`/`source=`, with `resume=true` appended. Session
/// keys that don't survive a move (`resume=` restated by us, server keys
/// rejected by `SessionConfig`) are dropped.
fn migration_args(args: &[String]) -> Vec<String> {
    let mut out: Vec<String> = args
        .iter()
        .filter(|arg| match arg.split_once('=') {
            Some((key, _)) => {
                (CellBuilder::is_cell_key(key) && key != "events")
                    || key == "checkpoint"
                    || key == "source"
            }
            None => false,
        })
        .cloned()
        .collect();
    out.push("resume=true".to_string());
    out
}

/// A `POST /sessions` body for `name` with the given args.
fn create_body(name: &str, args: &[String]) -> String {
    JsonValue::Obj(vec![
        ("name".into(), JsonValue::from(name)),
        (
            "args".into(),
            JsonValue::Arr(args.iter().map(|a| JsonValue::from(a.as_str())).collect()),
        ),
    ])
    .render()
}

/// Moves one session from its current worker to `target` (both alive):
/// checkpoint on the source, re-create with `resume=true` on the target,
/// tombstone the source copy with `migrated_to`. Any failure before the
/// target create succeeds aborts with the session untouched on its
/// source.
fn migrate(
    name: &str,
    session: &mut SessionRoute,
    target: &str,
    timeout: Duration,
) -> Result<(), String> {
    let source = session.worker.clone();
    match http_call(
        &source,
        "POST",
        &format!("/sessions/{name}/checkpoint"),
        "",
        timeout,
    ) {
        Ok((200, _)) => {}
        Ok((status, body)) => {
            return Err(format!("checkpoint on {source}: {status} {}", body.trim()))
        }
        Err(e) => return Err(format!("checkpoint on {source}: {e}")),
    }
    let resumed_at = match http_call(
        target,
        "POST",
        "/sessions",
        &create_body(name, &migration_args(&session.args)),
        timeout,
    ) {
        Ok((200, body)) => JsonValue::parse(body.trim())
            .ok()
            .and_then(|v| v.get("resumed_at").and_then(JsonValue::as_u64))
            .unwrap_or(0),
        Ok((status, body)) => return Err(format!("create on {target}: {status} {}", body.trim())),
        Err(e) => return Err(format!("create on {target}: {e}")),
    };
    // Hand-off: the source copy becomes a `migrated_to` tombstone. The
    // target is authoritative from here, so a failed delete only leaves
    // an orphan to log, never a lost session.
    let del_path = format!("/sessions/{name}");
    let marker = JsonValue::Obj(vec![("migrated_to".into(), JsonValue::from(target))]).render();
    if !matches!(
        http_call(&source, "DELETE", &del_path, &marker, timeout),
        Ok((200, _))
    ) && !matches!(
        http_call(&source, "DELETE", &del_path, "", timeout),
        Ok((200, _))
    ) {
        eprintln!("flexserve route: orphaned copy of session {name:?} left on {source}");
    }
    session.worker = target.to_string();
    session.next_t = session.next_t.max(resumed_at);
    Ok(())
}

/// Brings a session back on `target` after its worker died: re-create
/// with `resume=true` from its last checkpoint (or from scratch when no
/// checkpoint was ever written), then replay the rounds stepped since
/// that snapshot. Only scenario-source sessions replay exactly — rounds
/// stepped with explicit demand bodies are not recorded by the router
/// (documented in `docs/CLUSTER.md`).
fn resurrect(
    name: &str,
    session: &mut SessionRoute,
    target: &str,
    timeout: Duration,
) -> Result<(), String> {
    let resumed_at = match http_call(
        target,
        "POST",
        "/sessions",
        &create_body(name, &migration_args(&session.args)),
        timeout,
    ) {
        Ok((200, body)) => JsonValue::parse(body.trim())
            .ok()
            .and_then(|v| v.get("resumed_at").and_then(JsonValue::as_u64))
            .unwrap_or(0),
        // No usable checkpoint (the worker died before one was written):
        // recreate from scratch — the original args, `resume=` dropped —
        // and replay the whole history.
        _ => {
            let fresh: Vec<String> = session
                .args
                .iter()
                .filter(|a| !a.starts_with("resume="))
                .cloned()
                .collect();
            match http_call(
                target,
                "POST",
                "/sessions",
                &create_body(name, &fresh),
                timeout,
            ) {
                Ok((200, _)) => 0,
                Ok((status, body)) => {
                    return Err(format!("recreate on {target}: {status} {}", body.trim()))
                }
                Err(e) => return Err(format!("recreate on {target}: {e}")),
            }
        }
    };
    // The target owns the session from here even if the replay below
    // fails partway — next_t then records how far it actually got.
    session.worker = target.to_string();
    let goal = session.next_t;
    session.next_t = resumed_at;
    for _ in resumed_at..goal {
        match http_call(
            target,
            "POST",
            &format!("/sessions/{name}/step"),
            "",
            timeout,
        ) {
            Ok((200, _)) => session.next_t += 1,
            Ok((status, body)) => {
                return Err(format!("replay on {target}: {status} {}", body.trim()))
            }
            Err(e) => return Err(format!("replay on {target}: {e}")),
        }
    }
    Ok(())
}

/// Re-homes one session onto its ring owner, choosing the mechanism by
/// the health of its current worker: migrate (checkpoint hand-off) when
/// alive, resurrect (resume + replay) when dead.
fn relocate(shared: &RouterShared, name: &str) {
    let arc = match shared.state.lock().unwrap().sessions.get(name) {
        Some(arc) => Arc::clone(arc),
        None => return,
    };
    let mut session = arc.lock().unwrap();
    let (desired, source_alive) = {
        let state = shared.state.lock().unwrap();
        let desired = match state.ring.owner(name) {
            Some(owner) => owner.to_string(),
            None => return, // no live workers; nothing to do
        };
        let alive = state
            .workers
            .iter()
            .any(|w| w.addr == session.worker && w.alive);
        (desired, alive)
    };
    if session.worker == desired {
        return;
    }
    let moved = if source_alive {
        migrate(name, &mut session, &desired, shared.timeout)
    } else {
        resurrect(name, &mut session, &desired, shared.timeout)
    };
    if let Err(e) = moved {
        eprintln!("flexserve route: could not move session {name:?} to {desired}: {e}");
    }
}

/// After any ring change: walk the routing table (sorted, for
/// deterministic migration order) and re-home every session whose ring
/// owner changed.
fn ring_sync(shared: &RouterShared) {
    let mut names: Vec<String> = shared
        .state
        .lock()
        .unwrap()
        .sessions
        .keys()
        .cloned()
        .collect();
    names.sort();
    for name in &names {
        relocate(shared, name);
    }
}

/// With `skew=` set: while the most- and least-loaded live workers
/// differ by more than the threshold, migrate the first (sorted) session
/// off the most-loaded one. Skew placements deliberately override the
/// ring until the next ring change re-normalizes them.
fn skew_balance(shared: &RouterShared) {
    let Some(skew) = shared.skew else { return };
    // Each pass moves one session; bounded so a migration failure can't
    // spin the health thread.
    for _ in 0..64 {
        let (pairs, live) = {
            let state = shared.state.lock().unwrap();
            let mut pairs: Vec<(String, Arc<Mutex<SessionRoute>>)> = state
                .sessions
                .iter()
                .map(|(n, a)| (n.clone(), Arc::clone(a)))
                .collect();
            pairs.sort_by(|a, b| a.0.cmp(&b.0));
            let live: Vec<String> = state
                .workers
                .iter()
                .filter(|w| w.alive)
                .map(|w| w.addr.clone())
                .collect();
            (pairs, live)
        };
        if live.len() < 2 {
            return;
        }
        let mut by_worker: BTreeMap<String, Vec<String>> =
            live.iter().map(|w| (w.clone(), Vec::new())).collect();
        for (name, arc) in &pairs {
            let worker = arc.lock().unwrap().worker.clone();
            if let Some(names) = by_worker.get_mut(&worker) {
                names.push(name.clone());
            }
        }
        // BTreeMap order makes the max/min picks deterministic on ties.
        let (max_w, max_n) = by_worker
            .iter()
            .max_by_key(|(_, names)| names.len())
            .map(|(w, names)| (w.clone(), names.len() as u64))
            .unwrap();
        let (min_w, min_n) = by_worker
            .iter()
            .min_by_key(|(_, names)| names.len())
            .map(|(w, names)| (w.clone(), names.len() as u64))
            .unwrap();
        if max_n - min_n <= skew {
            return;
        }
        let name = by_worker[&max_w][0].clone();
        let arc = match shared.state.lock().unwrap().sessions.get(&name) {
            Some(arc) => Arc::clone(arc),
            None => continue,
        };
        let mut session = arc.lock().unwrap();
        if session.worker != max_w {
            continue; // moved under us; recount
        }
        if let Err(e) = migrate(&name, &mut session, &min_w, shared.timeout) {
            eprintln!("flexserve route: skew balance of {name:?} failed: {e}");
            return;
        }
        eprintln!("flexserve route: skew-balanced session {name:?} {max_w} -> {min_w}");
    }
}

/// One health pass: probe every configured worker, apply the
/// mark-down/mark-up rules, re-sync the ring on any transition, then
/// skew-balance.
fn health_tick(shared: &RouterShared) {
    let addrs: Vec<String> = {
        let state = shared.state.lock().unwrap();
        state.workers.iter().map(|w| w.addr.clone()).collect()
    };
    for addr in addrs {
        let ok = matches!(
            http_call(&addr, "GET", "/sessions", "", shared.probe_timeout()),
            Ok((200, _))
        );
        let transition = {
            let mut state = shared.state.lock().unwrap();
            let Some(entry) = state.workers.iter_mut().find(|w| w.addr == addr) else {
                continue; // drained while we probed
            };
            if ok {
                entry.failures = 0;
                if !entry.alive {
                    entry.alive = true;
                    state.ring.add(&addr);
                    Some("up")
                } else {
                    None
                }
            } else if entry.alive {
                entry.failures += 1;
                if entry.failures >= shared.mark_down {
                    entry.alive = false;
                    state.ring.remove(&addr);
                    Some("down")
                } else {
                    None
                }
            } else {
                None
            }
        };
        if let Some(direction) = transition {
            eprintln!("flexserve route: worker {addr} marked {direction}");
            ring_sync(shared);
        }
    }
    skew_balance(shared);
}

/// `GET /cluster`: the router's own view — worker health and the
/// placement table.
fn cluster_view(shared: &RouterShared) -> (u16, String) {
    let (workers, pairs) = {
        let state = shared.state.lock().unwrap();
        let workers: Vec<(String, bool, u32, bool)> = state
            .workers
            .iter()
            .map(|w| {
                (
                    w.addr.clone(),
                    w.alive,
                    w.failures,
                    state.ring.contains(&w.addr),
                )
            })
            .collect();
        let mut pairs: Vec<(String, Arc<Mutex<SessionRoute>>)> = state
            .sessions
            .iter()
            .map(|(n, a)| (n.clone(), Arc::clone(a)))
            .collect();
        pairs.sort_by(|a, b| a.0.cmp(&b.0));
        (workers, pairs)
    };
    let mut counts: BTreeMap<String, u64> =
        workers.iter().map(|(addr, ..)| (addr.clone(), 0)).collect();
    let mut session_rows = Vec::new();
    for (name, arc) in &pairs {
        let session = arc.lock().unwrap();
        *counts.entry(session.worker.clone()).or_default() += 1;
        session_rows.push(JsonValue::Obj(vec![
            ("name".into(), JsonValue::from(name.as_str())),
            ("worker".into(), JsonValue::from(session.worker.as_str())),
            ("next_t".into(), JsonValue::from(session.next_t)),
        ]));
    }
    let worker_rows = workers
        .iter()
        .map(|(addr, alive, failures, on_ring)| {
            JsonValue::Obj(vec![
                ("addr".into(), JsonValue::from(addr.as_str())),
                ("alive".into(), JsonValue::Bool(*alive)),
                ("failures".into(), JsonValue::from(u64::from(*failures))),
                ("ring".into(), JsonValue::Bool(*on_ring)),
                (
                    "sessions".into(),
                    JsonValue::from(counts.get(addr).copied().unwrap_or(0)),
                ),
            ])
        })
        .collect();
    let mut pairs_out = vec![
        ("workers".into(), JsonValue::Arr(worker_rows)),
        (
            "live_workers".into(),
            JsonValue::from(workers.iter().filter(|(_, alive, ..)| *alive).count() as u64),
        ),
        ("count".into(), JsonValue::from(session_rows.len() as u64)),
        ("sessions".into(), JsonValue::Arr(session_rows)),
    ];
    if let Some(skew) = shared.skew {
        pairs_out.push(("skew".into(), JsonValue::from(skew)));
    }
    (200, JsonValue::Obj(pairs_out).render())
}

/// `POST /workers`: join a worker to the fleet and re-sync the ring.
fn join_worker(body: &str, shared: &RouterShared) -> (u16, String) {
    let addr = match JsonValue::parse(body.trim()).ok().and_then(|v| {
        v.get("addr")
            .and_then(JsonValue::as_str)
            .map(str::to_string)
    }) {
        Some(addr) if addr.contains(':') => addr,
        _ => {
            return (
                400,
                error_json("join: body must be {\"addr\": \"host:port\"}"),
            )
        }
    };
    // A worker joins only if it answers: an unreachable joiner would
    // black-hole every name on its arcs.
    if let Err(e) = http_call(&addr, "GET", "/sessions", "", shared.probe_timeout()) {
        return (
            502,
            error_json(&format!("join: worker {addr} unreachable: {e}")),
        );
    }
    {
        let mut state = shared.state.lock().unwrap();
        if state.workers.iter().any(|w| w.addr == addr) {
            return (
                409,
                error_json(&format!("join: worker {addr} already configured")),
            );
        }
        state.workers.push(WorkerEntry {
            addr: addr.clone(),
            alive: true,
            failures: 0,
        });
        state.ring.add(&addr);
    }
    eprintln!("flexserve route: worker {addr} joined");
    ring_sync(shared);
    let workers = {
        let state = shared.state.lock().unwrap();
        state.ring.workers().to_vec()
    };
    (
        200,
        JsonValue::Obj(vec![
            ("ok".into(), JsonValue::Bool(true)),
            ("addr".into(), JsonValue::from(addr.as_str())),
            (
                "workers".into(),
                JsonValue::Arr(
                    workers
                        .iter()
                        .map(|w| JsonValue::from(w.as_str()))
                        .collect(),
                ),
            ),
        ])
        .render(),
    )
}

/// `DELETE /workers/<addr>`: drain a worker — take it off the ring,
/// migrate its sessions to the new owners, drop it from the fleet. The
/// worker process itself keeps running.
fn drain_worker(addr: &str, shared: &RouterShared) -> (u16, String) {
    {
        let mut state = shared.state.lock().unwrap();
        let Some(entry) = state.workers.iter().find(|w| w.addr == addr) else {
            return (404, error_json(&format!("drain: no worker {addr}")));
        };
        let live = state.workers.iter().filter(|w| w.alive).count();
        if entry.alive && live <= 1 {
            return (
                409,
                error_json(&format!("drain: {addr} is the last live worker")),
            );
        }
        state.ring.remove(addr);
    }
    // The entry stays (alive) during the sync so its sessions take the
    // migrate path — a checkpointed hand-off, not a resurrection.
    ring_sync(shared);
    let workers = {
        let mut state = shared.state.lock().unwrap();
        state.workers.retain(|w| w.addr != addr);
        state.ring.workers().to_vec()
    };
    eprintln!("flexserve route: worker {addr} drained");
    (
        200,
        JsonValue::Obj(vec![
            ("ok".into(), JsonValue::Bool(true)),
            ("drained".into(), JsonValue::from(addr)),
            (
                "workers".into(),
                JsonValue::Arr(
                    workers
                        .iter()
                        .map(|w| JsonValue::from(w.as_str()))
                        .collect(),
                ),
            ),
        ])
        .render(),
    )
}

/// Parses a `POST /sessions` body into name + raw args (the router keeps
/// the raw args for migration re-creates; full validation happens via
/// [`SessionConfig::parse`] before anything touches the table).
fn parse_create(body: &str) -> Result<(String, Vec<String>), String> {
    let v = JsonValue::parse(body.trim())?;
    let name = v
        .get("name")
        .and_then(JsonValue::as_str)
        .ok_or_else(|| "create: missing \"name\" string".to_string())?
        .to_string();
    let args = match v.get("args") {
        None => Vec::new(),
        Some(args) => args
            .as_str_array()
            .ok_or_else(|| "create: \"args\" must be an array of strings".to_string())?,
    };
    Ok((name, args))
}

/// `POST /sessions` through the router: validate, pick the ring owner,
/// reserve the table slot, forward. A failed create on the worker frees
/// the slot.
fn create_session(body: &str, shared: &RouterShared) -> (u16, String) {
    let (name, args) = match parse_create(body) {
        Ok(parsed) => parsed,
        Err(msg) => return (400, error_json(&msg)),
    };
    if let Err(e) = SessionConfig::parse(&args, &name) {
        return (400, error_json(&format!("create: {e}")));
    }
    let arc = Arc::new(Mutex::new(SessionRoute {
        worker: String::new(),
        args: args.clone(),
        next_t: 0,
    }));
    // Locking the fresh session mutex *before* publishing the table
    // entry keeps the create atomic: a concurrent step on the name
    // queues behind the create instead of racing it to the worker.
    let mut session = arc.lock().unwrap();
    let worker = {
        let mut state = shared.state.lock().unwrap();
        if state.sessions.contains_key(&name) {
            return (409, error_json(&format!("create: session {name:?} exists")));
        }
        let Some(owner) = state.ring.owner(&name).map(str::to_string) else {
            return (502, error_json("create: no live workers"));
        };
        state.sessions.insert(name.clone(), Arc::clone(&arc));
        owner
    };
    session.worker = worker.clone();
    match http_call(&worker, "POST", "/sessions", body, shared.timeout) {
        Ok((200, resp)) => {
            session.next_t = JsonValue::parse(resp.trim())
                .ok()
                .and_then(|v| v.get("resumed_at").and_then(JsonValue::as_u64))
                .unwrap_or(0);
            (200, resp)
        }
        Ok((status, resp)) => {
            shared.state.lock().unwrap().sessions.remove(&name);
            (status, resp)
        }
        Err(e) => {
            shared.state.lock().unwrap().sessions.remove(&name);
            (
                502,
                error_json(&format!("worker {worker} unreachable: {e}")),
            )
        }
    }
}

/// `GET /sessions` through the router: the merged listings of every live
/// worker, each row annotated with its worker.
fn list_sessions(shared: &RouterShared) -> (u16, String) {
    let (live, count) = {
        let state = shared.state.lock().unwrap();
        (state.ring.workers().to_vec(), state.sessions.len() as u64)
    };
    let mut rows = Vec::new();
    for worker in &live {
        let Ok((200, body)) = http_call(worker, "GET", "/sessions", "", shared.timeout) else {
            continue; // down mid-listing; /cluster reports its health
        };
        let Ok(listing) = JsonValue::parse(body.trim()) else {
            continue;
        };
        if let Some(JsonValue::Arr(worker_rows)) = listing.get("sessions") {
            for row in worker_rows {
                if let JsonValue::Obj(pairs) = row {
                    let mut pairs = pairs.clone();
                    pairs.push(("worker".into(), JsonValue::from(worker.as_str())));
                    rows.push(JsonValue::Obj(pairs));
                }
            }
        }
    }
    (
        200,
        JsonValue::Obj(vec![
            ("count".into(), JsonValue::from(count)),
            (
                "workers".into(),
                JsonValue::Arr(live.iter().map(|w| JsonValue::from(w.as_str())).collect()),
            ),
            ("sessions".into(), JsonValue::Arr(rows)),
        ])
        .render(),
    )
}

/// Looks up a session's route, or the relayed 404.
fn lookup(name: &str, shared: &RouterShared) -> Result<Arc<Mutex<SessionRoute>>, (u16, String)> {
    shared
        .state
        .lock()
        .unwrap()
        .sessions
        .get(name)
        .map(Arc::clone)
        .ok_or_else(|| {
            (
                404,
                error_json(&format!("no session {name:?} on the cluster")),
            )
        })
}

/// `DELETE /sessions/<name>` through the router: forward, then drop the
/// table entry on success.
fn delete_session(name: &str, body: &str, shared: &RouterShared) -> (u16, String) {
    let arc = match lookup(name, shared) {
        Ok(arc) => arc,
        Err(e) => return e,
    };
    let session = arc.lock().unwrap();
    let worker = session.worker.clone();
    match http_call(
        &worker,
        "DELETE",
        &format!("/sessions/{name}"),
        body,
        shared.timeout,
    ) {
        Ok((200, resp)) => {
            shared.state.lock().unwrap().sessions.remove(name);
            (200, resp)
        }
        Ok((status, resp)) => (status, resp),
        Err(e) => (
            502,
            error_json(&format!("worker {worker} unreachable: {e}")),
        ),
    }
}

/// The transparently relayed per-session operations: forward verbatim to
/// the session's worker under its mutex, relay status and body, track
/// the round counter off step responses.
fn forward_session_op(route: Route, body: &str, shared: &RouterShared) -> (u16, String) {
    let (name, method, path, is_step) = match &route {
        Route::Step(n) => (n.clone(), "POST", format!("/sessions/{n}/step"), true),
        Route::Placement(n) => (n.clone(), "GET", format!("/sessions/{n}/placement"), false),
        Route::Metrics(n) => (n.clone(), "GET", format!("/sessions/{n}/metrics"), false),
        Route::Checkpoint(n) => (
            n.clone(),
            "POST",
            format!("/sessions/{n}/checkpoint"),
            false,
        ),
        Route::Events(n) => (n.clone(), "POST", format!("/sessions/{n}/events"), false),
        _ => unreachable!("create/list/delete/shutdown handled by the caller"),
    };
    let arc = match lookup(&name, shared) {
        Ok(arc) => arc,
        Err(e) => return e,
    };
    let mut session = arc.lock().unwrap();
    let worker = session.worker.clone();
    match http_call(&worker, method, &path, body, shared.timeout) {
        Ok((status, resp)) => {
            if is_step && status == 200 {
                // A step reply is one round document or — for a batched
                // step (array or `{"n": <k>}` body, relayed verbatim) —
                // an array of them; the round counter tracks the last
                // round either way.
                let last_t = JsonValue::parse(resp.trim()).ok().and_then(|v| match v {
                    JsonValue::Arr(rows) => rows
                        .last()
                        .and_then(|row| row.get("t").and_then(JsonValue::as_u64)),
                    v => v.get("t").and_then(JsonValue::as_u64),
                });
                if let Some(t) = last_t {
                    session.next_t = t + 1;
                }
            }
            (status, resp)
        }
        Err(e) => (
            502,
            error_json(&format!("worker {worker} unreachable: {e}")),
        ),
    }
}

fn dispatch(route: RouterRoute, body: &str, shared: &RouterShared) -> (u16, String) {
    match route {
        RouterRoute::Cluster => cluster_view(shared),
        RouterRoute::Join => join_worker(body, shared),
        RouterRoute::Drain(addr) => drain_worker(&addr, shared),
        RouterRoute::Proxy(Route::CreateSession) => create_session(body, shared),
        RouterRoute::Proxy(Route::ListSessions) => list_sessions(shared),
        RouterRoute::Proxy(Route::DeleteSession(name)) => delete_session(&name, body, shared),
        RouterRoute::Proxy(op) => forward_session_op(op, body, shared),
        RouterRoute::Shutdown => unreachable!("handled by the connection loop"),
    }
}

/// Flags the router down and pokes its accept loop awake (the same
/// self-poke as the serve daemon's shutdown path).
fn begin_shutdown(shared: &RouterShared) {
    shared.shutdown.store(true, Ordering::SeqCst);
    let mut addr = shared.addr;
    if addr.ip().is_unspecified() {
        addr.set_ip(match addr.ip() {
            IpAddr::V4(_) => IpAddr::V4(Ipv4Addr::LOCALHOST),
            IpAddr::V6(_) => IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    let _ = TcpStream::connect_timeout(&addr, Duration::from_secs(1));
}

/// Handles one router connection: the same keep-alive request loop as
/// the serve daemon's, dispatching to the router surface.
fn handle_connection(stream: TcpStream, shared: &RouterShared) -> Result<(), String> {
    let _ = stream.set_read_timeout(Some(shared.timeout));
    let _ = stream.set_write_timeout(Some(shared.timeout));
    let mut reader = std::io::BufReader::new(stream);
    loop {
        let request = match read_request(&mut reader) {
            Ok(Some(req)) => req,
            Ok(None) => return Ok(()),
            Err(e) => {
                return respond_json(
                    reader.get_mut(),
                    e.status(),
                    &error_json(&e.message()),
                    false,
                )
            }
        };
        let keep_alive = request.keep_alive && !shared.shutdown.load(Ordering::SeqCst);
        let out = reader.get_mut();
        match router_route(&request.method, &request.path) {
            None => {
                respond_json(
                    out,
                    404,
                    &error_json(&format!(
                        "no {} {}; endpoints: {ROUTER_ENDPOINT_LIST}",
                        request.method, request.path
                    )),
                    keep_alive,
                )?;
            }
            Some(RouterRoute::Shutdown) => {
                respond_json(
                    out,
                    200,
                    &JsonValue::Obj(vec![("ok".into(), JsonValue::Bool(true))]).render(),
                    false,
                )?;
                begin_shutdown(shared);
                return Ok(());
            }
            Some(resolved) => {
                let (status, body) = dispatch(resolved, &request.body, shared);
                respond_json(out, status, &body, keep_alive)?;
            }
        }
        if !keep_alive {
            return Ok(());
        }
        let _ = reader.get_ref().set_read_timeout(Some(KEEP_ALIVE_IDLE));
    }
}

/// Binds `bind:port` and routes until `POST /shutdown`. Shutting the
/// router down never touches the workers — they keep serving.
pub fn run(opts: &RouteOptions) -> Result<(), String> {
    let listener = TcpListener::bind((opts.bind, opts.port))
        .map_err(|e| format!("route: cannot bind {}:{}: {e}", opts.bind, opts.port))?;
    run_on(listener, opts)
}

/// [`run`] over an already-bound listener (tests bind port 0 themselves
/// to learn the address before starting the router thread).
pub fn run_on(listener: TcpListener, opts: &RouteOptions) -> Result<(), String> {
    let addr = listener
        .local_addr()
        .map_err(|e| format!("route: local_addr: {e}"))?;

    // Probe the configured fleet once: reachable workers go straight on
    // the ring, the rest start marked down (the health thread brings
    // them up on recovery).
    let probe_timeout = opts.request_timeout.min(Duration::from_secs(1));
    let mut ring = HashRing::new(opts.replicas);
    let mut workers = Vec::with_capacity(opts.workers.len());
    for w in &opts.workers {
        let alive = matches!(
            http_call(w, "GET", "/sessions", "", probe_timeout),
            Ok((200, _))
        );
        if alive {
            ring.add(w);
        } else {
            eprintln!("flexserve route: worker {w} unreachable at startup (marked down)");
        }
        workers.push(WorkerEntry {
            addr: w.clone(),
            alive,
            failures: 0,
        });
    }
    let live = workers.iter().filter(|w| w.alive).count();
    let shared = Arc::new(RouterShared {
        state: Mutex::new(RouterState {
            workers,
            ring,
            sessions: HashMap::new(),
        }),
        shutdown: AtomicBool::new(false),
        addr,
        timeout: opts.request_timeout,
        mark_down: opts.mark_down,
        skew: opts.skew,
    });

    println!(
        "flexserve route: listening on http://{addr} workers={} ({live}/{} live) \
         replicas={} mark-down={}{}",
        opts.workers.join("+"),
        opts.workers.len(),
        opts.replicas,
        opts.mark_down,
        match opts.skew {
            Some(s) => format!(" skew={s}"),
            None => String::new(),
        }
    );
    if !addr.ip().is_loopback() {
        eprintln!(
            "flexserve route: WARNING: listening on non-loopback {addr} — the router \
             has no authentication; only expose it on trusted networks"
        );
    }
    let _ = std::io::Write::flush(&mut std::io::stdout());

    // The health thread: probe, mark down/up, re-sync, skew-balance.
    // Sleeps in small ticks so shutdown never waits a full interval.
    let health = {
        let shared = Arc::clone(&shared);
        let interval = opts.health_interval;
        std::thread::Builder::new()
            .name("route-health".into())
            .spawn(move || {
                let tick = interval.min(Duration::from_millis(50));
                let mut slept = Duration::ZERO;
                while !shared.shutdown.load(Ordering::SeqCst) {
                    std::thread::sleep(tick);
                    slept += tick;
                    if slept < interval {
                        continue;
                    }
                    slept = Duration::ZERO;
                    health_tick(&shared);
                }
            })
            .map_err(|e| format!("route: cannot spawn health thread: {e}"))?
    };

    // SIGTERM stops the router like POST /shutdown (workers unaffected).
    #[cfg(unix)]
    let term_watcher = {
        super::sigterm::install();
        let shared = Arc::clone(&shared);
        std::thread::Builder::new()
            .name("route-sigterm".into())
            .spawn(move || {
                while !shared.shutdown.load(Ordering::SeqCst) {
                    if super::sigterm::pending() {
                        eprintln!("flexserve route: SIGTERM — shutting down");
                        begin_shutdown(&shared);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(100));
                }
            })
            .map_err(|e| format!("route: cannot spawn sigterm watcher: {e}"))?
    };

    let (conn_tx, conn_rx) = mpsc::channel::<TcpStream>();
    let conn_rx = Arc::new(Mutex::new(conn_rx));
    let mut pool = Vec::with_capacity(opts.threads);
    for i in 0..opts.threads {
        let rx = Arc::clone(&conn_rx);
        let shared = Arc::clone(&shared);
        let thread = std::thread::Builder::new()
            .name(format!("route-worker-{i}"))
            .spawn(move || loop {
                let conn = { rx.lock().unwrap().recv() };
                match conn {
                    Ok(stream) => {
                        if let Err(e) = handle_connection(stream, &shared) {
                            eprintln!("route: connection error: {e}");
                        }
                    }
                    Err(_) => break,
                }
            })
            .map_err(|e| format!("route: cannot spawn worker: {e}"))?;
        pool.push(thread);
    }

    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        match stream {
            Ok(s) => {
                if conn_tx.send(s).is_err() {
                    break;
                }
            }
            Err(e) => eprintln!("route: accept error: {e}"),
        }
    }
    drop(conn_tx);
    for thread in pool {
        let _ = thread.join();
    }
    let _ = health.join();
    #[cfg(unix)]
    let _ = term_watcher.join();
    Ok(())
}

/// CLI entry point for `flexserve route <args>`.
pub fn route_cmd(args: &[String]) -> Result<(), String> {
    let opts = RouteOptions::parse(args)?;
    run(&opts)?;
    eprintln!("flexserve route: stopped");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_requires_a_worker_fleet() {
        let err = RouteOptions::parse(&args(&[])).unwrap_err();
        assert!(err.contains("workers= is required"), "{err}");
        let err = RouteOptions::parse(&args(&["workers=nocolon"])).unwrap_err();
        assert!(err.contains("host:port"), "{err}");
        let err = RouteOptions::parse(&args(&["workers=a:1+a:1"])).unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        let err = RouteOptions::parse(&args(&["workers=a:1", "bogus"])).unwrap_err();
        assert!(err.contains("key=value"), "{err}");
        let err = RouteOptions::parse(&args(&["workers=a:1", "zap=1"])).unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn parse_defaults_and_overrides() {
        let opts = RouteOptions::parse(&args(&["workers=h1:7788+h2:7788"])).unwrap();
        assert_eq!(opts.workers, ["h1:7788", "h2:7788"]);
        assert_eq!(opts.bind, IpAddr::V4(Ipv4Addr::LOCALHOST));
        assert_eq!(opts.port, 7787);
        assert_eq!(opts.threads, 4);
        assert_eq!(opts.replicas, ring::DEFAULT_REPLICAS);
        assert_eq!(opts.health_interval, Duration::from_secs(2));
        assert_eq!(opts.mark_down, 3);
        assert_eq!(opts.skew, None);
        assert_eq!(opts.request_timeout, Duration::from_secs(30));

        let opts = RouteOptions::parse(&args(&[
            "workers=h1:7788",
            "bind=0.0.0.0:9100",
            "threads=2",
            "replicas=8",
            "health-interval=0.5",
            "mark-down=1",
            "skew=2",
            "request-timeout=5",
        ]))
        .unwrap();
        assert_eq!(opts.bind, "0.0.0.0".parse::<IpAddr>().unwrap());
        assert_eq!(opts.port, 9100);
        assert_eq!(opts.threads, 2);
        assert_eq!(opts.replicas, 8);
        assert_eq!(opts.health_interval, Duration::from_millis(500));
        assert_eq!(opts.mark_down, 1);
        assert_eq!(opts.skew, Some(2));
        assert_eq!(opts.request_timeout, Duration::from_secs(5));

        assert!(RouteOptions::parse(&args(&["workers=a:1", "threads=0"])).is_err());
        assert!(RouteOptions::parse(&args(&["workers=a:1", "replicas=0"])).is_err());
        assert!(RouteOptions::parse(&args(&["workers=a:1", "mark-down=0"])).is_err());
        assert!(RouteOptions::parse(&args(&["workers=a:1", "skew=0"])).is_err());
        assert!(RouteOptions::parse(&args(&["workers=a:1", "health-interval=0"])).is_err());
    }

    #[test]
    fn router_routes_resolve_cluster_and_proxy_surfaces() {
        assert!(matches!(
            router_route("GET", "/cluster"),
            Some(RouterRoute::Cluster)
        ));
        assert!(matches!(
            router_route("POST", "/workers"),
            Some(RouterRoute::Join)
        ));
        match router_route("DELETE", "/workers/127.0.0.1:8001") {
            Some(RouterRoute::Drain(addr)) => assert_eq!(addr, "127.0.0.1:8001"),
            other => panic!("expected Drain, got {:?}", other.is_some()),
        }
        assert!(matches!(
            router_route("POST", "/sessions/alpha/step"),
            Some(RouterRoute::Proxy(Route::Step(_)))
        ));
        assert!(matches!(
            router_route("POST", "/shutdown"),
            Some(RouterRoute::Shutdown)
        ));
        assert!(router_route("GET", "/workers/x").is_none());
        assert!(router_route("DELETE", "/workers/").is_none());
        assert!(router_route("GET", "/nope").is_none());
    }

    #[test]
    fn migration_args_keep_the_cell_strip_events_and_add_resume() {
        let original = args(&[
            "topo=unit-line:12",
            "wl=uniform:req=4",
            "strat=onth",
            "rounds=60",
            "seed=5",
            "k=4",
            "events=3:fail-link:0-1",
            "checkpoint=/tmp/ck.json",
            "source=scenario",
            "resume=false",
        ]);
        let migrated = migration_args(&original);
        assert!(migrated.contains(&"topo=unit-line:12".to_string()));
        assert!(migrated.contains(&"seed=5".to_string()));
        assert!(migrated.contains(&"checkpoint=/tmp/ck.json".to_string()));
        assert!(migrated.contains(&"source=scenario".to_string()));
        // the schedule rides in the checkpoint, resume is restated by us
        assert!(!migrated.iter().any(|a| a.starts_with("events=")));
        assert_eq!(
            migrated.iter().filter(|a| a.starts_with("resume=")).count(),
            1
        );
        assert_eq!(migrated.last().unwrap(), "resume=true");
    }

    #[test]
    fn create_bodies_render_name_and_args() {
        let body = create_body("alpha", &args(&["topo=er:50", "k=4"]));
        let v = JsonValue::parse(&body).unwrap();
        assert_eq!(v.get("name").unwrap().as_str(), Some("alpha"));
        assert_eq!(
            v.get("args").unwrap().as_str_array().unwrap(),
            vec!["topo=er:50".to_string(), "k=4".to_string()]
        );
    }
}
