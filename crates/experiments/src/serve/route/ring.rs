//! The consistent-hash ring mapping session names onto workers.
//!
//! Each worker contributes [`DEFAULT_REPLICAS`] virtual points on a 64-bit
//! circle (FNV-1a plus an avalanche finalizer, [`point_hash`]); a session
//! name hashes to a point and is owned by the
//! first worker point clockwise from it. Adding or removing one worker
//! therefore only remaps the sessions whose names fall on the arcs that
//! worker's points cover — everything else keeps its owner (the property
//! the proptests below pin). No external hash crate: FNV-1a is hand-rolled
//! like the rest of the workspace's plumbing, and the ring only needs a
//! well-spread deterministic hash, not a cryptographic one.

/// Virtual points each worker contributes to the ring. 32 keeps the
/// per-worker arc share within a few percent of fair for small fleets
/// while the ring stays tiny (a sorted `Vec` binary-searched per lookup).
pub const DEFAULT_REPLICAS: usize = 32;

/// 64-bit FNV-1a. Deterministic across processes (unlike `std`'s
/// `DefaultHasher`, which is randomly seeded), so router and tests agree
/// on placement.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut hash = OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(PRIME);
    }
    hash
}

/// The ring's point hash: FNV-1a finalized with the 64-bit avalanche mix
/// (Murmur3's `fmix64`). Raw FNV-1a mixes forward only, so short keys
/// differing in their last characters — `w1:7788#0` through `w1:7788#31` —
/// land clustered on the circle and ownership turns grossly unfair; the
/// finalizer spreads every input bit across the whole word.
pub fn point_hash(bytes: &[u8]) -> u64 {
    let mut h = fnv1a(bytes);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// A consistent-hash ring over worker addresses.
#[derive(Clone, Debug)]
pub struct HashRing {
    replicas: usize,
    /// Ring points sorted by hash (ties broken by worker address so the
    /// ring order is fully deterministic).
    points: Vec<(u64, String)>,
    /// The live workers, sorted (for stable iteration in tests/logs).
    workers: Vec<String>,
}

impl HashRing {
    /// An empty ring with `replicas` virtual points per worker.
    pub fn new(replicas: usize) -> Self {
        HashRing {
            replicas: replicas.max(1),
            points: Vec::new(),
            workers: Vec::new(),
        }
    }

    /// Adds a worker (no-op if already present).
    pub fn add(&mut self, worker: &str) {
        if self.contains(worker) {
            return;
        }
        for i in 0..self.replicas {
            let point = point_hash(format!("{worker}#{i}").as_bytes());
            self.points.push((point, worker.to_string()));
        }
        self.points.sort();
        let at = self.workers.binary_search(&worker.to_string()).unwrap_err();
        self.workers.insert(at, worker.to_string());
    }

    /// Removes a worker (no-op if absent).
    pub fn remove(&mut self, worker: &str) {
        self.points.retain(|(_, w)| w != worker);
        self.workers.retain(|w| w != worker);
    }

    /// Whether `worker` is on the ring.
    pub fn contains(&self, worker: &str) -> bool {
        self.workers.iter().any(|w| w == worker)
    }

    /// The live workers, sorted by address.
    pub fn workers(&self) -> &[String] {
        &self.workers
    }

    /// Number of live workers.
    pub fn len(&self) -> usize {
        self.workers.len()
    }

    /// True when no workers are live.
    pub fn is_empty(&self) -> bool {
        self.workers.is_empty()
    }

    /// The worker owning `name`: the first ring point at or clockwise
    /// from the name's hash (wrapping), or `None` on an empty ring.
    pub fn owner(&self, name: &str) -> Option<&str> {
        if self.points.is_empty() {
            return None;
        }
        let hash = point_hash(name.as_bytes());
        let at = self.points.partition_point(|(point, _)| *point < hash) % self.points.len();
        Some(&self.points[at].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn ring_basics_add_remove_owner() {
        let mut ring = HashRing::new(DEFAULT_REPLICAS);
        assert!(ring.is_empty());
        assert_eq!(ring.owner("alpha"), None);

        ring.add("10.0.0.1:7788");
        assert_eq!(ring.len(), 1);
        // A single worker owns everything.
        for name in ["alpha", "beta", "x", ""] {
            assert_eq!(ring.owner(name), Some("10.0.0.1:7788"));
        }
        // Adding twice is a no-op.
        ring.add("10.0.0.1:7788");
        assert_eq!(ring.len(), 1);

        ring.add("10.0.0.2:7788");
        assert!(ring.contains("10.0.0.2:7788"));
        assert_eq!(ring.workers(), ["10.0.0.1:7788", "10.0.0.2:7788"]);
        // Lookups are deterministic.
        assert_eq!(ring.owner("alpha"), ring.owner("alpha"));

        ring.remove("10.0.0.1:7788");
        assert_eq!(ring.owner("alpha"), Some("10.0.0.2:7788"));
        ring.remove("10.0.0.2:7788");
        assert!(ring.is_empty());
        assert_eq!(ring.owner("alpha"), None);
    }

    #[test]
    fn replicas_spread_ownership() {
        let mut ring = HashRing::new(DEFAULT_REPLICAS);
        for i in 0..4 {
            ring.add(&format!("w{i}:7788"));
        }
        let mut counts = std::collections::HashMap::<String, usize>::new();
        for i in 0..400 {
            let owner = ring.owner(&format!("session-{i}")).unwrap().to_string();
            *counts.entry(owner).or_default() += 1;
        }
        assert_eq!(counts.len(), 4, "every worker owns some names: {counts:?}");
        for (w, n) in &counts {
            assert!(
                (20..=250).contains(n),
                "worker {w} owns a grossly unfair share ({n}/400): {counts:?}"
            );
        }
    }

    #[test]
    fn fnv1a_is_the_reference_function() {
        // Reference vectors for 64-bit FNV-1a.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a(b"foobar"), 0x8594_4171_f739_67e8);
    }

    /// Strategy: 1-5 distinct worker addresses (integer-indexed — the
    /// vendored proptest has no string strategies).
    fn workers_strategy() -> impl Strategy<Value = Vec<String>> {
        prop::collection::hash_set(0usize..50, 1..6).prop_map(|set| {
            let mut workers: Vec<String> = set.into_iter().map(|i| format!("w{i}:7788")).collect();
            workers.sort();
            workers
        })
    }

    /// Strategy: 1-`max` session names (repeats allowed; harmless).
    fn names_strategy(max: usize) -> impl Strategy<Value = Vec<String>> {
        prop::collection::vec(0u64..1_000_000, 1..max)
            .prop_map(|v| v.into_iter().map(|i| format!("session-{i}")).collect())
    }

    proptest! {
        /// Every session name maps to exactly one live worker — a member
        /// of the ring — under any worker set.
        #[test]
        fn every_name_maps_to_one_live_worker(
            workers in workers_strategy(),
            names in names_strategy(40),
        ) {
            let mut ring = HashRing::new(DEFAULT_REPLICAS);
            for w in &workers {
                ring.add(w);
            }
            for name in &names {
                let owner = ring.owner(name).expect("non-empty ring owns every name").to_string();
                prop_assert!(ring.contains(&owner), "{} not a live worker", owner);
                // and the mapping is a function: same name, same owner
                prop_assert_eq!(ring.owner(name), Some(owner.as_str()));
            }
        }

        /// A single join only remaps names onto the joiner: every name
        /// whose owner changes is now owned by the new worker (no global
        /// reshuffle).
        #[test]
        fn join_remaps_only_onto_the_joiner(
            workers in workers_strategy(),
            joiner in 0usize..50,
            names in names_strategy(40),
        ) {
            // a distinct namespace, so the joiner is never already a member
            let joiner = format!("new{joiner}:7788");
            let mut ring = HashRing::new(DEFAULT_REPLICAS);
            for w in &workers {
                ring.add(w);
            }
            let before: Vec<String> = names
                .iter()
                .map(|n| ring.owner(n).unwrap().to_string())
                .collect();
            ring.add(&joiner);
            for (name, old) in names.iter().zip(&before) {
                let new = ring.owner(name).unwrap();
                prop_assert!(
                    new == old || new == joiner,
                    "{}: moved {} -> {}, not onto the joiner {}",
                    name, old, new, joiner
                );
            }
        }

        /// A single leave only remaps the leaver's names: every other
        /// name keeps its owner, and nothing maps to the leaver.
        #[test]
        fn leave_remaps_only_the_leavers_names(
            workers in workers_strategy(),
            leaver_index in 0usize..6,
            names in names_strategy(40),
        ) {
            if workers.len() >= 2 {
                let leaver = workers[leaver_index % workers.len()].clone();
                let mut ring = HashRing::new(DEFAULT_REPLICAS);
                for w in &workers {
                    ring.add(w);
                }
                let before: Vec<String> = names
                    .iter()
                    .map(|n| ring.owner(n).unwrap().to_string())
                    .collect();
                ring.remove(&leaver);
                for (name, old) in names.iter().zip(&before) {
                    let new = ring.owner(name).unwrap();
                    if *old != leaver {
                        prop_assert_eq!(
                            new, old.as_str(),
                            "{}: owned by surviving {} yet moved", name, old
                        );
                    }
                    prop_assert!(new != leaver, "{} still maps to the leaver", name);
                }
            }
        }

        /// Join/leave sequences keep the ring consistent with a from-
        /// scratch rebuild of the same final worker set.
        #[test]
        fn ring_is_history_independent(
            adds in workers_strategy(),
            drops in prop::collection::vec(0usize..6, 0..4),
            names in names_strategy(20),
        ) {
            let mut ring = HashRing::new(DEFAULT_REPLICAS);
            for w in &adds {
                ring.add(w);
            }
            let mut survivors = adds.clone();
            for d in drops {
                if survivors.len() <= 1 {
                    break;
                }
                let victim = survivors.remove(d % survivors.len());
                ring.remove(&victim);
            }
            let mut rebuilt = HashRing::new(DEFAULT_REPLICAS);
            for w in &survivors {
                rebuilt.add(w);
            }
            prop_assert_eq!(ring.workers(), rebuilt.workers());
            for name in &names {
                prop_assert_eq!(ring.owner(name), rebuilt.owner(name));
            }
        }
    }
}
