//! The router's HTTP client side: one-shot `Connection: close` exchanges
//! against worker daemons. Hand-rolled to match the server half in
//! `serve/http.rs` — the router speaks to workers exactly the way `curl`
//! and the integration tests speak to the router.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Cap on a worker response body the router will buffer (matches the
/// server-side request cap in `serve/http.rs`).
const MAX_RESPONSE_BYTES: usize = 16 * 1024 * 1024;

/// Performs one HTTP exchange against `addr` (`host:port`): connect,
/// send `method path` with `body`, read the response. Returns the status
/// code and the response body. Every step is bounded by `timeout`; any
/// transport failure is an `Err` (the router reports those as 502).
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("{addr}: resolve: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr}: resolves to no address"))?;
    let mut stream =
        TcpStream::connect_timeout(&sock, timeout).map_err(|e| format!("{addr}: connect: {e}"))?;
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
         Content-Length: {}\r\nContent-Type: application/json\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("{addr}: write: {e}"))?;
    let mut reader = BufReader::new(stream);
    read_response(&mut reader).map_err(|e| format!("{addr}: {e}"))
}

/// Parses one HTTP response off `reader`: the status line, the headers
/// (only `Content-Length` matters), and the body — read exactly when a
/// length is declared, to EOF otherwise (legal under `Connection: close`).
pub(crate) fn read_response<R: BufRead>(reader: &mut R) -> Result<(u16, String), String> {
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status line: {e}"))?;
    // "HTTP/1.1 200 OK" — the middle token is the status.
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;

    let mut content_length: Option<usize> = None;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let len: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
                content_length = Some(len);
            }
        }
    }
    let body = match content_length {
        Some(len) if len > MAX_RESPONSE_BYTES => {
            return Err(format!(
                "response body of {len} bytes exceeds the 16 MiB cap"
            ));
        }
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader
                .take((MAX_RESPONSE_BYTES + 1) as u64)
                .read_to_end(&mut buf)
                .map_err(|e| format!("read body: {e}"))?;
            if buf.len() > MAX_RESPONSE_BYTES {
                return Err("unframed response body exceeds the 16 MiB cap".into());
            }
            buf
        }
    };
    let body = String::from_utf8(body).map_err(|_| "response body is not UTF-8".to_string())?;
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(raw: &str) -> Result<(u16, String), String> {
        read_response(&mut raw.as_bytes())
    }

    #[test]
    fn responses_parse_status_and_framed_body() {
        let (status, body) = parse(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Content-Length: 12\r\nConnection: close\r\n\r\n{\"ok\":true}\n",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}\n");

        let (status, body) =
            parse("HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\n{}").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "{}");
    }

    #[test]
    fn unframed_bodies_read_to_eof() {
        let (status, body) = parse("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nhello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello");
    }

    #[test]
    fn malformed_responses_are_errors() {
        assert!(parse("").is_err());
        assert!(parse("garbage\r\n\r\n").is_err());
        assert!(parse("HTTP/1.1 not-a-status\r\n\r\n").is_err());
        assert!(parse("HTTP/1.1 200 OK\r\nContent-Length: nope\r\n\r\n").is_err());
        // declared length longer than the stream
        assert!(parse("HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort").is_err());
    }

    #[test]
    fn connect_failures_are_errors_not_panics() {
        // A port nothing listens on (reserved port 1 on loopback is a
        // safe bet in the test environment).
        let err = http_call(
            "127.0.0.1:1",
            "GET",
            "/sessions",
            "",
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");
    }
}
