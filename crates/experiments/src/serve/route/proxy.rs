//! The router's HTTP client side: persistent keep-alive exchanges
//! against worker daemons, over a small per-address connection pool.
//! Hand-rolled to match the server half in `serve/http.rs` — the router
//! speaks to workers exactly the way `curl` and the integration tests
//! speak to the router, just without paying a TCP handshake per proxied
//! request (the route tier ran at 0.56× of direct before pooling).
//!
//! Pool discipline: a finished exchange returns its connection to the
//! pool only when the response was framed (`Content-Length`) and did not
//! say `Connection: close` — an unframed body is read to EOF, so the
//! connection is dead by construction. A pooled connection the worker
//! closed while it sat idle fails instantly on the next use (write
//! error, or clean EOF before any response bytes) and is retried once on
//! a fresh connection; a failure mid-response is reported, never
//! retried — the worker may have applied the request.

use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Cap on a worker response body the router will buffer (matches the
/// server-side request cap in `serve/http.rs`).
const MAX_RESPONSE_BYTES: usize = 16 * 1024 * 1024;

/// Pooled connections kept per worker address. The router's worker
/// threads share the pool, so this bounds the router-side idle fd cost
/// per worker at a few descriptors.
const POOL_PER_ADDR: usize = 8;

/// How long a pooled connection may sit unused before checkout discards
/// it — kept under the worker's 10 s keep-alive idle window so the pool
/// rarely hands out a connection the worker is about to close.
const POOL_IDLE: Duration = Duration::from_secs(5);

/// One idle connection waiting for its next exchange.
struct PooledConn {
    reader: BufReader<TcpStream>,
    parked: Instant,
}

fn pool() -> &'static Mutex<HashMap<String, Vec<PooledConn>>> {
    static POOL: OnceLock<Mutex<HashMap<String, Vec<PooledConn>>>> = OnceLock::new();
    POOL.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Takes the freshest non-expired pooled connection for `addr`, dropping
/// expired ones along the way.
fn checkout(addr: &str) -> Option<BufReader<TcpStream>> {
    let mut pool = pool().lock().unwrap();
    let conns = pool.get_mut(addr)?;
    while let Some(conn) = conns.pop() {
        if conn.parked.elapsed() <= POOL_IDLE {
            return Some(conn.reader);
        }
    }
    None
}

/// Returns a healthy connection to `addr`'s pool (oldest evicted at the
/// cap).
fn check_in(addr: &str, reader: BufReader<TcpStream>) {
    let mut pool = pool().lock().unwrap();
    let conns = pool.entry(addr.to_string()).or_default();
    if conns.len() >= POOL_PER_ADDR {
        conns.remove(0);
    }
    conns.push(PooledConn {
        reader,
        parked: Instant::now(),
    });
}

/// How one exchange attempt failed: a stale pooled connection (retry on
/// a fresh one) or a real transport/protocol error.
enum CallError {
    /// The pooled connection was dead before the worker saw the request
    /// — safe to retry once on a fresh connection.
    Stale,
    Fail(String),
}

/// Performs one HTTP exchange against `addr` (`host:port`), reusing a
/// pooled connection when one is available: send `method path` with
/// `body`, read the response, return the connection to the pool when it
/// survived. Returns the status code and the response body. Every step
/// is bounded by `timeout`; any transport failure is an `Err` (the
/// router reports those as 502).
pub fn http_call(
    addr: &str,
    method: &str,
    path: &str,
    body: &str,
    timeout: Duration,
) -> Result<(u16, String), String> {
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: keep-alive\r\n\
         Content-Length: {}\r\nContent-Type: application/json\r\n\r\n{body}",
        body.len()
    );
    if let Some(mut reader) = checkout(addr) {
        let _ = reader.get_ref().set_read_timeout(Some(timeout));
        let _ = reader.get_ref().set_write_timeout(Some(timeout));
        match exchange(&mut reader, request.as_bytes(), false) {
            Ok((status, body, reusable)) => {
                if reusable {
                    check_in(addr, reader);
                }
                return Ok((status, body));
            }
            Err(CallError::Stale) => {} // fall through to a fresh connection
            Err(CallError::Fail(e)) => return Err(format!("{addr}: {e}")),
        }
    }
    let sock = addr
        .to_socket_addrs()
        .map_err(|e| format!("{addr}: resolve: {e}"))?
        .next()
        .ok_or_else(|| format!("{addr}: resolves to no address"))?;
    let stream =
        TcpStream::connect_timeout(&sock, timeout).map_err(|e| format!("{addr}: connect: {e}"))?;
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(timeout));
    let _ = stream.set_write_timeout(Some(timeout));
    let mut reader = BufReader::new(stream);
    match exchange(&mut reader, request.as_bytes(), true) {
        Ok((status, body, reusable)) => {
            if reusable {
                check_in(addr, reader);
            }
            Ok((status, body))
        }
        Err(CallError::Stale) => unreachable!("fresh exchanges report real errors"),
        Err(CallError::Fail(e)) => Err(format!("{addr}: {e}")),
    }
}

/// Writes `request` and reads the response off one connection. `fresh`
/// distinguishes a just-opened connection (failures are real errors)
/// from a pooled one (failures before any response byte are [`Stale`]).
fn exchange(
    reader: &mut BufReader<TcpStream>,
    request: &[u8],
    fresh: bool,
) -> Result<(u16, String, bool), CallError> {
    if let Err(e) = reader
        .get_mut()
        .write_all(request)
        .and_then(|()| reader.get_mut().flush())
    {
        return Err(if fresh {
            CallError::Fail(format!("write: {e}"))
        } else {
            CallError::Stale
        });
    }
    read_response_meta(reader, fresh)
}

/// [`read_response`] plus reuse classification: the bool is true when
/// the connection may serve another exchange (framed body, no
/// `Connection: close`). EOF before any response byte on a non-fresh
/// connection is [`CallError::Stale`].
fn read_response_meta<R: BufRead>(
    reader: &mut R,
    fresh: bool,
) -> Result<(u16, String, bool), CallError> {
    let fail = |e: String| CallError::Fail(e);
    let mut status_line = String::new();
    let n = reader
        .read_line(&mut status_line)
        .map_err(|e| fail(format!("read status line: {e}")))?;
    if n == 0 && !fresh {
        return Err(CallError::Stale);
    }
    // "HTTP/1.1 200 OK" — the middle token is the status.
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| fail(format!("bad status line {status_line:?}")))?;

    let mut content_length: Option<usize> = None;
    let mut close = false;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| fail(format!("read header: {e}")))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                let len: usize = value
                    .trim()
                    .parse()
                    .map_err(|_| fail(format!("bad Content-Length {value:?}")))?;
                content_length = Some(len);
            } else if name.eq_ignore_ascii_case("connection") {
                close = value.trim().eq_ignore_ascii_case("close");
            }
        }
    }
    let body = match content_length {
        Some(len) if len > MAX_RESPONSE_BYTES => {
            return Err(fail(format!(
                "response body of {len} bytes exceeds the 16 MiB cap"
            )));
        }
        Some(len) => {
            let mut buf = vec![0u8; len];
            reader
                .read_exact(&mut buf)
                .map_err(|e| fail(format!("read body: {e}")))?;
            buf
        }
        None => {
            let mut buf = Vec::new();
            reader
                .take((MAX_RESPONSE_BYTES + 1) as u64)
                .read_to_end(&mut buf)
                .map_err(|e| fail(format!("read body: {e}")))?;
            if buf.len() > MAX_RESPONSE_BYTES {
                return Err(fail("unframed response body exceeds the 16 MiB cap".into()));
            }
            buf
        }
    };
    let body =
        String::from_utf8(body).map_err(|_| fail("response body is not UTF-8".to_string()))?;
    let reusable = content_length.is_some() && !close;
    Ok((status, body, reusable))
}

/// Parses one HTTP response off `reader`: the status line, the headers
/// (only `Content-Length` and `Connection` matter), and the body — read
/// exactly when a length is declared, to EOF otherwise (legal under
/// `Connection: close`).
#[cfg(test)]
fn read_response<R: BufRead>(reader: &mut R) -> Result<(u16, String), String> {
    match read_response_meta(reader, true) {
        Ok((status, body, _)) => Ok((status, body)),
        Err(CallError::Fail(e)) => Err(e),
        Err(CallError::Stale) => unreachable!("fresh reads report real errors"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::net::TcpListener;

    fn parse(raw: &str) -> Result<(u16, String), String> {
        read_response(&mut raw.as_bytes())
    }

    #[test]
    fn responses_parse_status_and_framed_body() {
        let (status, body) = parse(
            "HTTP/1.1 200 OK\r\nContent-Type: application/json\r\n\
             Content-Length: 12\r\nConnection: close\r\n\r\n{\"ok\":true}\n",
        )
        .unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "{\"ok\":true}\n");

        let (status, body) =
            parse("HTTP/1.1 404 Not Found\r\nContent-Length: 2\r\n\r\n{}").unwrap();
        assert_eq!(status, 404);
        assert_eq!(body, "{}");
    }

    #[test]
    fn unframed_bodies_read_to_eof() {
        let (status, body) = parse("HTTP/1.1 200 OK\r\nConnection: close\r\n\r\nhello").unwrap();
        assert_eq!(status, 200);
        assert_eq!(body, "hello");
    }

    #[test]
    fn malformed_responses_are_errors() {
        assert!(parse("").is_err());
        assert!(parse("garbage\r\n\r\n").is_err());
        assert!(parse("HTTP/1.1 not-a-status\r\n\r\n").is_err());
        assert!(parse("HTTP/1.1 200 OK\r\nContent-Length: nope\r\n\r\n").is_err());
        // declared length longer than the stream
        assert!(parse("HTTP/1.1 200 OK\r\nContent-Length: 50\r\n\r\nshort").is_err());
    }

    #[test]
    fn reuse_classification_needs_framing_and_no_close() {
        let meta = |raw: &str| match read_response_meta(&mut raw.as_bytes(), true) {
            Ok((_, _, reusable)) => reusable,
            Err(_) => panic!("must parse"),
        };
        assert!(meta(
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: keep-alive\r\n\r\n{}"
        ));
        assert!(!meta(
            "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\n{}"
        ));
        assert!(!meta("HTTP/1.1 200 OK\r\nConnection: keep-alive\r\n\r\nx"));
    }

    #[test]
    fn connect_failures_are_errors_not_panics() {
        // A port nothing listens on (reserved port 1 on loopback is a
        // safe bet in the test environment).
        let err = http_call(
            "127.0.0.1:1",
            "GET",
            "/sessions",
            "",
            Duration::from_millis(200),
        )
        .unwrap_err();
        assert!(err.contains("127.0.0.1:1"), "{err}");
    }

    /// Reads one request off `stream` (headers + `Content-Length` body).
    fn read_one_request(reader: &mut BufReader<&TcpStream>) -> bool {
        let mut content_length = 0usize;
        loop {
            let mut line = String::new();
            match reader.read_line(&mut line) {
                Ok(0) => return false,
                Ok(_) => {}
                Err(_) => return false,
            }
            if let Some((name, value)) = line.split_once(':') {
                if name.eq_ignore_ascii_case("content-length") {
                    content_length = value.trim().parse().unwrap_or(0);
                }
            }
            if line.trim().is_empty() {
                break;
            }
        }
        let mut body = vec![0u8; content_length];
        reader.read_exact(&mut body).is_ok()
    }

    #[test]
    fn pooled_connections_are_reused_across_calls() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // Accept ONE connection and answer two framed keep-alive
            // exchanges on it; a client opening a second connection
            // would hang its second call instead.
            let (stream, _) = listener.accept().unwrap();
            let mut reader = BufReader::new(&stream);
            let mut served = 0;
            for _ in 0..2 {
                if !read_one_request(&mut reader) {
                    break;
                }
                (&stream)
                    .write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\
                          Connection: keep-alive\r\n\r\n{}",
                    )
                    .unwrap();
                served += 1;
            }
            served
        });
        let timeout = Duration::from_secs(2);
        assert_eq!(
            http_call(&addr, "GET", "/sessions", "", timeout).unwrap(),
            (200, "{}".to_string())
        );
        assert_eq!(
            http_call(&addr, "GET", "/sessions", "", timeout).unwrap(),
            (200, "{}".to_string())
        );
        assert_eq!(server.join().unwrap(), 2, "both calls share one connection");
    }

    #[test]
    fn stale_pooled_connections_retry_on_a_fresh_one() {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap().to_string();
        let server = std::thread::spawn(move || {
            // First connection: one keep-alive answer, then close — the
            // pooled connection goes stale. Second connection: answer
            // again, proving the client retried on a fresh socket.
            for _ in 0..2 {
                let (stream, _) = listener.accept().unwrap();
                let mut reader = BufReader::new(&stream);
                assert!(read_one_request(&mut reader));
                (&stream)
                    .write_all(
                        b"HTTP/1.1 200 OK\r\nContent-Length: 2\r\n\
                          Connection: keep-alive\r\n\r\n{}",
                    )
                    .unwrap();
            }
        });
        let timeout = Duration::from_secs(2);
        assert_eq!(
            http_call(&addr, "GET", "/sessions", "", timeout).unwrap().0,
            200
        );
        // The worker closes the pooled connection behind our back...
        std::thread::sleep(Duration::from_millis(50));
        // ...and the next call still succeeds, transparently.
        assert_eq!(
            http_call(&addr, "GET", "/sessions", "", timeout).unwrap().0,
            200
        );
        server.join().unwrap();
    }
}
