//! Declarative experiment specifications.
//!
//! The paper's evaluation is a grid of {topology × workload × strategy}
//! cells. This module turns each axis into *data*: a [`TopologySpec`],
//! [`WorkloadSpec`] and [`StrategySpec`] each parse from and print to a
//! canonical string (`er:200`, `time-zones:p=50,req=50`, `onth`, …), and a
//! [`CellSpec`] combines one value per axis with the run parameters
//! (`T`, `λ`, rounds, seeds, cost model). The `flexserve` CLI's `run` and
//! `sweep` subcommands are thin drivers over these types, and the topology
//! spec's canonical string doubles as the distance-matrix cache key
//! (see [`crate::cache`]).
//!
//! Adding a new scenario means adding an enum variant and its parser arm —
//! not another binary.

use std::fmt;
use std::str::FromStr;

use rand::rngs::SmallRng;
use rand::SeedableRng;

use flexserve_graph::gen::{
    self, erdos_renyi, grid, line, random_geometric, random_tree, ring, star, unit_line, waxman,
};
use flexserve_graph::{DistanceMatrix, Graph};
use flexserve_sim::{
    CostBreakdown, CostParams, EventedSession, LoadModel, SimContext, SubstrateEvents,
};
use flexserve_topology::{as7018_like, parse_rocketfuel_weights, As7018Config};
use flexserve_workload::{
    file_source, is_packed_file, CommuterScenario, LoadVariant, OnOffScenario, PackedScenario,
    PackedTrace, ProximityScenario, RoundTrace, Scenario, TimeZonesScenario, Trace, TraceScenario,
    UniformScenario, DEFAULT_WINDOW_ROUNDS,
};

use flexserve_core::{
    initial_center, offstat, optimal_plan, OnBr, OnConf, OnTh, SampledConf, StaticStrategy,
};
use flexserve_sim::OnlineStrategy;

use crate::runner::{average, run_algorithm, Algorithm, SeedSummary};
use crate::setup::ExperimentEnv;
use crate::traces::{TraceCache, TraceKey};

/// A substrate topology, identified by a canonical string such as
/// `er:200`, `waxman:100`, `grid:8x12` or `as7018`.
///
/// Every variant builds deterministically from a seed, so
/// `(canonical string, seed)` fully identifies a substrate — which is
/// exactly the key of the process-wide distance-matrix cache.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum TopologySpec {
    /// Erdős–Rényi with the paper's 1% connection probability (`er:<n>`).
    ErdosRenyi {
        /// Number of nodes.
        n: usize,
    },
    /// Connected Waxman graph, α=0.4, β=0.15, 10 ms/unit (`waxman:<n>`).
    Waxman {
        /// Number of nodes.
        n: usize,
    },
    /// 4-neighbor grid (`grid:<rows>x<cols>`).
    Grid {
        /// Grid rows.
        rows: usize,
        /// Grid columns.
        cols: usize,
    },
    /// Connected random geometric graph, radius 0.2, 10 ms/unit
    /// (`geom:<n>`).
    Geometric {
        /// Number of nodes.
        n: usize,
    },
    /// Line with random 1–10 ms latencies, as in the OPT experiments
    /// (`line:<n>`).
    Line {
        /// Number of nodes.
        n: usize,
    },
    /// Unit-latency line, fully deterministic (`unit-line:<n>`).
    UnitLine {
        /// Number of nodes.
        n: usize,
    },
    /// Ring with random latencies (`ring:<n>`).
    Ring {
        /// Number of nodes.
        n: usize,
    },
    /// Star with random latencies (`star:<n>`).
    Star {
        /// Number of nodes.
        n: usize,
    },
    /// Uniform random tree (`tree:<n>`).
    Tree {
        /// Number of nodes.
        n: usize,
    },
    /// The deterministic synthetic AT&T AS-7018-like PoP topology
    /// (`as7018`; the seed is ignored).
    As7018,
    /// A Rocketfuel-style weighted ISP map file
    /// (`rocketfuel:<path>`; the seed is ignored).
    Rocketfuel {
        /// Path to the weights file.
        path: String,
    },
}

impl TopologySpec {
    /// Builds the substrate for `seed`. Deterministic: equal spec + seed
    /// always produce an identical graph (pinned by `Graph::fingerprint`).
    pub fn build(&self, seed: u64) -> Result<Graph, String> {
        let cfg = gen::GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(seed);
        let built = match self {
            TopologySpec::ErdosRenyi { n } => erdos_renyi(*n, 0.01, &cfg, &mut rng),
            TopologySpec::Waxman { n } => waxman(*n, 0.4, 0.15, 10.0, &cfg, &mut rng),
            TopologySpec::Grid { rows, cols } => grid(*rows, *cols, &cfg, &mut rng),
            TopologySpec::Geometric { n } => random_geometric(*n, 0.2, 10.0, &cfg, &mut rng),
            TopologySpec::Line { n } => line(*n, &cfg, &mut rng),
            TopologySpec::UnitLine { n } => unit_line(*n),
            TopologySpec::Ring { n } => ring(*n, &cfg, &mut rng),
            TopologySpec::Star { n } => star(*n, &cfg, &mut rng),
            TopologySpec::Tree { n } => random_tree(*n, &cfg, &mut rng),
            TopologySpec::As7018 => {
                return as7018_like(&As7018Config::default())
                    .map(|(g, _backbone)| g)
                    .map_err(|e| format!("as7018: {e}"))
            }
            TopologySpec::Rocketfuel { path } => {
                let text = std::fs::read_to_string(path)
                    .map_err(|e| format!("rocketfuel: cannot read {path}: {e}"))?;
                return parse_rocketfuel_weights(&text).map_err(|e| format!("rocketfuel: {e}"));
            }
        };
        built.map_err(|e| format!("{self}: {e}"))
    }

    /// Whether the seed changes the substrate (false for the deterministic
    /// AS-7018 and file-based topologies).
    pub fn is_seeded(&self) -> bool {
        !matches!(
            self,
            TopologySpec::As7018 | TopologySpec::Rocketfuel { .. } | TopologySpec::UnitLine { .. }
        )
    }
}

impl fmt::Display for TopologySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologySpec::ErdosRenyi { n } => write!(f, "er:{n}"),
            TopologySpec::Waxman { n } => write!(f, "waxman:{n}"),
            TopologySpec::Grid { rows, cols } => write!(f, "grid:{rows}x{cols}"),
            TopologySpec::Geometric { n } => write!(f, "geom:{n}"),
            TopologySpec::Line { n } => write!(f, "line:{n}"),
            TopologySpec::UnitLine { n } => write!(f, "unit-line:{n}"),
            TopologySpec::Ring { n } => write!(f, "ring:{n}"),
            TopologySpec::Star { n } => write!(f, "star:{n}"),
            TopologySpec::Tree { n } => write!(f, "tree:{n}"),
            TopologySpec::As7018 => write!(f, "as7018"),
            TopologySpec::Rocketfuel { path } => write!(f, "rocketfuel:{path}"),
        }
    }
}

fn parse_count(kind: &str, arg: Option<&str>) -> Result<usize, String> {
    let arg = arg.ok_or_else(|| format!("{kind}: missing node count (expected {kind}:<n>)"))?;
    arg.parse::<usize>()
        .ok()
        .filter(|&n| n >= 1)
        .ok_or_else(|| format!("{kind}: bad node count {arg:?}"))
}

impl FromStr for TopologySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, arg) = match s.split_once(':') {
            Some((k, a)) => (k, Some(a)),
            None => (s, None),
        };
        match kind {
            "er" => Ok(TopologySpec::ErdosRenyi {
                n: parse_count(kind, arg)?,
            }),
            "waxman" => Ok(TopologySpec::Waxman {
                n: parse_count(kind, arg)?,
            }),
            "grid" => {
                let arg = arg.ok_or("grid: expected grid:<rows>x<cols>")?;
                let (r, c) = arg
                    .split_once('x')
                    .ok_or("grid: expected grid:<rows>x<cols>")?;
                let rows = r.parse().ok().filter(|&v: &usize| v >= 1);
                let cols = c.parse().ok().filter(|&v: &usize| v >= 1);
                match (rows, cols) {
                    (Some(rows), Some(cols)) => Ok(TopologySpec::Grid { rows, cols }),
                    _ => Err(format!("grid: bad dimensions {arg:?}")),
                }
            }
            "geom" => Ok(TopologySpec::Geometric {
                n: parse_count(kind, arg)?,
            }),
            "line" => Ok(TopologySpec::Line {
                n: parse_count(kind, arg)?,
            }),
            "unit-line" => Ok(TopologySpec::UnitLine {
                n: parse_count(kind, arg)?,
            }),
            "ring" => Ok(TopologySpec::Ring {
                n: parse_count(kind, arg)?,
            }),
            "star" => Ok(TopologySpec::Star {
                n: parse_count(kind, arg)?,
            }),
            "tree" => Ok(TopologySpec::Tree {
                n: parse_count(kind, arg)?,
            }),
            "as7018" => Ok(TopologySpec::As7018),
            "rocketfuel" => {
                let path = arg.ok_or("rocketfuel: expected rocketfuel:<path>")?;
                Ok(TopologySpec::Rocketfuel {
                    path: path.to_string(),
                })
            }
            _ => Err(format!(
                "unknown topology {s:?} (expected er, waxman, grid, geom, line, unit-line, \
                 ring, star, tree, as7018 or rocketfuel)"
            )),
        }
    }
}

/// Splits `"key=1,flag=true"` into key/value pairs, validating keys
/// against `allowed`.
fn parse_kv<'a>(
    kind: &str,
    args: &'a str,
    allowed: &[&str],
) -> Result<Vec<(&'a str, &'a str)>, String> {
    let mut out = Vec::new();
    for part in args.split(',').filter(|p| !p.is_empty()) {
        let (k, v) = part
            .split_once('=')
            .ok_or_else(|| format!("{kind}: expected key=value, got {part:?}"))?;
        if !allowed.contains(&k) {
            return Err(format!(
                "{kind}: unknown key {k:?} (allowed: {})",
                allowed.join(", ")
            ));
        }
        out.push((k, v));
    }
    Ok(out)
}

/// A demand workload, identified by a canonical string such as
/// `commuter-dynamic` or `time-zones:p=50,req=50`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WorkloadSpec {
    /// Commuter scenario, dynamic load (`commuter-dynamic`).
    CommuterDynamic,
    /// Commuter scenario, static load (`commuter-static`).
    CommuterStatic,
    /// Time-zones scenario (`time-zones:p=<hot %>,req=<requests/round>`).
    TimeZones {
        /// Percentage of requests from the period's hot node.
        hot_percent: u32,
        /// Requests per round.
        requests: usize,
    },
    /// Stationary center-proximity demand
    /// (`proximity:req=<requests/round>,pool=<nearest %>`).
    Proximity {
        /// Requests per round.
        requests: usize,
        /// Percentage of the proximity ranking eligible as origins.
        pool_percent: u32,
    },
    /// Uniform background noise (`uniform:req=<requests/round>`).
    Uniform {
        /// Requests per round.
        requests: usize,
    },
    /// On/off user mobility (`onoff:users=<u>,dwell=<rounds>,correlated=<bool>`).
    OnOff {
        /// Concurrent users.
        users: usize,
        /// Rounds a user dwells at one access point.
        dwell: u64,
        /// Whether users move in a correlated wave.
        correlated: bool,
    },
    /// A recorded demand trace replayed as a scenario (`replay:<path>`;
    /// see `flexserve trace record` / `flexserve trace pack`). The format
    /// is auto-detected by magic: a packed `flexserve-trace-v1` file
    /// replays through an mmap/windowed reader, anything else parses as
    /// JSONL. Rounds past the end of the file are empty; `T`, `λ` and the
    /// seed are ignored — the demand is whatever was recorded.
    Replay {
        /// Path to the trace file (packed or JSONL).
        path: String,
    },
}

impl WorkloadSpec {
    /// Instantiates the scenario over a substrate.
    ///
    /// `t_periods` and `lambda` parameterize the daily rhythm where the
    /// scenario has one (commuter, time-zones); stationary workloads
    /// (proximity, uniform, on/off) ignore them.
    pub fn instantiate(
        &self,
        graph: &Graph,
        matrix: &DistanceMatrix,
        t_periods: u32,
        lambda: u64,
        seed: u64,
    ) -> Box<dyn Scenario> {
        match self {
            WorkloadSpec::CommuterDynamic => Box::new(CommuterScenario::with_matrix(
                graph,
                matrix,
                t_periods,
                lambda,
                LoadVariant::Dynamic,
                seed,
            )),
            WorkloadSpec::CommuterStatic => Box::new(CommuterScenario::with_matrix(
                graph,
                matrix,
                t_periods,
                lambda,
                LoadVariant::Static,
                seed,
            )),
            WorkloadSpec::TimeZones {
                hot_percent,
                requests,
            } => Box::new(TimeZonesScenario::new(
                graph,
                t_periods,
                lambda,
                f64::from(*hot_percent) / 100.0,
                *requests,
                seed,
            )),
            WorkloadSpec::Proximity {
                requests,
                pool_percent,
            } => Box::new(ProximityScenario::with_matrix(
                graph,
                matrix,
                *requests,
                f64::from(*pool_percent) / 100.0,
                seed,
            )),
            WorkloadSpec::Uniform { requests } => {
                Box::new(UniformScenario::new(graph, *requests, seed))
            }
            WorkloadSpec::OnOff {
                users,
                dwell,
                correlated,
            } => Box::new(OnOffScenario::new(graph, *users, *dwell, *correlated, seed)),
            WorkloadSpec::Replay { path } => {
                // Pre-checked by `WorkloadSpec::validate_replay` (via
                // `CellSpec::validate` and the serve layer), so a failure
                // here means the file changed underneath us. A packed
                // trace replays through a sliding decoded window (O(window)
                // resident); JSONL still materializes fully.
                match is_packed_file(path) {
                    Ok(true) => Box::new(
                        PackedScenario::open(path, graph.node_count(), DEFAULT_WINDOW_ROUNDS)
                            .unwrap_or_else(|e| panic!("wl=replay: {e}")),
                    ),
                    Ok(false) => {
                        let trace = Self::load_replay(path, graph.node_count())
                            .unwrap_or_else(|e| panic!("wl=replay: {e}"));
                        Box::new(TraceScenario::new(trace, path.clone()))
                    }
                    Err(e) => panic!("wl=replay: {e}"),
                }
            }
        }
    }

    /// Loads a `replay:<path>` JSONL trace, validating origins against a
    /// substrate of `node_count` nodes.
    fn load_replay(path: &str, node_count: usize) -> Result<RoundTrace, String> {
        let mut source = file_source(path, node_count)?;
        RoundTrace::from_source(&mut source, None)
    }

    /// For `replay:<path>` workloads: checks the file exists, parses and
    /// fits a substrate of `node_count` nodes. Other workloads always
    /// validate. A packed trace validates structurally (magic, frame
    /// index, fingerprint, universe) *without* materializing any rounds,
    /// so million-round packs stay O(1) here.
    pub fn validate_replay(&self, node_count: usize) -> Result<(), String> {
        match self {
            WorkloadSpec::Replay { path } => {
                if is_packed_file(path)? {
                    let trace = PackedTrace::open(path)?;
                    if trace.origin_universe() > node_count as u64 {
                        return Err(format!(
                            "{path}: origin universe {} out of range (substrate has {node_count} nodes)",
                            trace.origin_universe()
                        ));
                    }
                    Ok(())
                } else {
                    Self::load_replay(path, node_count).map(|_| ())
                }
            }
            _ => Ok(()),
        }
    }
}

impl fmt::Display for WorkloadSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadSpec::CommuterDynamic => write!(f, "commuter-dynamic"),
            WorkloadSpec::CommuterStatic => write!(f, "commuter-static"),
            WorkloadSpec::TimeZones {
                hot_percent,
                requests,
            } => write!(f, "time-zones:p={hot_percent},req={requests}"),
            WorkloadSpec::Proximity {
                requests,
                pool_percent,
            } => write!(f, "proximity:req={requests},pool={pool_percent}"),
            WorkloadSpec::Uniform { requests } => write!(f, "uniform:req={requests}"),
            WorkloadSpec::OnOff {
                users,
                dwell,
                correlated,
            } => write!(
                f,
                "onoff:users={users},dwell={dwell},correlated={correlated}"
            ),
            WorkloadSpec::Replay { path } => write!(f, "replay:{path}"),
        }
    }
}

fn parse_field<T: FromStr>(kind: &str, key: &str, value: &str) -> Result<T, String> {
    value
        .parse()
        .map_err(|_| format!("{kind}: bad value {value:?} for {key}"))
}

impl FromStr for WorkloadSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (kind, args) = match s.split_once(':') {
            Some((k, a)) => (k, a),
            None => (s, ""),
        };
        match kind {
            "commuter-dynamic" => Ok(WorkloadSpec::CommuterDynamic),
            "commuter-static" => Ok(WorkloadSpec::CommuterStatic),
            "time-zones" => {
                let (mut p, mut req) = (50u32, 50usize);
                for (k, v) in parse_kv(kind, args, &["p", "req"])? {
                    match k {
                        "p" => p = parse_field(kind, k, v)?,
                        _ => req = parse_field(kind, k, v)?,
                    }
                }
                if p > 100 {
                    return Err(format!("time-zones: p must be 0–100, got {p}"));
                }
                Ok(WorkloadSpec::TimeZones {
                    hot_percent: p,
                    requests: req,
                })
            }
            "proximity" => {
                let (mut req, mut pool) = (20usize, 20u32);
                for (k, v) in parse_kv(kind, args, &["req", "pool"])? {
                    match k {
                        "req" => req = parse_field(kind, k, v)?,
                        _ => pool = parse_field(kind, k, v)?,
                    }
                }
                if pool == 0 || pool > 100 {
                    return Err(format!("proximity: pool must be 1–100, got {pool}"));
                }
                Ok(WorkloadSpec::Proximity {
                    requests: req,
                    pool_percent: pool,
                })
            }
            "uniform" => {
                let mut req = 10usize;
                for (k, v) in parse_kv(kind, args, &["req"])? {
                    req = parse_field(kind, k, v)?;
                }
                Ok(WorkloadSpec::Uniform { requests: req })
            }
            "onoff" => {
                let (mut users, mut dwell, mut correlated) = (40usize, 5u64, false);
                for (k, v) in parse_kv(kind, args, &["users", "dwell", "correlated"])? {
                    match k {
                        "users" => users = parse_field(kind, k, v)?,
                        "dwell" => dwell = parse_field(kind, k, v)?,
                        _ => correlated = parse_field(kind, k, v)?,
                    }
                }
                Ok(WorkloadSpec::OnOff {
                    users,
                    dwell,
                    correlated,
                })
            }
            "replay" => {
                if args.is_empty() {
                    return Err("replay: expected replay:<path> (JSONL or packed trace)".into());
                }
                Ok(WorkloadSpec::Replay {
                    path: args.to_string(),
                })
            }
            _ => Err(format!(
                "unknown workload {s:?} (expected commuter-dynamic, commuter-static, \
                 time-zones, proximity, uniform, onoff or replay)"
            )),
        }
    }
}

/// An allocation strategy, identified by its paper name (lowercased).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StrategySpec {
    /// ONTH, the threshold algorithm (`onth`).
    OnTh,
    /// ONBR with fixed threshold `2c` (`onbr-fixed`, alias `onbr`).
    OnBrFixed,
    /// ONBR with dynamic threshold `2c/ℓ` (`onbr-dyn`).
    OnBrDyn,
    /// ONCONF, the configuration-counter algorithm (`onconf`;
    /// exponential state space — small substrates only).
    OnConf,
    /// SAMPLEDCONF, the §III-A sampling speed-up of ONCONF (`sampledconf`).
    SampledConf,
    /// OFFBR, lookahead best response (`offbr`).
    OffBr,
    /// OFFTH, lookahead threshold (`offth`).
    OffTh,
    /// OFFSTAT, the optimal *static* provisioning (`offstat`).
    OffStat,
    /// OPT, the optimal offline dynamic program (`opt`; small substrates
    /// only).
    Opt,
    /// Never reconfigures (`static`).
    Static,
}

/// Every strategy the registry exposes, in display order.
pub const ALL_STRATEGIES: [StrategySpec; 10] = [
    StrategySpec::OnTh,
    StrategySpec::OnBrFixed,
    StrategySpec::OnBrDyn,
    StrategySpec::OnConf,
    StrategySpec::SampledConf,
    StrategySpec::OffBr,
    StrategySpec::OffTh,
    StrategySpec::OffStat,
    StrategySpec::Opt,
    StrategySpec::Static,
];

impl StrategySpec {
    /// Runs the strategy on a recorded trace, starting from one server at
    /// the network center (the paper's canonical start). `seed` only
    /// matters for the randomized ONCONF.
    ///
    /// OFFSTAT and OPT return their total cost in the `access` component
    /// (they report a scalar optimum, not a breakdown) — the same
    /// convention the figure pipelines use.
    pub fn run(self, ctx: &SimContext<'_>, trace: &Trace, seed: u64) -> CostBreakdown {
        use flexserve_sim::run_online;
        match self {
            StrategySpec::OnTh => run_algorithm(ctx, trace, Algorithm::OnTh).total(),
            StrategySpec::OnBrFixed => run_algorithm(ctx, trace, Algorithm::OnBrFixed).total(),
            StrategySpec::OnBrDyn => run_algorithm(ctx, trace, Algorithm::OnBrDyn).total(),
            StrategySpec::OffBr => run_algorithm(ctx, trace, Algorithm::OffBr).total(),
            StrategySpec::OffTh => run_algorithm(ctx, trace, Algorithm::OffTh).total(),
            StrategySpec::Static => run_algorithm(ctx, trace, Algorithm::Static).total(),
            StrategySpec::OnConf => {
                let initial = initial_center(ctx);
                let mut strat = OnConf::new(ctx, &initial, seed);
                run_online(ctx, trace, &mut strat, initial).total()
            }
            StrategySpec::SampledConf => {
                let initial = initial_center(ctx);
                let mut strat = SampledConf::new(ctx);
                run_online(ctx, trace, &mut strat, initial).total()
            }
            StrategySpec::OffStat => CostBreakdown::from_access(offstat(ctx, trace).best_cost),
            StrategySpec::Opt => {
                let initial = initial_center(ctx);
                CostBreakdown::from_access(optimal_plan(ctx, trace, &initial).cost)
            }
        }
    }

    /// Whether the strategy enumerates configurations and therefore only
    /// works on small substrates (each variant is pre-checked against its
    /// own state cap by [`CellSpec::validate`]).
    pub fn enumerates_configurations(self) -> bool {
        matches!(self, StrategySpec::OnConf | StrategySpec::Opt)
    }

    /// Constructs the strategy in its streaming form — a boxed
    /// [`OnlineStrategy`] a `SimSession` (and the `flexserve serve`
    /// daemon) can drive one round at a time, without a recorded trace.
    ///
    /// Offline strategies need the full future request sequence and have
    /// no streaming form: `offbr`, `offth` and `opt` are refused here
    /// (`offstat` has one — `OffStatPlacement` — but it must be built
    /// from a recorded trace, which the serve layer does when the request
    /// source is a scenario).
    pub fn instantiate_online(
        self,
        ctx: &SimContext<'_>,
        seed: u64,
    ) -> Result<Box<dyn OnlineStrategy>, String> {
        match self {
            StrategySpec::OnTh => Ok(Box::new(OnTh::new())),
            StrategySpec::OnBrFixed => Ok(Box::new(OnBr::fixed(ctx))),
            StrategySpec::OnBrDyn => Ok(Box::new(OnBr::dynamic(ctx))),
            StrategySpec::OnConf => Ok(Box::new(OnConf::new(ctx, &initial_center(ctx), seed))),
            StrategySpec::SampledConf => Ok(Box::new(SampledConf::new(ctx))),
            StrategySpec::Static => Ok(Box::new(StaticStrategy::new())),
            StrategySpec::OffStat
            | StrategySpec::OffBr
            | StrategySpec::OffTh
            | StrategySpec::Opt => Err(format!(
                "{self}: offline strategies need the whole request sequence up front \
                     and cannot be driven round-by-round"
            )),
        }
    }
}

impl fmt::Display for StrategySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            StrategySpec::OnTh => "onth",
            StrategySpec::OnBrFixed => "onbr-fixed",
            StrategySpec::OnBrDyn => "onbr-dyn",
            StrategySpec::OnConf => "onconf",
            StrategySpec::SampledConf => "sampledconf",
            StrategySpec::OffBr => "offbr",
            StrategySpec::OffTh => "offth",
            StrategySpec::OffStat => "offstat",
            StrategySpec::Opt => "opt",
            StrategySpec::Static => "static",
        };
        write!(f, "{name}")
    }
}

impl FromStr for StrategySpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "onth" => Ok(StrategySpec::OnTh),
            "onbr" | "onbr-fixed" => Ok(StrategySpec::OnBrFixed),
            "onbr-dyn" => Ok(StrategySpec::OnBrDyn),
            "onconf" => Ok(StrategySpec::OnConf),
            "sampledconf" => Ok(StrategySpec::SampledConf),
            "offbr" => Ok(StrategySpec::OffBr),
            "offth" => Ok(StrategySpec::OffTh),
            "offstat" => Ok(StrategySpec::OffStat),
            "opt" => Ok(StrategySpec::Opt),
            "static" => Ok(StrategySpec::Static),
            _ => Err(format!(
                "unknown strategy {s:?} (expected onth, onbr-fixed, onbr-dyn, onconf, \
                 sampledconf, offbr, offth, offstat, opt or static)"
            )),
        }
    }
}

/// One experimental cell: topology × workload × strategy plus run
/// parameters. [`CellSpec::run`] averages the cell over its seeds via the
/// seed-parallel runner, pulling substrates from the distance-matrix cache.
///
/// Every axis parses from its canonical string (see `flexserve list`), so
/// a cell is fully describable as data:
///
/// ```
/// use flexserve_experiments::spec::{CellSpec, StrategySpec};
///
/// let mut cell = CellSpec::new(
///     "unit-line:8".parse().unwrap(),
///     "uniform:req=3".parse().unwrap(),
///     StrategySpec::OnTh,
/// );
/// cell.rounds = 20;
/// cell.seeds = vec![1, 2];
/// cell.params = cell.params.with_max_servers(4);
///
/// let result = cell.run().unwrap();
/// assert_eq!(result.summary.per_seed.len(), 2);
/// assert!(result.summary.mean_total() > 0.0);
/// assert!(cell.describe().contains("unit-line:8"));
/// ```
#[derive(Clone, Debug)]
pub struct CellSpec {
    /// Substrate topology.
    pub topology: TopologySpec,
    /// Demand workload.
    pub workload: WorkloadSpec,
    /// Allocation strategy.
    pub strategy: StrategySpec,
    /// Periods per day `T`.
    pub t_periods: u32,
    /// Rounds per period `λ`.
    pub lambda: u64,
    /// Total simulated rounds.
    pub rounds: u64,
    /// Seeds averaged over (substrate and workload derive from each seed).
    pub seeds: Vec<u64>,
    /// Cost-model parameters.
    pub params: CostParams,
    /// Server load model.
    pub load: LoadModel,
    /// Scheduled substrate events (failures, recoveries, degradations);
    /// empty for the static substrates of the paper reproductions. A
    /// non-empty schedule switches [`CellSpec::run`] onto the evented
    /// session and restricts the cell to streaming-capable strategies.
    pub events: SubstrateEvents,
}

impl CellSpec {
    /// A cell with the paper's default parameters: `T=8`, `λ=10`,
    /// 200 rounds, seeds 1000–1002, default cost model, linear load.
    pub fn new(topology: TopologySpec, workload: WorkloadSpec, strategy: StrategySpec) -> Self {
        CellSpec {
            topology,
            workload,
            strategy,
            t_periods: 8,
            lambda: 10,
            rounds: 200,
            seeds: vec![1000, 1001, 1002],
            params: CostParams::default(),
            load: LoadModel::Linear,
            events: SubstrateEvents::new(),
        }
    }

    /// Canonical one-line cell description (manifest + sweep CSV rows).
    /// Event-free cells keep the historical format; a schedule appends an
    /// `events=` field, so the manifest records exactly what was injected.
    pub fn describe(&self) -> String {
        let events = if self.events.is_empty() {
            String::new()
        } else {
            format!(", events={}", self.events.render())
        };
        format!(
            "{} x {} x {} (T={}, lambda={}, rounds={}, {} seeds, {}, load={}{events})",
            self.topology,
            self.workload,
            self.strategy,
            self.t_periods,
            self.lambda,
            self.rounds,
            self.seeds.len(),
            self.params.summary(),
            self.load
        )
    }

    /// Checks the cell is runnable before any expensive work: parameters
    /// validate, the first seed's substrate builds, and
    /// configuration-enumerating strategies (OPT, ONCONF) fit their state
    /// budgets (each checked with its own crate-of-origin count function,
    /// so the pre-check can never drift from the algorithms' panic caps).
    pub fn validate(&self) -> Result<(), String> {
        self.params.validate()?;
        if self.seeds.is_empty() {
            return Err("cell: at least one seed is required".into());
        }
        if self.rounds == 0 {
            return Err("cell: rounds must be >= 1".into());
        }
        if self.t_periods == 0 || self.lambda == 0 {
            return Err("cell: T and lambda must be >= 1".into());
        }
        // Through the cache: the substrate this builds is the one run()
        // fetches, so validation costs a cache fill, not duplicate work.
        let env = ExperimentEnv::from_spec(&self.topology, self.seeds[0])?;
        let n = env.graph.node_count();
        // A replay workload must exist, parse and fit this substrate
        // before any strategy runs.
        self.workload.validate_replay(n)?;
        if !self.events.is_empty() {
            // Offline strategies plan against the whole trace on a static
            // substrate; events fire between rounds, which only streaming
            // strategies can observe.
            if matches!(
                self.strategy,
                StrategySpec::OffBr
                    | StrategySpec::OffTh
                    | StrategySpec::OffStat
                    | StrategySpec::Opt
            ) {
                return Err(format!(
                    "events: {} is an offline strategy and cannot run on a dynamic substrate",
                    self.strategy
                ));
            }
            if let Some(last) = self.events.last_time() {
                if last >= self.rounds {
                    return Err(format!(
                        "events: event scheduled at round {last} but the cell runs only {} rounds",
                        self.rounds
                    ));
                }
            }
            // Dry-run the whole schedule against the first seed's
            // substrate so unknown links and double failures are refused
            // before any strategy runs.
            let mut world =
                flexserve_sim::DynamicWorld::new((*env.graph).clone(), (*env.matrix).clone());
            for (t, event) in self.events.entries() {
                world
                    .apply(event)
                    .map_err(|e| format!("events: round {t}: {e}"))?;
            }
        }
        let k = self.params.max_servers.min(n);
        match self.strategy {
            // The OPT DP mirrors configurations into 64-bit position masks
            // and enumerates position sets × active subsets.
            StrategySpec::Opt => {
                if n > 64 {
                    return Err(format!(
                        "opt: {n}-node substrate exceeds the DP's 64-bit configuration \
                         mask (use a substrate with <= 64 nodes)"
                    ));
                }
                let states = flexserve_core::opt::state_count(n, k);
                let max = flexserve_core::opt::MAX_STATES as u128;
                if states > max {
                    return Err(format!(
                        "opt: {states} configurations (n={n}, k={k}) exceed MAX_STATES={max}; \
                         shrink the substrate or the server budget k"
                    ));
                }
            }
            // ONCONF holds explicit node lists (no bitmask, no node-count
            // limit) but enumerates all position sets up to size k.
            StrategySpec::OnConf => {
                let configs = flexserve_core::onconf::config_count(n, k);
                let max = flexserve_core::onconf::MAX_CONFIGURATIONS;
                if configs > max {
                    return Err(format!(
                        "onconf: {configs} configurations (n={n}, k={k}) exceed the cap \
                         of {max}; shrink the substrate or the server budget k"
                    ));
                }
            }
            _ => {}
        }
        Ok(())
    }

    /// The demand half of this cell for `seed`, through the process-wide
    /// [`TraceCache`]: the first strategy cell of a
    /// `(topology, workload, T, λ, rounds, seed)` group records the
    /// scenario; every other strategy of the figure/sweep shares the
    /// `Arc`-held trace. Cached or fresh, the trace is bit-identical.
    pub fn shared_trace(&self, env: &ExperimentEnv, seed: u64) -> Trace {
        // A replayed trace file is the same demand under every seed *and*
        // every substrate (the graph only bounds the valid origin range,
        // checked by `validate_replay` per cell), so replay keys
        // normalize both: an N-seed replay cell — even on a seeded random
        // topology, where fingerprints differ per seed — reads and
        // parses the file once and shares one cache entry.
        let (substrate, seed) = match self.workload {
            WorkloadSpec::Replay { .. } => (0, 0),
            _ => (env.graph.fingerprint(), seed),
        };
        let key = TraceKey {
            substrate,
            workload: self.workload.to_string(),
            t_periods: self.t_periods,
            lambda: self.lambda,
            rounds: self.rounds,
            seed,
        };
        TraceCache::global().get_or_record(key, || {
            let mut scenario = self.workload.instantiate(
                &env.graph,
                &env.matrix,
                self.t_periods,
                self.lambda,
                seed,
            );
            Trace::record(scenario.as_mut(), self.rounds)
        })
    }

    /// Runs the cell: for each seed (in parallel), build or fetch the
    /// substrate, fetch or record the shared workload trace, play the
    /// strategy, and collect the cost breakdowns in seed order.
    ///
    /// Returns the per-seed summary plus the substrate fingerprint of the
    /// first seed (recorded in the manifest for provenance).
    pub fn run(&self) -> Result<CellResult, String> {
        self.validate()?;
        let summary = average(&self.seeds, |seed| {
            let env =
                ExperimentEnv::from_spec(&self.topology, seed).expect("validated spec must build");
            let ctx = env.context(self.params, self.load);
            let trace = self.shared_trace(&env, seed);
            if self.events.is_empty() {
                self.strategy.run(&ctx, &trace, seed)
            } else {
                // Dynamic substrate: drive the evented session over the
                // same shared trace (validated: the strategy streams and
                // the schedule dry-ran on the first seed's substrate).
                let strategy = self
                    .strategy
                    .instantiate_online(&ctx, seed)
                    .expect("validated: strategy has a streaming form");
                let initial = initial_center(&ctx);
                let mut session = EventedSession::new(
                    (*env.graph).clone(),
                    (*env.matrix).clone(),
                    self.events.clone(),
                    self.params,
                    self.load,
                    strategy,
                    initial,
                );
                let mut total = CostBreakdown::zero();
                for round in trace.iter() {
                    let record = session
                        .step(round)
                        .unwrap_or_else(|e| panic!("events cell (seed {seed}): {e}"));
                    total += record.costs;
                }
                total
            }
        });
        let fingerprint = ExperimentEnv::from_spec(&self.topology, self.seeds[0])
            .expect("validated spec must build")
            .graph
            .fingerprint();
        Ok(CellResult {
            summary,
            fingerprint,
        })
    }
}

/// The outcome of [`CellSpec::run`].
#[derive(Clone, Debug)]
pub struct CellResult {
    /// Per-seed cost breakdowns, in seed order.
    pub summary: SeedSummary,
    /// `Graph::fingerprint` of the first seed's substrate.
    pub fingerprint: u64,
}

/// Incremental single-seed [`CellSpec`] builder over `key=value` pairs —
/// the cell grammar shared by the `flexserve serve` command line and the
/// serve daemon's `POST /sessions` body, so the CLI and HTTP surfaces
/// accept exactly the same cells and can never drift apart.
///
/// Cell keys: `topo`, `wl`, `strat` (required), `t`, `lambda`, `rounds`,
/// `seed` (a single seed, not a list), `load`, `beta`, `c`, `ra`, `ri`,
/// `k`, `flipped`, `events` (a substrate-event schedule, see
/// `docs/FAULTS.md`). [`apply`](CellBuilder::apply) returns `Ok(false)`
/// for any other key, so callers can layer their own keys (`checkpoint=`,
/// `bind=`, …) on top.
///
/// ```
/// use flexserve_experiments::spec::CellBuilder;
///
/// let mut b = CellBuilder::new();
/// for kv in ["topo=unit-line:8", "wl=uniform:req=3", "strat=onth", "seed=7", "k=4"] {
///     let (key, value) = kv.split_once('=').unwrap();
///     assert!(b.apply(key, value).unwrap());
/// }
/// assert!(!b.apply("port", "0").unwrap()); // not a cell key
/// let cell = b.build().unwrap();
/// assert_eq!(cell.seeds, vec![7]);
/// assert_eq!(cell.params.max_servers, 4);
/// ```
#[derive(Clone, Debug)]
pub struct CellBuilder {
    topology: Option<TopologySpec>,
    workload: Option<WorkloadSpec>,
    strategy: Option<StrategySpec>,
    t_periods: u32,
    lambda: u64,
    rounds: u64,
    seed: u64,
    load: LoadModel,
    params: CostParams,
    beta: Option<f64>,
    c: Option<f64>,
    flipped: bool,
    events: SubstrateEvents,
}

impl Default for CellBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl CellBuilder {
    /// A builder with the serve defaults: `T=8`, `λ=10`, 200 rounds,
    /// seed 1000, linear load, default cost model.
    pub fn new() -> Self {
        CellBuilder {
            topology: None,
            workload: None,
            strategy: None,
            t_periods: 8,
            lambda: 10,
            rounds: 200,
            seed: 1000,
            load: LoadModel::Linear,
            params: CostParams::default(),
            beta: None,
            c: None,
            flipped: false,
            events: SubstrateEvents::new(),
        }
    }

    /// True when `key` belongs to the cell grammar (as opposed to a
    /// session- or server-level key) — lets callers that *rewrite*
    /// argument lists (the routing tier recreating a migrated session,
    /// `serve::route`) classify keys without duplicating the grammar. A
    /// cell key whose probe value fails to parse is still a cell key.
    pub fn is_cell_key(key: &str) -> bool {
        CellBuilder::new().apply(key, "0").unwrap_or(true)
    }

    /// Applies one `key=value` pair. Returns `Ok(true)` when the key was
    /// a cell key, `Ok(false)` when it is not (the caller's problem), and
    /// `Err` when the key is a cell key but the value does not parse.
    pub fn apply(&mut self, key: &str, v: &str) -> Result<bool, String> {
        match key {
            "topo" => self.topology = Some(v.parse().map_err(|e| format!("topo: {e}"))?),
            "wl" => self.workload = Some(v.parse().map_err(|e| format!("wl: {e}"))?),
            "strat" => {
                self.strategy = Some(
                    v.parse::<StrategySpec>()
                        .map_err(|e| format!("strat: {e}"))?,
                )
            }
            "t" => self.t_periods = v.parse().map_err(|_| format!("t: bad value {v:?}"))?,
            "lambda" => self.lambda = v.parse().map_err(|_| format!("lambda: bad value {v:?}"))?,
            "rounds" => self.rounds = v.parse().map_err(|_| format!("rounds: bad value {v:?}"))?,
            "seed" => self.seed = v.parse().map_err(|_| format!("seed: bad value {v:?}"))?,
            "load" => self.load = v.parse()?,
            "beta" => self.beta = Some(v.parse().map_err(|_| format!("beta: bad value {v:?}"))?),
            "c" => self.c = Some(v.parse().map_err(|_| format!("c: bad value {v:?}"))?),
            "ra" => {
                self.params.run_active = v.parse().map_err(|_| format!("ra: bad value {v:?}"))?
            }
            "ri" => {
                self.params.run_inactive = v.parse().map_err(|_| format!("ri: bad value {v:?}"))?
            }
            "k" => {
                self.params.max_servers = v.parse().map_err(|_| format!("k: bad value {v:?}"))?
            }
            "flipped" => {
                self.flipped = v.parse().map_err(|_| format!("flipped: bad value {v:?}"))?
            }
            "events" => self.events = SubstrateEvents::parse(v)?,
            _ => return Ok(false),
        }
        Ok(true)
    }

    /// Finalizes the cell. `flipped=true` is a shorthand for the paper's
    /// β=400/c=40 regime; explicit `beta=`/`c=` always win, regardless of
    /// argument order.
    pub fn build(self) -> Result<CellSpec, String> {
        let (topology, workload, strategy) = match (self.topology, self.workload, self.strategy) {
            (Some(t), Some(w), Some(s)) => (t, w, s),
            _ => return Err("topo=, wl= and strat= are required".into()),
        };
        let mut params = self.params;
        if self.flipped {
            params = params.with_costs(
                CostParams::flipped().migration_beta,
                CostParams::flipped().creation_c,
            );
        }
        if let Some(beta) = self.beta {
            params.migration_beta = beta;
        }
        if let Some(c) = self.c {
            params.creation_c = c;
        }
        let mut cell = CellSpec::new(topology, workload, strategy);
        cell.t_periods = self.t_periods;
        cell.lambda = self.lambda;
        cell.rounds = self.rounds;
        cell.seeds = vec![self.seed];
        cell.params = params;
        cell.load = self.load;
        cell.events = self.events;
        Ok(cell)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_cell_key_classifies_the_grammar() {
        for key in [
            "topo", "wl", "strat", "t", "lambda", "rounds", "seed", "load", "beta", "c", "ra",
            "ri", "k", "flipped", "events",
        ] {
            assert!(CellBuilder::is_cell_key(key), "{key} is a cell key");
        }
        for key in [
            "checkpoint",
            "resume",
            "source",
            "port",
            "bind",
            "workers",
            "max-sessions",
            "",
        ] {
            assert!(!CellBuilder::is_cell_key(key), "{key} is not a cell key");
        }
    }

    #[test]
    fn topology_specs_round_trip() {
        for s in [
            "er:200",
            "waxman:100",
            "grid:8x12",
            "geom:150",
            "line:5",
            "unit-line:9",
            "ring:32",
            "star:16",
            "tree:64",
            "as7018",
            "rocketfuel:data/as7018.weights",
        ] {
            let spec: TopologySpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s, "canonical form must round-trip");
        }
        assert!("er".parse::<TopologySpec>().is_err());
        assert!("er:0".parse::<TopologySpec>().is_err());
        assert!("grid:5".parse::<TopologySpec>().is_err());
        assert!("mesh:5".parse::<TopologySpec>().is_err());
    }

    #[test]
    fn workload_specs_round_trip_and_default() {
        for s in [
            "commuter-dynamic",
            "commuter-static",
            "time-zones:p=50,req=50",
            "proximity:req=20,pool=20",
            "uniform:req=10",
            "onoff:users=40,dwell=5,correlated=false",
        ] {
            let spec: WorkloadSpec = s.parse().unwrap();
            assert_eq!(spec.to_string(), s);
        }
        // bare names parse to the defaults above
        assert_eq!(
            "time-zones".parse::<WorkloadSpec>().unwrap().to_string(),
            "time-zones:p=50,req=50"
        );
        assert_eq!(
            "uniform".parse::<WorkloadSpec>().unwrap().to_string(),
            "uniform:req=10"
        );
        assert!("time-zones:p=200".parse::<WorkloadSpec>().is_err());
        assert!("time-zones:bogus=1".parse::<WorkloadSpec>().is_err());
        assert!("rush-hour".parse::<WorkloadSpec>().is_err());
    }

    #[test]
    fn cell_builder_flipped_and_explicit_costs() {
        let mut b = CellBuilder::new();
        for kv in ["topo=er:50", "wl=commuter-dynamic", "strat=onbr"] {
            let (k, v) = kv.split_once('=').unwrap();
            assert!(b.apply(k, v).unwrap());
        }
        // flipped shorthand, then an explicit beta override (order-proof)
        assert!(b.apply("flipped", "true").unwrap());
        assert!(b.apply("beta", "7.5").unwrap());
        let cell = b.build().unwrap();
        assert_eq!(cell.params.migration_beta, 7.5);
        assert_eq!(cell.params.creation_c, CostParams::flipped().creation_c);

        // missing axes are refused
        assert!(CellBuilder::new().build().unwrap_err().contains("required"));
        // cell-key values must parse
        assert!(CellBuilder::new().apply("rounds", "many").is_err());
    }

    #[test]
    fn strategy_specs_round_trip() {
        for s in ALL_STRATEGIES {
            assert_eq!(s.to_string().parse::<StrategySpec>().unwrap(), s);
        }
        assert_eq!(
            "onbr".parse::<StrategySpec>().unwrap(),
            StrategySpec::OnBrFixed
        );
        assert!("greedy".parse::<StrategySpec>().is_err());
    }

    #[test]
    fn topologies_build_deterministically() {
        for s in [
            "er:40",
            "waxman:30",
            "grid:4x5",
            "geom:30",
            "ring:12",
            "tree:20",
        ] {
            let spec: TopologySpec = s.parse().unwrap();
            let a = spec.build(7).unwrap();
            let b = spec.build(7).unwrap();
            assert_eq!(
                a.fingerprint(),
                b.fingerprint(),
                "{s} must be deterministic"
            );
            if spec.is_seeded() {
                let c = spec.build(8).unwrap();
                assert_ne!(a.fingerprint(), c.fingerprint(), "{s} must vary with seed");
            }
        }
    }

    #[test]
    fn feasibility_bounds_come_from_core() {
        // 5-node line with k=4, the paper's OPT setting, is comfortably
        // inside MAX_STATES; a 200-node substrate is hopeless.
        assert!(flexserve_core::opt::state_count(5, 4) < flexserve_core::opt::MAX_STATES as u128);
        assert!(
            flexserve_core::opt::state_count(200, 16) > flexserve_core::opt::MAX_STATES as u128
        );
    }

    #[test]
    fn cell_validation_rejects_infeasible_opt() {
        let cell = CellSpec::new(
            "er:100".parse().unwrap(),
            "commuter-dynamic".parse().unwrap(),
            StrategySpec::Opt,
        );
        let err = cell.validate().unwrap_err();
        assert!(err.contains("64-bit configuration mask"), "{err}");
        // Within the mask but over the state cap: 40 nodes, k=16.
        let mut cell40 = CellSpec::new(
            "er:40".parse().unwrap(),
            "commuter-dynamic".parse().unwrap(),
            StrategySpec::Opt,
        );
        let err = cell40.validate().unwrap_err();
        assert!(err.contains("exceed MAX_STATES"), "{err}");
        cell40.seeds.clear();
        assert!(cell40.validate().is_err());
    }

    #[test]
    fn onconf_has_no_node_count_limit() {
        // ONCONF holds explicit node lists — no 64-bit mask. 100 nodes
        // with k=1 is only 100 configurations and must validate.
        let mut cell = CellSpec::new(
            "er:100".parse().unwrap(),
            "commuter-dynamic".parse().unwrap(),
            StrategySpec::OnConf,
        );
        cell.params = cell.params.with_max_servers(1);
        assert!(cell.validate().is_ok(), "{:?}", cell.validate());
        // But the default k=16 blows the 50 000-configuration cap.
        cell.params = cell.params.with_max_servers(16);
        let err = cell.validate().unwrap_err();
        assert!(
            err.contains("onconf") && err.contains("exceed the cap"),
            "{err}"
        );
    }

    #[test]
    fn online_strategies_instantiate_for_serving() {
        let env = ExperimentEnv::line(6);
        let ctx = env.context(CostParams::default().with_max_servers(3), LoadModel::Linear);
        for strat in [
            StrategySpec::OnTh,
            StrategySpec::OnBrFixed,
            StrategySpec::OnBrDyn,
            StrategySpec::SampledConf,
            StrategySpec::Static,
        ] {
            let boxed = strat.instantiate_online(&ctx, 1).unwrap();
            assert!(!boxed.name().is_empty(), "{strat}");
        }
        for strat in [
            StrategySpec::OffBr,
            StrategySpec::OffTh,
            StrategySpec::Opt,
            StrategySpec::OffStat,
        ] {
            let err = match strat.instantiate_online(&ctx, 1) {
                Err(e) => e,
                Ok(_) => panic!("{strat} must not instantiate online"),
            };
            assert!(err.contains("offline"), "{strat}: {err}");
        }
    }

    #[test]
    fn small_cell_runs_end_to_end() {
        let mut cell = CellSpec::new(
            "unit-line:8".parse().unwrap(),
            "uniform:req=3".parse().unwrap(),
            StrategySpec::OnTh,
        );
        cell.rounds = 25;
        cell.seeds = vec![1, 2];
        cell.params = cell.params.with_max_servers(4);
        let res = cell.run().unwrap();
        assert_eq!(res.summary.per_seed.len(), 2);
        assert!(res.summary.mean_total().is_finite());
        assert!(res.summary.mean_total() > 0.0);
        assert_ne!(res.fingerprint, 0);
        assert!(cell.describe().contains("unit-line:8"));
    }

    #[test]
    fn events_cell_validates_runs_and_describes() {
        let mut cell = CellSpec::new(
            "unit-line:8".parse().unwrap(),
            "uniform:req=3".parse().unwrap(),
            StrategySpec::OnTh,
        );
        cell.rounds = 30;
        cell.seeds = vec![1];
        cell.params = cell.params.with_max_servers(4);
        cell.events =
            SubstrateEvents::parse("5:fail-link:3-4,12:recover-link:3-4,20:degrade-link:0-1:2")
                .unwrap();
        assert!(
            cell.describe().contains("events=5:fail-link:3-4"),
            "{}",
            cell.describe()
        );
        let res = cell.run().unwrap();
        assert!(res.summary.mean_total().is_finite());
        assert!(res.summary.mean_total() > 0.0);

        // Offline strategies are refused on dynamic substrates.
        let mut off = cell.clone();
        off.strategy = StrategySpec::OffBr;
        let err = off.validate().unwrap_err();
        assert!(err.contains("offline"), "{err}");

        // Events past the end of the run are refused.
        let mut late = cell.clone();
        late.rounds = 10;
        let err = late.validate().unwrap_err();
        assert!(err.contains("round 20"), "{err}");

        // An event naming a link the substrate does not have is caught by
        // the dry run, before any strategy work.
        let mut bad = cell.clone();
        bad.events = SubstrateEvents::parse("5:fail-link:0-7").unwrap();
        let err = bad.validate().unwrap_err();
        assert!(err.contains("no link"), "{err}");
    }

    #[test]
    fn events_cell_without_events_matches_static_path() {
        // The evented runner over an empty schedule must agree with the
        // static path bit for bit (same shared code underneath).
        let mut cell = CellSpec::new(
            "unit-line:8".parse().unwrap(),
            "uniform:req=3".parse().unwrap(),
            StrategySpec::OnTh,
        );
        cell.rounds = 25;
        cell.seeds = vec![2];
        cell.params = cell.params.with_max_servers(4);
        let static_total = cell.run().unwrap().summary.mean_total();

        // A no-op schedule: fail and recover the same link in one round.
        cell.events = SubstrateEvents::parse("5:fail-link:3-4,5:recover-link:3-4").unwrap();
        let evented_total = cell.run().unwrap().summary.mean_total();
        assert_eq!(static_total.to_bits(), evented_total.to_bits());
    }

    #[test]
    fn cell_builder_accepts_events_key() {
        let mut b = CellBuilder::new();
        for kv in [
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=onth",
            "events=5:fail-link:3-4,9:recover-link:3-4",
        ] {
            let (k, v) = kv.split_once('=').unwrap();
            assert!(b.apply(k, v).unwrap());
        }
        let cell = b.build().unwrap();
        assert_eq!(cell.events.len(), 2);
        assert!(CellBuilder::new().apply("events", "5:explode:1").is_err());
    }

    #[test]
    fn offline_strategies_run_in_cells() {
        for strat in [
            StrategySpec::OffStat,
            StrategySpec::Opt,
            StrategySpec::SampledConf,
        ] {
            let mut cell = CellSpec::new(
                "line:5".parse().unwrap(),
                "commuter-dynamic".parse().unwrap(),
                strat,
            );
            cell.rounds = 16;
            cell.t_periods = 4;
            cell.seeds = vec![3];
            cell.params = cell.params.with_max_servers(4);
            let res = cell.run().unwrap();
            assert!(res.summary.mean_total() > 0.0, "{strat}");
        }
    }
}
