//! The `flexserve serve` daemon: a streaming placement service over a
//! [`SimSession`].
//!
//! Where `flexserve run` replays a recorded trace in a closed loop,
//! `serve` keeps the loop open: it loads one [`CellSpec`] cell (substrate
//! through the process-wide [`DistCache`](crate::cache::DistCache),
//! workload as a streaming [`RequestSource`]), binds a
//! `std::net::TcpListener` on loopback, and answers a minimal hand-rolled
//! HTTP/1.1 surface:
//!
//! | endpoint            | effect                                              |
//! |---------------------|-----------------------------------------------------|
//! | `POST /step`        | play one round (body `{"origins": [...]}`, or empty to pull the configured source) |
//! | `GET  /placement`   | current active/inactive servers and epoch           |
//! | `GET  /metrics`     | cumulative costs, rounds served, step latency       |
//! | `POST /checkpoint`  | snapshot to the checkpoint file, return the JSON    |
//! | `POST /shutdown`    | stop the daemon                                     |
//!
//! Checkpoints use the engine's [`SessionSnapshot`] format; restarting
//! with `resume=true` continues **bit-identically** to a daemon that was
//! never stopped (guaranteed by the strategy state export machinery and
//! pinned by `crates/core/tests/checkpoint_resume.rs` plus the HTTP
//! round-trip test in `tests/serve_http.rs`). Endpoint reference, JSONL
//! replay schema and the checkpoint format live in `docs/SERVING.md`.
//!
//! The daemon is deliberately single-threaded: placement is a sequential
//! online game, so requests are serialized anyway; one accept loop keeps
//! the whole surface deterministic.

use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, TcpStream};
use std::path::PathBuf;
use std::time::Instant;

use flexserve_sim::{
    CostBreakdown, CostParams, LoadModel, OnlineStrategy, RoundRecord, SessionSnapshot, SimSession,
};
use flexserve_workload::{
    file_source, parse_round, record, stdin_source, JsonValue, RequestSource, ScenarioStream, Trace,
};

use flexserve_core::{initial_center, OffStatPlacement};

use crate::output::results_dir;
use crate::setup::ExperimentEnv;
use crate::spec::{CellSpec, StrategySpec};

/// Where the daemon's rounds come from when `POST /step` has an empty
/// body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SourceKind {
    /// The cell's workload scenario, streamed round by round (capped at
    /// the cell's `rounds`).
    Scenario,
    /// A JSONL replay file (`source=<path>`).
    File(String),
    /// JSONL on standard input (`source=stdin`).
    Stdin,
}

/// Parsed `flexserve serve` options.
#[derive(Clone, Debug)]
pub struct ServeOptions {
    /// The cell to serve (strategy, substrate, workload, cost model; the
    /// cell's `rounds` caps the scenario source, its first seed drives
    /// substrate and workload randomness).
    pub cell: CellSpec,
    /// Loopback port to bind (0 = ephemeral, the chosen port is
    /// announced on stdout).
    pub port: u16,
    /// Checkpoint file written by `POST /checkpoint` and read on
    /// `resume=true`.
    pub checkpoint: PathBuf,
    /// Resume from the checkpoint file instead of starting at round 0.
    pub resume: bool,
    /// Demand source for source-driven stepping.
    pub source: SourceKind,
}

const SERVE_USAGE: &str = "\
usage: flexserve serve topo=<spec> wl=<spec> strat=<name> [key=value...]

keys: t, lambda, rounds (scenario-source cap), seed, load, beta, c, ra,
      ri, k, flipped, port (default 7788, 0 = ephemeral),
      checkpoint=<path> (default <results dir>/checkpoint.json),
      resume=true|false, source=scenario|stdin|<path.jsonl>
";

impl ServeOptions {
    /// Parses `serve` arguments (`key=value` pairs, single-valued axes).
    pub fn parse(args: &[String]) -> Result<Self, String> {
        let (mut topo, mut wl, mut strat) = (None, None, None);
        let (mut t, mut lambda, mut rounds) = (8u32, 10u64, 200u64);
        let mut seed = 1000u64;
        let mut load = LoadModel::Linear;
        let mut params = CostParams::default();
        let (mut beta, mut c): (Option<f64>, Option<f64>) = (None, None);
        let mut flipped = false;
        let mut port = 7788u16;
        let mut checkpoint: Option<PathBuf> = None;
        let mut resume = false;
        let mut source = SourceKind::Scenario;

        for arg in args {
            let (key, v) = arg
                .split_once('=')
                .ok_or_else(|| format!("serve: expected key=value, got {arg:?}\n{SERVE_USAGE}"))?;
            match key {
                "topo" => topo = Some(v.parse().map_err(|e| format!("topo: {e}"))?),
                "wl" => wl = Some(v.parse().map_err(|e| format!("wl: {e}"))?),
                "strat" => {
                    strat = Some(
                        v.parse::<StrategySpec>()
                            .map_err(|e| format!("strat: {e}"))?,
                    )
                }
                "t" => t = v.parse().map_err(|_| format!("t: bad value {v:?}"))?,
                "lambda" => lambda = v.parse().map_err(|_| format!("lambda: bad value {v:?}"))?,
                "rounds" => rounds = v.parse().map_err(|_| format!("rounds: bad value {v:?}"))?,
                "seed" => seed = v.parse().map_err(|_| format!("seed: bad value {v:?}"))?,
                "load" => load = v.parse()?,
                "beta" => beta = Some(v.parse().map_err(|_| format!("beta: bad value {v:?}"))?),
                "c" => c = Some(v.parse().map_err(|_| format!("c: bad value {v:?}"))?),
                "ra" => {
                    params.run_active = v.parse().map_err(|_| format!("ra: bad value {v:?}"))?
                }
                "ri" => {
                    params.run_inactive = v.parse().map_err(|_| format!("ri: bad value {v:?}"))?
                }
                "k" => params.max_servers = v.parse().map_err(|_| format!("k: bad value {v:?}"))?,
                "flipped" => {
                    flipped = v.parse().map_err(|_| format!("flipped: bad value {v:?}"))?
                }
                "port" => port = v.parse().map_err(|_| format!("port: bad value {v:?}"))?,
                "checkpoint" => checkpoint = Some(PathBuf::from(v)),
                "resume" => resume = v.parse().map_err(|_| format!("resume: bad value {v:?}"))?,
                "source" => {
                    source = match v {
                        "scenario" => SourceKind::Scenario,
                        "stdin" => SourceKind::Stdin,
                        path => SourceKind::File(path.to_string()),
                    }
                }
                _ => return Err(format!("serve: unknown key {key:?}\n{SERVE_USAGE}")),
            }
        }
        if flipped {
            params = params.with_costs(
                CostParams::flipped().migration_beta,
                CostParams::flipped().creation_c,
            );
        }
        if let Some(beta) = beta {
            params.migration_beta = beta;
        }
        if let Some(c) = c {
            params.creation_c = c;
        }
        let (topo, wl, strat) = match (topo, wl, strat) {
            (Some(t), Some(w), Some(s)) => (t, w, s),
            _ => {
                return Err(format!(
                    "serve: topo=, wl= and strat= are required\n{SERVE_USAGE}"
                ))
            }
        };
        let mut cell = CellSpec::new(topo, wl, strat);
        cell.t_periods = t;
        cell.lambda = lambda;
        cell.rounds = rounds;
        cell.seeds = vec![seed];
        cell.params = params;
        cell.load = load;
        Ok(ServeOptions {
            cell,
            port,
            checkpoint: checkpoint.unwrap_or_else(|| results_dir().join("checkpoint.json")),
            resume,
            source,
        })
    }
}

/// What a finished daemon reports (mainly for tests and logs).
#[derive(Clone, Copy, Debug)]
pub struct ServeSummary {
    /// Rounds stepped by this process (excludes checkpointed history).
    pub rounds_served: u64,
    /// The session's round counter at shutdown.
    pub final_t: u64,
}

/// Binds `127.0.0.1:port` and serves until `POST /shutdown`. The bound
/// address is announced on stdout (`port=0` picks an ephemeral port, so
/// scripts must parse the announcement).
pub fn serve(opts: &ServeOptions) -> Result<ServeSummary, String> {
    let listener = TcpListener::bind(("127.0.0.1", opts.port))
        .map_err(|e| format!("serve: cannot bind 127.0.0.1:{}: {e}", opts.port))?;
    serve_on(listener, opts)
}

/// [`serve`] over an already-bound listener (tests bind port 0 themselves
/// to learn the address before starting the daemon thread).
pub fn serve_on(listener: TcpListener, opts: &ServeOptions) -> Result<ServeSummary, String> {
    opts.cell.validate()?;
    let seed = opts.cell.seeds[0];
    let env = ExperimentEnv::from_spec(&opts.cell.topology, seed)?;
    let ctx = env.context(opts.cell.params, opts.cell.load);
    let node_count = env.graph.node_count();

    // Resume state, read before anything is constructed so a bad
    // checkpoint aborts the start instead of a half-served session.
    let (snapshot, source_consumed) = if opts.resume {
        let text = std::fs::read_to_string(&opts.checkpoint).map_err(|e| {
            format!(
                "serve: cannot read checkpoint {}: {e}",
                opts.checkpoint.display()
            )
        })?;
        let snap = SessionSnapshot::from_json(&text)?;
        // The daemon's sidecar field (see `checkpoint()`): how many rounds
        // came out of the demand source, as opposed to explicit-body
        // steps. Fast-forwarding by `t` instead would over-skip source
        // rounds whenever the two were mixed.
        let consumed = JsonValue::parse(&text)
            .ok()
            .and_then(|v| v.get("source_rounds").and_then(JsonValue::as_u64))
            .unwrap_or(snap.t);
        if consumed > snap.t {
            return Err(format!(
                "serve: corrupt checkpoint: source_rounds {consumed} exceeds t {}",
                snap.t
            ));
        }
        (Some(snap), consumed)
    } else {
        (None, 0)
    };
    let resumed_at = snapshot.as_ref().map(|s| s.t).unwrap_or(0);

    // The strategy. OFFSTAT has no pure-streaming form: its placement is
    // computed from the recorded scenario trace (scenario sources only) —
    // on resume the placement travels inside the checkpoint instead.
    let strategy: Box<dyn OnlineStrategy> = if opts.cell.strategy == StrategySpec::OffStat {
        if snapshot.is_some() {
            Box::new(OffStatPlacement::new(Vec::new()))
        } else if opts.source == SourceKind::Scenario {
            let trace = record_cell_trace(&opts.cell, &env, seed);
            Box::new(OffStatPlacement::from_trace(&ctx, &trace))
        } else {
            return Err(
                "serve: strat=offstat needs source=scenario (the placement is computed \
                 from the recorded scenario trace)"
                    .into(),
            );
        }
    } else {
        opts.cell.strategy.instantiate_online(&ctx, seed)?
    };

    let mut session = match &snapshot {
        Some(snap) => SimSession::resume(ctx, strategy, snap)?,
        None => SimSession::new(ctx, strategy, initial_center(&ctx)),
    };

    // The demand source, fast-forwarded past the rounds the checkpointed
    // history actually consumed from it (explicit-body steps do not
    // advance the source), so a resumed daemon sees the same source
    // rounds an uninterrupted one would.
    let mut source: Box<dyn RequestSource> = match &opts.source {
        SourceKind::Scenario => {
            let scenario = opts.cell.workload.instantiate(
                &env.graph,
                &env.matrix,
                opts.cell.t_periods,
                opts.cell.lambda,
                seed,
            );
            let mut stream = ScenarioStream::new(scenario, Some(opts.cell.rounds));
            stream.skip_to(source_consumed);
            Box::new(stream)
        }
        SourceKind::File(path) => {
            let mut replay = file_source(path, node_count)?;
            for _ in 0..source_consumed {
                replay.next_round()?.ok_or_else(|| {
                    format!(
                        "serve: replay {path} is shorter than the checkpoint \
                         (source_rounds={source_consumed})"
                    )
                })?;
            }
            Box::new(replay)
        }
        SourceKind::Stdin => Box::new(stdin_source(node_count)),
    };

    let addr = listener
        .local_addr()
        .map_err(|e| format!("serve: local_addr: {e}"))?;
    println!(
        "flexserve serve: listening on http://{addr} [{}] source={} checkpoint={}{}",
        opts.cell.describe(),
        source.describe(),
        opts.checkpoint.display(),
        if opts.resume {
            format!(" (resumed at t={resumed_at})")
        } else {
            String::new()
        }
    );
    let _ = std::io::stdout().flush();

    let mut state = DaemonState {
        session: &mut session,
        source: source.as_mut(),
        spec: opts.cell.describe(),
        checkpoint: opts.checkpoint.clone(),
        resumed_at,
        source_consumed,
        rounds_served: 0,
        totals: CostBreakdown::zero(),
        step_seconds_total: 0.0,
    };

    for stream in listener.incoming() {
        let stream = match stream {
            Ok(s) => s,
            Err(e) => {
                eprintln!("serve: accept error: {e}");
                continue;
            }
        };
        match handle_connection(stream, &mut state) {
            Ok(true) => {}
            Ok(false) => break, // /shutdown
            Err(e) => eprintln!("serve: connection error: {e}"),
        }
    }
    Ok(ServeSummary {
        rounds_served: state.rounds_served,
        final_t: session.t(),
    })
}

/// Records the cell's scenario into a trace (OFFSTAT placement input).
fn record_cell_trace(cell: &CellSpec, env: &ExperimentEnv, seed: u64) -> Trace {
    let mut scenario =
        cell.workload
            .instantiate(&env.graph, &env.matrix, cell.t_periods, cell.lambda, seed);
    record(scenario.as_mut(), cell.rounds)
}

struct DaemonState<'s, 'a> {
    session: &'s mut SimSession<'a, Box<dyn OnlineStrategy>>,
    source: &'s mut dyn RequestSource,
    spec: String,
    checkpoint: PathBuf,
    resumed_at: u64,
    /// Rounds ever pulled from the demand source (including checkpointed
    /// history) — the resume fast-forward distance. Explicit-body steps
    /// advance `t` but not this.
    source_consumed: u64,
    rounds_served: u64,
    totals: CostBreakdown,
    step_seconds_total: f64,
}

/// Handles one HTTP exchange. Returns `Ok(false)` on `/shutdown`.
fn handle_connection(stream: TcpStream, state: &mut DaemonState<'_, '_>) -> Result<bool, String> {
    // The daemon is single-threaded: without a timeout, one client that
    // connects and sends nothing would hang every endpoint forever.
    let _ = stream.set_read_timeout(Some(std::time::Duration::from_secs(30)));
    let _ = stream.set_write_timeout(Some(std::time::Duration::from_secs(30)));
    let mut reader = BufReader::new(stream);
    let (method, path, body) = match read_request(&mut reader) {
        Ok(req) => req,
        Err(e) => {
            let _ = respond_json(
                reader.get_mut(),
                400,
                "Bad Request",
                &error_json(&e).render(),
            );
            return Ok(true);
        }
    };
    let out = reader.get_mut();
    match (method.as_str(), path.as_str()) {
        ("POST", "/step") => match step(state, &body) {
            Ok(json) => respond_json(out, 200, "OK", &json.render()),
            Err(StepError::Exhausted) => respond_json(
                out,
                410,
                "Gone",
                &error_json("request source exhausted").render(),
            ),
            Err(StepError::Bad(e)) => {
                respond_json(out, 400, "Bad Request", &error_json(&e).render())
            }
        },
        ("GET", "/placement") => respond_json(out, 200, "OK", &placement_json(state).render()),
        ("GET", "/metrics") => respond_json(out, 200, "OK", &metrics_json(state).render()),
        ("POST", "/checkpoint") => match checkpoint(state) {
            Ok(text) => respond_json(out, 200, "OK", &text),
            Err(e) => respond_json(out, 500, "Internal Server Error", &error_json(&e).render()),
        },
        ("POST", "/shutdown") => {
            respond_json(
                out,
                200,
                "OK",
                &JsonValue::Obj(vec![("ok".into(), JsonValue::Bool(true))]).render(),
            )?;
            return Ok(false);
        }
        _ => respond_json(
            out,
            404,
            "Not Found",
            &error_json(&format!(
                "no {method} {path}; endpoints: POST /step, GET /placement, GET /metrics, \
                 POST /checkpoint, POST /shutdown"
            ))
            .render(),
        ),
    }?;
    Ok(true)
}

enum StepError {
    Exhausted,
    Bad(String),
}

fn step(state: &mut DaemonState<'_, '_>, body: &str) -> Result<JsonValue, StepError> {
    let batch = if body.trim().is_empty() {
        let batch = state
            .source
            .next_round()
            .map_err(StepError::Bad)?
            .ok_or(StepError::Exhausted)?;
        state.source_consumed += 1;
        batch
    } else {
        let value = JsonValue::parse(body.trim()).map_err(StepError::Bad)?;
        parse_round(&value, state.session.ctx().graph.node_count()).map_err(StepError::Bad)?
    };
    let started = Instant::now();
    let rec = state.session.step(&batch);
    state.step_seconds_total += started.elapsed().as_secs_f64();
    state.rounds_served += 1;
    state.totals += rec.costs;
    Ok(round_json(state, &rec))
}

fn checkpoint(state: &mut DaemonState<'_, '_>) -> Result<String, String> {
    let text = state.session.snapshot()?.to_json();
    // Sidecar field for the resume fast-forward: how much of the demand
    // source the checkpointed history consumed. `SessionSnapshot` ignores
    // unknown keys, so the file stays a valid engine checkpoint.
    let mut value = JsonValue::parse(&text).expect("own render must parse");
    if let JsonValue::Obj(pairs) = &mut value {
        pairs.push((
            "source_rounds".into(),
            JsonValue::from(state.source_consumed),
        ));
    }
    let mut text = value.render();
    text.push('\n');
    if let Some(dir) = state.checkpoint.parent() {
        if !dir.as_os_str().is_empty() {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        }
    }
    // Write-then-rename so a crash mid-write can't truncate the previous
    // good checkpoint — the one artifact meant to survive crashes.
    let tmp = state.checkpoint.with_extension("json.tmp");
    std::fs::write(&tmp, &text).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, &state.checkpoint)
        .map_err(|e| format!("cannot rename into {}: {e}", state.checkpoint.display()))?;
    Ok(text)
}

fn costs_json(costs: &CostBreakdown) -> JsonValue {
    JsonValue::Obj(vec![
        ("access".into(), JsonValue::from(costs.access)),
        ("running".into(), JsonValue::from(costs.running)),
        ("migration".into(), JsonValue::from(costs.migration)),
        ("creation".into(), JsonValue::from(costs.creation)),
        ("total".into(), JsonValue::from(costs.total())),
    ])
}

fn fleet_json(state: &DaemonState<'_, '_>) -> Vec<(String, JsonValue)> {
    let fleet = state.session.fleet();
    vec![
        (
            "active".into(),
            JsonValue::Arr(
                fleet
                    .active()
                    .iter()
                    .map(|n| JsonValue::from(n.index()))
                    .collect(),
            ),
        ),
        (
            "inactive".into(),
            JsonValue::Arr(
                fleet
                    .inactive_entries()
                    .map(|s| {
                        JsonValue::Arr(vec![
                            JsonValue::from(s.node.index()),
                            JsonValue::from(s.expires_epoch),
                        ])
                    })
                    .collect(),
            ),
        ),
        ("epoch".into(), JsonValue::from(fleet.epoch())),
    ]
}

fn round_json(state: &DaemonState<'_, '_>, rec: &RoundRecord) -> JsonValue {
    let mut pairs = vec![
        ("t".into(), JsonValue::from(rec.t)),
        ("requests".into(), JsonValue::from(rec.requests)),
        ("costs".into(), costs_json(&rec.costs)),
    ];
    pairs.extend(fleet_json(state));
    JsonValue::Obj(pairs)
}

fn placement_json(state: &DaemonState<'_, '_>) -> JsonValue {
    let mut pairs = vec![("t".into(), JsonValue::from(state.session.t()))];
    pairs.extend(fleet_json(state));
    JsonValue::Obj(pairs)
}

fn metrics_json(state: &DaemonState<'_, '_>) -> JsonValue {
    JsonValue::Obj(vec![
        (
            "strategy".into(),
            JsonValue::from(state.session.strategy().name()),
        ),
        ("spec".into(), JsonValue::from(state.spec.clone())),
        ("source".into(), JsonValue::from(state.source.describe())),
        ("next_t".into(), JsonValue::from(state.session.t())),
        ("resumed_at".into(), JsonValue::from(state.resumed_at)),
        ("rounds_served".into(), JsonValue::from(state.rounds_served)),
        (
            "source_rounds".into(),
            JsonValue::from(state.source_consumed),
        ),
        ("total_cost".into(), costs_json(&state.totals)),
        (
            "active_servers".into(),
            JsonValue::from(state.session.fleet().active_count()),
        ),
        (
            "step_seconds_total".into(),
            JsonValue::from(state.step_seconds_total),
        ),
    ])
}

fn error_json(message: &str) -> JsonValue {
    JsonValue::Obj(vec![("error".into(), JsonValue::from(message))])
}

/// Reads one HTTP request: the request line, headers (only
/// `Content-Length` matters) and the body.
fn read_request<R: BufRead>(reader: &mut R) -> Result<(String, String, String), String> {
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_string();
    let path = parts.next().ok_or("request line has no path")?.to_string();

    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        let n = reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        if n == 0 || header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("content-length") {
                content_length = value
                    .trim()
                    .parse()
                    .map_err(|_| format!("bad Content-Length {value:?}"))?;
            }
        }
    }
    // Cap bodies at 16 MiB: a daemon on loopback still shouldn't let one
    // request balloon the process.
    if content_length > 16 * 1024 * 1024 {
        return Err(format!(
            "body of {content_length} bytes exceeds the 16 MiB cap"
        ));
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body: {e}"))?;
    let body = String::from_utf8(body).map_err(|_| "body is not UTF-8".to_string())?;
    Ok((method, path, body))
}

fn respond_json(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    body: &str,
) -> Result<(), String> {
    let mut body = body.to_string();
    if !body.ends_with('\n') {
        body.push('\n');
    }
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(response.as_bytes())
        .and_then(|()| stream.flush())
        .map_err(|e| format!("write response: {e}"))
}

/// CLI entry point for `flexserve serve <args>`.
pub fn serve_cmd(args: &[String]) -> Result<(), String> {
    let opts = ServeOptions::parse(args)?;
    let summary = serve(&opts)?;
    eprintln!(
        "flexserve serve: stopped after {} rounds (t={})",
        summary.rounds_served, summary.final_t
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parse_requires_the_three_axes() {
        let err = ServeOptions::parse(&args(&["topo=er:50"])).unwrap_err();
        assert!(err.contains("required"), "{err}");
        let err = ServeOptions::parse(&args(&["bogus"])).unwrap_err();
        assert!(err.contains("key=value"), "{err}");
        let err = ServeOptions::parse(&args(&["topo=er:50", "wl=uniform", "strat=onth", "zap=1"]))
            .unwrap_err();
        assert!(err.contains("unknown key"), "{err}");
    }

    #[test]
    fn parse_builds_a_cell_with_defaults_and_overrides() {
        let opts = ServeOptions::parse(&args(&[
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=onth",
            "rounds=50",
            "seed=7",
            "k=4",
            "port=0",
            "checkpoint=/tmp/ck.json",
            "source=stdin",
        ]))
        .unwrap();
        assert_eq!(opts.cell.rounds, 50);
        assert_eq!(opts.cell.seeds, vec![7]);
        assert_eq!(opts.cell.params.max_servers, 4);
        assert_eq!(opts.port, 0);
        assert_eq!(opts.checkpoint, PathBuf::from("/tmp/ck.json"));
        assert_eq!(opts.source, SourceKind::Stdin);
        assert!(!opts.resume);

        let opts = ServeOptions::parse(&args(&[
            "topo=er:50",
            "wl=commuter-dynamic",
            "strat=onbr",
            "source=demand.jsonl",
            "resume=true",
            "flipped=true",
        ]))
        .unwrap();
        assert_eq!(opts.source, SourceKind::File("demand.jsonl".into()));
        assert!(opts.resume);
        assert_eq!(opts.cell.params.migration_beta, 400.0);
        assert_eq!(opts.cell.params.creation_c, 40.0);
    }

    #[test]
    fn offstat_needs_a_scenario_source() {
        let opts = ServeOptions::parse(&args(&[
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=offstat",
            "source=stdin",
            "k=4",
        ]))
        .unwrap();
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let err = serve_on(listener, &opts).unwrap_err();
        assert!(err.contains("source=scenario"), "{err}");
    }
}
