//! The experiment registry: every paper figure/table, topology, workload
//! and strategy, enumerable by name.
//!
//! `flexserve list` renders this module; `flexserve run <figure>` looks a
//! figure up here and calls its pipeline function; `flexserve run`/`sweep`
//! cell expressions draw their axes from the same catalogs. The golden
//! tests pin [`list_text`] so the CLI surface can't drift silently.

use crate::figures::{self, Profile};
use crate::output::Table;
use crate::spec::ALL_STRATEGIES;

/// One paper figure or table: a name, what it shows, and the pipeline
/// function that regenerates it (printing the series and writing
/// `results/<name>.csv`).
pub struct FigureEntry {
    /// Registry name (`fig01` … `fig19`, `table1`).
    pub name: &'static str,
    /// One-line description of what the paper plot shows.
    pub title: &'static str,
    /// Regenerates the figure at the given profile.
    pub run: fn(Profile) -> Table,
}

/// Every figure and table of the paper's evaluation, in paper order.
pub const FIGURES: &[FigureEntry] = &[
    FigureEntry {
        name: "fig01",
        title: "ONTH exemplary run, commuter dynamic load (servers track demand)",
        run: figures::fig01,
    },
    FigureEntry {
        name: "fig02",
        title: "ONTH exemplary run, commuter static load (server count converges)",
        run: figures::fig02,
    },
    FigureEntry {
        name: "fig03",
        title: "Cost vs network size, commuter dynamic load",
        run: figures::fig03,
    },
    FigureEntry {
        name: "fig04",
        title: "Cost vs network size, commuter static load",
        run: figures::fig04,
    },
    FigureEntry {
        name: "fig05",
        title: "Cost vs network size, time-zones scenario",
        run: figures::fig05,
    },
    FigureEntry {
        name: "fig06",
        title: "ONBR cost breakdown by scenario, flipped regime (beta=400 > c=40)",
        run: figures::fig06,
    },
    FigureEntry {
        name: "fig07",
        title: "Cost vs T, commuter static load",
        run: figures::fig07,
    },
    FigureEntry {
        name: "fig08",
        title: "Cost vs lambda, commuter dynamic load",
        run: figures::fig08,
    },
    FigureEntry {
        name: "fig09",
        title: "Cost vs lambda, commuter static load",
        run: figures::fig09,
    },
    FigureEntry {
        name: "fig10",
        title: "Cost vs lambda, time-zones scenario (p=50%)",
        run: figures::fig10,
    },
    FigureEntry {
        name: "fig11",
        title: "ONTH/OPT competitive ratio vs lambda, all scenarios",
        run: figures::fig11,
    },
    FigureEntry {
        name: "fig12",
        title: "OFFSTAT cost vs static server count (how k_opt is picked)",
        run: figures::fig12,
    },
    FigureEntry {
        name: "fig13",
        title: "OFFSTAT and OPT cost vs lambda, commuter dynamic (beta=40 < c=400)",
        run: figures::fig13,
    },
    FigureEntry {
        name: "fig14",
        title: "OFFSTAT and OPT cost vs lambda, commuter dynamic (beta=400 > c=40)",
        run: figures::fig14,
    },
    FigureEntry {
        name: "fig15",
        title: "OFFSTAT/OPT ratio vs lambda, commuter dynamic load",
        run: figures::fig15,
    },
    FigureEntry {
        name: "fig16",
        title: "OFFSTAT/OPT ratio vs lambda, commuter static load",
        run: figures::fig16,
    },
    FigureEntry {
        name: "fig17",
        title: "OFFSTAT/OPT ratio vs lambda, time-zones (p=50%)",
        run: figures::fig17,
    },
    FigureEntry {
        name: "fig18",
        title: "OFFSTAT/OPT ratio vs T, commuter dynamic load",
        run: figures::fig18,
    },
    FigureEntry {
        name: "fig19",
        title: "OFFSTAT/OPT ratio vs T, commuter static load",
        run: figures::fig19,
    },
    FigureEntry {
        name: "table1",
        title: "AS-7018 time-zones run: OFFSTAT vs ONTH vs ONBR",
        run: figures::table1,
    },
];

/// Looks a figure up by registry name.
pub fn figure(name: &str) -> Option<&'static FigureEntry> {
    FIGURES.iter().find(|f| f.name == name)
}

/// The topology catalog: example canonical spec plus description, in
/// display order. Parse any entry's spec shape with
/// [`TopologySpec`](crate::spec::TopologySpec).
pub const TOPOLOGIES: &[(&str, &str)] = &[
    (
        "er:<n>",
        "Erdos-Renyi, 1% connection probability (paper default)",
    ),
    (
        "waxman:<n>",
        "connected Waxman graph (alpha=0.4, beta=0.15)",
    ),
    ("grid:<rows>x<cols>", "4-neighbor grid"),
    ("geom:<n>", "connected random geometric graph (radius 0.2)"),
    (
        "line:<n>",
        "line with random 1-10 ms latencies (OPT experiments)",
    ),
    ("unit-line:<n>", "unit-latency line (fully deterministic)"),
    ("ring:<n>", "ring with random latencies"),
    ("star:<n>", "star with random latencies"),
    ("tree:<n>", "uniform random tree"),
    (
        "as7018",
        "synthetic AT&T AS-7018-like PoP topology (deterministic)",
    ),
    (
        "rocketfuel:<path>",
        "Rocketfuel-style weighted ISP map file",
    ),
];

/// The workload catalog: canonical spec shape plus description.
pub const WORKLOADS: &[(&str, &str)] = &[
    (
        "commuter-dynamic",
        "morning fan-out / evening fan-in, volume varies",
    ),
    (
        "commuter-static",
        "commuter rhythm with fixed total volume 2^(T/2)",
    ),
    (
        "time-zones:p=<pct>,req=<n>",
        "p% of requests from the period's hot node",
    ),
    (
        "proximity:req=<n>,pool=<pct>",
        "stationary demand near the network center",
    ),
    ("uniform:req=<n>", "uniform background noise"),
    (
        "onoff:users=<n>,dwell=<r>,correlated=<bool>",
        "users dwell then jump",
    ),
    (
        "replay:<path.jsonl>",
        "recorded demand trace (see flexserve trace record)",
    ),
];

/// One-line description per strategy, aligned with
/// [`ALL_STRATEGIES`].
pub const STRATEGY_DESCRIPTIONS: &[&str] = &[
    "threshold algorithm with small/large epochs (paper SIII)",
    "sequential best response, fixed threshold 2c",
    "sequential best response, dynamic threshold 2c/l",
    "configuration-counter algorithm (small substrates only)",
    "sampled ONCONF: one configuration per server count",
    "lookahead best response (offline)",
    "lookahead threshold (offline)",
    "optimal static provisioning (offline)",
    "optimal offline dynamic program (small substrates only)",
    "never reconfigures (baseline)",
];

/// Stable plain-text rendering of the whole registry, used by
/// `flexserve list` and pinned by a golden test.
pub fn list_text() -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    let _ = writeln!(out, "figures (flexserve run <name>):");
    for f in FIGURES {
        let _ = writeln!(out, "  {:<8} {}", f.name, f.title);
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "topologies (topo=<spec>):");
    for (spec, desc) in TOPOLOGIES {
        let _ = writeln!(out, "  {spec:<24} {desc}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "workloads (wl=<spec>):");
    for (spec, desc) in WORKLOADS {
        let _ = writeln!(out, "  {spec:<44} {desc}");
    }
    let _ = writeln!(out);
    let _ = writeln!(out, "strategies (strat=<name>):");
    for (s, desc) in ALL_STRATEGIES.iter().zip(STRATEGY_DESCRIPTIONS) {
        let _ = writeln!(out, "  {:<12} {desc}", s.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_all_figures_uniquely() {
        assert_eq!(FIGURES.len(), 20, "19 figures + table1");
        let mut names: Vec<&str> = FIGURES.iter().map(|f| f.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 20, "names must be unique");
        assert!(figure("fig03").is_some());
        assert!(figure("table1").is_some());
        assert!(figure("fig99").is_none());
    }

    #[test]
    fn every_strategy_has_a_description() {
        assert_eq!(ALL_STRATEGIES.len(), STRATEGY_DESCRIPTIONS.len());
    }

    #[test]
    fn catalog_specs_parse() {
        use crate::spec::{TopologySpec, WorkloadSpec};
        // every placeholder-free catalog entry must parse as-is
        assert!("as7018".parse::<TopologySpec>().is_ok());
        for (spec, _) in WORKLOADS {
            let bare = spec.split(':').next().unwrap();
            if bare == "replay" {
                // replay has no bare default — the path is mandatory
                assert!("replay".parse::<WorkloadSpec>().is_err());
                assert!("replay:demand.jsonl".parse::<WorkloadSpec>().is_ok());
                continue;
            }
            assert!(bare.parse::<WorkloadSpec>().is_ok(), "{bare}");
        }
    }

    #[test]
    fn list_text_mentions_every_axis() {
        let text = list_text();
        for f in FIGURES {
            assert!(text.contains(f.name));
        }
        assert!(text.contains("er:<n>"));
        assert!(text.contains("commuter-dynamic"));
        assert!(text.contains("offstat"));
    }
}
