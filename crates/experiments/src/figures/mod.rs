//! One function per paper figure/table, dispatched by name through
//! [`crate::registry`] (`flexserve run <name>`; `flexserve run all` runs
//! everything). Each function prints the series the paper plots, saves a
//! CSV under `results/`, and returns the table for programmatic inspection
//! (the golden tests pin the CSV bytes on quick profiles).

mod exemplary;
mod lambda_sweeps;
mod ratio;
mod rocketfuel;
mod size_sweeps;

pub use exemplary::{fig01, fig02, fig12};
pub use lambda_sweeps::{fig07, fig08, fig09, fig10};
pub use ratio::{fig11, fig13, fig14, fig15, fig16, fig17, fig18, fig19};
pub use rocketfuel::table1;
pub use size_sweeps::{fig03, fig04, fig05, fig06};

/// Experiment sizing profile. Sweeps shrink on smaller profiles so the
/// whole suite stays tractable on one core; the *parameters within a run*
/// (β, c, Ra, Ri, thresholds) never change.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Profile {
    /// Tiny instances for tests (seconds).
    Quick,
    /// Default for the binaries: the paper's shapes at reduced sweep sizes
    /// (a few minutes on one core).
    Standard,
    /// The paper's exact sweep sizes (set `FLEXSERVE_FULL=1`; slow).
    Full,
}

/// Reads the profile from the environment: `FLEXSERVE_QUICK=1` →
/// [`Profile::Quick`], `FLEXSERVE_FULL=1` → [`Profile::Full`], otherwise
/// [`Profile::Standard`].
pub fn profile_from_env() -> Profile {
    if std::env::var("FLEXSERVE_QUICK").is_ok_and(|v| v == "1") {
        Profile::Quick
    } else if std::env::var("FLEXSERVE_FULL").is_ok_and(|v| v == "1") {
        Profile::Full
    } else {
        Profile::Standard
    }
}

impl Profile {
    /// Network sizes for the cost-vs-n sweeps (Figs 3–6).
    pub fn network_sizes(self) -> Vec<usize> {
        match self {
            Profile::Quick => vec![30, 60],
            Profile::Standard => vec![50, 100, 200, 350, 500],
            Profile::Full => vec![50, 100, 200, 400, 700, 1000],
        }
    }

    /// Seeds (runs to average over).
    pub fn seeds(self, paper_runs: usize) -> Vec<u64> {
        let n = match self {
            Profile::Quick => 2,
            Profile::Standard => 3.min(paper_runs),
            Profile::Full => paper_runs,
        };
        (0..n as u64).map(|s| 1000 + s).collect()
    }

    /// Scales a round count down on smaller profiles.
    pub fn rounds(self, paper_rounds: u64) -> u64 {
        match self {
            Profile::Quick => (paper_rounds / 10).max(20),
            Profile::Standard => paper_rounds.min(500),
            Profile::Full => paper_rounds,
        }
    }

    /// λ values for the λ sweeps (Figs 8–10, 13–17).
    pub fn lambdas(self) -> Vec<u64> {
        match self {
            Profile::Quick => vec![2, 10],
            Profile::Standard => vec![1, 2, 5, 10, 20, 40],
            Profile::Full => vec![1, 2, 5, 10, 20, 40, 80],
        }
    }

    /// T values for the T sweeps (Figs 7, 18, 19). Starting at `T = 2`
    /// exposes the rising region of the ratio-vs-T curves before the tiny
    /// OPT substrate saturates (all five nodes covered by `2^{T/2}`
    /// access points from `T = 6` on).
    pub fn t_values(self) -> Vec<u32> {
        match self {
            Profile::Quick => vec![2, 6],
            Profile::Standard => vec![2, 4, 6, 8, 10],
            Profile::Full => vec![2, 4, 6, 8, 10, 12, 14],
        }
    }

    /// Exemplary-run network size (Figs 1–2 use 1000/500 in the paper).
    pub fn exemplary_n(self, paper_n: usize) -> usize {
        match self {
            Profile::Quick => 60,
            Profile::Standard => paper_n.min(300),
            Profile::Full => paper_n,
        }
    }

    /// Exemplary-run length (paper: 1000 rounds).
    pub fn exemplary_rounds(self) -> u64 {
        match self {
            Profile::Quick => 60,
            Profile::Standard => 400,
            Profile::Full => 1000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_are_ordered_by_size() {
        assert!(Profile::Quick.network_sizes().len() <= Profile::Standard.network_sizes().len());
        assert!(Profile::Standard.network_sizes().last() <= Profile::Full.network_sizes().last());
        assert!(Profile::Quick.rounds(1000) < Profile::Full.rounds(1000));
        assert_eq!(Profile::Full.seeds(10).len(), 10);
        assert_eq!(Profile::Standard.seeds(10).len(), 3);
    }
}
