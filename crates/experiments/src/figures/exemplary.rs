//! Figures 1, 2 and 12: exemplary single executions.
//!
//! * Fig 1 — ONTH in the commuter scenario with dynamic load
//!   (1000 rounds, T=14, n=1000, λ=20), linear vs quadratic load: the
//!   number of active servers over time tracks the demand fan-out, and the
//!   quadratic model allocates more servers.
//! * Fig 2 — the same with static load (T=12, n=500): the server count
//!   converges and is largely independent of how many access points the
//!   fixed volume originates from.
//! * Fig 12 — how OFFSTAT picks `k_opt`: total cost as a function of the
//!   number of static servers.

use flexserve_sim::{CostParams, LoadModel};
use flexserve_workload::record;

use crate::output::Table;
use crate::runner::{run_algorithm, Algorithm};
use crate::setup::{make_scenario, ExperimentEnv, ScenarioKind};

use super::Profile;

fn exemplary(
    name: &str,
    title: &str,
    kind: ScenarioKind,
    t_periods: u32,
    paper_n: usize,
    profile: Profile,
) -> Table {
    let n = profile.exemplary_n(paper_n);
    let rounds = profile.exemplary_rounds();
    let lambda = 20u64;
    let seed = 42u64;

    let env = ExperimentEnv::erdos_renyi(n, seed);
    let mut series: Vec<(String, Vec<usize>, Vec<usize>)> = Vec::new();
    for load in [LoadModel::Linear, LoadModel::Quadratic] {
        let ctx = env.context(CostParams::default(), load);
        let mut scenario = make_scenario(kind, &env, t_periods, lambda, 50, seed);
        let trace = record(scenario.as_mut(), rounds);
        let rec = run_algorithm(&ctx, &trace, Algorithm::OnTh);
        series.push((load.to_string(), rec.active_series(), rec.request_series()));
    }

    let mut table = Table::new(
        format!("{title} (n={n}, T={t_periods}, lambda={lambda}, {rounds} rounds)"),
        &["t", "requests", "servers(linear)", "servers(quadratic)"],
    );
    let stride = (rounds / 50).max(1) as usize;
    for t in (0..rounds as usize).step_by(stride) {
        table.row(vec![
            t.to_string(),
            series[0].2[t].to_string(),
            series[0].1[t].to_string(),
            series[1].1[t].to_string(),
        ]);
    }
    table.print();
    table.save_csv(name).expect("write csv");
    table
}

/// Figure 1: exemplary ONTH execution, commuter dynamic load.
pub fn fig01(profile: Profile) -> Table {
    exemplary(
        "fig01",
        "Fig 1: ONTH exemplary run, commuter dynamic load",
        ScenarioKind::CommuterDynamic,
        14,
        1000,
        profile,
    )
}

/// Figure 2: exemplary ONTH execution, commuter static load.
pub fn fig02(profile: Profile) -> Table {
    exemplary(
        "fig02",
        "Fig 2: ONTH exemplary run, commuter static load",
        ScenarioKind::CommuterStatic,
        12,
        500,
        profile,
    )
}

/// Figure 12: OFFSTAT's server-count selection — cost vs number of static
/// servers on a representative commuter trace.
pub fn fig12(profile: Profile) -> Table {
    let n = profile.exemplary_n(200);
    let rounds = profile.rounds(500);
    let lambda = 10u64;
    let seed = 7u64;
    let t = crate::setup::paper_t_for(n);

    let env = ExperimentEnv::erdos_renyi(n, seed);
    let params = CostParams::default().with_max_servers(10);
    let ctx = env.context(params, LoadModel::Linear);
    let mut scenario = make_scenario(ScenarioKind::CommuterDynamic, &env, t, lambda, 50, seed);
    let trace = record(scenario.as_mut(), rounds);
    let res = flexserve_core::offstat(&ctx, &trace);

    let mut table = Table::new(
        format!(
            "Fig 12: OFFSTAT cost vs server count (commuter dynamic, n={n}, {rounds} rounds; k_opt={})",
            res.k_opt
        ),
        &["servers", "total cost"],
    );
    for (i, &cost) in res.cost_curve.iter().enumerate() {
        table.row_f64(i + 1, &[cost]);
    }
    table.print();
    table.save_csv("fig12").expect("write csv");
    table
}
