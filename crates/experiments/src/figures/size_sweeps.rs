//! Figures 3–6: cost as a function of network size.
//!
//! * Fig 3 — commuter scenario, dynamic load (500 rounds, λ=10, averaged
//!   over 5 runs; `T` grows with network size).
//! * Fig 4 — the same with static load.
//! * Fig 5 — the same for the time-zones scenario.
//! * Fig 6 — cost *breakdown* of ONBR in all three scenarios for the
//!   flipped regime β=400 > c=40 (where the three algorithms coincide and
//!   the paper considers ONBR with fixed threshold 2c).

use flexserve_sim::{CostParams, LoadModel};

use crate::output::Table;
use crate::runner::{average, average_multi, run_algorithm, run_algorithms, Algorithm};
use crate::setup::{paper_t_for, record_shared, ExperimentEnv, ScenarioKind};

use super::Profile;

const ALGS: [Algorithm; 3] = [Algorithm::OnBrFixed, Algorithm::OnBrDyn, Algorithm::OnTh];

fn cost_vs_n(
    name: &str,
    title: &str,
    kind: ScenarioKind,
    profile: Profile,
    params: CostParams,
) -> Table {
    let rounds = profile.rounds(500);
    let lambda = 10u64;
    let seeds = profile.seeds(5);

    let mut table = Table::new(
        format!(
            "{title} ({rounds} rounds, lambda={lambda}, {} seeds)",
            seeds.len()
        ),
        &["n", "ONBR-fixed", "ONBR-dyn", "ONTH"],
    );

    for n in profile.network_sizes() {
        let t = paper_t_for(n);
        // Per seed the demand is recorded once (through the trace cache)
        // and all three algorithms evaluate against the shared trace —
        // values are bit-identical to per-algorithm recordings (the
        // golden CSV pins this).
        let summaries = average_multi(&seeds, ALGS.len(), |seed| {
            let env = ExperimentEnv::erdos_renyi(n, seed);
            let ctx = env.context(params, LoadModel::Linear);
            let trace = record_shared(kind, &env, t, lambda, 50, seed ^ 0xABCD, rounds);
            run_algorithms(&ctx, &trace, &ALGS)
        });
        let cells: Vec<f64> = summaries.iter().map(|s| s.mean_total()).collect();
        table.row_f64(n, &cells);
    }
    table.print();
    table.save_csv(name).expect("write csv");
    table
}

/// Figure 3: commuter / dynamic load, cost vs n.
pub fn fig03(profile: Profile) -> Table {
    cost_vs_n(
        "fig03",
        "Fig 3: cost vs network size, commuter dynamic load",
        ScenarioKind::CommuterDynamic,
        profile,
        CostParams::default(),
    )
}

/// Figure 4: commuter / static load, cost vs n.
pub fn fig04(profile: Profile) -> Table {
    cost_vs_n(
        "fig04",
        "Fig 4: cost vs network size, commuter static load",
        ScenarioKind::CommuterStatic,
        profile,
        CostParams::default(),
    )
}

/// Figure 5: time-zones scenario, cost vs n.
pub fn fig05(profile: Profile) -> Table {
    cost_vs_n(
        "fig05",
        "Fig 5: cost vs network size, time-zones scenario",
        ScenarioKind::TimeZones,
        profile,
        CostParams::default(),
    )
}

/// Figure 6: ONBR cost breakdown by scenario, flipped regime (β=400, c=40).
pub fn fig06(profile: Profile) -> Table {
    let rounds = profile.rounds(500);
    let lambda = 10u64;
    let seeds = profile.seeds(5);
    let params = CostParams::flipped();

    let mut table = Table::new(
        format!(
            "Fig 6: ONBR cost breakdown (beta=400 > c=40; {rounds} rounds, lambda={lambda}, {} seeds)",
            seeds.len()
        ),
        &[
            "n", "scenario", "access", "running", "migration", "creation", "total",
        ],
    );

    for n in profile.network_sizes() {
        let t = paper_t_for(n);
        for kind in [
            ScenarioKind::CommuterDynamic,
            ScenarioKind::CommuterStatic,
            ScenarioKind::TimeZones,
        ] {
            let summary = average(&seeds, |seed| {
                let env = ExperimentEnv::erdos_renyi(n, seed);
                let ctx = env.context(params, LoadModel::Linear);
                let trace = record_shared(kind, &env, t, lambda, 50, seed ^ 0xABCD, rounds);
                run_algorithm(&ctx, &trace, Algorithm::OnBrFixed).total()
            });
            let mean = summary.mean();
            table.row(vec![
                n.to_string(),
                kind.to_string(),
                format!("{:.2}", mean.access),
                format!("{:.2}", mean.running),
                format!("{:.2}", mean.migration),
                format!("{:.2}", mean.creation),
                format!("{:.2}", mean.total()),
            ]);
        }
    }
    table.print();
    table.save_csv("fig06").expect("write csv");
    table
}
