//! Figures 7–10: cost as a function of T and λ.
//!
//! * Fig 7 — cost vs `T` in the commuter scenario with static load
//!   (600 rounds, λ=20, n=1000, 10 runs). Cost grows with `T` because the
//!   request horizon (peak volume `2^{T/2}`) grows.
//! * Fig 8 — cost vs `λ` in the commuter scenario with dynamic load
//!   (900 rounds, T=10, n=200, 10 runs): roughly λ-independent, with ONTH
//!   about a factor two better.
//! * Fig 9 — the same with static load.
//! * Fig 10 — the same for the time-zones scenario (p=50%): cost slightly
//!   decreases with λ (fewer migrations needed).

use flexserve_sim::{CostParams, LoadModel};

use crate::output::Table;
use crate::runner::{average_multi, run_algorithms, Algorithm};
use crate::setup::{paper_t_for, record_shared, ExperimentEnv, ScenarioKind};

use super::Profile;

const ALGS: [Algorithm; 3] = [Algorithm::OnBrFixed, Algorithm::OnBrDyn, Algorithm::OnTh];

/// Figure 7: cost vs T (commuter static, λ=20, n=1000 in the paper).
pub fn fig07(profile: Profile) -> Table {
    let rounds = profile.rounds(600);
    let lambda = 20u64;
    let n = profile.exemplary_n(1000);
    let seeds = profile.seeds(10);

    let mut table = Table::new(
        format!(
            "Fig 7: cost vs T, commuter static load (n={n}, {rounds} rounds, lambda={lambda}, {} seeds)",
            seeds.len()
        ),
        &["T", "ONBR-fixed", "ONBR-dyn", "ONTH"],
    );
    for t in profile.t_values() {
        // One shared trace per seed; all three algorithms read it.
        let summaries = average_multi(&seeds, ALGS.len(), |seed| {
            let env = ExperimentEnv::erdos_renyi(n, seed);
            let ctx = env.context(CostParams::default(), LoadModel::Linear);
            let trace = record_shared(
                ScenarioKind::CommuterStatic,
                &env,
                t,
                lambda,
                50,
                seed ^ 0xBEEF,
                rounds,
            );
            run_algorithms(&ctx, &trace, &ALGS)
        });
        let cells: Vec<f64> = summaries.iter().map(|s| s.mean_total()).collect();
        table.row_f64(t, &cells);
    }
    table.print();
    table.save_csv("fig07").expect("write csv");
    table
}

fn cost_vs_lambda(name: &str, title: &str, kind: ScenarioKind, profile: Profile) -> Table {
    let rounds = profile.rounds(900);
    let n = 200usize.min(profile.exemplary_n(200));
    let t = paper_t_for(n); // = 10 at n=200, as in the paper
    let seeds = profile.seeds(10);

    let mut table = Table::new(
        format!(
            "{title} (n={n}, T={t}, {rounds} rounds, {} seeds)",
            seeds.len()
        ),
        &["lambda", "ONBR-fixed", "ONBR-dyn", "ONTH"],
    );
    for lambda in profile.lambdas() {
        let summaries = average_multi(&seeds, ALGS.len(), |seed| {
            let env = ExperimentEnv::erdos_renyi(n, seed);
            let ctx = env.context(CostParams::default(), LoadModel::Linear);
            let trace = record_shared(kind, &env, t, lambda, 50, seed ^ 0xF00D, rounds);
            run_algorithms(&ctx, &trace, &ALGS)
        });
        let cells: Vec<f64> = summaries.iter().map(|s| s.mean_total()).collect();
        table.row_f64(lambda, &cells);
    }
    table.print();
    table.save_csv(name).expect("write csv");
    table
}

/// Figure 8: cost vs λ, commuter dynamic load.
pub fn fig08(profile: Profile) -> Table {
    cost_vs_lambda(
        "fig08",
        "Fig 8: cost vs lambda, commuter dynamic load",
        ScenarioKind::CommuterDynamic,
        profile,
    )
}

/// Figure 9: cost vs λ, commuter static load.
pub fn fig09(profile: Profile) -> Table {
    cost_vs_lambda(
        "fig09",
        "Fig 9: cost vs lambda, commuter static load",
        ScenarioKind::CommuterStatic,
        profile,
    )
}

/// Figure 10: cost vs λ, time-zones scenario (p = 50%).
pub fn fig10(profile: Profile) -> Table {
    cost_vs_lambda(
        "fig10",
        "Fig 10: cost vs lambda, time-zones scenario (p=50%)",
        ScenarioKind::TimeZones,
        profile,
    )
}
