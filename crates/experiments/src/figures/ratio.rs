//! Figures 11 and 13–19: comparisons against the optimal offline
//! algorithm OPT on small line substrates ("To simulate OPT, we constrain
//! ourselves to line graphs"; network size five, T=4, 200 rounds, averaged
//! over 10 runs).
//!
//! * Fig 11 — the empirical competitive ratio ONTH/OPT vs λ per scenario.
//! * Fig 13/14 — absolute costs of OFFSTAT and OPT vs λ (β<c / β>c).
//! * Fig 15/16/17 — the ratio OFFSTAT/OPT vs λ for both β regimes:
//!   the benefit of dynamic allocation peaks at *moderate* dynamics.
//! * Fig 18/19 — the ratio OFFSTAT/OPT vs T (λ=10): a larger request
//!   horizon increases the benefit of flexibility.

use flexserve_sim::{CostParams, LoadModel};

use flexserve_core::{competitive_ratio, initial_center, offstat, optimal_plan};

use crate::output::Table;
use crate::runner::{average, average_multi, run_algorithm, Algorithm};
use crate::setup::{record_shared, ExperimentEnv, ScenarioKind};

use super::Profile;

/// Line-substrate size for all OPT experiments (paper: five nodes).
const OPT_N: usize = 5;
/// Server budget on the line (bounded by the substrate anyway).
const OPT_K: usize = 4;
/// Time-zones request volume on the tiny substrate (paper Fig 17:
/// "three requests per round").
const OPT_TZ_REQUESTS: usize = 3;

fn opt_params(flipped: bool) -> CostParams {
    let base = if flipped {
        CostParams::flipped()
    } else {
        CostParams::default()
    };
    base.with_max_servers(OPT_K)
}

/// Mean costs of (OFFSTAT, OPT) over seeds for one scenario/λ/T cell.
/// Both offline algorithms read one shared trace per seed (previously
/// the demand was regenerated per algorithm).
fn offstat_and_opt(
    kind: ScenarioKind,
    t_periods: u32,
    lambda: u64,
    rounds: u64,
    seeds: &[u64],
    flipped: bool,
) -> (f64, f64) {
    let params = opt_params(flipped);
    let summaries = average_multi(seeds, 2, |seed| {
        let env = ExperimentEnv::random_line(OPT_N, seed);
        let ctx = env.context(params, LoadModel::Linear);
        let trace = record_shared(kind, &env, t_periods, lambda, OPT_TZ_REQUESTS, seed, rounds);
        let initial = initial_center(&ctx);
        vec![
            flexserve_sim::CostBreakdown::from_access(offstat(&ctx, &trace).best_cost),
            flexserve_sim::CostBreakdown::from_access(optimal_plan(&ctx, &trace, &initial).cost),
        ]
    });
    (summaries[0].mean_total(), summaries[1].mean_total())
}

/// Figure 11: competitive ratio ONTH/OPT vs λ, all three scenarios.
pub fn fig11(profile: Profile) -> Table {
    let rounds = profile.rounds(200);
    let seeds = profile.seeds(10);
    let t_periods = 4u32;
    let params = opt_params(false);

    let mut table = Table::new(
        format!(
            "Fig 11: ONTH/OPT competitive ratio vs lambda (n={OPT_N} line, T={t_periods}, {rounds} rounds, {} seeds)",
            seeds.len()
        ),
        &["lambda", "commuter-dynamic", "commuter-static", "time-zones"],
    );
    for lambda in profile.lambdas() {
        let mut cells = Vec::new();
        for kind in [
            ScenarioKind::CommuterDynamic,
            ScenarioKind::CommuterStatic,
            ScenarioKind::TimeZones,
        ] {
            let ratios = average(&seeds, |seed| {
                let env = ExperimentEnv::random_line(OPT_N, seed);
                let ctx = env.context(params, LoadModel::Linear);
                let trace =
                    record_shared(kind, &env, t_periods, lambda, OPT_TZ_REQUESTS, seed, rounds);
                let alg = run_algorithm(&ctx, &trace, Algorithm::OnTh).total().total();
                let initial = initial_center(&ctx);
                let opt = optimal_plan(&ctx, &trace, &initial).cost;
                flexserve_sim::CostBreakdown::from_access(competitive_ratio(alg, opt))
            });
            cells.push(ratios.mean_total());
        }
        table.row_f64(lambda, &cells);
    }
    table.print();
    table.save_csv("fig11").expect("write csv");
    table
}

fn absolute_costs_vs_lambda(name: &str, title: &str, flipped: bool, profile: Profile) -> Table {
    let rounds = profile.rounds(200);
    let seeds = profile.seeds(10);
    let t_periods = 4u32;

    let mut table = Table::new(
        format!(
            "{title} (n={OPT_N} line, T={t_periods}, {rounds} rounds, {} seeds)",
            seeds.len()
        ),
        &["lambda", "OFFSTAT", "OPT"],
    );
    for lambda in profile.lambdas() {
        let (stat, opt) = offstat_and_opt(
            ScenarioKind::CommuterDynamic,
            t_periods,
            lambda,
            rounds,
            &seeds,
            flipped,
        );
        table.row_f64(lambda, &[stat, opt]);
    }
    table.print();
    table.save_csv(name).expect("write csv");
    table
}

/// Figure 13: absolute OFFSTAT vs OPT costs, commuter dynamic, β<c.
pub fn fig13(profile: Profile) -> Table {
    absolute_costs_vs_lambda(
        "fig13",
        "Fig 13: OFFSTAT and OPT cost vs lambda, commuter dynamic (beta=40 < c=400)",
        false,
        profile,
    )
}

/// Figure 14: the same in the flipped regime β=400 > c=40.
pub fn fig14(profile: Profile) -> Table {
    absolute_costs_vs_lambda(
        "fig14",
        "Fig 14: OFFSTAT and OPT cost vs lambda, commuter dynamic (beta=400 > c=40)",
        true,
        profile,
    )
}

fn ratio_vs_lambda(name: &str, title: &str, kind: ScenarioKind, profile: Profile) -> Table {
    let rounds = profile.rounds(200);
    let seeds = profile.seeds(10);
    let t_periods = 4u32;

    let mut table = Table::new(
        format!(
            "{title} (n={OPT_N} line, T={t_periods}, {rounds} rounds, {} seeds)",
            seeds.len()
        ),
        &["lambda", "beta<c", "beta>c"],
    );
    for lambda in profile.lambdas() {
        let mut cells = Vec::new();
        for flipped in [false, true] {
            let (stat, opt) = offstat_and_opt(kind, t_periods, lambda, rounds, &seeds, flipped);
            cells.push(competitive_ratio(stat, opt));
        }
        table.row_f64(lambda, &cells);
    }
    table.print();
    table.save_csv(name).expect("write csv");
    table
}

/// Figure 15: OFFSTAT/OPT ratio vs λ, commuter dynamic load.
pub fn fig15(profile: Profile) -> Table {
    ratio_vs_lambda(
        "fig15",
        "Fig 15: OFFSTAT/OPT ratio vs lambda, commuter dynamic load",
        ScenarioKind::CommuterDynamic,
        profile,
    )
}

/// Figure 16: OFFSTAT/OPT ratio vs λ, commuter static load.
pub fn fig16(profile: Profile) -> Table {
    ratio_vs_lambda(
        "fig16",
        "Fig 16: OFFSTAT/OPT ratio vs lambda, commuter static load",
        ScenarioKind::CommuterStatic,
        profile,
    )
}

/// Figure 17: OFFSTAT/OPT ratio vs λ, time-zones scenario (3 req/round).
pub fn fig17(profile: Profile) -> Table {
    ratio_vs_lambda(
        "fig17",
        "Fig 17: OFFSTAT/OPT ratio vs lambda, time-zones (p=50%)",
        ScenarioKind::TimeZones,
        profile,
    )
}

fn ratio_vs_t(name: &str, title: &str, kind: ScenarioKind, profile: Profile) -> Table {
    let rounds = profile.rounds(200);
    let seeds = profile.seeds(10);
    let lambda = 10u64;

    let mut table = Table::new(
        format!(
            "{title} (n={OPT_N} line, lambda={lambda}, {rounds} rounds, {} seeds)",
            seeds.len()
        ),
        &["T", "beta<c", "beta>c"],
    );
    for t in profile.t_values() {
        let mut cells = Vec::new();
        for flipped in [false, true] {
            let (stat, opt) = offstat_and_opt(kind, t, lambda, rounds, &seeds, flipped);
            cells.push(competitive_ratio(stat, opt));
        }
        table.row_f64(t, &cells);
    }
    table.print();
    table.save_csv(name).expect("write csv");
    table
}

/// Figure 18: OFFSTAT/OPT ratio vs T, commuter dynamic load.
pub fn fig18(profile: Profile) -> Table {
    ratio_vs_t(
        "fig18",
        "Fig 18: OFFSTAT/OPT ratio vs T, commuter dynamic load",
        ScenarioKind::CommuterDynamic,
        profile,
    )
}

/// Figure 19: OFFSTAT/OPT ratio vs T, commuter static load.
pub fn fig19(profile: Profile) -> Table {
    ratio_vs_t(
        "fig19",
        "Fig 19: OFFSTAT/OPT ratio vs T, commuter static load",
        ScenarioKind::CommuterStatic,
        profile,
    )
}
