//! Table 1: the Rocketfuel AS-7018 experiment.
//!
//! "Finally, we briefly report on the results we obtained in the
//! Rocketfuel network AS-7018 of ATT under the time zone scenario
//! (c = 400, β = 40, Ra = 2.5, Ri = 0.5, runtime 600 rounds, λ = 20,
//! p = 50%): the total cost of OFFSTAT was 26063.81…; ONTH was a factor
//! less than two higher (cost 44176.28…) while ONBR had costs 111470.29…"
//!
//! We run on the synthetic AS-7018-like substrate (docs/DESIGN.md §5) and
//! compare the *relationships*: ONTH/OFFSTAT < 2 and ONBR several times
//! OFFSTAT.

use flexserve_sim::{CostParams, LoadModel};
use flexserve_workload::{record, TimeZonesScenario};

use flexserve_core::offstat;
use flexserve_topology::{as7018_like, As7018Config};

use crate::output::Table;
use crate::runner::{run_algorithm, Algorithm};
use crate::setup::ExperimentEnv;

use super::Profile;

/// Paper reference values for the three algorithms.
pub const PAPER_OFFSTAT: f64 = 26063.8129053;
/// Paper reference: ONTH total cost.
pub const PAPER_ONTH: f64 = 44176.288923;
/// Paper reference: ONBR total cost.
pub const PAPER_ONBR: f64 = 111470.296256;

/// Table 1: OFFSTAT vs ONTH vs ONBR on the AS-7018-like substrate.
pub fn table1(profile: Profile) -> Table {
    let rounds = match profile {
        Profile::Quick => 60,
        _ => 600,
    };
    let lambda = 20u64;
    let t_periods = 12u32;
    let seed = 20110331u64; // fixed: the paper reports a single run

    let (graph, _backbone) = as7018_like(&As7018Config::default()).expect("static topology");
    let env = ExperimentEnv::from_graph(graph);
    let params = CostParams::default(); // c=400, beta=40, Ra=2.5, Ri=0.5
    let ctx = env.context(params, LoadModel::Linear);

    let mut scenario = TimeZonesScenario::new(&env.graph, t_periods, lambda, 0.5, 50, seed);
    let trace = record(&mut scenario, rounds);

    let stat_cost = offstat(&ctx, &trace).best_cost;
    let onth_cost = run_algorithm(&ctx, &trace, Algorithm::OnTh).total().total();
    let onbr_cost = run_algorithm(&ctx, &trace, Algorithm::OnBrFixed)
        .total()
        .total();

    let mut table = Table::new(
        format!(
            "Table 1: AS-7018 time-zones (c=400, beta=40, Ra=2.5, Ri=0.5, {rounds} rounds, lambda={lambda}, p=50%)"
        ),
        &["algorithm", "measured cost", "x OFFSTAT", "paper cost", "paper x OFFSTAT"],
    );
    let rows: [(&str, f64, f64); 3] = [
        ("OFFSTAT", stat_cost, PAPER_OFFSTAT),
        ("ONTH", onth_cost, PAPER_ONTH),
        ("ONBR", onbr_cost, PAPER_ONBR),
    ];
    for (name, measured, paper) in rows {
        table.row(vec![
            name.to_string(),
            format!("{measured:.2}"),
            format!("{:.2}", measured / stat_cost),
            format!("{paper:.2}"),
            format!("{:.2}", paper / PAPER_OFFSTAT),
        ]);
    }
    table.print();
    table.save_csv("table1").expect("write csv");
    table
}
