//! Strategy dispatch and seed-parallel experiment execution.

use rayon::prelude::*;

use flexserve_graph::NodeId;
use flexserve_sim::{run_online, CostBreakdown, RunRecord, SimContext};
use flexserve_workload::Trace;

use flexserve_core::{initial_center, OffBr, OffTh, OnBr, OnTh, StaticStrategy};

/// The algorithms the figure pipelines compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// ONTH (`y = 2`).
    OnTh,
    /// ONBR with fixed threshold `2c`.
    OnBrFixed,
    /// ONBR with dynamic threshold `2c/ℓ`.
    OnBrDyn,
    /// OFFBR (lookahead best response, fixed threshold).
    OffBr,
    /// OFFTH (lookahead threshold algorithm).
    OffTh,
    /// Static baseline: never reconfigures.
    Static,
}

impl Algorithm {
    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::OnTh => "ONTH",
            Algorithm::OnBrFixed => "ONBR-fixed",
            Algorithm::OnBrDyn => "ONBR-dyn",
            Algorithm::OffBr => "OFFBR",
            Algorithm::OffTh => "OFFTH",
            Algorithm::Static => "STATIC",
        }
    }
}

/// Runs `alg` over `trace`, starting from one server at the network center
/// (the paper's canonical start), and returns the full run record.
///
/// Traces are `Arc`-shared, so the offline algorithms' `trace.clone()`
/// costs a reference count — handing the *same* trace to every algorithm
/// of a figure cell is the intended calling convention (see
/// [`run_algorithms`]).
pub fn run_algorithm(ctx: &SimContext<'_>, trace: &Trace, alg: Algorithm) -> RunRecord {
    let initial: Vec<NodeId> = initial_center(ctx);
    match alg {
        Algorithm::OnTh => run_online(ctx, trace, &mut OnTh::new(), initial),
        Algorithm::OnBrFixed => run_online(ctx, trace, &mut OnBr::fixed(ctx), initial),
        Algorithm::OnBrDyn => run_online(ctx, trace, &mut OnBr::dynamic(ctx), initial),
        Algorithm::OffBr => run_online(ctx, trace, &mut OffBr::fixed(ctx, trace.clone()), initial),
        Algorithm::OffTh => run_online(ctx, trace, &mut OffTh::new(trace.clone()), initial),
        Algorithm::Static => run_online(ctx, trace, &mut StaticStrategy::new(), initial),
    }
}

/// Evaluates every algorithm of a figure cell against **one shared
/// trace**, returning the total cost breakdowns in `algs` order.
///
/// This is the grouped form of [`run_algorithm`]: the demand is
/// materialized once (by the caller, typically through the
/// [`TraceCache`](crate::traces::TraceCache)) and each strategy reads the
/// same per-round sorted count vectors. Sharing cannot change results —
/// each run only *reads* the trace — so the outputs are bit-identical to
/// independent per-strategy recordings of the same seed (pinned by
/// `tests/trace_equivalence.rs`).
pub fn run_algorithms(
    ctx: &SimContext<'_>,
    trace: &Trace,
    algs: &[Algorithm],
) -> Vec<CostBreakdown> {
    algs.iter()
        .map(|&alg| run_algorithm(ctx, trace, alg).total())
        .collect()
}

/// Per-seed results of one experimental cell.
#[derive(Clone, Debug, Default)]
pub struct SeedSummary {
    /// One total-cost breakdown per seed.
    pub per_seed: Vec<CostBreakdown>,
}

impl SeedSummary {
    /// Mean breakdown over seeds.
    pub fn mean(&self) -> CostBreakdown {
        let n = self.per_seed.len().max(1) as f64;
        let sum: CostBreakdown = self.per_seed.iter().copied().sum();
        CostBreakdown {
            access: sum.access / n,
            running: sum.running / n,
            migration: sum.migration / n,
            creation: sum.creation / n,
        }
    }

    /// Mean total cost over seeds.
    pub fn mean_total(&self) -> f64 {
        self.mean().total()
    }

    /// Sample standard deviation of the total cost.
    pub fn std_total(&self) -> f64 {
        let n = self.per_seed.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_total();
        let var: f64 = self
            .per_seed
            .iter()
            .map(|c| (c.total() - mean).powi(2))
            .sum::<f64>()
            / (n as f64 - 1.0);
        var.sqrt()
    }
}

/// Runs `f(seed)` for every seed in parallel (rayon — each seed is an
/// independent game over its own `SimContext` borrow and trace) and
/// collects the breakdowns in seed order.
///
/// Determinism: `f` must derive **all** randomness from its seed argument
/// (every scenario and strategy in this workspace does), so the collected
/// summary is bit-identical to [`average_serial`] regardless of thread
/// count or scheduling — rayon only changes *when* each seed runs, never
/// what it computes. The figure pipelines rely on this to produce
/// identical CSVs on any machine.
pub fn average<F>(seeds: &[u64], f: F) -> SeedSummary
where
    F: Fn(u64) -> CostBreakdown + Sync,
{
    SeedSummary {
        per_seed: seeds.par_iter().map(|&seed| f(seed)).collect(),
    }
}

/// Serial reference implementation of [`average`], used by the perf
/// harness for before/after comparison and by tests asserting that the
/// parallel path is bit-identical.
pub fn average_serial<F>(seeds: &[u64], f: F) -> SeedSummary
where
    F: Fn(u64) -> CostBreakdown,
{
    SeedSummary {
        per_seed: seeds.iter().map(|&seed| f(seed)).collect(),
    }
}

/// The grouped form of [`average`]: `f(seed)` evaluates one seed's whole
/// **strategy group** (typically via [`run_algorithms`] over a shared
/// trace) and returns one breakdown per strategy; the per-seed rows are
/// transposed into one [`SeedSummary`] per strategy.
///
/// Every `f(seed)` must return the same number of breakdowns. The same
/// determinism contract as [`average`] applies, so the summaries are
/// bit-identical to running each strategy through its own `average` —
/// the figure pipelines rely on this to keep their CSVs byte-stable
/// while recording each seed's demand only once.
pub fn average_multi<F>(seeds: &[u64], strategies: usize, f: F) -> Vec<SeedSummary>
where
    F: Fn(u64) -> Vec<CostBreakdown> + Sync,
{
    let rows: Vec<Vec<CostBreakdown>> = seeds.par_iter().map(|&seed| f(seed)).collect();
    let mut out = vec![SeedSummary::default(); strategies];
    for row in rows {
        assert_eq!(
            row.len(),
            strategies,
            "average_multi: every seed must evaluate the same strategy group"
        );
        for (summary, cost) in out.iter_mut().zip(row) {
            summary.per_seed.push(cost);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::ExperimentEnv;
    use flexserve_sim::{CostParams, LoadModel};
    use flexserve_workload::{record, UniformScenario};

    #[test]
    fn labels() {
        assert_eq!(Algorithm::OnTh.label(), "ONTH");
        assert_eq!(Algorithm::OnBrDyn.label(), "ONBR-dyn");
    }

    #[test]
    fn all_algorithms_run() {
        let env = ExperimentEnv::line(8);
        let ctx = env.context(CostParams::default().with_max_servers(4), LoadModel::Linear);
        let mut s = UniformScenario::new(&env.graph, 3, 1);
        let trace = record(&mut s, 25);
        for alg in [
            Algorithm::OnTh,
            Algorithm::OnBrFixed,
            Algorithm::OnBrDyn,
            Algorithm::OffBr,
            Algorithm::OffTh,
            Algorithm::Static,
        ] {
            let rec = run_algorithm(&ctx, &trace, alg);
            assert_eq!(rec.len(), 25, "{:?}", alg);
            assert!(rec.total().total().is_finite(), "{:?}", alg);
        }
    }

    #[test]
    fn average_is_parallel_and_ordered() {
        let seeds = [1u64, 2, 3, 4];
        let s = average(&seeds, |seed| CostBreakdown::from_access(seed as f64));
        assert_eq!(s.per_seed.len(), 4);
        assert_eq!(s.per_seed[2].access, 3.0);
        assert_eq!(s.mean_total(), 2.5);
        assert!(s.std_total() > 0.0);
    }

    #[test]
    fn parallel_average_bit_identical_to_serial() {
        // A real simulation cell: same seeds through the parallel and the
        // serial runner must agree to the last bit, not just approximately.
        let env = ExperimentEnv::erdos_renyi(60, 4);
        let ctx = env.context(CostParams::default().with_max_servers(3), LoadModel::Linear);
        let seeds: Vec<u64> = (0..6).collect();
        let cell = |seed: u64| {
            let mut s = UniformScenario::new(&env.graph, 4, seed);
            let trace = record(&mut s, 40);
            run_algorithm(&ctx, &trace, Algorithm::OnTh).total()
        };
        let par = average(&seeds, cell);
        let ser = average_serial(&seeds, cell);
        for (p, s) in par.per_seed.iter().zip(&ser.per_seed) {
            assert_eq!(p.access.to_bits(), s.access.to_bits());
            assert_eq!(p.running.to_bits(), s.running.to_bits());
            assert_eq!(p.migration.to_bits(), s.migration.to_bits());
            assert_eq!(p.creation.to_bits(), s.creation.to_bits());
        }
    }

    #[test]
    fn grouped_evaluation_matches_independent_runs() {
        let env = ExperimentEnv::erdos_renyi(50, 9);
        let ctx = env.context(CostParams::default().with_max_servers(3), LoadModel::Linear);
        let seeds: Vec<u64> = (0..4).collect();
        let algs = [Algorithm::OnTh, Algorithm::OnBrFixed, Algorithm::Static];

        // Grouped: one trace per seed, every algorithm reads it.
        let grouped = average_multi(&seeds, algs.len(), |seed| {
            let mut s = UniformScenario::new(&env.graph, 4, seed);
            let trace = record(&mut s, 30);
            run_algorithms(&ctx, &trace, &algs)
        });

        // Independent: each algorithm records its own trace.
        for (i, &alg) in algs.iter().enumerate() {
            let solo = average(&seeds, |seed| {
                let mut s = UniformScenario::new(&env.graph, 4, seed);
                let trace = record(&mut s, 30);
                run_algorithm(&ctx, &trace, alg).total()
            });
            assert_eq!(grouped[i].per_seed.len(), seeds.len());
            for (g, s) in grouped[i].per_seed.iter().zip(&solo.per_seed) {
                assert_eq!(g.access.to_bits(), s.access.to_bits(), "{alg:?}");
                assert_eq!(g.running.to_bits(), s.running.to_bits(), "{alg:?}");
                assert_eq!(g.migration.to_bits(), s.migration.to_bits(), "{alg:?}");
                assert_eq!(g.creation.to_bits(), s.creation.to_bits(), "{alg:?}");
            }
        }
    }

    #[test]
    fn summary_stats_degenerate() {
        let s = SeedSummary {
            per_seed: vec![CostBreakdown::from_access(7.0)],
        };
        assert_eq!(s.mean_total(), 7.0);
        assert_eq!(s.std_total(), 0.0);
        let empty = SeedSummary::default();
        assert_eq!(empty.mean_total(), 0.0);
    }
}
