//! Strategy dispatch and seed-parallel experiment execution.

use rayon::prelude::*;

use flexserve_graph::NodeId;
use flexserve_sim::{run_online, CostBreakdown, RunRecord, SimContext};
use flexserve_workload::Trace;

use flexserve_core::{initial_center, OffBr, OffTh, OnBr, OnTh, StaticStrategy};

/// The algorithms the figure pipelines compare.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Algorithm {
    /// ONTH (`y = 2`).
    OnTh,
    /// ONBR with fixed threshold `2c`.
    OnBrFixed,
    /// ONBR with dynamic threshold `2c/ℓ`.
    OnBrDyn,
    /// OFFBR (lookahead best response, fixed threshold).
    OffBr,
    /// OFFTH (lookahead threshold algorithm).
    OffTh,
    /// Static baseline: never reconfigures.
    Static,
}

impl Algorithm {
    /// Display name matching the paper.
    pub fn label(self) -> &'static str {
        match self {
            Algorithm::OnTh => "ONTH",
            Algorithm::OnBrFixed => "ONBR-fixed",
            Algorithm::OnBrDyn => "ONBR-dyn",
            Algorithm::OffBr => "OFFBR",
            Algorithm::OffTh => "OFFTH",
            Algorithm::Static => "STATIC",
        }
    }
}

/// Runs `alg` over `trace`, starting from one server at the network center
/// (the paper's canonical start), and returns the full run record.
pub fn run_algorithm(ctx: &SimContext<'_>, trace: &Trace, alg: Algorithm) -> RunRecord {
    let initial: Vec<NodeId> = initial_center(ctx);
    match alg {
        Algorithm::OnTh => run_online(ctx, trace, &mut OnTh::new(), initial),
        Algorithm::OnBrFixed => run_online(ctx, trace, &mut OnBr::fixed(ctx), initial),
        Algorithm::OnBrDyn => run_online(ctx, trace, &mut OnBr::dynamic(ctx), initial),
        Algorithm::OffBr => run_online(ctx, trace, &mut OffBr::fixed(ctx, trace.clone()), initial),
        Algorithm::OffTh => run_online(ctx, trace, &mut OffTh::new(trace.clone()), initial),
        Algorithm::Static => run_online(ctx, trace, &mut StaticStrategy::new(), initial),
    }
}

/// Per-seed results of one experimental cell.
#[derive(Clone, Debug, Default)]
pub struct SeedSummary {
    /// One total-cost breakdown per seed.
    pub per_seed: Vec<CostBreakdown>,
}

impl SeedSummary {
    /// Mean breakdown over seeds.
    pub fn mean(&self) -> CostBreakdown {
        let n = self.per_seed.len().max(1) as f64;
        let sum: CostBreakdown = self.per_seed.iter().copied().sum();
        CostBreakdown {
            access: sum.access / n,
            running: sum.running / n,
            migration: sum.migration / n,
            creation: sum.creation / n,
        }
    }

    /// Mean total cost over seeds.
    pub fn mean_total(&self) -> f64 {
        self.mean().total()
    }

    /// Sample standard deviation of the total cost.
    pub fn std_total(&self) -> f64 {
        let n = self.per_seed.len();
        if n < 2 {
            return 0.0;
        }
        let mean = self.mean_total();
        let var: f64 = self
            .per_seed
            .iter()
            .map(|c| (c.total() - mean).powi(2))
            .sum::<f64>()
            / (n as f64 - 1.0);
        var.sqrt()
    }
}

/// Runs `f(seed)` for every seed in parallel (rayon — each seed is an
/// independent game over its own `SimContext` borrow and trace) and
/// collects the breakdowns in seed order.
///
/// Determinism: `f` must derive **all** randomness from its seed argument
/// (every scenario and strategy in this workspace does), so the collected
/// summary is bit-identical to [`average_serial`] regardless of thread
/// count or scheduling — rayon only changes *when* each seed runs, never
/// what it computes. The figure pipelines rely on this to produce
/// identical CSVs on any machine.
pub fn average<F>(seeds: &[u64], f: F) -> SeedSummary
where
    F: Fn(u64) -> CostBreakdown + Sync,
{
    SeedSummary {
        per_seed: seeds.par_iter().map(|&seed| f(seed)).collect(),
    }
}

/// Serial reference implementation of [`average`], used by the perf
/// harness for before/after comparison and by tests asserting that the
/// parallel path is bit-identical.
pub fn average_serial<F>(seeds: &[u64], f: F) -> SeedSummary
where
    F: Fn(u64) -> CostBreakdown,
{
    SeedSummary {
        per_seed: seeds.iter().map(|&seed| f(seed)).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setup::ExperimentEnv;
    use flexserve_sim::{CostParams, LoadModel};
    use flexserve_workload::{record, UniformScenario};

    #[test]
    fn labels() {
        assert_eq!(Algorithm::OnTh.label(), "ONTH");
        assert_eq!(Algorithm::OnBrDyn.label(), "ONBR-dyn");
    }

    #[test]
    fn all_algorithms_run() {
        let env = ExperimentEnv::line(8);
        let ctx = env.context(CostParams::default().with_max_servers(4), LoadModel::Linear);
        let mut s = UniformScenario::new(&env.graph, 3, 1);
        let trace = record(&mut s, 25);
        for alg in [
            Algorithm::OnTh,
            Algorithm::OnBrFixed,
            Algorithm::OnBrDyn,
            Algorithm::OffBr,
            Algorithm::OffTh,
            Algorithm::Static,
        ] {
            let rec = run_algorithm(&ctx, &trace, alg);
            assert_eq!(rec.len(), 25, "{:?}", alg);
            assert!(rec.total().total().is_finite(), "{:?}", alg);
        }
    }

    #[test]
    fn average_is_parallel_and_ordered() {
        let seeds = [1u64, 2, 3, 4];
        let s = average(&seeds, |seed| CostBreakdown::from_access(seed as f64));
        assert_eq!(s.per_seed.len(), 4);
        assert_eq!(s.per_seed[2].access, 3.0);
        assert_eq!(s.mean_total(), 2.5);
        assert!(s.std_total() > 0.0);
    }

    #[test]
    fn parallel_average_bit_identical_to_serial() {
        // A real simulation cell: same seeds through the parallel and the
        // serial runner must agree to the last bit, not just approximately.
        let env = ExperimentEnv::erdos_renyi(60, 4);
        let ctx = env.context(CostParams::default().with_max_servers(3), LoadModel::Linear);
        let seeds: Vec<u64> = (0..6).collect();
        let cell = |seed: u64| {
            let mut s = UniformScenario::new(&env.graph, 4, seed);
            let trace = record(&mut s, 40);
            run_algorithm(&ctx, &trace, Algorithm::OnTh).total()
        };
        let par = average(&seeds, cell);
        let ser = average_serial(&seeds, cell);
        for (p, s) in par.per_seed.iter().zip(&ser.per_seed) {
            assert_eq!(p.access.to_bits(), s.access.to_bits());
            assert_eq!(p.running.to_bits(), s.running.to_bits());
            assert_eq!(p.migration.to_bits(), s.migration.to_bits());
            assert_eq!(p.creation.to_bits(), s.creation.to_bits());
        }
    }

    #[test]
    fn summary_stats_degenerate() {
        let s = SeedSummary {
            per_seed: vec![CostBreakdown::from_access(7.0)],
        };
        assert_eq!(s.mean_total(), 7.0);
        assert_eq!(s.std_total(), 0.0);
        let empty = SeedSummary::default();
        assert_eq!(empty.mean_total(), 0.0);
    }
}
