//! Result reporting: aligned stdout tables and CSV files.

use std::fmt::Write as _;
use std::fs;
use std::path::PathBuf;

/// A simple column-aligned table accumulated row by row.
#[derive(Clone, Debug)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title line and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (cells are preformatted strings).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width must match header"
        );
        self.rows.push(cells);
    }

    /// Convenience: a row of one label plus float cells at 2 decimals.
    pub fn row_f64(&mut self, label: impl std::fmt::Display, values: &[f64]) {
        let mut cells = vec![label.to_string()];
        cells.extend(values.iter().map(|v| format!("{v:.2}")));
        self.row(cells);
    }

    /// Renders the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let _ = writeln!(
            out,
            "{}",
            widths
                .iter()
                .map(|w| "-".repeat(*w))
                .collect::<Vec<_>>()
                .join("  ")
        );
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Prints to stdout (suppressed when `FLEXSERVE_SILENT=1`, which the
    /// figure benches set to keep criterion output readable).
    pub fn print(&self) {
        if std::env::var("FLEXSERVE_SILENT").is_ok_and(|v| v == "1") {
            return;
        }
        print!("{}", self.render());
    }

    /// The table as CSV (header + rows, comma-separated, title as comment).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "# {}", self.title);
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Writes the CSV under `results/<name>.csv` (creating the directory).
    pub fn save_csv(&self, name: &str) -> std::io::Result<()> {
        write_csv(name, &self.to_csv())
    }
}

/// Directory all result artifacts (CSVs, the manifest) are written to:
/// `$FLEXSERVE_RESULTS_DIR` when set, else `results/` under the current
/// working directory. The golden tests point this at a temp directory.
pub fn results_dir() -> PathBuf {
    std::env::var_os("FLEXSERVE_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from("results"))
}

/// Writes `content` to `<results dir>/<name>.csv`, creating the directory.
pub fn write_csv(name: &str, content: &str) -> std::io::Result<()> {
    let dir = results_dir();
    fs::create_dir_all(&dir)?;
    fs::write(dir.join(format!("{name}.csv")), content)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut t = Table::new("demo", &["x", "value"]);
        t.row_f64(1, &[2.5]);
        t.row_f64(100, &[2.0]);
        let s = t.render();
        assert!(s.contains("# demo"));
        assert!(s.contains("2.5"));
        let lines: Vec<&str> = s.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_shape() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("a,b"));
        assert!(csv.contains("1,2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn width_mismatch_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into()]);
    }
}
