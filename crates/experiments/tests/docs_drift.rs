//! Documentation drift guards.
//!
//! The figure/table map in `docs/FIGURES.md` and the registry behind
//! `flexserve list` describe the same catalog; this test golden-snapshots
//! the doc's cell table against `registry::FIGURES` so neither can change
//! without the other (the list output itself is pinned separately in
//! `golden_cli.rs`). `docs/SERVING.md` is likewise pinned to the serve
//! daemon's endpoint surface, and the doc tree's cross-links are checked
//! so a renamed file can't leave dangling references.

use flexserve_experiments::registry;

const FIGURES_MD: &str = include_str!("../../../docs/FIGURES.md");
const SERVING_MD: &str = include_str!("../../../docs/SERVING.md");
const ARCHITECTURE_MD: &str = include_str!("../../../docs/ARCHITECTURE.md");
const README_MD: &str = include_str!("../../../README.md");

/// Registry names appearing in the FIGURES.md table, in document order.
fn doc_table_names() -> Vec<String> {
    FIGURES_MD
        .lines()
        .filter_map(|line| {
            // table rows look like: | `fig03` | Fig. 3 | ... | `results/fig03.csv` |
            let rest = line.strip_prefix("| `")?;
            let (name, rest) = rest.split_once('`')?;
            rest.starts_with(" |").then(|| name.to_string())
        })
        .collect()
}

#[test]
fn figures_md_table_matches_the_registry_exactly() {
    let doc = doc_table_names();
    let registry: Vec<String> = registry::FIGURES
        .iter()
        .map(|f| f.name.to_string())
        .collect();
    assert_eq!(
        doc, registry,
        "docs/FIGURES.md table rows must list exactly the registry figures, in \
         registry (paper) order — update both together"
    );
}

#[test]
fn figures_md_rows_name_their_csv_artifacts() {
    for f in registry::FIGURES {
        let row = FIGURES_MD
            .lines()
            .find(|l| l.starts_with(&format!("| `{}` |", f.name)))
            .unwrap_or_else(|| panic!("docs/FIGURES.md has no row for {}", f.name));
        assert!(
            row.contains(&format!("results/{}.csv", f.name)),
            "{}'s row must name its CSV artifact: {row}",
            f.name
        );
    }
}

#[test]
fn serving_md_documents_every_endpoint() {
    for endpoint in [
        // session-scoped surface
        "POST /sessions",
        "GET /sessions",
        "POST /sessions/<name>/step",
        "GET /sessions/<name>/placement",
        "GET /sessions/<name>/metrics",
        "POST /sessions/<name>/checkpoint",
        "POST /sessions/<name>/events",
        "DELETE /sessions/<name>",
        // legacy aliases of the default session
        "POST /step",
        "GET /placement",
        "GET /metrics",
        "POST /checkpoint",
        "POST /shutdown",
    ] {
        assert!(
            SERVING_MD.contains(&format!("`{endpoint}`")),
            "docs/SERVING.md must document {endpoint}"
        );
    }
    // both checkpoint format tags are load-bearing for external tooling:
    // v2 is what the daemon writes, v1 is the promised-compatible past
    assert!(SERVING_MD.contains(flexserve_sim::CHECKPOINT_FORMAT));
    assert!(SERVING_MD.contains(flexserve_sim::CHECKPOINT_FORMAT_V1));
    // the serve keys added with the session manager (and the idle
    // reaper) stay documented
    for key in [
        "`bind=",
        "`workers=",
        "`reactor-threads=",
        "`max-sessions=",
        "`idle-evict=",
        "`request-timeout=",
    ] {
        assert!(
            SERVING_MD.contains(key),
            "docs/SERVING.md must document the {key} serve key"
        );
    }
    // the event-driven front end and the batch-step surface added with it
    for s in [
        "event-driven front end",
        "epoll",
        "event_loop.rs",
        "Batched stepping",
        "4096 rounds",
        "serve_batch.rs",
    ] {
        assert!(SERVING_MD.contains(s), "docs/SERVING.md must document {s}");
    }
    // persistent-connection semantics are part of the HTTP contract
    assert!(
        SERVING_MD.contains("keep-alive"),
        "docs/SERVING.md must document keep-alive connection semantics"
    );
    assert!(
        SERVING_MD.contains("Idle eviction"),
        "docs/SERVING.md must document the idle-evict behavior"
    );
    assert!(
        SERVING_MD.contains("\"evicted\": true"),
        "docs/SERVING.md must document the GET /sessions tombstone rows"
    );
    // the hardening status codes and the checkpointed event log are part
    // of the daemon's external contract
    for s in ["408", "413", "substrate_events", "SIGTERM"] {
        assert!(SERVING_MD.contains(s), "docs/SERVING.md must document {s}");
    }
}

#[test]
fn faults_md_documents_the_event_plane() {
    const FAULTS_MD: &str = include_str!("../../../docs/FAULTS.md");
    // the cell key and every event kind of the grammar
    assert!(
        FAULTS_MD.contains("`events=`"),
        "docs/FAULTS.md must document the events= cell key"
    );
    for kind in [
        "fail-link",
        "recover-link",
        "fail-node",
        "recover-node",
        "degrade-link",
    ] {
        assert!(
            FAULTS_MD.contains(&format!("`{kind}`")),
            "docs/FAULTS.md must document the {kind} event kind"
        );
    }
    // penalty semantics, the injection endpoint and the checkpoint field
    for s in [
        "UNREACHABLE_PENALTY",
        "`POST /sessions/<name>/events`",
        "substrate_events",
        "repair_vs_rebuild",
        "DistanceMatrix::repair",
    ] {
        assert!(FAULTS_MD.contains(s), "docs/FAULTS.md must document {s}");
    }
    // the rest of the doc tree points at the fault reference
    for (name, doc) in [
        ("README.md", README_MD),
        ("docs/ARCHITECTURE.md", ARCHITECTURE_MD),
        ("docs/SERVING.md", SERVING_MD),
    ] {
        assert!(doc.contains("FAULTS.md"), "{name} must link docs/FAULTS.md");
    }
}

#[test]
fn architecture_and_benchmarks_document_the_demand_plane() {
    const BENCHMARKS_MD: &str = include_str!("../../../docs/BENCHMARKS.md");
    // the two-planes split is the architecture's load-bearing refactor
    assert!(
        ARCHITECTURE_MD.contains("demand plane") && ARCHITECTURE_MD.contains("placement plane"),
        "docs/ARCHITECTURE.md must describe the demand/placement plane split"
    );
    for name in ["RoundTrace", "TraceCache", "trace_equivalence.rs"] {
        assert!(
            ARCHITECTURE_MD.contains(name),
            "docs/ARCHITECTURE.md must mention {name}"
        );
    }
    // the trace-sharing bench entry stays documented with its schema
    assert!(
        BENCHMARKS_MD.contains("`trace_sharing`"),
        "docs/BENCHMARKS.md must document the BENCH_sweeps.json trace_sharing entry"
    );
    // as does the incremental-repair entry added with the event plane
    assert!(
        BENCHMARKS_MD.contains("`repair_vs_rebuild`"),
        "docs/BENCHMARKS.md must document the BENCH_apsp.json repair_vs_rebuild entry"
    );
}

#[test]
fn architecture_and_benchmarks_document_the_strategy_hot_path() {
    const BENCHMARKS_MD: &str = include_str!("../../../docs/BENCHMARKS.md");
    // the one-pass transposed scan is the strategy plane's hot path;
    // the architecture doc must name the machinery and its invariant
    assert!(
        ARCHITECTURE_MD.contains("strategy hot path"),
        "docs/ARCHITECTURE.md must carry the strategy-hot-path paragraph"
    );
    for name in [
        "WindowIndex",
        "CandidateScratch",
        "bit-identity",
        "candidate_scan",
    ] {
        assert!(
            ARCHITECTURE_MD.contains(name),
            "docs/ARCHITECTURE.md must mention {name}"
        );
    }
    // and the bench entry stays documented with its extra fields
    assert!(
        BENCHMARKS_MD.contains("`candidate_scan`"),
        "docs/BENCHMARKS.md must document the BENCH_sweeps.json candidate_scan entry"
    );
    for field in ["`candidates`", "`rounds`", "`servers`"] {
        assert!(
            BENCHMARKS_MD.contains(field),
            "docs/BENCHMARKS.md must document the candidate_scan {field} field"
        );
    }
}

#[test]
fn traces_md_documents_the_packed_plane() {
    const TRACES_MD: &str = include_str!("../../../docs/TRACES.md");
    // the format tag is the on-disk contract — the doc must carry the
    // exact string the code stamps
    assert!(
        TRACES_MD.contains(flexserve_workload::PACKED_FORMAT),
        "docs/TRACES.md must name the {} format tag",
        flexserve_workload::PACKED_FORMAT
    );
    // the CLI entry point and both code-level packing paths
    for s in [
        "trace pack",
        "pack_jsonl_file",
        "PackWriter",
        "PackedTrace",
        "PackedScenario",
        "PackedReplay",
        "packed_trace.rs",
    ] {
        assert!(TRACES_MD.contains(s), "docs/TRACES.md must document {s}");
    }
    // the magic strings and the windowing constant are part of the layout
    assert!(
        TRACES_MD.contains("FXTRACE1") && TRACES_MD.contains("FXTRIDX1"),
        "docs/TRACES.md must show both magic strings"
    );
    assert!(
        TRACES_MD.contains("4096"),
        "docs/TRACES.md must state the default window size"
    );
    // the CLI usage string keeps advertising the pack subcommand
    assert!(
        include_str!("../src/bin/flexserve.rs").contains("trace pack <jsonl> [out=]"),
        "flexserve usage must advertise the trace pack subcommand"
    );
    // the bench entry stays documented with its schema
    const BENCHMARKS_MD: &str = include_str!("../../../docs/BENCHMARKS.md");
    assert!(
        BENCHMARKS_MD.contains("`trace_pack`") && BENCHMARKS_MD.contains("resident_window_bytes"),
        "docs/BENCHMARKS.md must document the BENCH_trace.json trace_pack entry"
    );
    // the rest of the doc tree points at the trace reference
    for (name, doc) in [
        ("README.md", README_MD),
        ("docs/ARCHITECTURE.md", ARCHITECTURE_MD),
        ("docs/SERVING.md", SERVING_MD),
    ] {
        assert!(doc.contains("TRACES.md"), "{name} must link docs/TRACES.md");
    }
}

#[test]
fn cluster_md_documents_the_routing_tier() {
    const CLUSTER_MD: &str = include_str!("../../../docs/CLUSTER.md");
    // every endpoint the router's 404 body advertises is documented
    // (backticked), router-only and proxied alike
    for endpoint in flexserve_experiments::serve::route::ROUTER_ENDPOINT_LIST
        .split(',')
        .map(|e| e.split_whitespace().collect::<Vec<_>>().join(" "))
    {
        assert!(
            CLUSTER_MD.contains(&format!("`{endpoint}`")),
            "docs/CLUSTER.md must document {endpoint}"
        );
    }
    // every route key stays documented
    for key in [
        "`workers`",
        "`port`",
        "`bind`",
        "`threads`",
        "`replicas`",
        "`health-interval`",
        "`mark-down`",
        "`skew`",
        "`request-timeout`",
    ] {
        assert!(
            CLUSTER_MD.contains(key),
            "docs/CLUSTER.md must document the {key} route key"
        );
    }
    // the migration protocol's externally visible pieces
    for s in [
        "migrated_to",
        "resume=true",
        "bit-identical",
        "route_cluster.rs",
        "uptime_seconds",
    ] {
        assert!(CLUSTER_MD.contains(s), "docs/CLUSTER.md must document {s}");
    }
    // the migrated tombstone flavor and the DELETE hand-off body live in
    // the serving reference
    assert!(
        SERVING_MD.contains("migrated_to"),
        "docs/SERVING.md must document the migrated_to tombstone flavor"
    );
    assert!(
        SERVING_MD.contains("\"status\": \"migrated\""),
        "docs/SERVING.md must show the migrated tombstone row"
    );
    // the proxy's batch relay and connection pool stay documented
    for s in ["proxy.rs", "keep-alive"] {
        assert!(CLUSTER_MD.contains(s), "docs/CLUSTER.md must document {s}");
    }
    assert!(
        CLUSTER_MD.contains("Batched stepping"),
        "docs/CLUSTER.md must note that batched step bodies are relayed verbatim"
    );
    // the serving bench entries stay documented with their schemas
    const BENCHMARKS_MD: &str = include_str!("../../../docs/BENCHMARKS.md");
    for entry in ["`route_overhead`", "`batched_step`", "`connection_scaling`"] {
        assert!(
            BENCHMARKS_MD.contains(entry),
            "docs/BENCHMARKS.md must document the BENCH_serve.json {entry} entry"
        );
    }
    // the rest of the doc tree points at the cluster guide
    for (name, doc) in [
        ("README.md", README_MD),
        ("docs/ARCHITECTURE.md", ARCHITECTURE_MD),
        ("docs/SERVING.md", SERVING_MD),
    ] {
        assert!(
            doc.contains("CLUSTER.md"),
            "{name} must link docs/CLUSTER.md"
        );
    }
}

#[test]
fn doc_tree_cross_links_hold() {
    assert!(
        README_MD.contains("docs/SERVING.md"),
        "README must link the serving guide"
    );
    assert!(
        ARCHITECTURE_MD.contains("SERVING.md"),
        "ARCHITECTURE must link the serving guide from the module map"
    );
    assert!(FIGURES_MD.contains("registry.rs"));
}
