//! Golden tests pinning the `flexserve` CLI surface.
//!
//! * `fig03` through the registry must reproduce the CSV the retired
//!   per-figure binary produced, byte for byte — the distance-matrix cache
//!   and the registry dispatch may never change experiment output. Since
//!   the strategies moved to the one-pass transposed candidate scan
//!   (`WindowIndex` in `flexserve-core`), this golden also pins that scan
//!   end to end: any non-bit-identical scoring change shifts placements
//!   and shows up here as a CSV diff.
//! * `flexserve list` output must stay stable (the docs and CI smoke job
//!   reference its names).
//!
//! The figure run and the cache assertion share one test: they both
//! mutate process environment variables and write the same artifact, and
//! Rust runs a binary's tests on concurrent threads.

use flexserve_experiments::figures::Profile;
use flexserve_experiments::registry;

/// The quick-profile fig03 CSV captured from the pre-registry
/// `fig03_cost_vs_n_dynamic` binary before it was deleted.
const FIG03_QUICK_GOLDEN: &str = include_str!("golden/fig03_quick.csv");

/// `flexserve list` output.
const LIST_GOLDEN: &str = include_str!("golden/list.txt");

#[test]
fn fig03_is_byte_identical_to_the_retired_binary_and_hits_the_cache() {
    // Route artifacts to a scratch dir so the test never touches the
    // real results/ tree, and silence the table printer. The only other
    // test in this binary reads no environment variables.
    let dir = std::env::temp_dir().join("flexserve-golden-fig03");
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("FLEXSERVE_RESULTS_DIR", &dir);
    std::env::set_var("FLEXSERVE_SILENT", "1");

    let entry = registry::figure("fig03").expect("fig03 is registered");
    let table = (entry.run)(Profile::Quick);
    assert_eq!(
        table.to_csv(),
        FIG03_QUICK_GOLDEN,
        "registry fig03 must reproduce the retired binary's CSV byte-for-byte"
    );

    // The file on disk is the same bytes.
    let on_disk = std::fs::read_to_string(dir.join("fig03.csv")).unwrap();
    assert_eq!(on_disk, FIG03_QUICK_GOLDEN);

    // fig03 evaluates 3 algorithms × 2 seeds per size against shared
    // substrates and shared demand traces. Since the grouped runner
    // fetches each (topology, seed) environment and records each demand
    // trace exactly once per seed group, the figure run itself only
    // *fills* the process-wide caches — repeat lookups (the next figure,
    // a sweep, or the probes below) hit. Cached or not, the bytes above
    // stayed golden.
    let dist = flexserve_experiments::DistCache::global().stats();
    assert!(
        dist.misses >= 1,
        "expected the figure run to fill the distance-matrix cache, got {dist:?}"
    );
    let traces = flexserve_experiments::TraceCache::global().stats();
    assert!(
        traces.misses >= 1,
        "expected the figure run to record shared demand traces, got {traces:?}"
    );

    // Probe: re-requesting one of fig03's cells answers from both caches.
    use flexserve_experiments::setup::{record_shared, ExperimentEnv, ScenarioKind};
    let env = ExperimentEnv::erdos_renyi(30, 1000);
    assert!(
        flexserve_experiments::DistCache::global().stats().hits > dist.hits,
        "re-fetching a fig03 substrate must hit the distance-matrix cache"
    );
    let t = flexserve_experiments::setup::paper_t_for(30);
    let rounds = Profile::Quick.rounds(500);
    record_shared(
        ScenarioKind::CommuterDynamic,
        &env,
        t,
        10,
        50,
        1000 ^ 0xABCD,
        rounds,
    );
    assert!(
        flexserve_experiments::TraceCache::global().stats().hits > traces.hits,
        "re-recording a fig03 demand trace must hit the trace cache"
    );
}

#[test]
fn list_output_is_stable() {
    assert_eq!(
        registry::list_text(),
        LIST_GOLDEN,
        "`flexserve list` changed; update tests/golden/list.txt and docs/FIGURES.md deliberately"
    );
}
