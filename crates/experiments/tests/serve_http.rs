//! End-to-end exercise of the `flexserve serve` daemon over real TCP:
//! drive rounds through `POST /step`, snapshot through `POST /checkpoint`,
//! restart the daemon from the checkpoint file, and assert the resumed
//! placement matches an uninterrupted session bit for bit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

use flexserve_core::initial_center;
use flexserve_experiments::serve::{serve_on, ServeOptions};
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::spec::CellSpec;
use flexserve_sim::{CostParams, EventedSession, LoadModel, SimSession, SubstrateEvents};
use flexserve_workload::{JsonValue, RequestSource, ScenarioStream};

/// One HTTP/1.1 exchange against the daemon; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> JsonValue {
    JsonValue::parse(body.trim()).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn the_cell() -> Vec<String> {
    [
        "topo=unit-line:12",
        "wl=uniform:req=4",
        "strat=onth",
        "rounds=60",
        "seed=5",
        "k=4",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect()
}

fn start_daemon(extra: &[&str]) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let mut args = the_cell();
    args.extend(extra.iter().map(|s| s.to_string()));
    let opts = ServeOptions::parse(&args).expect("parse serve args");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        serve_on(listener, &opts).expect("daemon run");
    });
    (addr, handle)
}

/// The same cell driven directly through a `SimSession` — the reference
/// the daemon must match.
fn reference_placement_after(rounds: usize) -> (u64, Vec<usize>) {
    let cell = CellSpec::new(
        "unit-line:12".parse().unwrap(),
        "uniform:req=4".parse().unwrap(),
        "onth".parse().unwrap(),
    );
    let env = ExperimentEnv::from_spec(&cell.topology, 5).unwrap();
    let ctx = env.context(CostParams::default().with_max_servers(4), LoadModel::Linear);
    let strategy = cell.strategy.instantiate_online(&ctx, 5).unwrap();
    let mut session = SimSession::new(ctx, strategy, initial_center(&ctx));
    let scenario =
        cell.workload
            .instantiate(&env.graph, &env.matrix, cell.t_periods, cell.lambda, 5);
    let mut source = ScenarioStream::new(scenario, Some(60));
    for _ in 0..rounds {
        let batch = source.next_round().unwrap().unwrap();
        session.step(&batch);
    }
    (
        session.t(),
        session.fleet().active().iter().map(|n| n.index()).collect(),
    )
}

/// Reads one framed HTTP response off a persistent connection; returns
/// (status, Connection header value, body read to its `Content-Length`).
fn read_framed_response<R: BufRead>(reader: &mut R) -> (u16, String, String) {
    let mut line = String::new();
    reader.read_line(&mut line).expect("status line");
    let status: u16 = line
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let mut connection = String::new();
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).expect("header");
        if header.trim().is_empty() {
            break;
        }
        if let Some((name, value)) = header.split_once(':') {
            if name.eq_ignore_ascii_case("connection") {
                connection = value.trim().to_string();
            } else if name.eq_ignore_ascii_case("content-length") {
                content_length = value.trim().parse().expect("length");
            }
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    (status, connection, String::from_utf8(body).expect("utf8"))
}

#[test]
fn keep_alive_drives_many_requests_down_one_connection() {
    let (addr, handle) = start_daemon(&[]);
    let stream = TcpStream::connect(addr).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = BufReader::new(stream);

    // Six exchanges down the same TCP connection: HTTP/1.1 without a
    // Connection header is keep-alive by default.
    for t in 0..3u64 {
        writer
            .write_all(b"POST /step HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n")
            .expect("send step");
        let (status, connection, body) = read_framed_response(&mut reader);
        assert_eq!(status, 200, "{body}");
        assert_eq!(connection, "keep-alive");
        assert_eq!(json(&body).get("t").unwrap().as_u64(), Some(t));
    }
    writer
        .write_all(b"GET /metrics HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send metrics");
    let (status, connection, body) = read_framed_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "keep-alive");
    assert_eq!(json(&body).get("rounds_served").unwrap().as_u64(), Some(3));

    // Error responses stay framed and keep the connection alive too.
    writer
        .write_all(b"GET /nope HTTP/1.1\r\nHost: t\r\n\r\n")
        .expect("send bad route");
    let (status, connection, _) = read_framed_response(&mut reader);
    assert_eq!(status, 404);
    assert_eq!(connection, "keep-alive");

    // Connection: close is honored: answered, then EOF.
    writer
        .write_all(b"GET /placement HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n")
        .expect("send close");
    let (status, connection, _) = read_framed_response(&mut reader);
    assert_eq!(status, 200);
    assert_eq!(connection, "close");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("EOF after close");
    assert!(rest.is_empty(), "server must close after Connection: close");

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
}

#[test]
fn serve_steps_checkpoints_and_resumes_identically() {
    let ck: PathBuf = std::env::temp_dir().join("flexserve-serve-http-test.ckpt.json");
    let _ = std::fs::remove_file(&ck);
    let ck_arg = format!("checkpoint={}", ck.display());

    // --- first daemon: 20 source-driven rounds, checkpoint, shutdown ---
    let (addr, handle) = start_daemon(&[&ck_arg]);

    for t in 0..20u64 {
        let (status, body) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200, "step {t}: {body}");
        let v = json(&body);
        assert_eq!(v.get("t").unwrap().as_u64(), Some(t));
        assert_eq!(v.get("requests").unwrap().as_u64(), Some(4));
        assert!(
            v.get("costs")
                .unwrap()
                .get("total")
                .unwrap()
                .as_f64()
                .unwrap()
                > 0.0
        );
    }

    // placement + metrics agree on where we are
    let (status, body) = http(addr, "GET", "/placement", "");
    assert_eq!(status, 200);
    let placement_mid = json(&body);
    assert_eq!(placement_mid.get("t").unwrap().as_u64(), Some(20));
    let (status, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(status, 200);
    let metrics = json(&body);
    assert_eq!(metrics.get("rounds_served").unwrap().as_u64(), Some(20));
    assert_eq!(metrics.get("resumed_at").unwrap().as_u64(), Some(0));
    assert_eq!(metrics.get("strategy").unwrap().as_str(), Some("ONTH"));
    assert!(metrics.get("step_seconds_total").unwrap().as_f64().unwrap() >= 0.0);

    // an explicit-origins step works and advances t
    let (status, body) = http(addr, "POST", "/step", r#"{"origins":[11,11,0]}"#);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json(&body).get("t").unwrap().as_u64(), Some(20));
    // …but a bogus body is a 400 and does NOT advance t
    let (status, _) = http(addr, "POST", "/step", r#"{"origins":[99]}"#);
    assert_eq!(status, 400);
    let (_, body) = http(addr, "GET", "/placement", "");
    assert_eq!(json(&body).get("t").unwrap().as_u64(), Some(21));

    // The explicit round above diverged the daemon from the pure-source
    // run, so restart clean for the determinism half below.
    let (status, ck_body) = http(addr, "POST", "/checkpoint", "");
    assert_eq!(status, 200);
    assert!(ck_body.contains(flexserve_sim::CHECKPOINT_FORMAT));
    assert!(
        ck_body.contains("\"metrics\""),
        "v2 checkpoints carry cumulative metrics: {ck_body}"
    );
    assert!(ck.exists(), "checkpoint file must be written");
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();

    // --- determinism: fresh daemon, 20 rounds, checkpoint, restart,
    //     20 more — must equal 40 uninterrupted rounds ---------------
    let _ = std::fs::remove_file(&ck);
    let (addr, handle) = start_daemon(&[&ck_arg]);
    for _ in 0..20 {
        let (status, _) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200);
    }
    let (status, _) = http(addr, "POST", "/checkpoint", "");
    assert_eq!(status, 200);
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();

    let (addr, handle) = start_daemon(&[&ck_arg, "resume=true"]);
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = json(&body);
    assert_eq!(metrics.get("resumed_at").unwrap().as_u64(), Some(20));
    assert_eq!(metrics.get("next_t").unwrap().as_u64(), Some(20));
    // v2 checkpoints carry the lifetime totals across the restart: the 20
    // checkpointed rounds (and their cost) are already on the books while
    // this process has served none.
    assert_eq!(metrics.get("rounds_served").unwrap().as_u64(), Some(0));
    let cumulative = metrics.get("cumulative").unwrap();
    assert_eq!(cumulative.get("rounds_served").unwrap().as_u64(), Some(20));
    assert!(
        cumulative
            .get("total_cost")
            .unwrap()
            .get("total")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    for _ in 0..20 {
        let (status, _) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200);
    }
    let (_, body) = http(addr, "GET", "/placement", "");
    let resumed = json(&body);
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();

    let (ref_t, ref_active) = reference_placement_after(40);
    assert_eq!(resumed.get("t").unwrap().as_u64(), Some(ref_t));
    let active: Vec<usize> = resumed
        .get("active")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|n| n.as_usize().unwrap())
        .collect();
    assert_eq!(
        active, ref_active,
        "resumed daemon placement must match the uninterrupted session"
    );

    let _ = std::fs::remove_file(&ck);
}

#[test]
fn mixed_explicit_steps_do_not_desync_the_source_across_resume() {
    // Rounds with distinct request counts (1, 2, 3, 4, 5) so a skipped
    // or repeated source round is visible in the /step response.
    let dir = std::env::temp_dir();
    let replay = dir.join("flexserve-serve-mixed.jsonl");
    let ck = dir.join("flexserve-serve-mixed.ckpt.json");
    let lines: String = (0..5u64)
        .map(|t| {
            format!(
                "{{\"t\":{t},\"origins\":[{}]}}\n",
                vec!["1"; t as usize + 1].join(",")
            )
        })
        .collect();
    std::fs::write(&replay, lines).unwrap();
    let _ = std::fs::remove_file(&ck);

    let ck_arg = format!("checkpoint={}", ck.display());
    let source_arg = format!("source={}", replay.display());

    // Daemon A: 2 source rounds (sizes 1, 2), then 2 explicit rounds —
    // t is now 4 but only 2 source rounds were consumed.
    let (addr, handle) = start_daemon(&[&ck_arg, &source_arg]);
    for expected in [1u64, 2] {
        let (status, body) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            json(&body).get("requests").unwrap().as_u64(),
            Some(expected)
        );
    }
    for _ in 0..2 {
        let (status, _) = http(addr, "POST", "/step", r#"{"origins":[0]}"#);
        assert_eq!(status, 200);
    }
    let (status, body) = http(addr, "POST", "/checkpoint", "");
    assert_eq!(status, 200);
    assert!(body.contains("\"source_rounds\":2"), "{body}");
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();

    // Daemon B (resumed): the next source-driven round must be round 2
    // (size 3) — fast-forwarding by t=4 would wrongly serve round 4.
    let (addr, handle) = start_daemon(&[&ck_arg, &source_arg, "resume=true"]);
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = json(&body);
    assert_eq!(metrics.get("next_t").unwrap().as_u64(), Some(4));
    assert_eq!(metrics.get("source_rounds").unwrap().as_u64(), Some(2));
    let (status, body) = http(addr, "POST", "/step", "");
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    assert_eq!(v.get("t").unwrap().as_u64(), Some(4));
    assert_eq!(
        v.get("requests").unwrap().as_u64(),
        Some(3),
        "resume must continue the source where the checkpointed history left it"
    );
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();

    let _ = std::fs::remove_file(&replay);
    let _ = std::fs::remove_file(&ck);
}

/// The same cell driven through an uninterrupted `EventedSession` with
/// the full schedule — what the daemon's fail → append-recover →
/// checkpoint → resume path must reproduce bit for bit.
fn evented_reference_after(rounds: usize, schedule: &str) -> (u64, Vec<usize>) {
    let cell = CellSpec::new(
        "unit-line:12".parse().unwrap(),
        "uniform:req=4".parse().unwrap(),
        "onth".parse().unwrap(),
    );
    let env = ExperimentEnv::from_spec(&cell.topology, 5).unwrap();
    let params = CostParams::default().with_max_servers(4);
    let ctx = env.context(params, LoadModel::Linear);
    let strategy = cell.strategy.instantiate_online(&ctx, 5).unwrap();
    let mut session = EventedSession::new(
        (*env.graph).clone(),
        (*env.matrix).clone(),
        SubstrateEvents::parse(schedule).unwrap(),
        params,
        LoadModel::Linear,
        strategy,
        initial_center(&ctx),
    );
    let scenario =
        cell.workload
            .instantiate(&env.graph, &env.matrix, cell.t_periods, cell.lambda, 5);
    let mut source = ScenarioStream::new(scenario, Some(60));
    for _ in 0..rounds {
        let batch = source.next_round().unwrap().unwrap();
        session.step(&batch).unwrap();
    }
    (
        session.t(),
        session.fleet().active().iter().map(|n| n.index()).collect(),
    )
}

#[test]
fn substrate_events_over_http_with_resume_and_hardening() {
    let ck = std::env::temp_dir().join("flexserve-serve-events.ckpt.json");
    let _ = std::fs::remove_file(&ck);
    let ck_arg = format!("checkpoint={}", ck.display());

    // Daemon with an initial schedule and a tight request timeout (for
    // the 408 probe below).
    let (addr, handle) = start_daemon(&[&ck_arg, "events=3:fail-link:5-6", "request-timeout=1"]);
    for _ in 0..4 {
        let (status, body) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200, "{body}");
    }

    // Live-append a recovery; past events are refused.
    let (status, body) = http(
        addr,
        "POST",
        "/sessions/default/events",
        r#"{"events": "8:recover-link:5-6"}"#,
    );
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    assert_eq!(v.get("appended").unwrap().as_u64(), Some(1));
    assert_eq!(
        v.get("events").unwrap().as_str(),
        Some("3:fail-link:5-6,8:recover-link:5-6")
    );
    let (status, _) = http(
        addr,
        "POST",
        "/sessions/default/events",
        r#"{"events": "0:fail-node:2"}"#,
    );
    assert_eq!(status, 400);

    // The checkpoint records the whole schedule.
    let (status, body) = http(addr, "POST", "/checkpoint", "");
    assert_eq!(status, 200);
    assert!(
        body.contains("\"substrate_events\":\"3:fail-link:5-6,8:recover-link:5-6\""),
        "{body}"
    );

    // Front-end hardening over the wire: an oversized declared body is a
    // 413 before any of it is read...
    let mut stream = TcpStream::connect(addr).unwrap();
    stream
        .write_all(b"POST /step HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");
    // ...and a stalled half-request times out with a 408.
    let mut stream = TcpStream::connect(addr).unwrap();
    stream.write_all(b"POST /st").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();

    // Resume (the checkpoint restores its own schedule) and play through
    // the recovery at round 8.
    let (addr, handle) = start_daemon(&[&ck_arg, "resume=true"]);
    let (_, body) = http(addr, "GET", "/metrics", "");
    assert_eq!(json(&body).get("resumed_at").unwrap().as_u64(), Some(4));
    for _ in 0..6 {
        let (status, body) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200, "{body}");
    }
    let (_, body) = http(addr, "GET", "/placement", "");
    let resumed = json(&body);
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();

    let (ref_t, ref_active) = evented_reference_after(10, "3:fail-link:5-6,8:recover-link:5-6");
    assert_eq!(resumed.get("t").unwrap().as_u64(), Some(ref_t));
    let active: Vec<usize> = resumed
        .get("active")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|n| n.as_usize().unwrap())
        .collect();
    assert_eq!(
        active, ref_active,
        "resumed evented daemon must match the uninterrupted evented session"
    );

    let _ = std::fs::remove_file(&ck);
}

#[test]
fn serve_source_exhaustion_and_unknown_routes() {
    let ck = std::env::temp_dir().join("flexserve-serve-http-test2.ckpt.json");
    let ck_arg = format!("checkpoint={}", ck.display());
    let mut args = the_cell();
    // tiny source: 3 rounds only
    for a in &mut args {
        if a.starts_with("rounds=") {
            *a = "rounds=3".into();
        }
    }
    args.push(ck_arg);
    let opts = ServeOptions::parse(&args).unwrap();
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let handle = std::thread::spawn(move || {
        serve_on(listener, &opts).unwrap();
    });

    for _ in 0..3 {
        let (status, _) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200);
    }
    let (status, body) = http(addr, "POST", "/step", "");
    assert_eq!(status, 410, "exhausted source must be 410: {body}");
    assert!(body.contains("exhausted"));
    // explicit bodies still work after exhaustion
    let (status, _) = http(addr, "POST", "/step", r#"{"origins":[1]}"#);
    assert_eq!(status, 200);

    let (status, body) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("endpoints"));

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
    let _ = std::fs::remove_file(&ck);
}
