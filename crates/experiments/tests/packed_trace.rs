//! The packed trace plane's pinning suite (`flexserve-trace-v1`, see
//! `docs/TRACES.md`):
//!
//! * **Equivalence** — JSONL → `trace pack` → packed replay is bitwise
//!   identical to direct JSONL replay (per-round [`RoundRequests`] and
//!   end-to-end strategy cost), across topology × workload × seed tuples,
//!   through both the mmap and the streaming reader; and packing is a
//!   fixed point (`pack(unpack(pack(x)))` is byte-identical).
//! * **Corruption robustness** — byte-level mutations of a valid pack
//!   (truncations, magic/trailer flips, fingerprint and frame-index
//!   mismatches, out-of-order `t`) all fail with clean errors from both
//!   readers: no panics, no partial traces.
//! * **Windowed == full** — a 10⁵-round pack replayed through windows of
//!   size 1, 7, 4096 and whole-trace matches full materialization
//!   bitwise, and a serve session over a packed source resumed mid-trace
//!   from a checkpoint continues bit-identically (the
//!   `checkpoint_resume` invariant extended to packed sources).
//! * **O(window) residency** — a 10⁶-round pack replays via frame-index
//!   seeks without ever materializing, with a bounded resident window.

use proptest::prelude::*;

use flexserve_experiments::serve::{SessionConfig, SessionManager};
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::spec::{TopologySpec, WorkloadSpec};
use flexserve_experiments::{run_algorithm, Algorithm};
use flexserve_graph::NodeId;
use flexserve_sim::{CostParams, LoadModel};
use flexserve_workload::packed::fnv1a;
use flexserve_workload::{
    pack_jsonl_file, record, replay_source, PackWriter, PackedReplay, PackedScenario, PackedTrace,
    RequestSource, RoundRequests, RoundTrace, Scenario,
};

/// Small substrates spanning the generator families (one APSP per case).
const TOPOLOGIES: &[&str] = &["unit-line:12", "er:30", "star:9", "ring:16", "grid:4x4"];

/// Workload families, bare specs as `flexserve run wl=` takes them.
const WORKLOADS: &[&str] = &[
    "uniform:req=3",
    "commuter-dynamic",
    "commuter-static",
    "time-zones",
    "onoff",
];

fn temp(tag: &str) -> String {
    std::env::temp_dir()
        .join(format!("flexserve-packed-{tag}-{}", std::process::id()))
        .to_str()
        .unwrap()
        .to_string()
}

/// Records a workload spec's demand exactly as a cell would.
fn fresh_trace(
    workload: &WorkloadSpec,
    env: &ExperimentEnv,
    lambda: u64,
    seed: u64,
    rounds: u64,
) -> RoundTrace {
    let mut scenario = workload.instantiate(&env.graph, &env.matrix, 8, lambda, seed);
    record(scenario.as_mut(), rounds)
}

/// Every reader mode a pack can be opened in.
fn open_all_modes(path: &str) -> Vec<(&'static str, Result<PackedTrace, String>)> {
    let mut out = vec![("streaming", PackedTrace::open_streaming(path))];
    #[cfg(unix)]
    out.push(("mmap", PackedTrace::open_mmap(path)));
    out
}

// ---------------------------------------------------------------------------
// Equivalence
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// JSONL → pack → replay == direct JSONL replay, per round and for
    /// the end-to-end ONTH cost, via both readers; pack is a fixed point.
    #[test]
    fn packed_replay_is_bitwise_identical_to_jsonl(
        topo_idx in 0..TOPOLOGIES.len(),
        wl_idx in 0..WORKLOADS.len(),
        seed in 0u64..1000,
        lambda in 1u64..12,
        rounds in 10u64..40,
    ) {
        let topology: TopologySpec = TOPOLOGIES[topo_idx].parse().unwrap();
        let workload: WorkloadSpec = WORKLOADS[wl_idx].parse().unwrap();
        let env = ExperimentEnv::from_spec(&topology, seed).unwrap();
        let reference = fresh_trace(&workload, &env, lambda, seed, rounds);

        let jsonl = temp(&format!("eq-{topo_idx}-{wl_idx}.jsonl"));
        let pack = temp(&format!("eq-{topo_idx}-{wl_idx}.ftr"));
        std::fs::write(&jsonl, reference.to_jsonl()).unwrap();
        let summary = pack_jsonl_file(&jsonl, &pack).unwrap();
        prop_assert_eq!(summary.rounds, rounds);

        // Per-round equality through both packed readers and the
        // format-sniffing replay_source entry point.
        for (mode, opened) in open_all_modes(&pack) {
            let mut packed = opened.unwrap();
            prop_assert_eq!(packed.materialize().unwrap(), reference.clone(), "{}", mode);
        }
        let mut sniffed = replay_source(&pack, env.graph.node_count()).unwrap();
        let lowered = RoundTrace::from_source(sniffed.as_mut(), None).unwrap();
        prop_assert_eq!(lowered, reference.clone());

        // Packing is deterministic and a fixed point: packing the
        // unpacked pack reproduces the file byte for byte.
        let bytes = std::fs::read(&pack).unwrap();
        let mut packed = PackedTrace::open(&pack).unwrap();
        prop_assert_eq!(packed.materialize().unwrap().to_packed(), bytes.clone());
        prop_assert_eq!(reference.to_packed(), bytes);

        // End-to-end strategy cost: a cell whose workload replays the
        // pack matches one replaying the JSONL original bit for bit.
        let ctx = env.context(CostParams::default().with_max_servers(4), LoadModel::Linear);
        let wl_jsonl: WorkloadSpec = format!("replay:{jsonl}").parse().unwrap();
        let wl_pack: WorkloadSpec = format!("replay:{pack}").parse().unwrap();
        let from_jsonl = fresh_trace(&wl_jsonl, &env, lambda, seed, rounds);
        let from_pack = fresh_trace(&wl_pack, &env, lambda, seed, rounds);
        prop_assert_eq!(&from_jsonl, &from_pack);
        let a = run_algorithm(&ctx, &from_jsonl, Algorithm::OnTh).total();
        let b = run_algorithm(&ctx, &from_pack, Algorithm::OnTh).total();
        prop_assert_eq!(a.access.to_bits(), b.access.to_bits());
        prop_assert_eq!(a.running.to_bits(), b.running.to_bits());
        prop_assert_eq!(a.migration.to_bits(), b.migration.to_bits());
        prop_assert_eq!(a.creation.to_bits(), b.creation.to_bits());

        std::fs::remove_file(&jsonl).ok();
        std::fs::remove_file(&pack).ok();
    }
}

// ---------------------------------------------------------------------------
// Corruption robustness
// ---------------------------------------------------------------------------

/// A valid multi-round pack to mutate.
fn victim_pack() -> Vec<u8> {
    let env = ExperimentEnv::from_spec(&"unit-line:12".parse().unwrap(), 7).unwrap();
    let workload: WorkloadSpec = "uniform:req=4".parse().unwrap();
    fresh_trace(&workload, &env, 6, 7, 30).to_packed()
}

/// Recomputes the header fingerprint after a deliberate frame mutation,
/// so the mutation reaches the validation layer *behind* the hash.
fn refingerprint(bytes: &mut [u8]) {
    let len = bytes.len();
    let idx_off = u64::from_le_bytes(bytes[len - 16..len - 8].try_into().unwrap()) as usize;
    let fp = fnv1a(&bytes[32..idx_off]);
    bytes[24..32].copy_from_slice(&fp.to_le_bytes());
}

/// Asserts both readers reject `bytes` with a clean error mentioning
/// `needle` (an empty needle = any clean error).
fn assert_corrupt(bytes: &[u8], tag: &str, needle: &str) {
    let path = temp(&format!("corrupt-{tag}.ftr"));
    std::fs::write(&path, bytes).unwrap();
    for (mode, opened) in open_all_modes(&path) {
        match opened {
            Ok(_) => panic!("{tag} ({mode}): corrupt pack must not open"),
            Err(e) => assert!(
                e.contains(needle),
                "{tag} ({mode}): error {e:?} must mention {needle:?}"
            ),
        }
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn corrupt_packs_fail_cleanly_in_both_readers() {
    let valid = victim_pack();

    // Truncations: inside the header, just short of the minimum, and
    // mid-frame (which also destroys the trailer).
    assert_corrupt(&valid[..10], "header", "truncated");
    assert_corrupt(&valid[..47], "min-len", "truncated");
    assert_corrupt(&valid[..valid.len() / 2], "mid-frame", "");
    assert_corrupt(&valid[..valid.len() - 8], "no-trailer", "");

    // Bad leading magic.
    let mut bad = valid.clone();
    bad[0] ^= 0x40;
    assert_corrupt(&bad, "magic", "bad magic");

    // Bad trailer magic.
    let mut bad = valid.clone();
    let at = valid.len() - 1;
    bad[at] ^= 0x40;
    assert_corrupt(&bad, "trailer", "corrupt trailer");

    // A flipped fingerprint field.
    let mut bad = valid.clone();
    bad[24] ^= 0x01;
    assert_corrupt(&bad, "fingerprint-field", "fingerprint mismatch");

    // A flipped frame byte (the hash catches silent bit rot).
    let mut bad = valid.clone();
    bad[36] ^= 0x01;
    assert_corrupt(&bad, "frame-bit", "fingerprint mismatch");

    // A lying round count.
    let mut bad = valid.clone();
    bad[8] = bad[8].wrapping_add(1);
    assert_corrupt(&bad, "rounds", "corrupt frame index");

    // A lying index offset.
    let mut bad = valid.clone();
    let at = valid.len() - 16;
    bad[at] = bad[at].wrapping_add(8);
    assert_corrupt(&bad, "index-offset", "corrupt frame index");

    // A mutated index entry (frame 1 no longer starts where frame 0
    // ends). The frame region itself is untouched, so the fingerprint
    // still matches — the index walk must catch it.
    let idx_off =
        u64::from_le_bytes(valid[valid.len() - 16..valid.len() - 8].try_into().unwrap()) as usize;
    let mut bad = valid.clone();
    bad[idx_off + 8] = bad[idx_off + 8].wrapping_add(1);
    assert_corrupt(&bad, "index-entry", "frame index mismatch");

    // A mutated frame length prefix, re-fingerprinted so only the
    // structural walk can object: frame 1 then starts mid-air.
    let mut bad = valid.clone();
    bad[32] = bad[32].wrapping_add(1);
    refingerprint(&mut bad);
    assert_corrupt(&bad, "length-prefix", "frame index mismatch");
}

#[test]
fn out_of_order_t_is_caught_at_decode_time_in_both_readers() {
    let valid = victim_pack();
    // Frame 1 starts after frame 0: its `t` varint sits 4 bytes past the
    // length prefix. Patch t=1 to t=2 and re-fingerprint, so the file
    // passes every open-time structural check and only the decode-time
    // `t` validation is left to object.
    let len0 = u32::from_le_bytes(valid[32..36].try_into().unwrap()) as usize;
    let frame1 = 32 + 4 + len0;
    assert_eq!(valid[frame1 + 4], 1, "frame 1 must encode t=1");
    let mut bad = valid.clone();
    bad[frame1 + 4] = 2;
    refingerprint(&mut bad);

    let path = temp("corrupt-out-of-order.ftr");
    std::fs::write(&path, &bad).unwrap();
    for (mode, opened) in open_all_modes(&path) {
        let mut packed = opened.unwrap_or_else(|e| panic!("{mode}: open must succeed: {e}"));
        // Round 0 is intact ...
        packed.round(0).unwrap();
        // ... round 1 carries the wrong t.
        let err = packed.round(1).err().unwrap();
        assert!(
            err.contains("out-of-order round (expected t=1, got t=2)"),
            "{mode}: {err:?}"
        );
        // The same protects streaming replay (no partial rounds emitted).
        let mut replay = PackedReplay::from_trace(packed, 12).unwrap();
        replay.next_round().unwrap();
        assert!(replay.next_round().is_err(), "{mode}: replay must fail too");
    }
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Windowed == full
// ---------------------------------------------------------------------------

/// Deterministic synthetic demand, cheap enough for 10⁵–10⁶ rounds: a
/// couple of origins whose ids and counts are simple functions of `t`.
fn synthetic_round(t: u64, universe: u64) -> RoundRequests {
    let a = (t * 7) % universe;
    let b = (t * 13 + 5) % universe;
    let mut counts = vec![(NodeId::new(a as usize), 1 + (t % 3) as usize)];
    if b != a {
        counts.push((NodeId::new(b as usize), 1 + (t % 5) as usize));
    }
    RoundRequests::from_counts(counts)
}

/// Streams `rounds` synthetic rounds into a pack at `path`.
fn write_synthetic_pack(path: &str, rounds: u64, universe: u64) {
    let file = std::fs::File::create(path).unwrap();
    let mut writer = PackWriter::new(std::io::BufWriter::new(file)).unwrap();
    for t in 0..rounds {
        writer.write_round(&synthetic_round(t, universe)).unwrap();
    }
    let (summary, _) = writer.finish().unwrap();
    assert_eq!(summary.rounds, rounds);
}

#[test]
fn windowed_views_match_full_materialization_bitwise() {
    const ROUNDS: u64 = 100_000;
    let path = temp("window-1e5.ftr");
    write_synthetic_pack(&path, ROUNDS, 97);

    for (mode, opened) in open_all_modes(&path) {
        let mut packed = opened.unwrap();
        let full = packed.materialize().unwrap();
        assert_eq!(full.len() as u64, ROUNDS);
        for window in [1u64, 7, 4096, ROUNDS] {
            let mut start = 0u64;
            while start < ROUNDS {
                let view = packed.window(start, window).unwrap();
                assert_eq!(
                    view,
                    full.slice(start as usize, (start + window) as usize),
                    "{mode}: window [{start}, {start}+{window}) diverged"
                );
                start += window;
            }
        }
    }

    // The windowed Scenario adapter replays identically to the full
    // materialization at every window size, including re-reads of
    // earlier rounds (window misses in both directions).
    let full = PackedTrace::open(&path).unwrap().materialize().unwrap();
    for window in [1u64, 7, 4096, ROUNDS] {
        let mut scenario = PackedScenario::open(&path, 97, window).unwrap();
        for t in (0..200).chain(ROUNDS - 200..ROUNDS).chain(100..110) {
            assert_eq!(
                &scenario.requests(t),
                full.round(t as usize),
                "window={window} t={t}"
            );
        }
        assert!(scenario.requests(ROUNDS).is_empty());
    }
    std::fs::remove_file(&path).ok();
}

#[test]
fn million_round_pack_replays_with_o_window_residency() {
    const ROUNDS: u64 = 1_000_000;
    const UNIVERSE: u64 = 997;
    let path = temp("million.ftr");
    write_synthetic_pack(&path, ROUNDS, UNIVERSE);

    for (mode, opened) in open_all_modes(&path) {
        let mut packed = opened.unwrap();
        assert_eq!(packed.len(), ROUNDS, "{mode}");
        assert_eq!(packed.origin_universe(), UNIVERSE, "{mode}");

        // O(1) frame-index seeks: spot-check rounds far apart without
        // decoding anything in between, never materializing.
        for t in [0u64, 1, 123_456, 500_000, ROUNDS - 1] {
            assert_eq!(
                packed.round(t).unwrap(),
                synthetic_round(t, UNIVERSE),
                "{mode}: round {t}"
            );
        }

        // A mid-trace window stays small: the resident decoded bytes are
        // O(window), not O(trace).
        let view = packed.window(123_456, 2048).unwrap();
        assert_eq!(view.len(), 2048);
        assert_eq!(view.round(0), &synthetic_round(123_456, UNIVERSE));
        assert!(
            view.memory_bytes() < 1 << 20,
            "{mode}: 2048-round window must stay under 1 MiB, got {}",
            view.memory_bytes()
        );
    }

    // The replay source fast-forwards by index seek (resume path): skip
    // a million-ish rounds in O(1) and read the tail.
    let mut replay = PackedReplay::open(&path, UNIVERSE as usize).unwrap();
    replay.skip(ROUNDS - 10).unwrap();
    for t in ROUNDS - 10..ROUNDS {
        assert_eq!(
            replay.next_round().unwrap().unwrap(),
            synthetic_round(t, UNIVERSE),
            "tail round {t}"
        );
    }
    assert!(replay.next_round().unwrap().is_none());
    std::fs::remove_file(&path).ok();
}

// ---------------------------------------------------------------------------
// Serve: packed source, checkpoint + resume bit-identical
// ---------------------------------------------------------------------------

fn session_args(source: &str, checkpoint: &str) -> Vec<String> {
    vec![
        "topo=unit-line:8".into(),
        "wl=uniform:req=3".into(),
        "strat=onth".into(),
        "rounds=40".into(),
        "seed=3".into(),
        "k=4".into(),
        format!("source={source}"),
        format!("checkpoint={checkpoint}"),
    ]
}

/// A serve session over a packed source steps identically to one over
/// the JSONL original, and resuming mid-trace from a checkpoint
/// continues bit-identically (every step body and the final placement).
#[test]
fn serve_session_over_packed_source_resumes_bit_identically() {
    const STEPS: usize = 36;
    const CUT: usize = 17;
    let dir = std::env::temp_dir().join(format!("flexserve-packed-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let jsonl = dir.join("demand.jsonl").display().to_string();
    let pack = dir.join("demand.ftr").display().to_string();

    // Demand: a recorded uniform trace, packed and JSONL side by side.
    let env = ExperimentEnv::from_spec(&"unit-line:8".parse().unwrap(), 3).unwrap();
    let workload: WorkloadSpec = "uniform:req=3".parse().unwrap();
    let trace = fresh_trace(&workload, &env, 10, 3, STEPS as u64);
    std::fs::write(&jsonl, trace.to_jsonl()).unwrap();
    std::fs::write(&pack, trace.to_packed()).unwrap();

    // Reference: uninterrupted sessions over the JSONL and packed files.
    let mgr = SessionManager::new(8);
    let ck_a = dir.join("ref-jsonl.json").display().to_string();
    let ck_b = dir.join("ref-pack.json").display().to_string();
    mgr.create(
        "ref-jsonl",
        SessionConfig::parse(&session_args(&jsonl, &ck_a), "ref-jsonl").unwrap(),
    )
    .unwrap();
    mgr.create(
        "ref-pack",
        SessionConfig::parse(&session_args(&pack, &ck_b), "ref-pack").unwrap(),
    )
    .unwrap();
    let mut reference = Vec::with_capacity(STEPS);
    for t in 0..STEPS {
        let a = mgr.step("ref-jsonl", "").unwrap().render();
        let b = mgr.step("ref-pack", "").unwrap().render();
        assert_eq!(a, b, "step {t}: packed and JSONL sources must agree");
        reference.push(a);
    }
    let reference_placement = mgr.placement("ref-pack").unwrap().render();
    assert_eq!(
        reference_placement,
        mgr.placement("ref-jsonl").unwrap().render()
    );

    // Interrupted run: step to CUT over the packed source, checkpoint,
    // tear the session down, resume, and finish the horizon.
    let ck = dir.join("resume.json").display().to_string();
    let mut cell = session_args(&pack, &ck);
    mgr.create("resumer", SessionConfig::parse(&cell, "resumer").unwrap())
        .unwrap();
    for step in reference.iter().take(CUT) {
        assert_eq!(&mgr.step("resumer", "").unwrap().render(), step);
    }
    mgr.checkpoint("resumer").unwrap();
    mgr.remove("resumer").unwrap();

    cell.push("resume=true".into());
    let info = mgr
        .create("resumer", SessionConfig::parse(&cell, "resumer").unwrap())
        .unwrap();
    assert_eq!(info.get("resumed_at").unwrap().as_u64(), Some(CUT as u64));
    assert!(
        info.get("source")
            .unwrap()
            .as_str()
            .unwrap()
            .contains("packed replay"),
        "resumed session must be on the packed source: {}",
        info.render()
    );
    for (t, step) in reference.iter().enumerate().skip(CUT) {
        assert_eq!(
            &mgr.step("resumer", "").unwrap().render(),
            step,
            "resumed step {t} diverged from the uninterrupted run"
        );
    }
    assert_eq!(
        mgr.placement("resumer").unwrap().render(),
        reference_placement
    );

    // The packed file ends exactly at the horizon: the next pull is a
    // clean exhaustion, mirroring the JSONL behavior.
    assert!(mgr.step("resumer", "").is_err());
    assert!(mgr.step("ref-pack", "").is_err());

    // Resuming past the end of a *shorter* pack fails cleanly at create.
    let short = dir.join("short.ftr").display().to_string();
    std::fs::write(&short, trace.slice(0, CUT - 1).to_packed()).unwrap();
    let mut short_cell = session_args(&short, &ck);
    short_cell.push("resume=true".into());
    match mgr.create(
        "too-short",
        SessionConfig::parse(&short_cell, "too-short").unwrap(),
    ) {
        Ok(_) => panic!("resume from a too-short pack must fail"),
        Err(e) => {
            let msg = format!("{e:?}");
            assert!(
                msg.contains("shorter than the checkpoint"),
                "unexpected error: {msg}"
            );
        }
    }

    mgr.shutdown_all();
    std::fs::remove_dir_all(&dir).ok();
}
