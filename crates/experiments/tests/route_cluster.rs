//! Cluster-mode guarantees of the `flexserve route` tier, exercised
//! over real TCP against real worker daemons:
//!
//! * **migration equivalence** — a session live-migrated between
//!   workers (drain + re-join) steps, places, totals and checkpoints
//!   **bit-identically** to a session that never moved, for ONTH, ONBR
//!   and OFFSTAT and for sessions with a substrate-event schedule;
//! * **chaos** — a worker killed with SIGKILL mid-run has its sessions
//!   resurrected from their last checkpoints with the lost rounds
//!   replayed, landing exactly where an uninterrupted run lands;
//! * **skew balancing** — a lopsided placement table is spread until
//!   the per-worker counts differ by at most `skew=`;
//! * the router relays the worker error contract (404/409/413/429)
//!   and maps transport failures to 502;
//! * merged listings annotate rows with their worker and expose
//!   `migrated_to` tombstones over HTTP.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use flexserve_experiments::serve::route::ring::{HashRing, DEFAULT_REPLICAS};
use flexserve_experiments::serve::route::{run_on, RouteOptions};
use flexserve_experiments::serve::{serve_on, ServeOptions, SessionConfig, SessionManager};
use flexserve_workload::JsonValue;

/// One HTTP/1.1 exchange; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

/// [`http`] against a `host:port` string (worker addresses travel as
/// strings through the router API).
fn http_str(addr: &str, method: &str, path: &str, body: &str) -> (u16, String) {
    http(addr.parse().expect("worker addr"), method, path, body)
}

fn json(body: &str) -> JsonValue {
    JsonValue::parse(body.trim()).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// The cell every test session plays (strategy parameterized).
fn cell_args(strat: &str, ck: &Path, extra: &[&str]) -> Vec<String> {
    let mut args = vec![
        "topo=unit-line:12".to_string(),
        "wl=uniform:req=4".to_string(),
        format!("strat={strat}"),
        "rounds=60".to_string(),
        "seed=7".to_string(),
        "k=4".to_string(),
        format!("checkpoint={}", ck.display()),
    ];
    args.extend(extra.iter().map(|s| s.to_string()));
    args
}

/// A `POST /sessions` body for `name` with the given args.
fn create_body(name: &str, args: &[String]) -> String {
    let quoted: Vec<String> = args.iter().map(|a| format!("\"{a}\"")).collect();
    format!("{{\"name\":\"{name}\",\"args\":[{}]}}", quoted.join(","))
}

/// A unique temp path per test artifact (tests in this binary run in
/// parallel threads; colliding checkpoint files would cross-talk).
fn temp_path(tag: &str) -> PathBuf {
    let path = std::env::temp_dir().join(format!("flexserve-route-{tag}.ckpt.json"));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starts an in-thread worker daemon on an ephemeral port. Returns its
/// `host:port` address string and the join handle. The worker's default
/// session checkpoints into the temp dir so tests leave no droppings.
fn start_worker(tag: &str, extra: &[&str]) -> (String, std::thread::JoinHandle<()>) {
    let ck = temp_path(&format!("worker-default-{tag}"));
    let mut args = cell_args("onth", &ck, &[]);
    args.extend(extra.iter().map(|s| s.to_string()));
    let opts = ServeOptions::parse(&args).expect("worker args");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind worker");
    let addr = listener.local_addr().expect("worker addr");
    let handle = std::thread::spawn(move || {
        serve_on(listener, &opts).expect("worker run");
    });
    (format!("{addr}"), handle)
}

/// Starts an in-thread router over `workers` on an ephemeral port.
fn start_router(workers: &[String], extra: &[&str]) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let mut args = vec![format!("workers={}", workers.join("+"))];
    args.extend(extra.iter().map(|s| s.to_string()));
    let opts = RouteOptions::parse(&args).expect("router args");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind router");
    let addr = listener.local_addr().expect("router addr");
    let handle = std::thread::spawn(move || {
        run_on(listener, &opts).expect("router run");
    });
    (addr, handle)
}

fn stop(addr: SocketAddr, handle: std::thread::JoinHandle<()>) {
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
}

/// The reference: the same session served by a bare [`SessionManager`]
/// that never migrates. Step/placement/metrics/checkpoint responses from
/// the routed session must match it byte for byte.
fn reference(name: &str, args: &[String]) -> SessionManager {
    let mgr = SessionManager::new(8);
    let cfg = SessionConfig::parse(args, name).expect("reference config");
    mgr.create(name, cfg).expect("reference create");
    mgr
}

/// Where `name` currently lives according to `GET /cluster`.
fn worker_of(router: SocketAddr, name: &str) -> String {
    let (status, body) = http(router, "GET", "/cluster", "");
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    let sessions = v.get("sessions").and_then(JsonValue::as_array).unwrap();
    for row in sessions {
        if row.get("name").and_then(JsonValue::as_str) == Some(name) {
            return row
                .get("worker")
                .and_then(JsonValue::as_str)
                .unwrap()
                .to_string();
        }
    }
    panic!("session {name:?} not in the cluster view: {body}");
}

/// Blanks every `uptime_seconds` value (the one wall-clock field in
/// metrics and checkpoint documents) so the rest compares bitwise.
fn scrub_uptime(text: &str) -> String {
    const KEY: &str = "\"uptime_seconds\":";
    let mut out = String::new();
    let mut rest = text;
    while let Some(at) = rest.find(KEY) {
        out.push_str(&rest[..at]);
        out.push_str(KEY);
        out.push('0');
        let tail = &rest[at + KEY.len()..];
        let end = tail.find([',', '}']).unwrap_or(tail.len());
        rest = &tail[end..];
    }
    out.push_str(rest);
    out
}

/// Steps the routed session and the reference once each and asserts the
/// response bodies are byte-identical.
fn step_both(router: SocketAddr, name: &str, reference: &SessionManager, label: &str) {
    let (status, routed) = http(router, "POST", &format!("/sessions/{name}/step"), "");
    assert_eq!(status, 200, "{label}: {routed}");
    let expected = reference.step(name, "").expect("reference step").render();
    assert_eq!(
        routed,
        format!("{expected}\n"),
        "{label}: routed step body diverged from the unmigrated reference"
    );
}

/// The full drain + re-join migration equivalence drill for one strategy:
/// every step body, the final placement, the cumulative totals and the
/// checkpoint document must be byte-identical to a never-migrated run.
fn migration_equivalence(strat: &str, extra_cell: &[&str]) {
    let routed_ck = temp_path(&format!("eq-{strat}-routed"));
    let ref_ck = temp_path(&format!("eq-{strat}-ref"));
    let name = format!("mover-{strat}");

    let (wa, ha) = start_worker(&format!("eq-{strat}-a"), &[]);
    let (wb, hb) = start_worker(&format!("eq-{strat}-b"), &[]);
    // A long health interval keeps the background loop quiet: every
    // migration in this test is triggered explicitly.
    let (router, hr) = start_router(&[wa.clone(), wb.clone()], &["health-interval=60"]);

    let args = cell_args(strat, &routed_ck, extra_cell);
    let (status, body) = http(router, "POST", "/sessions", &create_body(&name, &args));
    assert_eq!(status, 200, "{body}");
    let mgr = reference(&name, &cell_args(strat, &ref_ck, extra_cell));

    let home = worker_of(router, &name);
    let away = if home == wa { wb.clone() } else { wa.clone() };

    for t in 0..12 {
        step_both(
            router,
            &name,
            &mgr,
            &format!("{strat} t={t} (before drain)"),
        );
    }

    // Drain the session's worker: the router live-migrates it across.
    let (status, body) = http(router, "DELETE", &format!("/workers/{home}"), "");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        worker_of(router, &name),
        away,
        "session must move off the drained worker"
    );
    let (_, body) = http(router, "GET", "/cluster", "");
    assert_eq!(json(&body).get("live_workers").unwrap().as_u64(), Some(1));

    // The drained worker keeps a `migrated_to` tombstone (it still runs —
    // draining is a router-side operation).
    let (status, body) = http_str(&home, "GET", "/sessions", "");
    assert_eq!(status, 200, "{body}");
    let rows = json(&body)
        .get("sessions")
        .and_then(JsonValue::as_array)
        .unwrap()
        .to_vec();
    let tomb = rows
        .iter()
        .find(|r| r.get("name").and_then(JsonValue::as_str) == Some(name.as_str()))
        .unwrap_or_else(|| panic!("no tombstone for {name:?} on {home}: {body}"));
    assert_eq!(
        tomb.get("status").and_then(JsonValue::as_str),
        Some("migrated")
    );
    assert_eq!(
        tomb.get("migrated_to").and_then(JsonValue::as_str),
        Some(away.as_str())
    );
    assert_eq!(tomb.get("final_t").and_then(JsonValue::as_u64), Some(12));
    assert!(
        tomb.get("evicted").is_none(),
        "migration is not idle eviction: {body}"
    );

    for t in 12..20 {
        step_both(router, &name, &mgr, &format!("{strat} t={t} (after drain)"));
    }

    // Re-join the drained worker: the ring re-forms and the session
    // migrates home — a second live migration on the same session.
    let (status, body) = http(
        router,
        "POST",
        "/workers",
        &format!("{{\"addr\":\"{home}\"}}"),
    );
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        worker_of(router, &name),
        home,
        "ring owner reclaims the session on re-join"
    );

    for t in 20..24 {
        step_both(
            router,
            &name,
            &mgr,
            &format!("{strat} t={t} (after re-join)"),
        );
    }

    // Placement: byte-identical.
    let (status, routed) = http(router, "GET", &format!("/sessions/{name}/placement"), "");
    assert_eq!(status, 200, "{routed}");
    assert_eq!(
        routed,
        format!("{}\n", mgr.placement(&name).unwrap().render())
    );

    // Cumulative totals: byte-identical modulo wall-clock uptime.
    let (status, routed) = http(router, "GET", &format!("/sessions/{name}/metrics"), "");
    assert_eq!(status, 200, "{routed}");
    let routed_cum = json(&routed).get("cumulative").unwrap().clone();
    let ref_cum = mgr
        .metrics(&name)
        .unwrap()
        .get("cumulative")
        .unwrap()
        .clone();
    assert_eq!(routed_cum.get("rounds_served").unwrap().as_u64(), Some(24));
    assert_eq!(
        scrub_uptime(&routed_cum.render()),
        scrub_uptime(&ref_cum.render()),
        "cumulative totals diverged after two migrations"
    );

    // Checkpoint document: byte-identical modulo uptime.
    let (status, routed) = http(router, "POST", &format!("/sessions/{name}/checkpoint"), "");
    assert_eq!(status, 200, "{routed}");
    let expected = mgr.checkpoint(&name).unwrap();
    assert_eq!(
        scrub_uptime(&routed),
        scrub_uptime(&expected),
        "checkpoint bytes diverged after two migrations"
    );

    stop(router, hr);
    http_str(&wa, "POST", "/shutdown", "");
    http_str(&wb, "POST", "/shutdown", "");
    ha.join().unwrap();
    hb.join().unwrap();
    mgr.shutdown_all();
    let _ = std::fs::remove_file(&routed_ck);
    let _ = std::fs::remove_file(&ref_ck);
}

#[test]
fn migrated_sessions_are_bit_identical_onth() {
    migration_equivalence("onth", &[]);
}

#[test]
fn migrated_sessions_are_bit_identical_onbr() {
    migration_equivalence("onbr", &[]);
}

#[test]
fn migrated_sessions_are_bit_identical_offstat() {
    migration_equivalence("offstat", &[]);
}

#[test]
fn evented_sessions_migrate_with_their_schedule() {
    // The fail fires before the migration (mutated link state must ride
    // the checkpoint), the recover after it (the pending schedule must
    // ride too).
    migration_equivalence("onth", &["events=3:fail-link:0-1,15:recover-link:0-1"]);
}

#[test]
fn killed_workers_sessions_resurrect_and_replay() {
    let routed_ck = temp_path("chaos-routed");
    let ref_ck = temp_path("chaos-ref");
    let name = "phoenix";

    // Workers as real processes — this test kills one with SIGKILL.
    let spawn = |tag: &str| -> (std::process::Child, String) {
        let ck = temp_path(&format!("chaos-default-{tag}"));
        let mut child = std::process::Command::new(env!("CARGO_BIN_EXE_flexserve"))
            .arg("serve")
            .args(cell_args("onth", &ck, &["port=0"]))
            .stdout(std::process::Stdio::piped())
            .stderr(std::process::Stdio::null())
            .spawn()
            .expect("spawn worker process");
        let mut reader = BufReader::new(child.stdout.take().unwrap());
        let addr = loop {
            let mut line = String::new();
            if reader.read_line(&mut line).expect("worker stdout") == 0 {
                panic!("worker exited before announcing its address");
            }
            if let Some(at) = line.find("http://") {
                let rest = &line[at + "http://".len()..];
                let end = rest.find(char::is_whitespace).unwrap_or(rest.len());
                break rest[..end].to_string();
            }
        };
        // Keep draining so the child never blocks on a full pipe.
        std::thread::spawn(move || {
            let mut sink = String::new();
            let _ = reader.read_to_string(&mut sink);
        });
        (child, addr)
    };
    let (mut child_a, wa) = spawn("a");
    let (mut child_b, wb) = spawn("b");
    let (router, hr) = start_router(
        &[wa.clone(), wb.clone()],
        &["health-interval=0.1", "mark-down=2", "request-timeout=5"],
    );

    let args = cell_args("onth", &routed_ck, &[]);
    let (status, body) = http(router, "POST", "/sessions", &create_body(name, &args));
    assert_eq!(status, 200, "{body}");
    let mgr = reference(name, &cell_args("onth", &ref_ck, &[]));

    // Rounds 0-4, checkpoint at t=5, then rounds 5-6 past the snapshot —
    // the resurrection must replay exactly those two.
    for t in 0..5 {
        step_both(router, name, &mgr, &format!("chaos t={t}"));
    }
    let (status, _) = http(router, "POST", &format!("/sessions/{name}/checkpoint"), "");
    assert_eq!(status, 200);
    for t in 5..7 {
        step_both(router, name, &mgr, &format!("chaos t={t}"));
    }

    let home = worker_of(router, name);
    let (victim, survivor) = if home == wa {
        (&mut child_a, wb.clone())
    } else {
        (&mut child_b, wa.clone())
    };
    victim.kill().expect("SIGKILL the session's worker");
    victim.wait().expect("reap the killed worker");

    // The health loop marks the worker down and resurrects the session
    // on the survivor, replaying rounds 5 and 6 from the checkpoint.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        if worker_of(router, name) == survivor {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "session was not resurrected on the survivor in time"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
    let (_, body) = http(router, "GET", "/cluster", "");
    let v = json(&body);
    assert_eq!(v.get("live_workers").unwrap().as_u64(), Some(1), "{body}");
    let row = v
        .get("sessions")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .find(|r| r.get("name").and_then(JsonValue::as_str) == Some(name))
        .unwrap()
        .clone();
    assert_eq!(
        row.get("next_t").unwrap().as_u64(),
        Some(7),
        "replay must restore the pre-crash round counter: {body}"
    );

    // Rounds 7-11 continue bit-identically to the uninterrupted run.
    for t in 7..12 {
        step_both(
            router,
            name,
            &mgr,
            &format!("chaos t={t} (after resurrection)"),
        );
    }
    let (status, routed) = http(router, "GET", &format!("/sessions/{name}/placement"), "");
    assert_eq!(status, 200, "{routed}");
    assert_eq!(
        routed,
        format!("{}\n", mgr.placement(name).unwrap().render())
    );

    stop(router, hr);
    let survivor_child = if home == wa {
        &mut child_b
    } else {
        &mut child_a
    };
    survivor_child.kill().expect("stop the survivor");
    survivor_child.wait().expect("reap the survivor");
    mgr.shutdown_all();
    let _ = std::fs::remove_file(&routed_ck);
    let _ = std::fs::remove_file(&ref_ck);
}

#[test]
fn skew_balancing_spreads_a_lopsided_table() {
    let (wa, ha) = start_worker("skew-a", &[]);
    let (wb, hb) = start_worker("skew-b", &[]);
    let (router, hr) = start_router(
        &[wa.clone(), wb.clone()],
        &["skew=1", "health-interval=0.1"],
    );

    // Pick four names the ring maps onto worker A — the same ring the
    // router builds, reconstructed client-side from the real addresses.
    let mut ring = HashRing::new(DEFAULT_REPLICAS);
    ring.add(&wa);
    ring.add(&wb);
    let names: Vec<String> = (0..10_000)
        .map(|i| format!("skew-{i}"))
        .filter(|n| ring.owner(n) == Some(wa.as_str()))
        .take(4)
        .collect();
    assert_eq!(names.len(), 4, "ring must own four of ten thousand names");

    let mut cks = Vec::new();
    for n in &names {
        let ck = temp_path(&format!("skew-{n}"));
        let (status, body) = http(
            router,
            "POST",
            "/sessions",
            &create_body(n, &cell_args("onth", &ck, &[])),
        );
        assert_eq!(status, 200, "{body}");
        assert_eq!(
            worker_of(router, n),
            wa,
            "ring placement puts every pick on A"
        );
        cks.push(ck);
    }

    // The health loop's skew pass migrates until max - min <= 1.
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let (_, body) = http(router, "GET", "/cluster", "");
        let v = json(&body);
        assert_eq!(v.get("skew").unwrap().as_u64(), Some(1), "{body}");
        let counts: Vec<u64> = v
            .get("workers")
            .and_then(JsonValue::as_array)
            .unwrap()
            .iter()
            .map(|w| w.get("sessions").unwrap().as_u64().unwrap())
            .collect();
        if counts == [2, 2] {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "skew balance did not converge: counts {counts:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    // A session moved at t=0 is still bit-identical to a fresh solo run.
    let moved = names
        .iter()
        .find(|n| worker_of(router, n) == wb)
        .expect("someone moved to B");
    let ref_ck = temp_path("skew-ref");
    let mgr = reference(moved, &cell_args("onth", &ref_ck, &[]));
    for t in 0..3 {
        step_both(router, moved, &mgr, &format!("skew t={t}"));
    }

    stop(router, hr);
    http_str(&wa, "POST", "/shutdown", "");
    http_str(&wb, "POST", "/shutdown", "");
    ha.join().unwrap();
    hb.join().unwrap();
    mgr.shutdown_all();
    for ck in cks {
        let _ = std::fs::remove_file(&ck);
    }
    let _ = std::fs::remove_file(&ref_ck);
}

#[test]
fn router_relays_the_session_error_contract() {
    // A one-worker cluster whose worker is already full (its default
    // session occupies the single slot).
    let (wa, ha) = start_worker("err-a", &["max-sessions=1"]);
    let (router, hr) = start_router(
        std::slice::from_ref(&wa),
        &["health-interval=60", "request-timeout=1"],
    );
    let ck = temp_path("err");

    // 429 from the worker is relayed verbatim.
    let (status, body) = http(
        router,
        "POST",
        "/sessions",
        &create_body("overflow", &cell_args("onth", &ck, &[])),
    );
    assert_eq!(status, 429, "{body}");
    assert!(body.contains("max-sessions"), "{body}");

    // Unknown sessions are 404 on every scoped route.
    for (method, path) in [
        ("GET", "/sessions/ghost/placement"),
        ("GET", "/sessions/ghost/metrics"),
        ("POST", "/sessions/ghost/step"),
        ("POST", "/sessions/ghost/checkpoint"),
        ("DELETE", "/sessions/ghost"),
    ] {
        let (status, body) = http(router, method, path, "");
        assert_eq!(status, 404, "{method} {path}: {body}");
        assert!(body.contains("on the cluster"), "{body}");
    }
    let (status, body) = http(
        router,
        "POST",
        "/sessions/ghost/events",
        r#"{"events": "9:fail-link:0-1"}"#,
    );
    assert_eq!(status, 404, "{body}");

    // Malformed creates are 400 without touching any worker.
    for bad in [
        "not json",
        r#"{"args":["topo=unit-line:12"]}"#,
        r#"{"name":"x","args":"nope"}"#,
        r#"{"name":"x","args":["zap=1"]}"#,
    ] {
        let (status, body) = http(router, "POST", "/sessions", bad);
        assert_eq!(status, 400, "{bad}: {body}");
    }

    // Unknown endpoints advertise the router inventory.
    let (status, body) = http(router, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("GET /cluster"), "{body}");
    assert!(body.contains("DELETE /workers/<addr>"), "{body}");

    // Fleet management errors.
    let (status, body) = http(router, "POST", "/workers", "not json");
    assert_eq!(status, 400, "{body}");
    let (status, body) = http(router, "POST", "/workers", r#"{"addr":"127.0.0.1:1"}"#);
    assert_eq!(status, 502, "{body}");
    let (status, body) = http(
        router,
        "POST",
        "/workers",
        &format!("{{\"addr\":\"{wa}\"}}"),
    );
    assert_eq!(status, 409, "{body}");
    let (status, body) = http(router, "DELETE", "/workers/127.0.0.1:2", "");
    assert_eq!(status, 404, "{body}");
    let (status, body) = http(router, "DELETE", &format!("/workers/{wa}"), "");
    assert_eq!(status, 409, "last live worker must refuse to drain: {body}");

    // Front-end hardening holds at the router too: an oversized declared
    // body is a 413 before any of it is read, a stalled half-request a
    // 408 after the request timeout.
    let mut stream = TcpStream::connect(router).unwrap();
    stream
        .write_all(b"POST /sessions HTTP/1.1\r\nHost: t\r\nContent-Length: 999999999\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 413"), "{response}");

    let mut stream = TcpStream::connect(router).unwrap();
    stream.write_all(b"POST /sessions HT").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    assert!(response.starts_with("HTTP/1.1 408"), "{response}");

    stop(router, hr);

    // A second cluster for the transport-failure contract: its worker
    // shuts down underneath the router (no mark-down — the long health
    // interval keeps the dead worker on the ring).
    let (wb, hb) = start_worker("err-b", &[]);
    let (router, hr) = start_router(std::slice::from_ref(&wb), &["health-interval=60"]);
    let ck2 = temp_path("err-dup");
    let body = create_body("dup", &cell_args("onth", &ck2, &[]));
    let (status, resp) = http(router, "POST", "/sessions", &body);
    assert_eq!(status, 200, "{resp}");
    let (status, resp) = http(router, "POST", "/sessions", &body);
    assert_eq!(status, 409, "duplicate create: {resp}");

    http_str(&wb, "POST", "/shutdown", "");
    hb.join().unwrap();
    let (status, resp) = http(router, "POST", "/sessions/dup/step", "");
    assert_eq!(status, 502, "{resp}");
    assert!(resp.contains("unreachable"), "{resp}");
    let (status, resp) = http(
        router,
        "POST",
        "/sessions",
        &create_body("late", &cell_args("onth", &ck2, &[])),
    );
    assert_eq!(status, 502, "{resp}");

    stop(router, hr);
    http_str(&wa, "POST", "/shutdown", "");
    ha.join().unwrap();
    let _ = std::fs::remove_file(&ck);
    let _ = std::fs::remove_file(&ck2);
}

#[test]
fn merged_listings_annotate_workers_and_expose_tombstones() {
    let (wa, ha) = start_worker("list-a", &[]);
    let (wb, hb) = start_worker("list-b", &[]);
    let (router, hr) = start_router(&[wa.clone(), wb.clone()], &["health-interval=60"]);

    // One session per worker, names picked via the client-side ring.
    let mut ring = HashRing::new(DEFAULT_REPLICAS);
    ring.add(&wa);
    ring.add(&wb);
    let on_a = (0..10_000)
        .map(|i| format!("list-{i}"))
        .find(|n| ring.owner(n) == Some(wa.as_str()))
        .unwrap();
    let on_b = (0..10_000)
        .map(|i| format!("list-{i}"))
        .find(|n| ring.owner(n) == Some(wb.as_str()))
        .unwrap();
    let ck_a = temp_path("list-on-a");
    let ck_b = temp_path("list-on-b");
    for (n, ck) in [(&on_a, &ck_a), (&on_b, &ck_b)] {
        let (status, body) = http(
            router,
            "POST",
            "/sessions",
            &create_body(n, &cell_args("onth", ck, &[])),
        );
        assert_eq!(status, 200, "{body}");
    }

    let (status, body) = http(router, "GET", "/sessions", "");
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    // `count` is the router's own table; the workers' default sessions
    // appear in the merged rows but are not router-managed.
    assert_eq!(v.get("count").unwrap().as_u64(), Some(2), "{body}");
    assert_eq!(
        v.get("workers").unwrap().as_str_array().unwrap().len(),
        2,
        "{body}"
    );
    let rows = v
        .get("sessions")
        .and_then(JsonValue::as_array)
        .unwrap()
        .to_vec();
    let find = |name: &str| {
        rows.iter()
            .find(|r| r.get("name").and_then(JsonValue::as_str) == Some(name))
            .unwrap_or_else(|| panic!("no row for {name:?}: {body}"))
            .clone()
    };
    assert_eq!(
        find(&on_a).get("worker").unwrap().as_str(),
        Some(wa.as_str())
    );
    assert_eq!(
        find(&on_b).get("worker").unwrap().as_str(),
        Some(wb.as_str())
    );
    assert_eq!(find(&on_a).get("status").unwrap().as_str(), Some("live"));
    // Each worker's own default session is annotated too.
    assert_eq!(
        rows.iter()
            .filter(|r| r.get("name").and_then(JsonValue::as_str) == Some("default"))
            .count(),
        2,
        "{body}"
    );

    // Drain A: its session migrates to B and the merged listing shows
    // the migrated tombstone on A's listing.
    let (status, body) = http(router, "DELETE", &format!("/workers/{wa}"), "");
    assert_eq!(status, 200, "{body}");
    let (status, body) = http_str(&wa, "GET", "/sessions", "");
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    let tomb = v
        .get("sessions")
        .and_then(JsonValue::as_array)
        .unwrap()
        .iter()
        .find(|r| r.get("name").and_then(JsonValue::as_str) == Some(on_a.as_str()))
        .unwrap()
        .clone();
    assert_eq!(tomb.get("status").unwrap().as_str(), Some("migrated"));
    assert_eq!(tomb.get("migrated_to").unwrap().as_str(), Some(wb.as_str()));

    // Deleting through the router forwards the plain (non-migration)
    // flavor and drops the table entry.
    let (status, body) = http(router, "DELETE", &format!("/sessions/{on_b}"), "");
    assert_eq!(status, 200, "{body}");
    assert!(json(&body).get("migrated_to").is_none(), "{body}");
    let (_, body) = http(router, "GET", "/sessions", "");
    assert_eq!(
        json(&body).get("count").unwrap().as_u64(),
        Some(1),
        "{body}"
    );

    stop(router, hr);
    http_str(&wa, "POST", "/shutdown", "");
    http_str(&wb, "POST", "/shutdown", "");
    ha.join().unwrap();
    hb.join().unwrap();
    let _ = std::fs::remove_file(&ck_a);
    let _ = std::fs::remove_file(&ck_b);
}
