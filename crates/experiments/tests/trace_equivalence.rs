//! The shared-trace refactor's central promise, property-tested: a
//! figure/sweep cell group evaluating its strategies against **one
//! cached, `Arc`-shared demand trace** produces cost breakdowns
//! **bitwise identical** to every strategy independently regenerating and
//! re-recording its own workload — across random (topology, workload,
//! strategy-set, seed) tuples.
//!
//! This is what lets the experiments layer route all demand through the
//! [`TraceCache`] without golden-CSV risk: scenarios are deterministic
//! under their seed and strategies only *read* the trace, so sharing the
//! materialization can never change a number.

use proptest::prelude::*;

use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::spec::{CellSpec, TopologySpec, WorkloadSpec};
use flexserve_experiments::{run_algorithm, run_algorithms, Algorithm, TraceCache, TraceKey};
use flexserve_sim::{CostBreakdown, CostParams, LoadModel, SimContext};
use flexserve_workload::{record, Trace};

/// Small substrates spanning the generator families (kept cheap: each
/// proptest case builds one APSP).
const TOPOLOGIES: &[&str] = &["unit-line:12", "er:30", "star:9", "ring:16", "grid:4x4"];

/// Workload families, bare specs as `flexserve run wl=` takes them.
const WORKLOADS: &[&str] = &[
    "uniform:req=3",
    "commuter-dynamic",
    "commuter-static",
    "time-zones",
    "onoff",
];

/// Every algorithm `run_algorithm` dispatches — online and offline alike
/// read the same recorded trace.
const ALGORITHMS: &[Algorithm] = &[
    Algorithm::OnTh,
    Algorithm::OnBrFixed,
    Algorithm::OnBrDyn,
    Algorithm::OffBr,
    Algorithm::OffTh,
    Algorithm::Static,
];

/// Records the cell's demand exactly like the independent path does.
fn fresh_trace(
    workload: &WorkloadSpec,
    env: &ExperimentEnv,
    lambda: u64,
    seed: u64,
    rounds: u64,
) -> Trace {
    let mut scenario = workload.instantiate(&env.graph, &env.matrix, 8, lambda, seed);
    record(scenario.as_mut(), rounds)
}

fn run_all_independent(
    ctx: &SimContext<'_>,
    workload: &WorkloadSpec,
    env: &ExperimentEnv,
    lambda: u64,
    seed: u64,
    rounds: u64,
    algs: &[Algorithm],
) -> Vec<CostBreakdown> {
    algs.iter()
        .map(|&alg| {
            let trace = fresh_trace(workload, env, lambda, seed, rounds);
            run_algorithm(ctx, &trace, alg).total()
        })
        .collect()
}

/// A replayed trace file is the same demand under every seed and
/// substrate, so an N-seed replay cell — even on a seeded random
/// topology whose fingerprint differs per seed — must share **one**
/// cache entry (one file read) instead of materializing N copies.
#[test]
fn replay_workload_shares_one_cache_entry_across_seeds_and_substrates() {
    let dir = std::env::temp_dir().join(format!("flexserve-replay-share-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("demand.jsonl");
    std::fs::write(
        &path,
        "{\"t\":0,\"origins\":[1,2,1]}\n{\"t\":1,\"origins\":[0]}\n",
    )
    .unwrap();

    let mut cell = CellSpec::new(
        "er:30".parse().unwrap(),
        format!("replay:{}", path.display()).parse().unwrap(),
        "onth".parse().unwrap(),
    );
    cell.rounds = 2;
    cell.seeds = vec![1, 2];

    let env1 = ExperimentEnv::from_spec(&cell.topology, 1).unwrap();
    let env2 = ExperimentEnv::from_spec(&cell.topology, 2).unwrap();
    assert_ne!(
        env1.graph.fingerprint(),
        env2.graph.fingerprint(),
        "seeded ER substrates must differ for this test to bite"
    );
    let before = TraceCache::global().stats();
    let t1 = cell.shared_trace(&env1, 1);
    let t2 = cell.shared_trace(&env2, 2);
    let after = TraceCache::global().stats();
    assert_eq!(after.misses - before.misses, 1, "one file read per cell");
    assert_eq!(after.hits - before.hits, 1, "further seeds hit");
    assert!(
        std::ptr::eq(t1.round(0), t2.round(0)),
        "seeds share the Arc-held materialization"
    );
    std::fs::remove_dir_all(&dir).ok();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Shared-trace evaluation == independent per-strategy evaluation,
    /// bit for bit, and the cache records exactly one miss per group.
    #[test]
    fn shared_trace_evaluation_is_bitwise_identical(
        topo_idx in 0..TOPOLOGIES.len(),
        wl_idx in 0..WORKLOADS.len(),
        algs_mask in 1usize..(1 << ALGORITHMS.len()),
        seed in 0u64..1000,
        lambda in 1u64..12,
        rounds in 10u64..40,
    ) {
        // A non-empty subsequence of ALGORITHMS, picked by bitmask (the
        // vendored proptest subset has no sample::subsequence).
        let algs: Vec<Algorithm> = ALGORITHMS
            .iter()
            .enumerate()
            .filter(|(i, _)| algs_mask & (1 << i) != 0)
            .map(|(_, &alg)| alg)
            .collect();
        let topology: TopologySpec = TOPOLOGIES[topo_idx].parse().unwrap();
        let workload: WorkloadSpec = WORKLOADS[wl_idx].parse().unwrap();
        let env = ExperimentEnv::from_spec(&topology, seed).unwrap();
        let ctx = env.context(CostParams::default().with_max_servers(4), LoadModel::Linear);

        // Independent plane: every strategy regenerates its own demand.
        let independent = run_all_independent(
            &ctx, &workload, &env, lambda, seed, rounds, &algs,
        );

        // Shared plane: one materialization through a trace cache, every
        // strategy reads the same Arc-held rounds (grouped-runner shape).
        let cache = TraceCache::with_capacity_bytes(1 << 22);
        let key = TraceKey {
            substrate: env.graph.fingerprint(),
            workload: workload.to_string(),
            t_periods: 8,
            lambda,
            rounds,
            seed,
        };
        // Fetch once per strategy, as grouped cells do: first records,
        // the rest must hit and hand back the same storage.
        let traces: Vec<Trace> = algs
            .iter()
            .map(|_| {
                cache.get_or_record(key.clone(), || {
                    fresh_trace(&workload, &env, lambda, seed, rounds)
                })
            })
            .collect();
        prop_assert_eq!(cache.stats().misses, 1, "one recording per group");
        prop_assert_eq!(cache.stats().hits, algs.len() as u64 - 1);
        for t in &traces[1..] {
            prop_assert!(
                std::ptr::eq(t.round(0), traces[0].round(0)),
                "cache hits must share the Arc storage"
            );
        }
        let shared = run_algorithms(&ctx, &traces[0], &algs);

        prop_assert_eq!(shared.len(), independent.len());
        for (alg, (s, i)) in algs.iter().zip(shared.iter().zip(&independent)) {
            prop_assert_eq!(s.access.to_bits(), i.access.to_bits(), "{:?} access", alg);
            prop_assert_eq!(s.running.to_bits(), i.running.to_bits(), "{:?} running", alg);
            prop_assert_eq!(s.migration.to_bits(), i.migration.to_bits(), "{:?} migration", alg);
            prop_assert_eq!(s.creation.to_bits(), i.creation.to_bits(), "{:?} creation", alg);
        }
    }
}
