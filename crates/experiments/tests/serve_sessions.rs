//! Multi-session daemon guarantees, exercised over real TCP:
//!
//! * two sessions on different topologies, stepped from concurrently
//!   interleaved connections, produce placements **bit-identical** to
//!   each cell served alone (no cross-session interference);
//! * checkpoint + restart (evict/recreate) of one session leaves the
//!   other session untouched;
//! * `flexserve-checkpoint-v1` files written before the v2 metrics bump
//!   still resume;
//! * the session surface's error contract (404/409/429) holds.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;

use flexserve_core::initial_center;
use flexserve_experiments::serve::{serve_on, ServeOptions};
use flexserve_experiments::setup::ExperimentEnv;
use flexserve_experiments::spec::CellSpec;
use flexserve_sim::{CostParams, LoadModel, SimSession};
use flexserve_workload::{JsonValue, RequestSource, ScenarioStream};

/// One HTTP/1.1 exchange against the daemon; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> JsonValue {
    JsonValue::parse(body.trim()).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

/// Cell A: the daemon's default session.
const CELL_A: [&str; 6] = [
    "topo=unit-line:12",
    "wl=uniform:req=4",
    "strat=onth",
    "rounds=60",
    "seed=5",
    "k=4",
];

/// Cell B: a different substrate, workload sizing and seed.
const CELL_B: [&str; 6] = [
    "topo=star:9",
    "wl=uniform:req=2",
    "strat=onth",
    "rounds=60",
    "seed=9",
    "k=3",
];

fn start_daemon(extra: &[&str]) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let mut args: Vec<String> = CELL_A.iter().map(|s| s.to_string()).collect();
    args.extend(extra.iter().map(|s| s.to_string()));
    let opts = ServeOptions::parse(&args).expect("parse serve args");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        serve_on(listener, &opts).expect("daemon run");
    });
    (addr, handle)
}

/// `POST /sessions` body for cell B under `name`, with optional extra
/// session args (checkpoint=, resume=).
fn create_body(name: &str, extra: &[&str]) -> String {
    let args: Vec<String> = CELL_B
        .iter()
        .chain(extra.iter())
        .map(|a| format!("\"{a}\""))
        .collect();
    format!("{{\"name\":\"{name}\",\"args\":[{}]}}", args.join(","))
}

/// The placement a cell reaches when served alone, stepped `steps` rounds
/// straight off its scenario source — the reference every daemon session
/// must match bit for bit.
fn solo_placement(cell_args: &[&str], steps: usize) -> (u64, Vec<usize>) {
    let lookup = |key: &str| {
        cell_args
            .iter()
            .find_map(|a| a.strip_prefix(&format!("{key}=")))
            .unwrap()
            .to_string()
    };
    let cell = CellSpec::new(
        lookup("topo").parse().unwrap(),
        lookup("wl").parse().unwrap(),
        lookup("strat").parse().unwrap(),
    );
    let seed: u64 = lookup("seed").parse().unwrap();
    let k: usize = lookup("k").parse().unwrap();
    let rounds: u64 = lookup("rounds").parse().unwrap();
    let env = ExperimentEnv::from_spec(&cell.topology, seed).unwrap();
    let ctx = env.context(CostParams::default().with_max_servers(k), LoadModel::Linear);
    let strategy = cell.strategy.instantiate_online(&ctx, seed).unwrap();
    let mut session = SimSession::new(ctx, strategy, initial_center(&ctx));
    let scenario =
        cell.workload
            .instantiate(&env.graph, &env.matrix, cell.t_periods, cell.lambda, seed);
    let mut source = ScenarioStream::new(scenario, Some(rounds));
    for _ in 0..steps {
        let batch = source.next_round().unwrap().unwrap();
        session.step(&batch);
    }
    (
        session.t(),
        session.fleet().active().iter().map(|n| n.index()).collect(),
    )
}

fn assert_placement(addr: SocketAddr, path: &str, expected: &(u64, Vec<usize>), label: &str) {
    let (status, body) = http(addr, "GET", path, "");
    assert_eq!(status, 200, "{label}: {body}");
    let v = json(&body);
    assert_eq!(v.get("t").unwrap().as_u64(), Some(expected.0), "{label}");
    let active: Vec<usize> = v
        .get("active")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|n| n.as_usize().unwrap())
        .collect();
    assert_eq!(
        active, expected.1,
        "{label}: daemon placement must match the solo run"
    );
}

#[test]
fn interleaved_sessions_match_solo_runs_bit_identically() {
    let (addr, handle) = start_daemon(&[]);
    let (status, body) = http(addr, "POST", "/sessions", &create_body("beta", &[]));
    assert_eq!(status, 200, "{body}");
    let info = json(&body);
    assert_eq!(info.get("name").unwrap().as_str(), Some("beta"));
    assert_eq!(info.get("status").unwrap().as_str(), Some("live"));

    // Step both sessions from two concurrent client threads — 30 rounds
    // each, interleaving however the scheduler pleases.
    let steppers: Vec<_> = [
        ("/sessions/default/step", 30u64),
        ("/sessions/beta/step", 30u64),
    ]
    .into_iter()
    .map(|(path, rounds)| {
        std::thread::spawn(move || {
            for t in 0..rounds {
                let (status, body) = http(addr, "POST", path, "");
                assert_eq!(status, 200, "{path} round {t}: {body}");
                assert_eq!(json(&body).get("t").unwrap().as_u64(), Some(t), "{path}");
            }
        })
    })
    .collect();
    for stepper in steppers {
        stepper.join().expect("stepper thread");
    }

    // Both placements are bit-identical to the same cells served alone —
    // concurrency changed nothing.
    assert_placement(
        addr,
        "/sessions/default/placement",
        &solo_placement(&CELL_A, 30),
        "default",
    );
    assert_placement(
        addr,
        "/sessions/beta/placement",
        &solo_placement(&CELL_B, 30),
        "beta",
    );
    // the legacy alias reads the same default session
    assert_placement(
        addr,
        "/placement",
        &solo_placement(&CELL_A, 30),
        "legacy alias",
    );

    // The listing names both sessions with their cell specs.
    let (status, body) = http(addr, "GET", "/sessions", "");
    assert_eq!(status, 200);
    let list = json(&body);
    assert_eq!(list.get("count").unwrap().as_u64(), Some(2));
    let sessions = list.get("sessions").unwrap().as_array().unwrap();
    let names: Vec<&str> = sessions
        .iter()
        .map(|s| s.get("name").unwrap().as_str().unwrap())
        .collect();
    assert_eq!(names, vec!["beta", "default"], "sorted by name");
    assert!(sessions[0]
        .get("spec")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("star:9"));
    assert!(sessions[1]
        .get("spec")
        .unwrap()
        .as_str()
        .unwrap()
        .contains("unit-line:12"));

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
}

#[test]
fn per_session_checkpoint_restart_leaves_the_other_untouched() {
    let ck: PathBuf = std::env::temp_dir().join("flexserve-serve-sessions-beta.ckpt.json");
    let _ = std::fs::remove_file(&ck);
    let ck_arg = format!("checkpoint={}", ck.display());

    let (addr, handle) = start_daemon(&[]);
    let (status, body) = http(addr, "POST", "/sessions", &create_body("beta", &[&ck_arg]));
    assert_eq!(status, 200, "{body}");

    for _ in 0..20 {
        let (status, _) = http(addr, "POST", "/sessions/default/step", "");
        assert_eq!(status, 200);
        let (status, _) = http(addr, "POST", "/sessions/beta/step", "");
        assert_eq!(status, 200);
    }

    // Checkpoint and evict beta; default keeps its position throughout.
    let default_placement = solo_placement(&CELL_A, 20);
    assert_placement(
        addr,
        "/sessions/default/placement",
        &default_placement,
        "default@20",
    );
    let (status, ck_body) = http(addr, "POST", "/sessions/beta/checkpoint", "");
    assert_eq!(status, 200, "{ck_body}");
    assert!(ck_body.contains(flexserve_sim::CHECKPOINT_FORMAT));
    let (status, body) = http(addr, "DELETE", "/sessions/beta", "");
    assert_eq!(status, 200, "{body}");
    let v = json(&body);
    assert_eq!(v.get("rounds_served").unwrap().as_u64(), Some(20));
    assert_eq!(v.get("final_t").unwrap().as_u64(), Some(20));
    let (status, _) = http(addr, "GET", "/sessions/beta/placement", "");
    assert_eq!(status, 404, "evicted session must be gone");

    // Restart beta from its checkpoint — mid-daemon, no daemon restart.
    let resume_body = create_body("beta", &[&ck_arg, "resume=true"]);
    let (status, body) = http(addr, "POST", "/sessions", &resume_body);
    assert_eq!(status, 200, "{body}");
    assert_eq!(json(&body).get("resumed_at").unwrap().as_u64(), Some(20));
    // cumulative metrics carried over the restart (v2 checkpoint)
    let (_, body) = http(addr, "GET", "/sessions/beta/metrics", "");
    let metrics = json(&body);
    assert_eq!(metrics.get("rounds_served").unwrap().as_u64(), Some(0));
    assert_eq!(
        metrics
            .get("cumulative")
            .unwrap()
            .get("rounds_served")
            .unwrap()
            .as_u64(),
        Some(20)
    );

    for _ in 0..20 {
        let (status, _) = http(addr, "POST", "/sessions/beta/step", "");
        assert_eq!(status, 200);
    }
    // Beta continued exactly where an uninterrupted solo run would be…
    assert_placement(
        addr,
        "/sessions/beta/placement",
        &solo_placement(&CELL_B, 40),
        "beta@40",
    );
    // …and default never noticed any of it.
    assert_placement(
        addr,
        "/sessions/default/placement",
        &default_placement,
        "default after",
    );

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn v1_checkpoint_files_resume_over_http() {
    // Fabricate a pre-v2 checkpoint: play cell A solo for 10 rounds and
    // write its snapshot with the old format tag (a v1 document is a v2
    // document minus the metrics block, which a bare SimSession snapshot
    // does not carry anyway).
    let cell = CellSpec::new(
        "unit-line:12".parse().unwrap(),
        "uniform:req=4".parse().unwrap(),
        "onth".parse().unwrap(),
    );
    let env = ExperimentEnv::from_spec(&cell.topology, 5).unwrap();
    let ctx = env.context(CostParams::default().with_max_servers(4), LoadModel::Linear);
    let strategy = cell.strategy.instantiate_online(&ctx, 5).unwrap();
    let mut session = SimSession::new(ctx, strategy, initial_center(&ctx));
    let scenario =
        cell.workload
            .instantiate(&env.graph, &env.matrix, cell.t_periods, cell.lambda, 5);
    let mut source = ScenarioStream::new(scenario, Some(60));
    for _ in 0..10 {
        let batch = source.next_round().unwrap().unwrap();
        session.step(&batch);
    }
    let v1_text = session.snapshot().unwrap().to_json().replace(
        flexserve_sim::CHECKPOINT_FORMAT,
        flexserve_sim::CHECKPOINT_FORMAT_V1,
    );
    assert!(v1_text.contains("flexserve-checkpoint-v1"));
    let ck: PathBuf = std::env::temp_dir().join("flexserve-serve-sessions-v1.ckpt.json");
    std::fs::write(&ck, &v1_text).unwrap();

    let ck_arg = format!("checkpoint={}", ck.display());
    let (addr, handle) = start_daemon(&[&ck_arg, "resume=true"]);
    let (_, body) = http(addr, "GET", "/metrics", "");
    let metrics = json(&body);
    assert_eq!(metrics.get("resumed_at").unwrap().as_u64(), Some(10));
    // v1 carries no cost totals, but the round counter is exact
    assert_eq!(
        metrics
            .get("cumulative")
            .unwrap()
            .get("rounds_served")
            .unwrap()
            .as_u64(),
        Some(10)
    );
    for _ in 0..10 {
        let (status, _) = http(addr, "POST", "/step", "");
        assert_eq!(status, 200);
    }
    assert_placement(
        addr,
        "/placement",
        &solo_placement(&CELL_A, 20),
        "v1 resume",
    );

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
    let _ = std::fs::remove_file(&ck);
}

#[test]
fn session_surface_error_contract() {
    let (addr, handle) = start_daemon(&["max-sessions=2"]);

    // unknown session: 404 on every scoped route
    for (method, path) in [
        ("POST", "/sessions/ghost/step"),
        ("GET", "/sessions/ghost/placement"),
        ("GET", "/sessions/ghost/metrics"),
        ("POST", "/sessions/ghost/checkpoint"),
        ("DELETE", "/sessions/ghost"),
    ] {
        let (status, body) = http(addr, method, path, "");
        assert_eq!(status, 404, "{method} {path}: {body}");
    }

    // duplicate name: 409
    let (status, body) = http(addr, "POST", "/sessions", &create_body("default", &[]));
    assert_eq!(status, 409, "{body}");

    // capacity: max-sessions=2 is full after default + beta
    let (status, _) = http(addr, "POST", "/sessions", &create_body("beta", &[]));
    assert_eq!(status, 200);
    let (status, body) = http(addr, "POST", "/sessions", &create_body("gamma", &[]));
    assert_eq!(status, 429, "{body}");
    // …and frees up after an eviction
    let (status, _) = http(addr, "DELETE", "/sessions/beta", "");
    assert_eq!(status, 200);
    let (status, body) = http(addr, "POST", "/sessions", &create_body("gamma", &[]));
    assert_eq!(status, 200, "{body}");

    // malformed creation bodies: 400
    for bad in [
        "",
        "{}",
        r#"{"name":"x","args":["topo=er:50"]}"#,
        r#"{"name":"bad/name","args":[]}"#,
    ] {
        let (status, body) = http(addr, "POST", "/sessions", bad);
        assert_eq!(status, 400, "{bad:?}: {body}");
    }

    // the 404 endpoint inventory names the session routes
    let (status, body) = http(addr, "GET", "/nope", "");
    assert_eq!(status, 404);
    assert!(body.contains("POST /sessions"), "{body}");

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
}
