//! Batched stepping and the epoll front end, end to end over real TCP:
//! a batch of k rounds must equal the same k rounds stepped singly —
//! step bodies, placement, cumulative metrics, and checkpoint bytes —
//! for every online strategy and for schedules whose substrate events
//! fire mid-batch; oversized and malformed batches keep their error
//! contract; and ten thousand idle keep-alive connections cost the
//! daemon file descriptors, not threads.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::time::Duration;

use flexserve_experiments::serve::{raise_nofile_limit, serve_on, ServeOptions};
use flexserve_workload::JsonValue;

/// One HTTP/1.1 exchange against the daemon; returns (status, body).
fn http(addr: SocketAddr, method: &str, path: &str, body: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(request.as_bytes()).expect("send");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("receive");
    let status: u16 = response
        .split_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b.to_string())
        .unwrap_or_default();
    (status, body)
}

fn json(body: &str) -> JsonValue {
    JsonValue::parse(body.trim()).unwrap_or_else(|e| panic!("bad JSON {body:?}: {e}"))
}

fn start_daemon(cell: &[&str]) -> (SocketAddr, std::thread::JoinHandle<()>) {
    let args: Vec<String> = cell.iter().map(|s| s.to_string()).collect();
    let opts = ServeOptions::parse(&args).expect("parse serve args");
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind");
    let addr = listener.local_addr().expect("addr");
    let handle = std::thread::spawn(move || {
        serve_on(listener, &opts).expect("daemon run");
    });
    (addr, handle)
}

/// Zeroes the wall-clock fields (`uptime_seconds`, `step_seconds_total`)
/// everywhere in a document. Everything else a session reports is
/// deterministic and must match bit for bit.
fn zero_timing(v: &mut JsonValue) {
    match v {
        JsonValue::Obj(pairs) => {
            for (key, value) in pairs {
                if key == "uptime_seconds" || key == "step_seconds_total" {
                    *value = JsonValue::from(0u64);
                } else {
                    zero_timing(value);
                }
            }
        }
        JsonValue::Arr(items) => {
            for item in items {
                zero_timing(item);
            }
        }
        _ => {}
    }
}

fn normalized(body: &str) -> String {
    let mut v = json(body);
    zero_timing(&mut v);
    v.render()
}

/// Creates a session on the daemon from cell args plus a checkpoint path.
fn create_session(addr: SocketAddr, name: &str, args: &[String]) {
    let body = JsonValue::Obj(vec![
        ("name".into(), JsonValue::from(name)),
        (
            "args".into(),
            JsonValue::Arr(args.iter().map(|a| JsonValue::from(a.as_str())).collect()),
        ),
    ])
    .render();
    let (status, resp) = http(addr, "POST", "/sessions", &body);
    assert_eq!(status, 200, "create {name}: {resp}");
}

/// The tentpole contract: one batch of k rounds is bit-identical to the
/// same k rounds stepped singly — the per-round documents, the final
/// placement, the cumulative metrics, and the checkpoint file — for
/// every online strategy and for an `events=` schedule that fires in
/// the middle of the batch.
#[test]
fn batch_of_k_equals_k_single_steps_bitwise() {
    let dir = std::env::temp_dir().join(format!("flexserve-batch-bitwise-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let cases: &[(&str, &str, &str)] = &[
        ("onth", "strat=onth", ""),
        ("onbr", "strat=onbr", ""),
        ("offstat", "strat=offstat", ""),
        // The fail-link event at round 6 fires inside the second batch.
        ("evented", "strat=onth", "events=6:fail-link:2-3"),
    ];
    let (addr, handle) = start_daemon(&[
        "topo=unit-line:8",
        "wl=uniform:req=3",
        "strat=onth",
        "rounds=60",
        "seed=3",
        "k=4",
        "max-sessions=16",
    ]);
    for (label, strat, events) in cases {
        let mut base = vec![
            "topo=unit-line:8".to_string(),
            "wl=uniform:req=3".to_string(),
            strat.to_string(),
            "rounds=60".to_string(),
            "seed=3".to_string(),
            "k=4".to_string(),
        ];
        if !events.is_empty() {
            base.push(events.to_string());
        }
        let singles_name = format!("{label}-singles");
        let batch_name = format!("{label}-batch");
        let mut singles_args = base.clone();
        singles_args.push(format!(
            "checkpoint={}",
            dir.join(format!("{singles_name}.json")).display()
        ));
        let mut batch_args = base.clone();
        batch_args.push(format!(
            "checkpoint={}",
            dir.join(format!("{batch_name}.json")).display()
        ));
        create_session(addr, &singles_name, &singles_args);
        create_session(addr, &batch_name, &batch_args);

        // 12 single steps vs a 5-batch and a 7-batch of the same rounds.
        let mut singly = Vec::new();
        for t in 0..12 {
            let (status, body) = http(addr, "POST", &format!("/sessions/{singles_name}/step"), "");
            assert_eq!(status, 200, "{label} single step {t}: {body}");
            singly.push(json(&body).render());
        }
        let mut batched = Vec::new();
        for n in ["{\"n\": 5}", "{\"n\": 7}"] {
            let (status, body) = http(addr, "POST", &format!("/sessions/{batch_name}/step"), n);
            assert_eq!(status, 200, "{label} batch step: {body}");
            match json(&body) {
                JsonValue::Arr(rows) => batched.extend(rows.iter().map(JsonValue::render)),
                other => panic!("{label}: batch reply must be an array, got {other:?}"),
            }
        }
        assert_eq!(batched, singly, "{label}: step bodies must match bitwise");

        // Placement, metrics (timing zeroed), and checkpoint bytes.
        let (_, p1) = http(
            addr,
            "GET",
            &format!("/sessions/{singles_name}/placement"),
            "",
        );
        let (_, p2) = http(
            addr,
            "GET",
            &format!("/sessions/{batch_name}/placement"),
            "",
        );
        assert_eq!(p1, p2, "{label}: placement must match bitwise");
        let (_, m1) = http(
            addr,
            "GET",
            &format!("/sessions/{singles_name}/metrics"),
            "",
        );
        let (_, m2) = http(addr, "GET", &format!("/sessions/{batch_name}/metrics"), "");
        let m1 = normalized(&m1).replace(&singles_name, "X");
        let m2 = normalized(&m2).replace(&batch_name, "X");
        assert_eq!(m1, m2, "{label}: cumulative metrics must match");
        let (s1, c1) = http(
            addr,
            "POST",
            &format!("/sessions/{singles_name}/checkpoint"),
            "",
        );
        let (s2, c2) = http(
            addr,
            "POST",
            &format!("/sessions/{batch_name}/checkpoint"),
            "",
        );
        assert_eq!((s1, s2), (200, 200));
        assert_eq!(
            normalized(&c1),
            normalized(&c2),
            "{label}: checkpoint bytes must match"
        );
    }
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn malformed_and_oversized_batches_keep_the_error_contract() {
    let ck = std::env::temp_dir().join("flexserve-batch-errors.ckpt.json");
    let ck_arg = format!("checkpoint={}", ck.display());
    let (addr, handle) = start_daemon(&[
        "topo=unit-line:8",
        "wl=uniform:req=3",
        "strat=onth",
        "rounds=40",
        "seed=3",
        "k=4",
        &ck_arg,
    ]);

    // The legacy single-session endpoint takes batches too.
    let (status, body) = http(addr, "POST", "/step", "{\"n\": 2}");
    assert_eq!(status, 200, "{body}");
    match json(&body) {
        JsonValue::Arr(rows) => assert_eq!(rows.len(), 2),
        other => panic!("batch reply must be an array, got {other:?}"),
    }

    // Malformed batches: 400, nothing applied.
    for bad in ["[]", "{\"n\": 0}", "{\"n\": \"three\"}"] {
        let (status, body) = http(addr, "POST", "/step", bad);
        assert_eq!(status, 400, "{bad}: {body}");
    }
    let (status, body) = http(
        addr,
        "POST",
        "/step",
        "[{\"origins\": [1]}, {\"origins\": [99]}]",
    );
    assert_eq!(status, 400, "{body}");
    assert!(body.contains("batch[1]"), "{body}");
    let (_, body) = http(addr, "GET", "/placement", "");
    assert_eq!(
        json(&body).get("t").unwrap().as_u64(),
        Some(2),
        "failed batches must not advance t"
    );

    // Oversized batches: 413 in both forms, still under the 16 MiB body
    // cap (this is the round cap firing, not the byte cap).
    let (status, body) = http(addr, "POST", "/step", "{\"n\": 4097}");
    assert_eq!(status, 413, "{body}");
    assert!(body.contains("4096"), "{body}");
    let huge = format!("[{}]", vec!["{}"; 4097].join(","));
    let (status, body) = http(addr, "POST", "/step", &huge);
    assert_eq!(status, 413, "{body}");

    // Exhaustion fails a straddling batch whole (410), then serves the
    // restored remainder: 38 rounds remain of 40.
    let (status, body) = http(addr, "POST", "/step", "{\"n\": 39}");
    assert_eq!(status, 410, "{body}");
    let (status, body) = http(addr, "POST", "/step", "{\"n\": 38}");
    assert_eq!(status, 200, "{body}");
    match json(&body) {
        JsonValue::Arr(rows) => {
            assert_eq!(rows.len(), 38);
            assert_eq!(rows[0].get("t").unwrap().as_u64(), Some(2));
        }
        other => panic!("batch reply must be an array, got {other:?}"),
    }

    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    handle.join().unwrap();
    let _ = std::fs::remove_file(&ck);
}

/// Reads `Threads:` out of a `/proc/<pid>/status` document.
fn thread_count(pid: u32) -> usize {
    let status = std::fs::read_to_string(format!("/proc/{pid}/status")).expect("proc status");
    status
        .lines()
        .find_map(|l| l.strip_prefix("Threads:"))
        .and_then(|v| v.trim().parse().ok())
        .expect("Threads: line")
}

/// The connection-scaling contract: ten thousand idle keep-alive
/// connections are held by the fixed reactor pool — the daemon's thread
/// count stays flat while its fd count grows with the connections — and
/// the daemon keeps answering requests under that load. The daemon runs
/// as a subprocess so the two processes' descriptor budgets are
/// independent.
#[test]
#[cfg(target_os = "linux")]
fn ten_thousand_idle_connections_cost_fds_not_threads() {
    let ck = std::env::temp_dir().join("flexserve-batch-soak.ckpt.json");
    let exe = env!("CARGO_BIN_EXE_flexserve");
    let mut child = std::process::Command::new(exe)
        .args([
            "serve",
            "topo=unit-line:8",
            "wl=uniform:req=3",
            "strat=onth",
            "rounds=40",
            "seed=3",
            "k=4",
            "bind=127.0.0.1:0",
            "workers=2",
            "reactor-threads=2",
            // Idle fresh connections live until this deadline; generous so
            // the slow ramp-up below cannot get early connections reaped.
            "request-timeout=120",
            &format!("checkpoint={}", ck.display()),
        ])
        .stdout(std::process::Stdio::piped())
        .stderr(std::process::Stdio::null())
        .spawn()
        .expect("spawn serve daemon");
    // The daemon announces its bound address on the first stdout line.
    let addr: SocketAddr = {
        use std::io::BufRead;
        let stdout = child.stdout.take().expect("child stdout");
        let mut line = String::new();
        std::io::BufReader::new(stdout)
            .read_line(&mut line)
            .expect("announcement");
        let rest = line
            .split("http://")
            .nth(1)
            .unwrap_or_else(|| panic!("no address in announcement {line:?}"));
        rest.split_whitespace()
            .next()
            .unwrap()
            .parse()
            .expect("bound address")
    };

    let available = raise_nofile_limit();
    // Budget for the client side: our own sockets plus slack for the
    // harness. The test environment caps fds at 20k, which still leaves
    // the full 10k target.
    let target = 10_000.min(available.saturating_sub(512) as usize);
    assert!(
        target >= 4_096,
        "fd limit {available} too low to exercise connection scaling"
    );
    // Warm up first so the fixed pools (reactors, workers, reaper) exist
    // before the baseline sample — the soak must not be credited for
    // threads the daemon always runs.
    let (status, body) = http(addr, "POST", "/step", "");
    assert_eq!(status, 200, "{body}");
    let baseline_threads = thread_count(child.id());
    let mut held = Vec::with_capacity(target);
    for i in 0..target {
        match TcpStream::connect_timeout(&addr, Duration::from_secs(5)) {
            Ok(stream) => held.push(stream),
            Err(e) => panic!("connection {i} of {target} failed: {e}"),
        }
    }

    // The daemon still answers while holding every idle connection...
    let (status, body) = http(addr, "POST", "/step", "");
    assert_eq!(status, 200, "{body}");
    // ...its fd table shows the connections are really held...
    let fds = std::fs::read_dir(format!("/proc/{}/fd", child.id()))
        .expect("proc fd dir")
        .count();
    assert!(
        fds >= target,
        "daemon holds {fds} fds for {target} connections"
    );
    // ...and they cost threads nothing: the reactor pool is fixed.
    let threads = thread_count(child.id());
    assert!(
        threads <= baseline_threads + 2,
        "thread count must not scale with connections \
         (baseline {baseline_threads}, under load {threads})"
    );
    assert!(
        threads < 32,
        "absolute thread bound blown: {threads} threads"
    );

    drop(held);
    let (status, _) = http(addr, "POST", "/shutdown", "");
    assert_eq!(status, 200);
    let exit = child.wait().expect("daemon exit");
    assert!(exit.success(), "daemon exited with {exit}");
    let _ = std::fs::remove_file(&ck);
}
