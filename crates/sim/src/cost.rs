//! Cost accounting: the [`CostBreakdown`] ledger.

use std::iter::Sum;
use std::ops::{Add, AddAssign};

/// Cost totals split by source, mirroring the paper's cost taxonomy:
/// access (`Cost_acc`), running (`Cost_run`), migration (`Cost_mig`), and
/// creation costs.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct CostBreakdown {
    /// Request latency plus load-induced latency.
    pub access: f64,
    /// `Ra`/`Ri` per-round running costs of active/inactive servers.
    pub running: f64,
    /// `β` per server migration.
    pub migration: f64,
    /// `c` per server creation.
    pub creation: f64,
}

impl CostBreakdown {
    /// A zeroed ledger.
    pub fn zero() -> Self {
        CostBreakdown::default()
    }

    /// Grand total.
    #[inline]
    pub fn total(&self) -> f64 {
        self.access + self.running + self.migration + self.creation
    }

    /// Ledger with only an access component.
    pub fn from_access(access: f64) -> Self {
        CostBreakdown {
            access,
            ..CostBreakdown::default()
        }
    }

    /// Reconfiguration part of the ledger (migration + creation).
    #[inline]
    pub fn reconfiguration(&self) -> f64 {
        self.migration + self.creation
    }

    /// Elementwise maximum-absolute difference; handy for float comparisons
    /// in tests.
    pub fn max_abs_diff(&self, other: &CostBreakdown) -> f64 {
        (self.access - other.access)
            .abs()
            .max((self.running - other.running).abs())
            .max((self.migration - other.migration).abs())
            .max((self.creation - other.creation).abs())
    }
}

impl Add for CostBreakdown {
    type Output = CostBreakdown;
    fn add(self, o: CostBreakdown) -> CostBreakdown {
        CostBreakdown {
            access: self.access + o.access,
            running: self.running + o.running,
            migration: self.migration + o.migration,
            creation: self.creation + o.creation,
        }
    }
}

impl AddAssign for CostBreakdown {
    fn add_assign(&mut self, o: CostBreakdown) {
        *self = *self + o;
    }
}

impl Sum for CostBreakdown {
    fn sum<I: Iterator<Item = CostBreakdown>>(iter: I) -> Self {
        iter.fold(CostBreakdown::zero(), |a, b| a + b)
    }
}

impl<'a> Sum<&'a CostBreakdown> for CostBreakdown {
    fn sum<I: Iterator<Item = &'a CostBreakdown>>(iter: I) -> Self {
        iter.fold(CostBreakdown::zero(), |a, b| a + *b)
    }
}

impl std::fmt::Display for CostBreakdown {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "total {:.2} (access {:.2}, running {:.2}, migration {:.2}, creation {:.2})",
            self.total(),
            self.access,
            self.running,
            self.migration,
            self.creation
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_add_up() {
        let c = CostBreakdown {
            access: 1.0,
            running: 2.0,
            migration: 3.0,
            creation: 4.0,
        };
        assert_eq!(c.total(), 10.0);
        assert_eq!(c.reconfiguration(), 7.0);
    }

    #[test]
    fn addition_and_sum() {
        let a = CostBreakdown::from_access(5.0);
        let b = CostBreakdown {
            migration: 40.0,
            ..CostBreakdown::default()
        };
        let s = a + b;
        assert_eq!(s.total(), 45.0);
        let total: CostBreakdown = vec![a, b, s].into_iter().sum();
        assert_eq!(total.total(), 90.0);
        let borrowed: CostBreakdown = [a, b, s].iter().sum();
        assert_eq!(borrowed.total(), 90.0);
    }

    #[test]
    fn add_assign() {
        let mut c = CostBreakdown::zero();
        c += CostBreakdown::from_access(2.5);
        c += CostBreakdown::from_access(2.5);
        assert_eq!(c.access, 5.0);
    }

    #[test]
    fn diff_metric() {
        let a = CostBreakdown::from_access(1.0);
        let b = CostBreakdown::from_access(1.5);
        assert_eq!(a.max_abs_diff(&b), 0.5);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn display_contains_components() {
        let c = CostBreakdown::from_access(1.0);
        let s = format!("{c}");
        assert!(s.contains("access 1.00"));
        assert!(s.contains("total 1.00"));
    }
}
