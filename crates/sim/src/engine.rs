//! The synchronous round-based game loop (§II-E of the paper).
//!
//! Two entry points:
//!
//! * [`run_online`] — plays the online game: each round the requests
//!   arrive, the algorithm pays access costs to the *current* servers, then
//!   reconfigures (paying migration/creation) and pays running costs.
//!   It is a thin batch wrapper over the resumable stepper
//!   [`SimSession`], which is also driven
//!   round-by-round by the `flexserve serve` daemon.
//! * [`run_plan`] — evaluates a precomputed per-round configuration plan
//!   (the output of the offline algorithms): the configuration for round
//!   `t` is applied *before* the round's requests are served, matching the
//!   DP recurrence of §IV-A. The paper notes that because a single round's
//!   requests are much cheaper than a migration, the two orderings are
//!   interchangeable for the analysis.

use flexserve_graph::NodeId;
use flexserve_workload::{JsonValue, RoundRequests, Trace};

use crate::context::SimContext;
use crate::cost::CostBreakdown;
use crate::fleet::Fleet;
use crate::session::SimSession;
use crate::transition::TransitionPlanner;

/// An online allocation/migration strategy.
///
/// Implementations observe each round (after access costs were charged) and
/// may return a new target set of active-server locations; the engine
/// prices and applies the change through the shared
/// [`TransitionPlanner`]. Returning `None` keeps the configuration.
///
/// Strategies that expose their mutable state through
/// [`export_state`](Self::export_state) /
/// [`import_state`](Self::import_state) can be checkpointed mid-run by a
/// [`SimSession`] and resumed bit-identically.
///
/// ```
/// use flexserve_graph::{gen::unit_line, DistanceMatrix, NodeId};
/// use flexserve_sim::{run_online, CostParams, Fleet, LoadModel, OnlineStrategy, SimContext};
/// use flexserve_workload::{RoundRequests, Trace};
///
/// /// Keeps one server on the node with the round's first request.
/// struct FollowFirst;
///
/// impl OnlineStrategy for FollowFirst {
///     fn name(&self) -> String { "FOLLOW-FIRST".into() }
///     fn decide(
///         &mut self,
///         _ctx: &SimContext<'_>,
///         _t: u64,
///         requests: &RoundRequests,
///         _access_cost: f64,
///         _fleet: &Fleet,
///     ) -> Option<Vec<NodeId>> {
///         requests.iter().next().map(|origin| vec![origin])
///     }
/// }
///
/// let graph = unit_line(4).unwrap();
/// let matrix = DistanceMatrix::build(&graph);
/// let ctx = SimContext::new(&graph, &matrix, CostParams::default(), LoadModel::None);
/// let trace = Trace::new(vec![RoundRequests::new(vec![NodeId::new(3)]); 5]);
///
/// let record = run_online(&ctx, &trace, &mut FollowFirst, vec![NodeId::new(0)]);
/// assert_eq!(record.len(), 5);
/// // round 0 pays access 3 (server still at node 0), then the server sits
/// // on the demand and access cost stops accruing.
/// assert_eq!(record.total().access, 3.0);
/// ```
pub trait OnlineStrategy {
    /// Algorithm name for reports (e.g. `"ONTH"`).
    fn name(&self) -> String;

    /// Called once before round 0 with the initial fleet.
    fn initialize(&mut self, _ctx: &SimContext<'_>, _fleet: &Fleet) {}

    /// Observes round `t` and optionally reconfigures. `access_cost` is the
    /// cost just charged for serving `requests` from the current servers.
    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        t: u64,
        requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>>;

    /// Serializes the strategy's mutable state for checkpointing, or
    /// `None` when the strategy does not support it (the default).
    ///
    /// The returned value must contain everything `decide` depends on
    /// besides the construction parameters: importing it into a freshly
    /// constructed instance must continue **bit-identically** to the
    /// exporting instance.
    fn export_state(&self) -> Option<JsonValue> {
        None
    }

    /// Restores state previously produced by
    /// [`export_state`](Self::export_state) into a freshly constructed
    /// instance. The default refuses (matching the `None` default above).
    fn import_state(&mut self, _state: &JsonValue) -> Result<(), String> {
        Err(format!(
            "{}: checkpoint restore is not supported",
            self.name()
        ))
    }
}

/// Mutable borrows drive sessions without giving up ownership
/// ([`run_online`] uses this shape).
impl<S: OnlineStrategy + ?Sized> OnlineStrategy for &mut S {
    fn name(&self) -> String {
        (**self).name()
    }
    fn initialize(&mut self, ctx: &SimContext<'_>, fleet: &Fleet) {
        (**self).initialize(ctx, fleet);
    }
    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        t: u64,
        requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        (**self).decide(ctx, t, requests, access_cost, fleet)
    }
    fn export_state(&self) -> Option<JsonValue> {
        (**self).export_state()
    }
    fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
        (**self).import_state(state)
    }
}

/// Boxed strategies (`Box<dyn OnlineStrategy>`) drive sessions — the
/// `flexserve serve` daemon's shape.
impl<S: OnlineStrategy + ?Sized> OnlineStrategy for Box<S> {
    fn name(&self) -> String {
        (**self).name()
    }
    fn initialize(&mut self, ctx: &SimContext<'_>, fleet: &Fleet) {
        (**self).initialize(ctx, fleet);
    }
    fn decide(
        &mut self,
        ctx: &SimContext<'_>,
        t: u64,
        requests: &RoundRequests,
        access_cost: f64,
        fleet: &Fleet,
    ) -> Option<Vec<NodeId>> {
        (**self).decide(ctx, t, requests, access_cost, fleet)
    }
    fn export_state(&self) -> Option<JsonValue> {
        (**self).export_state()
    }
    fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
        (**self).import_state(state)
    }
}

/// A per-round configuration plan: `plan[t]` is the set of active-server
/// locations in effect during round `t`.
pub type Plan = Vec<Vec<NodeId>>;

/// One row of the run log.
#[derive(Clone, Debug)]
pub struct RoundRecord {
    /// Round index.
    pub t: u64,
    /// Costs charged this round.
    pub costs: CostBreakdown,
    /// Active servers after this round's reconfiguration.
    pub active_servers: usize,
    /// Cached inactive servers after this round.
    pub inactive_servers: usize,
    /// Requests that arrived this round.
    pub requests: usize,
}

/// The complete log of one run.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Per-round rows in time order.
    pub rounds: Vec<RoundRecord>,
}

impl RunRecord {
    /// Total cost over the run.
    pub fn total(&self) -> CostBreakdown {
        self.rounds.iter().map(|r| &r.costs).sum()
    }

    /// Time series of the active-server count (Figs. 1–2 of the paper).
    pub fn active_series(&self) -> Vec<usize> {
        self.rounds.iter().map(|r| r.active_servers).collect()
    }

    /// Time series of request volume.
    pub fn request_series(&self) -> Vec<usize> {
        self.rounds.iter().map(|r| r.requests).collect()
    }

    /// Number of rounds.
    pub fn len(&self) -> usize {
        self.rounds.len()
    }

    /// Whether the run recorded no rounds.
    pub fn is_empty(&self) -> bool {
        self.rounds.is_empty()
    }
}

/// Plays the online game over `trace` with `strategy`, starting from
/// `initial` active servers (no creation charge for the initial
/// configuration `γ0`, matching the paper's OPT set-up).
///
/// This is a thin batch wrapper over
/// [`SimSession`]: every round is one
/// [`step`](crate::session::SimSession::step), so the batch pipelines and
/// the streaming daemon exercise identical per-round code.
pub fn run_online<S: OnlineStrategy + ?Sized>(
    ctx: &SimContext<'_>,
    trace: &Trace,
    strategy: &mut S,
    initial: Vec<NodeId>,
) -> RunRecord {
    let mut session = SimSession::new(*ctx, strategy, initial);
    let mut record = RunRecord::default();
    for batch in trace.iter() {
        record.rounds.push(session.step(batch));
    }
    record
}

/// Evaluates a precomputed plan over `trace`. `plan.len()` must equal
/// `trace.len()`; round `t`'s configuration is applied before its requests
/// are served (the offline DP convention).
pub fn run_plan(
    ctx: &SimContext<'_>,
    trace: &Trace,
    plan: &Plan,
    initial: Vec<NodeId>,
) -> RunRecord {
    assert_eq!(plan.len(), trace.len(), "plan/trace length mismatch");
    let mut fleet = Fleet::new(initial, &ctx.params);
    let mut record = RunRecord::default();

    for (t, batch) in trace.iter().enumerate() {
        let mut costs = CostBreakdown::zero();

        let outcome = TransitionPlanner::apply(&mut fleet, &plan[t], &ctx.params);
        costs += outcome.cost;
        fleet.advance_epoch();

        costs.access = ctx.access_cost(fleet.active(), batch);
        costs.running = ctx.running_cost(fleet.active_count(), fleet.inactive_count());

        record.rounds.push(RoundRecord {
            t: t as u64,
            costs,
            active_servers: fleet.active_count(),
            inactive_servers: fleet.inactive_count(),
            requests: batch.len(),
        });
    }
    record
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadModel;
    use crate::params::CostParams;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// A strategy that never reconfigures.
    struct DoNothing;
    impl OnlineStrategy for DoNothing {
        fn name(&self) -> String {
            "NOOP".into()
        }
        fn decide(
            &mut self,
            _ctx: &SimContext<'_>,
            _t: u64,
            _req: &RoundRequests,
            _cost: f64,
            _fleet: &Fleet,
        ) -> Option<Vec<NodeId>> {
            None
        }
    }

    /// A strategy that chases the first request origin every round.
    struct Chaser;
    impl OnlineStrategy for Chaser {
        fn name(&self) -> String {
            "CHASER".into()
        }
        fn decide(
            &mut self,
            _ctx: &SimContext<'_>,
            _t: u64,
            req: &RoundRequests,
            _cost: f64,
            _fleet: &Fleet,
        ) -> Option<Vec<NodeId>> {
            req.iter().next().map(|o| vec![o])
        }
    }

    fn setup() -> (flexserve_graph::Graph, DistanceMatrix) {
        let g = unit_line(5).unwrap();
        let m = DistanceMatrix::build(&g);
        (g, m)
    }

    fn trace_at(node: usize, rounds: usize) -> Trace {
        Trace::new(vec![RoundRequests::new(vec![n(node)]); rounds])
    }

    #[test]
    fn noop_pays_access_and_running_only() {
        let (g, m) = setup();
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let trace = trace_at(4, 10); // requests at node 4, server at 0: dist 4
        let rec = run_online(&ctx, &trace, &mut DoNothing, vec![n(0)]);
        let total = rec.total();
        assert_eq!(total.access, 40.0);
        assert_eq!(total.running, 10.0 * 2.5);
        assert_eq!(total.migration, 0.0);
        assert_eq!(total.creation, 0.0);
        assert_eq!(rec.active_series(), vec![1; 10]);
    }

    #[test]
    fn chaser_migrates_once_then_sits_on_demand() {
        let (g, m) = setup();
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let trace = trace_at(4, 5);
        let rec = run_online(&ctx, &trace, &mut Chaser, vec![n(0)]);
        let total = rec.total();
        // round 0 pays access 4 (server still at 0), then migrates; all
        // later rounds are free of access cost.
        assert_eq!(total.access, 4.0);
        assert_eq!(total.migration, 40.0);
        assert_eq!(total.creation, 0.0);
    }

    #[test]
    fn online_pays_access_before_reconfiguring() {
        let (g, m) = setup();
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let trace = trace_at(4, 1);
        let rec = run_online(&ctx, &trace, &mut Chaser, vec![n(0)]);
        // the single round is charged in the OLD configuration
        assert_eq!(rec.rounds[0].costs.access, 4.0);
    }

    #[test]
    fn plan_applies_config_before_access() {
        let (g, m) = setup();
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let trace = trace_at(4, 2);
        let plan: Plan = vec![vec![n(4)], vec![n(4)]];
        let rec = run_plan(&ctx, &trace, &plan, vec![n(0)]);
        let total = rec.total();
        assert_eq!(total.access, 0.0); // server moved before serving
        assert_eq!(total.migration, 40.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn plan_length_checked() {
        let (g, m) = setup();
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let trace = trace_at(0, 3);
        run_plan(&ctx, &trace, &vec![vec![n(0)]], vec![n(0)]);
    }

    #[test]
    fn run_record_series() {
        let (g, m) = setup();
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let trace = Trace::new(vec![
            RoundRequests::new(vec![n(0)]),
            RoundRequests::new(vec![n(0), n(1)]),
        ]);
        let rec = run_online(&ctx, &trace, &mut DoNothing, vec![n(0)]);
        assert_eq!(rec.request_series(), vec![1, 2]);
        assert_eq!(rec.len(), 2);
        assert!(!rec.is_empty());
    }

    #[test]
    fn epoch_advances_only_on_reconfiguration() {
        let (g, m) = setup();
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::None);
        let trace = trace_at(0, 3);
        // DoNothing: no reconfig, no epoch advance -> run completes with the
        // same fleet; nothing to assert beyond totals, but Chaser on a
        // static demand reconfigures to the same spot (no-op transitions)
        // every round and must not accumulate cost.
        let rec = run_online(&ctx, &trace, &mut Chaser, vec![n(0)]);
        assert_eq!(rec.total().migration, 0.0);
        assert_eq!(rec.total().creation, 0.0);
    }
}
