//! Substrate events: scheduled failures, recoveries and degradations of
//! the physical network, and the session type that plays the online game
//! on top of such a *dynamic* substrate.
//!
//! The static planes ([`SimSession`](crate::session::SimSession),
//! [`run_online`](crate::engine::run_online)) borrow one immutable
//! [`Graph`] + [`DistanceMatrix`] pair across many runs. Substrate events
//! mutate link latencies between rounds, so [`EventedSession`] *owns* its
//! world — a [`DynamicWorld`] of graph, distance matrix and failure
//! bookkeeping — and repairs the matrix incrementally through
//! [`DistanceMatrix::repair`] instead of rebuilding it after every event.
//!
//! ## Event model
//!
//! An event schedule is a list of `(round, event)` pairs; all events with
//! time `t` are applied at the **start of round `t`**, before the round's
//! requests are routed and before the strategy decides — the strategy sees
//! the failed world it must re-place around. Supported events:
//!
//! * `fail-link a-b` — the link's latency becomes `+∞` (treated exactly
//!   like an absent edge by shortest paths); the pre-failure latency is
//!   saved for recovery.
//! * `recover-link a-b` — restores the latency saved at failure time.
//! * `fail-node n` — every live incident link of `n` fails in one batch.
//! * `recover-node n` — restores exactly the links that `n`'s failure took
//!   down (links whose other endpoint is still node-failed stay down and
//!   are restored by *that* node's recovery).
//! * `degrade-link a-b f` — multiplies the link's current latency by the
//!   positive factor `f` (a factor below 1 models an upgrade).
//!
//! A fail → recover round trip therefore restores the exact pre-failure
//! world: the same latencies, hence (via the bit-identical repair) the same
//! `DistanceMatrix` bit for bit.
//!
//! Origins disconnected from every active server are charged the finite
//! [`UNREACHABLE_PENALTY`](crate::routing::UNREACHABLE_PENALTY) per
//! request rather than poisoning the run with `∞`. Schema, grammar and
//! penalty semantics are documented in `docs/FAULTS.md`.

use std::collections::BTreeMap;

use flexserve_graph::{DistanceMatrix, EdgeUpdate, Graph, NodeId};
use flexserve_workload::RoundRequests;

use crate::checkpoint::SessionSnapshot;
use crate::context::SimContext;
use crate::engine::{OnlineStrategy, RoundRecord};
use crate::fleet::Fleet;
use crate::load::LoadModel;
use crate::params::CostParams;
use crate::routing::RoutingPolicy;
use crate::session::play_round;

/// One scheduled change to the substrate network.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SubstrateEvent {
    /// The link between the two nodes fails (latency becomes `+∞`).
    FailLink(NodeId, NodeId),
    /// The previously failed link recovers to its saved latency.
    RecoverLink(NodeId, NodeId),
    /// Every live link incident to the node fails at once.
    FailNode(NodeId),
    /// The links taken down by this node's failure recover.
    RecoverNode(NodeId),
    /// The link's current latency is multiplied by the positive factor.
    DegradeLink(NodeId, NodeId, f64),
}

impl SubstrateEvent {
    /// Renders the event in the cell grammar (without the leading time),
    /// e.g. `fail-link:2-7` or `degrade-link:1-4:2.5`.
    fn render(&self) -> String {
        match self {
            SubstrateEvent::FailLink(a, b) => format!("fail-link:{}-{}", a.index(), b.index()),
            SubstrateEvent::RecoverLink(a, b) => {
                format!("recover-link:{}-{}", a.index(), b.index())
            }
            SubstrateEvent::FailNode(n) => format!("fail-node:{}", n.index()),
            SubstrateEvent::RecoverNode(n) => format!("recover-node:{}", n.index()),
            SubstrateEvent::DegradeLink(a, b, f) => {
                format!("degrade-link:{}-{}:{}", a.index(), b.index(), f)
            }
        }
    }
}

/// Parses an `a-b` endpoint pair.
fn parse_endpoints(s: &str) -> Result<(NodeId, NodeId), String> {
    let (a, b) = s
        .split_once('-')
        .ok_or_else(|| format!("events: expected \"a-b\" endpoints, got \"{s}\""))?;
    let parse = |p: &str| {
        p.parse::<usize>()
            .map(NodeId::new)
            .map_err(|_| format!("events: bad node index \"{p}\""))
    };
    Ok((parse(a)?, parse(b)?))
}

/// A schedule of substrate events, ordered by round.
///
/// The text form is the `events=` cell grammar: comma-separated
/// `time:kind:args` entries, e.g.
/// `5:fail-link:2-7,10:recover-link:2-7,12:fail-node:3,8:degrade-link:1-4:2.5`.
/// Entries are kept sorted by time (stable, so same-round events apply in
/// the order written); [`render`](Self::render) emits that sorted order.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SubstrateEvents {
    entries: Vec<(u64, SubstrateEvent)>,
}

impl SubstrateEvents {
    /// An empty schedule (a static substrate).
    pub fn new() -> Self {
        SubstrateEvents::default()
    }

    /// Builds a schedule from `(round, event)` pairs; entries are stably
    /// sorted by round.
    pub fn from_entries(mut entries: Vec<(u64, SubstrateEvent)>) -> Self {
        entries.sort_by_key(|&(t, _)| t);
        SubstrateEvents { entries }
    }

    /// Parses the cell grammar (see the type docs). The empty string is
    /// the empty schedule.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries = Vec::new();
        for item in text.split(',') {
            let item = item.trim();
            if item.is_empty() {
                continue;
            }
            let mut parts = item.splitn(3, ':');
            let time = parts
                .next()
                .and_then(|t| t.parse::<u64>().ok())
                .ok_or_else(|| format!("events: bad time in \"{item}\""))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("events: missing kind in \"{item}\""))?;
            let rest = parts.next().unwrap_or("");
            let event = match kind {
                "fail-link" => {
                    let (a, b) = parse_endpoints(rest)?;
                    SubstrateEvent::FailLink(a, b)
                }
                "recover-link" => {
                    let (a, b) = parse_endpoints(rest)?;
                    SubstrateEvent::RecoverLink(a, b)
                }
                "fail-node" => SubstrateEvent::FailNode(
                    rest.parse::<usize>()
                        .map(NodeId::new)
                        .map_err(|_| format!("events: bad node index \"{rest}\""))?,
                ),
                "recover-node" => SubstrateEvent::RecoverNode(
                    rest.parse::<usize>()
                        .map(NodeId::new)
                        .map_err(|_| format!("events: bad node index \"{rest}\""))?,
                ),
                "degrade-link" => {
                    let (ep, factor) = rest.split_once(':').ok_or_else(|| {
                        format!("events: degrade-link needs \"a-b:factor\", got \"{rest}\"")
                    })?;
                    let (a, b) = parse_endpoints(ep)?;
                    let f = factor
                        .parse::<f64>()
                        .ok()
                        .filter(|f| f.is_finite() && *f > 0.0)
                        .ok_or_else(|| {
                            format!(
                                "events: degrade factor must be finite and > 0, got \"{factor}\""
                            )
                        })?;
                    SubstrateEvent::DegradeLink(a, b, f)
                }
                other => {
                    return Err(format!(
                        "events: unknown event kind \"{other}\" (expected fail-link, \
                         recover-link, fail-node, recover-node or degrade-link)"
                    ))
                }
            };
            entries.push((time, event));
        }
        Ok(SubstrateEvents::from_entries(entries))
    }

    /// Renders the schedule back into the cell grammar. Empty schedules
    /// render as the empty string.
    pub fn render(&self) -> String {
        self.entries
            .iter()
            .map(|(t, e)| format!("{t}:{}", e.render()))
            .collect::<Vec<_>>()
            .join(",")
    }

    /// True when no events are scheduled.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of scheduled events.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// The scheduled `(round, event)` pairs, sorted by round.
    pub fn entries(&self) -> &[(u64, SubstrateEvent)] {
        &self.entries
    }

    /// The earliest scheduled round, if any.
    pub fn first_time(&self) -> Option<u64> {
        self.entries.first().map(|&(t, _)| t)
    }

    /// The latest scheduled round, if any.
    pub fn last_time(&self) -> Option<u64> {
        self.entries.last().map(|&(t, _)| t)
    }

    /// Merges more entries into the schedule (used by the serve daemon's
    /// `POST /sessions/<name>/events`), keeping the time order.
    pub fn extend(&mut self, other: &SubstrateEvents) {
        self.entries.extend(other.entries.iter().cloned());
        self.entries.sort_by_key(|&(t, _)| t);
    }
}

/// An owned, mutable substrate: the graph, its (incrementally repaired)
/// distance matrix, and the failure bookkeeping needed to undo events.
#[derive(Clone, Debug)]
pub struct DynamicWorld {
    graph: Graph,
    dist: DistanceMatrix,
    /// Latency saved when a link failed via `fail-link`, keyed by the
    /// normalized endpoint pair.
    failed_links: BTreeMap<(usize, usize), f64>,
    /// For each failed node: the `(other endpoint, saved latency)` of every
    /// link its failure took down.
    failed_nodes: BTreeMap<usize, Vec<(usize, f64)>>,
}

impl DynamicWorld {
    /// Wraps a substrate and its prebuilt matrix.
    ///
    /// # Panics
    ///
    /// Panics when the matrix size does not match the graph.
    pub fn new(graph: Graph, dist: DistanceMatrix) -> Self {
        assert_eq!(
            graph.node_count(),
            dist.node_count(),
            "DynamicWorld: distance matrix does not match graph"
        );
        DynamicWorld {
            graph,
            dist,
            failed_links: BTreeMap::new(),
            failed_nodes: BTreeMap::new(),
        }
    }

    /// The current (possibly degraded) substrate.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The current distance matrix, kept in sync by incremental repair.
    pub fn dist(&self) -> &DistanceMatrix {
        &self.dist
    }

    fn key(a: NodeId, b: NodeId) -> (usize, usize) {
        let (a, b) = (a.index(), b.index());
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// Applies one event: mutates the graph, updates the bookkeeping and
    /// repairs the distance matrix. Returns the number of matrix rows the
    /// repair recomputed.
    ///
    /// Errors (unknown link, double failure, recovering a live link,
    /// degrading a failed link, node index out of range) leave the world
    /// unchanged.
    pub fn apply(&mut self, event: &SubstrateEvent) -> Result<usize, String> {
        let updates: Vec<EdgeUpdate> = match *event {
            SubstrateEvent::FailLink(a, b) => {
                let key = Self::key(a, b);
                let old = self
                    .graph
                    .edge_latency(a, b)
                    .ok_or_else(|| format!("events: no link {}-{}", a.index(), b.index()))?;
                if !old.is_finite() {
                    return Err(format!(
                        "events: link {}-{} is already down",
                        a.index(),
                        b.index()
                    ));
                }
                self.failed_links.insert(key, old);
                vec![EdgeUpdate {
                    a,
                    b,
                    old_latency: old,
                    new_latency: f64::INFINITY,
                }]
            }
            SubstrateEvent::RecoverLink(a, b) => {
                let key = Self::key(a, b);
                let saved = self.failed_links.remove(&key).ok_or_else(|| {
                    format!(
                        "events: link {}-{} is not failed (or went down with a node)",
                        a.index(),
                        b.index()
                    )
                })?;
                vec![EdgeUpdate {
                    a,
                    b,
                    old_latency: f64::INFINITY,
                    new_latency: saved,
                }]
            }
            SubstrateEvent::FailNode(n) => {
                if n.index() >= self.graph.node_count() {
                    return Err(format!("events: node {} out of range", n.index()));
                }
                if self.failed_nodes.contains_key(&n.index()) {
                    return Err(format!("events: node {} is already down", n.index()));
                }
                let taken: Vec<(usize, f64)> = self
                    .graph
                    .neighbors(n)
                    .filter(|e| e.latency.is_finite())
                    .map(|e| (e.target.index(), e.latency))
                    .collect();
                let updates = taken
                    .iter()
                    .map(|&(other, lat)| EdgeUpdate {
                        a: n,
                        b: NodeId::new(other),
                        old_latency: lat,
                        new_latency: f64::INFINITY,
                    })
                    .collect();
                self.failed_nodes.insert(n.index(), taken);
                updates
            }
            SubstrateEvent::RecoverNode(n) => {
                let taken = self
                    .failed_nodes
                    .remove(&n.index())
                    .ok_or_else(|| format!("events: node {} is not down", n.index()))?;
                let mut updates = Vec::new();
                for (other, lat) in taken {
                    if let Some(entry) = self.failed_nodes.get_mut(&other) {
                        // The other endpoint is still down: the link stays
                        // failed and its recovery transfers to that node.
                        entry.push((n.index(), lat));
                    } else {
                        updates.push(EdgeUpdate {
                            a: n,
                            b: NodeId::new(other),
                            old_latency: f64::INFINITY,
                            new_latency: lat,
                        });
                    }
                }
                updates
            }
            SubstrateEvent::DegradeLink(a, b, factor) => {
                let old = self
                    .graph
                    .edge_latency(a, b)
                    .ok_or_else(|| format!("events: no link {}-{}", a.index(), b.index()))?;
                if !old.is_finite() {
                    return Err(format!(
                        "events: cannot degrade failed link {}-{}",
                        a.index(),
                        b.index()
                    ));
                }
                vec![EdgeUpdate {
                    a,
                    b,
                    old_latency: old,
                    new_latency: old * factor,
                }]
            }
        };
        for up in &updates {
            self.graph
                .set_edge_latency(up.a, up.b, up.new_latency)
                .map_err(|e| format!("events: {e}"))?;
        }
        Ok(self.dist.repair(&self.graph, &updates))
    }
}

/// A resumable online session over a *dynamic* substrate: the evented
/// sibling of [`SimSession`](crate::session::SimSession).
///
/// Each [`step`](Self::step) first applies every scheduled event of the
/// current round to the owned [`DynamicWorld`], then plays the round
/// through the exact code path `SimSession` uses — with an empty schedule
/// the two are bit-identical. Snapshots record the schedule (and the
/// *mutated* substrate's fingerprint); [`resume`](Self::resume) replays
/// the already-applied events onto the pristine substrate before the
/// fingerprint guard runs, so resume-after-events stays bit-identical.
pub struct EventedSession<S: OnlineStrategy> {
    world: DynamicWorld,
    schedule: SubstrateEvents,
    params: CostParams,
    load: LoadModel,
    routing: RoutingPolicy,
    strategy: S,
    fleet: Fleet,
    t: u64,
}

impl<S: OnlineStrategy> std::fmt::Debug for EventedSession<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventedSession")
            .field("strategy", &self.strategy.name())
            .field("t", &self.t)
            .field("events", &self.schedule.len())
            .field("fleet", &self.fleet)
            .finish_non_exhaustive()
    }
}

impl<S: OnlineStrategy> EventedSession<S> {
    /// Opens a session owning the given substrate (pristine: no events
    /// applied yet) with the given initially active servers.
    ///
    /// # Panics
    ///
    /// Panics like [`SimContext::new`] on an empty graph, a mismatched
    /// matrix or invalid parameters.
    pub fn new(
        graph: Graph,
        dist: DistanceMatrix,
        schedule: SubstrateEvents,
        params: CostParams,
        load: LoadModel,
        mut strategy: S,
        initial: Vec<NodeId>,
    ) -> Self {
        let world = DynamicWorld::new(graph, dist);
        let fleet = Fleet::new(initial, &params);
        let ctx = SimContext::new(&world.graph, &world.dist, params, load);
        strategy.initialize(&ctx, &fleet);
        EventedSession {
            world,
            schedule,
            params,
            load,
            routing: RoutingPolicy::Nearest,
            strategy,
            fleet,
            t: 0,
        }
    }

    /// Builder-style override of the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Applies every event scheduled for round `t`, in schedule order.
    fn apply_due(&mut self, t: u64) -> Result<(), String> {
        // Schedules are small; a linear scan per round beats cursor
        // bookkeeping that live event appends would invalidate.
        let due: Vec<SubstrateEvent> = self
            .schedule
            .entries
            .iter()
            .filter(|&&(et, _)| et == t)
            .map(|&(_, e)| e)
            .collect();
        for event in due {
            self.world
                .apply(&event)
                .map_err(|e| format!("round {t}: {e}"))?;
        }
        Ok(())
    }

    /// Plays one round: scheduled events fire first (the strategy sees the
    /// changed world), then the round runs exactly as
    /// [`SimSession::step`](crate::session::SimSession::step) would.
    ///
    /// An event that cannot be applied (e.g. failing an unknown link)
    /// aborts the step *before* any cost is charged.
    pub fn step(&mut self, batch: &RoundRequests) -> Result<RoundRecord, String> {
        self.apply_due(self.t)?;
        let ctx = SimContext::new(&self.world.graph, &self.world.dist, self.params, self.load)
            .with_routing(self.routing);
        let record = play_round(&ctx, &mut self.strategy, &mut self.fleet, self.t, batch);
        self.t += 1;
        Ok(record)
    }

    /// Rounds played so far (the next [`step`](Self::step) is round `t`).
    #[inline]
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The current fleet.
    #[inline]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The owned world in its current (post-events) state.
    #[inline]
    pub fn world(&self) -> &DynamicWorld {
        &self.world
    }

    /// The event schedule.
    #[inline]
    pub fn schedule(&self) -> &SubstrateEvents {
        &self.schedule
    }

    /// The driven strategy.
    #[inline]
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Appends events to the live schedule (the serve daemon's
    /// `POST /sessions/<name>/events`). Events scheduled for rounds that
    /// already played are refused — they could never fire.
    pub fn append_events(&mut self, more: &SubstrateEvents) -> Result<(), String> {
        if let Some(first) = more.first_time() {
            if first < self.t {
                return Err(format!(
                    "events: cannot schedule an event at round {first}: session is at round {}",
                    self.t
                ));
            }
        }
        self.schedule.extend(more);
        Ok(())
    }

    /// Captures the session as a restorable [`SessionSnapshot`]: like
    /// [`SimSession::snapshot`](crate::session::SimSession::snapshot), plus
    /// the event schedule, with the fingerprint taken from the *mutated*
    /// substrate.
    pub fn snapshot(&self) -> Result<SessionSnapshot, String> {
        let strategy_state = self.strategy.export_state().ok_or_else(|| {
            format!(
                "{}: strategy does not support checkpointing",
                self.strategy.name()
            )
        })?;
        let (active, inactive, epoch) = SessionSnapshot::fleet_fields(&self.fleet);
        Ok(SessionSnapshot {
            t: self.t,
            substrate_fingerprint: self.world.graph.fingerprint(),
            params_summary: self.params.summary(),
            strategy_name: self.strategy.name(),
            strategy_state,
            active,
            inactive,
            epoch,
            metrics: None,
            substrate_events: if self.schedule.is_empty() {
                None
            } else {
                Some(self.schedule.render())
            },
        })
    }

    /// Reopens a session from a snapshot against the **pristine** substrate
    /// (no events applied): the schedule recorded in the snapshot is
    /// parsed, every event with time `< snapshot.t` is replayed onto the
    /// world, and only then do the usual resume guards (fingerprint,
    /// parameter summary, strategy name, node bounds) run — so a
    /// checkpoint taken after failures resumes bit-identically.
    pub fn resume(
        graph: Graph,
        dist: DistanceMatrix,
        params: CostParams,
        load: LoadModel,
        mut strategy: S,
        snapshot: &SessionSnapshot,
    ) -> Result<Self, String> {
        let schedule = match &snapshot.substrate_events {
            Some(text) => SubstrateEvents::parse(text)?,
            None => SubstrateEvents::new(),
        };
        let mut world = DynamicWorld::new(graph, dist);
        for &(et, event) in schedule.entries() {
            if et >= snapshot.t {
                break;
            }
            world
                .apply(&event)
                .map_err(|e| format!("resume: replaying round {et}: {e}"))?;
        }
        let fingerprint = world.graph.fingerprint();
        if snapshot.substrate_fingerprint != fingerprint {
            return Err(format!(
                "resume: substrate fingerprint mismatch after event replay \
                 (checkpoint {:016x}, context {:016x})",
                snapshot.substrate_fingerprint, fingerprint
            ));
        }
        let summary = params.summary();
        if snapshot.params_summary != summary {
            return Err(format!(
                "resume: cost-parameter mismatch (checkpoint \"{}\", context \"{summary}\")",
                snapshot.params_summary
            ));
        }
        let name = strategy.name();
        if snapshot.strategy_name != name {
            return Err(format!(
                "resume: strategy mismatch (checkpoint \"{}\", given \"{name}\")",
                snapshot.strategy_name
            ));
        }
        let n = world.graph.node_count();
        if let Some(bad) = snapshot
            .active
            .iter()
            .chain(snapshot.inactive.iter().map(|s| &s.node))
            .find(|id| id.index() >= n)
        {
            return Err(format!(
                "resume: checkpoint names node {bad} but the substrate has only {n} nodes"
            ));
        }
        strategy.import_state(&snapshot.strategy_state)?;
        let fleet = Fleet::from_parts(
            snapshot.active.clone(),
            snapshot.inactive.clone(),
            snapshot.epoch,
            &params,
        )?;
        Ok(EventedSession {
            world,
            schedule,
            params,
            load,
            routing: RoutingPolicy::Nearest,
            strategy,
            fleet,
            t: snapshot.t,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::RunRecord;
    use crate::session::SimSession;
    use flexserve_graph::gen::{unit_line, GenConfig};
    use flexserve_workload::{JsonValue, Trace};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Chases the first request origin and counts decisions (exportable
    /// state, so snapshot/resume is exercised).
    #[derive(Default)]
    struct Chaser {
        decisions: u64,
    }

    impl OnlineStrategy for Chaser {
        fn name(&self) -> String {
            "CHASER".into()
        }
        fn decide(
            &mut self,
            ctx: &SimContext<'_>,
            _t: u64,
            req: &RoundRequests,
            _cost: f64,
            fleet: &Fleet,
        ) -> Option<Vec<NodeId>> {
            self.decisions += 1;
            // Chase the first origin still reachable from the current
            // placement; a fully cut-off round keeps the placement.
            let anchor = fleet.active()[0];
            req.iter()
                .find(|&o| ctx.dist.get(o, anchor).is_finite())
                .map(|o| vec![o])
        }
        fn export_state(&self) -> Option<JsonValue> {
            Some(JsonValue::Obj(vec![(
                "decisions".into(),
                JsonValue::from(self.decisions),
            )]))
        }
        fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
            self.decisions = state
                .get("decisions")
                .and_then(JsonValue::as_u64)
                .ok_or("missing decisions")?;
            Ok(())
        }
    }

    fn trace_hopping(len: usize, rounds: usize) -> Trace {
        Trace::new(
            (0..rounds)
                .map(|t| RoundRequests::new(vec![n(t % len); 3]))
                .collect(),
        )
    }

    fn records_equal(a: &RunRecord, b: &RunRecord) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.t, y.t);
            assert_eq!(x.costs.access.to_bits(), y.costs.access.to_bits());
            assert_eq!(x.costs.running.to_bits(), y.costs.running.to_bits());
            assert_eq!(x.costs.migration.to_bits(), y.costs.migration.to_bits());
            assert_eq!(x.costs.creation.to_bits(), y.costs.creation.to_bits());
            assert_eq!(x.active_servers, y.active_servers);
            assert_eq!(x.inactive_servers, y.inactive_servers);
            assert_eq!(x.requests, y.requests);
        }
    }

    #[test]
    fn grammar_round_trips_and_sorts() {
        let text = "10:recover-link:2-7,5:fail-link:2-7,12:fail-node:3,8:degrade-link:1-4:2.5,\
                    14:recover-node:3";
        let ev = SubstrateEvents::parse(text).unwrap();
        assert_eq!(ev.len(), 5);
        assert_eq!(ev.first_time(), Some(5));
        assert_eq!(ev.last_time(), Some(14));
        // Rendered sorted by time; re-parsing is a fixed point.
        let rendered = ev.render();
        assert_eq!(
            rendered,
            "5:fail-link:2-7,8:degrade-link:1-4:2.5,10:recover-link:2-7,12:fail-node:3,\
             14:recover-node:3"
        );
        assert_eq!(SubstrateEvents::parse(&rendered).unwrap(), ev);
        // Empty schedule round trip.
        let empty = SubstrateEvents::parse("").unwrap();
        assert!(empty.is_empty());
        assert_eq!(empty.render(), "");
    }

    #[test]
    fn grammar_rejects_malformed_entries() {
        for bad in [
            "x:fail-link:1-2",
            "5:fail-link:1",
            "5:fail-link:1-b",
            "5:explode:1-2",
            "5:degrade-link:1-2",
            "5:degrade-link:1-2:0",
            "5:degrade-link:1-2:-3",
            "5:degrade-link:1-2:inf",
            "5:fail-node:x",
        ] {
            assert!(SubstrateEvents::parse(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn world_apply_guards_and_bookkeeping() {
        let g = unit_line(4).unwrap(); // 0-1-2-3
        let dist = DistanceMatrix::build(&g);
        let mut w = DynamicWorld::new(g, dist);

        // Unknown link / double fail / bad recover.
        assert!(w.apply(&SubstrateEvent::FailLink(n(0), n(3))).is_err());
        assert!(w.apply(&SubstrateEvent::RecoverLink(n(0), n(1))).is_err());
        w.apply(&SubstrateEvent::FailLink(n(1), n(2))).unwrap();
        assert!(w.apply(&SubstrateEvent::FailLink(n(1), n(2))).is_err());
        assert!(w
            .apply(&SubstrateEvent::DegradeLink(n(1), n(2), 2.0))
            .is_err());
        assert!(w.dist().get(n(0), n(3)).is_infinite());
        w.apply(&SubstrateEvent::RecoverLink(n(1), n(2))).unwrap();
        assert_eq!(w.dist().get(n(0), n(3)), 3.0);

        // Node guards.
        assert!(w.apply(&SubstrateEvent::FailNode(n(9))).is_err());
        assert!(w.apply(&SubstrateEvent::RecoverNode(n(2))).is_err());
        w.apply(&SubstrateEvent::FailNode(n(2))).unwrap();
        assert!(w.apply(&SubstrateEvent::FailNode(n(2))).is_err());
        // A link taken down by the node is not recoverable as a link event.
        assert!(w.apply(&SubstrateEvent::RecoverLink(n(1), n(2))).is_err());
        w.apply(&SubstrateEvent::RecoverNode(n(2))).unwrap();
        assert_eq!(w.dist().get(n(0), n(3)), 3.0);
    }

    #[test]
    fn overlapping_node_failures_recover_cleanly() {
        // 0-1-2-3: nodes 1 and 2 share the link 1-2. Fail both, recover in
        // both orders; the shared link must come back exactly once, when
        // its *last* down endpoint recovers.
        let g = unit_line(4).unwrap();
        let pristine = DistanceMatrix::build(&g);
        let mut w = DynamicWorld::new(g.clone(), pristine.clone());

        w.apply(&SubstrateEvent::FailNode(n(1))).unwrap();
        w.apply(&SubstrateEvent::FailNode(n(2))).unwrap();
        w.apply(&SubstrateEvent::RecoverNode(n(1))).unwrap();
        // 1 is back but 2 is still down: 1-2 and 2-3 stay failed.
        assert_eq!(w.dist().get(n(0), n(1)), 1.0);
        assert!(w.dist().get(n(0), n(2)).is_infinite());
        assert!(w.dist().get(n(2), n(3)).is_infinite());
        w.apply(&SubstrateEvent::RecoverNode(n(2))).unwrap();
        for u in 0..4 {
            for v in 0..4 {
                assert_eq!(
                    w.dist().get(n(u), n(v)).to_bits(),
                    pristine.get(n(u), n(v)).to_bits()
                );
            }
        }
    }

    #[test]
    fn empty_schedule_is_bit_identical_to_sim_session() {
        let g = unit_line(7).unwrap();
        let dist = DistanceMatrix::build(&g);
        let trace = trace_hopping(7, 20);

        let ctx = SimContext::new(&g, &dist, CostParams::default(), LoadModel::Linear);
        let mut plain = SimSession::new(ctx, Chaser::default(), vec![n(0)]);
        let mut evented = EventedSession::new(
            g.clone(),
            dist.clone(),
            SubstrateEvents::new(),
            CostParams::default(),
            LoadModel::Linear,
            Chaser::default(),
            vec![n(0)],
        );
        let mut a = RunRecord::default();
        let mut b = RunRecord::default();
        for round in trace.iter() {
            a.rounds.push(plain.step(round));
            b.rounds.push(evented.step(round).unwrap());
        }
        records_equal(&a, &b);
    }

    /// The engine-level fail → recover pin: after a link fails and later
    /// recovers, the distance matrix is bit-identical to the pre-failure
    /// matrix, and a run whose fail/recover window sees no requests behind
    /// the failure produces the exact placement trajectory of an
    /// event-free run.
    #[test]
    fn fail_recover_restores_matrix_and_trajectory() {
        let cfg = GenConfig::default();
        let mut rng = SmallRng::seed_from_u64(11);
        let g = flexserve_graph::gen::erdos_renyi(24, 0.12, &cfg, &mut rng).unwrap();
        let pristine = DistanceMatrix::build(&g);
        let trace = trace_hopping(24, 30);

        // Pick an actual edge to fail.
        let e = g.edges().next().unwrap();
        let (a, b) = (e.source, e.target);
        let schedule = SubstrateEvents::parse(&format!(
            "10:fail-link:{}-{},11:recover-link:{}-{}",
            a.index(),
            b.index(),
            a.index(),
            b.index()
        ))
        .unwrap();

        let mut evented = EventedSession::new(
            g.clone(),
            pristine.clone(),
            schedule,
            CostParams::default(),
            LoadModel::Linear,
            Chaser::default(),
            vec![n(0)],
        );
        let fingerprint_before = g.fingerprint();
        for round in trace.iter() {
            evented.step(round).unwrap();
        }
        // Matrix and substrate restored bit for bit.
        assert_eq!(evented.world().graph().fingerprint(), fingerprint_before);
        for u in g.nodes() {
            for v in g.nodes() {
                assert_eq!(
                    evented.world().dist().get(u, v).to_bits(),
                    pristine.get(u, v).to_bits(),
                    "({u},{v}) differs after fail->recover"
                );
            }
        }
        assert_eq!(evented.t(), 30);

        // A fail → recover within the same round (applied in order before
        // the round plays) is a perfect no-op: the whole run's placement
        // trajectory is bit-identical to an event-free run.
        let noop = SubstrateEvents::parse(&format!(
            "10:fail-link:{}-{},10:recover-link:{}-{}",
            a.index(),
            b.index(),
            a.index(),
            b.index()
        ))
        .unwrap();
        let run = |schedule: SubstrateEvents| {
            let mut s = EventedSession::new(
                g.clone(),
                pristine.clone(),
                schedule,
                CostParams::default(),
                LoadModel::Linear,
                Chaser::default(),
                vec![n(0)],
            );
            let mut rec = RunRecord::default();
            for round in trace.iter() {
                rec.rounds.push(s.step(round).unwrap());
            }
            rec
        };
        records_equal(&run(noop), &run(SubstrateEvents::new()));
    }

    #[test]
    fn failures_reroute_and_penalize_without_panicking() {
        // Line 0-1-2-3-4, server chased along; fail node 4's only link so
        // requests at 4 become unreachable, then recover.
        let g = unit_line(5).unwrap();
        let dist = DistanceMatrix::build(&g);
        let schedule = SubstrateEvents::parse("2:fail-node:4,4:recover-node:4").unwrap();
        let mut s = EventedSession::new(
            g,
            dist,
            schedule,
            CostParams::default(),
            LoadModel::None,
            Chaser::default(),
            vec![n(0)],
        );
        let all4 = RoundRequests::new(vec![n(4); 2]);
        let r0 = s.step(&all4).unwrap(); // reachable: chased to 4
        assert!(r0.costs.access.is_finite());
        let _ = s.step(&RoundRequests::new(vec![n(0)])).unwrap(); // server back to 0
        let r2 = s.step(&all4).unwrap(); // node 4 just failed: penalized
        assert!(r2.costs.access >= 2.0 * crate::routing::UNREACHABLE_PENALTY);
        assert!(r2.costs.access.is_finite(), "penalty, not infinity");
        let _ = s.step(&RoundRequests::new(vec![n(1)])).unwrap();
        let r4 = s.step(&all4).unwrap(); // recovered: reachable again
        assert!(r4.costs.access < crate::routing::UNREACHABLE_PENALTY);
    }

    #[test]
    fn snapshot_resume_mid_events_is_bit_identical() {
        let g = unit_line(8).unwrap();
        let dist = DistanceMatrix::build(&g);
        let trace = trace_hopping(8, 24);
        let schedule =
            SubstrateEvents::parse("5:fail-link:3-4,9:degrade-link:0-1:2.5,15:recover-link:3-4")
                .unwrap();
        let make = || {
            EventedSession::new(
                g.clone(),
                dist.clone(),
                schedule.clone(),
                CostParams::default(),
                LoadModel::Linear,
                Chaser::default(),
                vec![n(0)],
            )
        };

        let mut uninterrupted = make();
        let mut full = RunRecord::default();
        for round in trace.iter() {
            full.rounds.push(uninterrupted.step(round).unwrap());
        }

        // Checkpoint at t=12: one failure and one degradation applied, the
        // recovery still pending.
        let mut first = make();
        let mut stitched = RunRecord::default();
        for round in trace.iter().take(12) {
            stitched.rounds.push(first.step(round).unwrap());
        }
        let snap = first.snapshot().unwrap();
        assert_eq!(
            snap.substrate_events.as_deref(),
            Some(schedule.render()).as_deref()
        );
        // Round-trip through the JSON text, as a daemon restart would.
        let snap = SessionSnapshot::from_json(&snap.to_json()).unwrap();
        drop(first);

        let mut resumed = EventedSession::resume(
            g.clone(),
            dist.clone(),
            CostParams::default(),
            LoadModel::Linear,
            Chaser::default(),
            &snap,
        )
        .unwrap();
        assert_eq!(resumed.t(), 12);
        for round in trace.iter().skip(12) {
            stitched.rounds.push(resumed.step(round).unwrap());
        }
        records_equal(&full, &stitched);

        // Resuming without replay (tampered schedule) trips the
        // fingerprint guard instead of silently diverging.
        let mut tampered = snap.clone();
        tampered.substrate_events = None;
        let err = EventedSession::resume(
            g.clone(),
            dist.clone(),
            CostParams::default(),
            LoadModel::Linear,
            Chaser::default(),
            &tampered,
        )
        .unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");
    }

    #[test]
    fn append_events_rejects_the_past() {
        let g = unit_line(4).unwrap();
        let dist = DistanceMatrix::build(&g);
        let mut s = EventedSession::new(
            g,
            dist,
            SubstrateEvents::new(),
            CostParams::default(),
            LoadModel::None,
            Chaser::default(),
            vec![n(0)],
        );
        for _ in 0..3 {
            s.step(&RoundRequests::new(vec![n(1)])).unwrap();
        }
        let past = SubstrateEvents::parse("1:fail-link:0-1").unwrap();
        assert!(s.append_events(&past).is_err());
        let future = SubstrateEvents::parse("5:fail-link:0-1,7:recover-link:0-1").unwrap();
        s.append_events(&future).unwrap();
        assert_eq!(s.schedule().len(), 2);
        // The appended events actually fire.
        for _ in 3..6 {
            s.step(&RoundRequests::new(vec![n(1)])).unwrap();
        }
        assert!(s.world().dist().get(n(0), n(1)).is_infinite());
    }

    #[test]
    fn bad_event_aborts_step_before_costs() {
        let g = unit_line(3).unwrap();
        let dist = DistanceMatrix::build(&g);
        let schedule = SubstrateEvents::parse("0:fail-link:0-2").unwrap(); // no such link
        let mut s = EventedSession::new(
            g,
            dist,
            schedule,
            CostParams::default(),
            LoadModel::None,
            Chaser::default(),
            vec![n(0)],
        );
        let err = s.step(&RoundRequests::new(vec![n(1)])).unwrap_err();
        assert!(err.contains("no link"), "{err}");
        assert_eq!(s.t(), 0, "failed step does not advance the round");
    }
}
