//! The resumable round stepper.
//!
//! [`SimSession`] is the open-loop form of the engine: where
//! [`run_online`](crate::engine::run_online) consumes a whole recorded
//! [`Trace`](flexserve_workload::Trace) at once, a session is fed one
//! [`RoundRequests`] at a time — by a batch loop, by a streaming
//! [`RequestSource`](flexserve_workload::RequestSource), or by the
//! `flexserve serve` HTTP daemon. The batch entry point is a thin wrapper
//! over this type, so both paths are the same code and produce
//! bit-identical records (the golden CSV tests pin this).
//!
//! Sessions checkpoint: [`SimSession::snapshot`] captures the round
//! counter, the fleet and the strategy's exported state as a
//! [`SessionSnapshot`], and [`SimSession::resume`] reconstructs a session
//! that continues exactly where the original would have — bit-identical
//! to an uninterrupted run (pinned by `crates/core/tests/checkpoint_resume.rs`).

use flexserve_graph::NodeId;
use flexserve_workload::RoundRequests;

use crate::checkpoint::SessionSnapshot;
use crate::context::SimContext;
use crate::cost::CostBreakdown;
use crate::engine::{OnlineStrategy, RoundRecord};
use crate::fleet::Fleet;
use crate::transition::TransitionPlanner;

/// A stepwise online game: one [`OnlineStrategy`] against rounds that
/// arrive one at a time.
///
/// The strategy is owned; to drive a session over a borrowed or boxed
/// strategy use the blanket [`OnlineStrategy`] impls for `&mut S` and
/// `Box<S>`.
///
/// ```
/// use flexserve_graph::{gen::unit_line, DistanceMatrix, NodeId};
/// use flexserve_sim::{CostParams, LoadModel, SimContext, SimSession};
/// use flexserve_workload::RoundRequests;
///
/// // A strategy that chases the first request origin of every round.
/// struct Chaser;
/// impl flexserve_sim::OnlineStrategy for Chaser {
///     fn name(&self) -> String { "CHASER".into() }
///     fn decide(
///         &mut self,
///         _ctx: &SimContext<'_>,
///         _t: u64,
///         req: &RoundRequests,
///         _access_cost: f64,
///         _fleet: &flexserve_sim::Fleet,
///     ) -> Option<Vec<NodeId>> {
///         req.iter().next().map(|o| vec![o])
///     }
/// }
///
/// let graph = unit_line(5).unwrap();
/// let matrix = DistanceMatrix::build(&graph);
/// let ctx = SimContext::new(&graph, &matrix, CostParams::default(), LoadModel::None);
///
/// let mut session = SimSession::new(ctx, Chaser, vec![NodeId::new(0)]);
/// let record = session.step(&RoundRequests::new(vec![NodeId::new(4)]));
/// assert_eq!(record.costs.access, 4.0);      // served from node 0, then…
/// assert!(session.fleet().is_active_at(NodeId::new(4))); // …migrated.
/// assert_eq!(session.t(), 1);
/// ```
pub struct SimSession<'a, S: OnlineStrategy> {
    ctx: SimContext<'a>,
    strategy: S,
    fleet: Fleet,
    t: u64,
}

/// Plays round `t` of the online game: access cost to the current fleet,
/// the strategy's reconfiguration through the shared planner, running
/// costs. The one round implementation shared by [`SimSession::step`] and
/// the evented session in [`crate::events`] — both paths are the same code,
/// so static and dynamic substrates produce bit-identical records whenever
/// no event fires.
pub(crate) fn play_round<S: OnlineStrategy + ?Sized>(
    ctx: &SimContext<'_>,
    strategy: &mut S,
    fleet: &mut Fleet,
    t: u64,
    batch: &RoundRequests,
) -> RoundRecord {
    let mut costs = CostBreakdown::zero();

    // 1+2: requests arrive, access cost paid to current servers.
    costs.access = ctx.access_cost(fleet.active(), batch);

    // 3: the algorithm reconfigures.
    if let Some(target) = strategy.decide(ctx, t, batch, costs.access, fleet) {
        let outcome = TransitionPlanner::apply(fleet, &target, &ctx.params);
        costs += outcome.cost;
        // Reconfiguration marks an epoch boundary for cache expiry.
        fleet.advance_epoch();
    }

    // Running costs for the (possibly new) configuration.
    costs.running = ctx.running_cost(fleet.active_count(), fleet.inactive_count());

    RoundRecord {
        t,
        costs,
        active_servers: fleet.active_count(),
        inactive_servers: fleet.inactive_count(),
        requests: batch.len(),
    }
}

impl<S: OnlineStrategy> std::fmt::Debug for SimSession<'_, S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SimSession")
            .field("strategy", &self.strategy.name())
            .field("t", &self.t)
            .field("fleet", &self.fleet)
            .finish_non_exhaustive()
    }
}

impl<'a, S: OnlineStrategy> SimSession<'a, S> {
    /// Opens a session with the given initially active servers (no
    /// creation charge for the initial configuration `γ0`, as in the
    /// paper's set-up) and lets the strategy observe the initial fleet.
    pub fn new(ctx: SimContext<'a>, mut strategy: S, initial: Vec<NodeId>) -> Self {
        let fleet = Fleet::new(initial, &ctx.params);
        strategy.initialize(&ctx, &fleet);
        SimSession {
            ctx,
            strategy,
            fleet,
            t: 0,
        }
    }

    /// Plays one round: requests arrive, access cost is paid to the
    /// current servers, the strategy optionally reconfigures (paying
    /// migration/creation through the shared planner), running costs are
    /// charged. Returns the round's log row.
    pub fn step(&mut self, batch: &RoundRequests) -> RoundRecord {
        let record = play_round(
            &self.ctx,
            &mut self.strategy,
            &mut self.fleet,
            self.t,
            batch,
        );
        self.t += 1;
        record
    }

    /// Rounds played so far (the next [`step`](Self::step) is round `t`).
    #[inline]
    pub fn t(&self) -> u64 {
        self.t
    }

    /// The current fleet.
    #[inline]
    pub fn fleet(&self) -> &Fleet {
        &self.fleet
    }

    /// The session's context.
    #[inline]
    pub fn ctx(&self) -> &SimContext<'a> {
        &self.ctx
    }

    /// The driven strategy.
    #[inline]
    pub fn strategy(&self) -> &S {
        &self.strategy
    }

    /// Captures the session as a restorable [`SessionSnapshot`].
    ///
    /// Fails when the strategy does not support state export (see
    /// [`OnlineStrategy::export_state`]).
    pub fn snapshot(&self) -> Result<SessionSnapshot, String> {
        let strategy_state = self.strategy.export_state().ok_or_else(|| {
            format!(
                "{}: strategy does not support checkpointing",
                self.strategy.name()
            )
        })?;
        let (active, inactive, epoch) = SessionSnapshot::fleet_fields(&self.fleet);
        Ok(SessionSnapshot {
            t: self.t,
            substrate_fingerprint: self.ctx.graph.fingerprint(),
            params_summary: self.ctx.params.summary(),
            strategy_name: self.strategy.name(),
            strategy_state,
            active,
            inactive,
            epoch,
            // The session tracks game state, not serving totals; layers
            // that do (the serve daemon) fill this before writing. The
            // evented session likewise fills in its event schedule.
            metrics: None,
            substrate_events: None,
        })
    }

    /// Reopens a session from a snapshot: `strategy` must be a freshly
    /// constructed instance of the snapshotted strategy (matched by
    /// name); its mutable state is imported, the fleet is rebuilt, and
    /// the round counter continues at `snapshot.t`.
    ///
    /// The strategy's `initialize` hook is **not** re-run — the snapshot
    /// *is* the initialized-and-played state. Restores against a
    /// different substrate (by fingerprint) or cost model (by parameter
    /// summary) are refused.
    pub fn resume(
        ctx: SimContext<'a>,
        mut strategy: S,
        snapshot: &SessionSnapshot,
    ) -> Result<Self, String> {
        let fingerprint = ctx.graph.fingerprint();
        if snapshot.substrate_fingerprint != fingerprint {
            return Err(format!(
                "resume: substrate fingerprint mismatch (checkpoint {:016x}, context {:016x})",
                snapshot.substrate_fingerprint, fingerprint
            ));
        }
        let params = ctx.params.summary();
        if snapshot.params_summary != params {
            return Err(format!(
                "resume: cost-parameter mismatch (checkpoint \"{}\", context \"{}\")",
                snapshot.params_summary, params
            ));
        }
        let name = strategy.name();
        if snapshot.strategy_name != name {
            return Err(format!(
                "resume: strategy mismatch (checkpoint \"{}\", given \"{name}\")",
                snapshot.strategy_name
            ));
        }
        // Node ids must exist on this substrate — a corrupted checkpoint
        // should be refused here, not panic on the first step's distance
        // lookup.
        let n = ctx.graph.node_count();
        if let Some(bad) = snapshot
            .active
            .iter()
            .chain(snapshot.inactive.iter().map(|s| &s.node))
            .find(|id| id.index() >= n)
        {
            return Err(format!(
                "resume: checkpoint names node {bad} but the substrate has only {n} nodes"
            ));
        }
        strategy.import_state(&snapshot.strategy_state)?;
        let fleet = Fleet::from_parts(
            snapshot.active.clone(),
            snapshot.inactive.clone(),
            snapshot.epoch,
            &ctx.params,
        )?;
        Ok(SimSession {
            ctx,
            strategy,
            fleet,
            t: snapshot.t,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{run_online, RunRecord};
    use crate::load::LoadModel;
    use crate::params::CostParams;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;
    use flexserve_workload::{JsonValue, Trace};

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    /// Chases the first request origin; carries a counter so snapshotting
    /// real mutable state is exercised at the sim layer too.
    #[derive(Default)]
    struct CountingChaser {
        decisions: u64,
    }

    impl OnlineStrategy for CountingChaser {
        fn name(&self) -> String {
            "COUNTING-CHASER".into()
        }
        fn decide(
            &mut self,
            _ctx: &SimContext<'_>,
            _t: u64,
            req: &RoundRequests,
            _cost: f64,
            _fleet: &Fleet,
        ) -> Option<Vec<NodeId>> {
            self.decisions += 1;
            req.iter().next().map(|o| vec![o])
        }
        fn export_state(&self) -> Option<JsonValue> {
            Some(JsonValue::Obj(vec![(
                "decisions".into(),
                JsonValue::from(self.decisions),
            )]))
        }
        fn import_state(&mut self, state: &JsonValue) -> Result<(), String> {
            self.decisions = state
                .get("decisions")
                .and_then(JsonValue::as_u64)
                .ok_or("missing decisions")?;
            Ok(())
        }
    }

    /// No decisions, no state export (the default).
    struct Opaque;
    impl OnlineStrategy for Opaque {
        fn name(&self) -> String {
            "OPAQUE".into()
        }
        fn decide(
            &mut self,
            _ctx: &SimContext<'_>,
            _t: u64,
            _req: &RoundRequests,
            _cost: f64,
            _fleet: &Fleet,
        ) -> Option<Vec<NodeId>> {
            None
        }
    }

    struct Fx {
        g: flexserve_graph::Graph,
        m: DistanceMatrix,
    }
    impl Fx {
        fn new(len: usize) -> Self {
            let g = unit_line(len).unwrap();
            let m = DistanceMatrix::build(&g);
            Fx { g, m }
        }
        fn ctx(&self) -> SimContext<'_> {
            SimContext::new(&self.g, &self.m, CostParams::default(), LoadModel::None)
        }
    }

    fn trace_hopping(len: usize) -> Trace {
        Trace::new(
            (0..20)
                .map(|t| RoundRequests::new(vec![n(t % len); 3]))
                .collect(),
        )
    }

    fn records_equal(a: &RunRecord, b: &RunRecord) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.rounds.iter().zip(&b.rounds) {
            assert_eq!(x.t, y.t);
            assert_eq!(x.costs.access.to_bits(), y.costs.access.to_bits());
            assert_eq!(x.costs.running.to_bits(), y.costs.running.to_bits());
            assert_eq!(x.costs.migration.to_bits(), y.costs.migration.to_bits());
            assert_eq!(x.costs.creation.to_bits(), y.costs.creation.to_bits());
            assert_eq!(x.active_servers, y.active_servers);
            assert_eq!(x.inactive_servers, y.inactive_servers);
            assert_eq!(x.requests, y.requests);
        }
    }

    #[test]
    fn stepping_matches_run_online_exactly() {
        let fx = Fx::new(7);
        let ctx = fx.ctx();
        let trace = trace_hopping(7);
        let batch = run_online(&ctx, &trace, &mut CountingChaser::default(), vec![n(0)]);
        let mut session = SimSession::new(ctx, CountingChaser::default(), vec![n(0)]);
        let mut stepped = RunRecord::default();
        for round in trace.iter() {
            stepped.rounds.push(session.step(round));
        }
        records_equal(&batch, &stepped);
        assert_eq!(session.t(), 20);
    }

    #[test]
    fn snapshot_resume_is_bit_identical_to_uninterrupted() {
        let fx = Fx::new(6);
        let ctx = fx.ctx();
        let trace = trace_hopping(6);

        let uninterrupted = run_online(&ctx, &trace, &mut CountingChaser::default(), vec![n(2)]);

        let mut first_half = SimSession::new(ctx, CountingChaser::default(), vec![n(2)]);
        let mut resumed_rec = RunRecord::default();
        for round in trace.iter().take(10) {
            resumed_rec.rounds.push(first_half.step(round));
        }
        let snap = first_half.snapshot().unwrap();
        // Round-trip through the JSON text, as a daemon restart would.
        let snap = SessionSnapshot::from_json(&snap.to_json()).unwrap();
        drop(first_half);

        let mut second_half = SimSession::resume(ctx, CountingChaser::default(), &snap).unwrap();
        assert_eq!(second_half.t(), 10);
        assert_eq!(second_half.strategy().decisions, 10);
        for round in trace.iter().skip(10) {
            resumed_rec.rounds.push(second_half.step(round));
        }
        records_equal(&uninterrupted, &resumed_rec);
    }

    #[test]
    fn snapshot_requires_exportable_state() {
        let fx = Fx::new(4);
        let session = SimSession::new(fx.ctx(), Opaque, vec![n(0)]);
        let err = session.snapshot().unwrap_err();
        assert!(err.contains("does not support checkpointing"), "{err}");
    }

    #[test]
    fn resume_guards_mismatches() {
        let fx = Fx::new(5);
        let ctx = fx.ctx();
        let mut session = SimSession::new(ctx, CountingChaser::default(), vec![n(0)]);
        session.step(&RoundRequests::new(vec![n(3)]));
        let snap = session.snapshot().unwrap();

        // wrong substrate
        let other = Fx::new(9);
        let err = SimSession::resume(other.ctx(), CountingChaser::default(), &snap).unwrap_err();
        assert!(err.contains("fingerprint mismatch"), "{err}");

        // wrong cost model
        let flipped = SimContext::new(&fx.g, &fx.m, CostParams::flipped(), LoadModel::None);
        let err = SimSession::resume(flipped, CountingChaser::default(), &snap).unwrap_err();
        assert!(err.contains("cost-parameter mismatch"), "{err}");

        // wrong strategy
        let err = SimSession::resume(ctx, Opaque, &snap).unwrap_err();
        assert!(err.contains("strategy mismatch"), "{err}");

        // corrupted checkpoint: node id beyond the substrate
        let mut bad = snap.clone();
        bad.active = vec![n(9999)];
        let err = SimSession::resume(ctx, CountingChaser::default(), &bad).unwrap_err();
        assert!(err.contains("9999"), "{err}");
    }

    #[test]
    fn boxed_and_borrowed_strategies_drive_sessions() {
        let fx = Fx::new(5);
        let ctx = fx.ctx();
        let trace = trace_hopping(5);

        // Box<dyn OnlineStrategy> — the serve daemon's shape.
        let boxed: Box<dyn OnlineStrategy> = Box::new(CountingChaser::default());
        let mut session = SimSession::new(ctx, boxed, vec![n(0)]);
        let mut boxed_rec = RunRecord::default();
        for round in trace.iter() {
            boxed_rec.rounds.push(session.step(round));
        }
        // snapshot flows through the Box delegation
        assert!(session.snapshot().is_ok());

        // &mut S — run_online's shape.
        let mut owned = CountingChaser::default();
        let borrowed = run_online(&ctx, &trace, &mut owned, vec![n(0)]);
        records_equal(&boxed_rec, &borrowed);
    }
}
