//! Cost-model parameters (§II-C of the paper).

/// All scalar parameters of the cost model.
///
/// Paper defaults (§V-A): `β = 40`, `c = 400`; for the `β > c` experiments
/// `β = 400`, `c = 40`. Running costs from the Rocketfuel experiment:
/// `Ra = 2.5`, `Ri = 0.5`. The inactive-server cache holds 3 servers and
/// entries expire after 20 epochs.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CostParams {
    /// Migration cost `β`: charged per server migration (bulk transfer of
    /// configuration and state over the network, opportunistic costs).
    pub migration_beta: f64,
    /// Creation cost `c`: installing the box and template, configuring
    /// addresses, starting the server.
    pub creation_c: f64,
    /// Running cost `Ra` per *active* server per round (CPU, RAM state,
    /// bandwidth).
    pub run_active: f64,
    /// Running cost `Ri` per *inactive* server per round (storing the
    /// application software plus maintenance).
    pub run_inactive: f64,
    /// Maximum number of servers `k = |S|` the service may use
    /// (active + inactive combined).
    pub max_servers: usize,
    /// Capacity of the FIFO cache of inactive servers (paper: 3).
    pub inactive_queue_len: usize,
    /// Inactive servers expire after this many epochs in the cache
    /// (paper: `x = 20`).
    pub inactive_expiry_epochs: u64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            migration_beta: 40.0,
            creation_c: 400.0,
            run_active: 2.5,
            run_inactive: 0.5,
            max_servers: 16,
            inactive_queue_len: 3,
            inactive_expiry_epochs: 20,
        }
    }
}

impl CostParams {
    /// The paper's flipped regime where migration is never worthwhile:
    /// `β = 400 > c = 40` (all other fields unchanged).
    pub fn flipped() -> Self {
        CostParams {
            migration_beta: 400.0,
            creation_c: 40.0,
            ..CostParams::default()
        }
    }

    /// Whether migration can ever beat creating a fresh server.
    #[inline]
    pub fn migration_useful(&self) -> bool {
        self.migration_beta < self.creation_c
    }

    /// Builder-style override of the server budget `k`.
    pub fn with_max_servers(mut self, k: usize) -> Self {
        self.max_servers = k;
        self
    }

    /// Builder-style override of `β` and `c`.
    pub fn with_costs(mut self, beta: f64, c: f64) -> Self {
        self.migration_beta = beta;
        self.creation_c = c;
        self
    }

    /// Builder-style override of the running costs.
    pub fn with_running(mut self, ra: f64, ri: f64) -> Self {
        self.run_active = ra;
        self.run_inactive = ri;
        self
    }

    /// Canonical one-line summary (`beta=40 c=400 Ra=2.5 Ri=0.5 k=16
    /// cache=3 expiry=20`), recorded by the experiment CLI's result
    /// manifest so every artifact names the cost model that produced it.
    pub fn summary(&self) -> String {
        format!(
            "beta={} c={} Ra={} Ri={} k={} cache={} expiry={}",
            self.migration_beta,
            self.creation_c,
            self.run_active,
            self.run_inactive,
            self.max_servers,
            self.inactive_queue_len,
            self.inactive_expiry_epochs
        )
    }

    /// Validates the parameter combination, returning a description of the
    /// first problem found.
    pub fn validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("migration_beta", self.migration_beta),
            ("creation_c", self.creation_c),
            ("run_active", self.run_active),
            ("run_inactive", self.run_inactive),
        ] {
            if !v.is_finite() || v < 0.0 {
                return Err(format!("{name} must be finite and >= 0, got {v}"));
            }
        }
        if self.max_servers == 0 {
            return Err("max_servers must be >= 1".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let p = CostParams::default();
        assert_eq!(p.migration_beta, 40.0);
        assert_eq!(p.creation_c, 400.0);
        assert_eq!(p.run_active, 2.5);
        assert_eq!(p.run_inactive, 0.5);
        assert_eq!(p.inactive_queue_len, 3);
        assert_eq!(p.inactive_expiry_epochs, 20);
        assert!(p.migration_useful());
        assert!(p.validate().is_ok());
    }

    #[test]
    fn flipped_regime() {
        let p = CostParams::flipped();
        assert_eq!(p.migration_beta, 400.0);
        assert_eq!(p.creation_c, 40.0);
        assert!(!p.migration_useful());
    }

    #[test]
    fn builders() {
        let p = CostParams::default()
            .with_max_servers(4)
            .with_costs(10.0, 100.0)
            .with_running(1.0, 0.1);
        assert_eq!(p.max_servers, 4);
        assert_eq!(p.migration_beta, 10.0);
        assert_eq!(p.run_active, 1.0);
    }

    #[test]
    fn summary_is_canonical() {
        assert_eq!(
            CostParams::default().summary(),
            "beta=40 c=400 Ra=2.5 Ri=0.5 k=16 cache=3 expiry=20"
        );
        assert_eq!(
            CostParams::flipped().summary(),
            "beta=400 c=40 Ra=2.5 Ri=0.5 k=16 cache=3 expiry=20"
        );
    }

    #[test]
    fn validation_catches_problems() {
        let p = CostParams {
            migration_beta: -1.0,
            ..CostParams::default()
        };
        assert!(p.validate().is_err());
        let p = CostParams {
            max_servers: 0,
            ..CostParams::default()
        };
        assert!(p.validate().is_err());
        let p = CostParams {
            creation_c: f64::NAN,
            ..CostParams::default()
        };
        assert!(p.validate().is_err());
    }
}
