//! Request routing: assigning each request of a round to an active server.
//!
//! The paper assumes "requests are routed to the server of minimal access
//! costs". Two policies implement this:
//!
//! * [`RoutingPolicy::Nearest`] — each request goes to the server of
//!   minimal shortest-path latency; the load term is then computed from the
//!   resulting per-server request counts. Deterministic and decomposable
//!   per origin, which the strategies exploit for fast candidate
//!   evaluation. This is the default and the policy used in all paper
//!   reproductions.
//! * [`RoutingPolicy::LoadAware`] — requests are assigned one at a time
//!   (in the batch's canonical origin order) to the server minimizing
//!   `latency + marginal load`; with a convex load function this greedy
//!   assignment spreads a hot origin over several servers. Used by the
//!   routing ablation bench.
//!
//! The hot path is [`route_counts`]: nearest routing straight off the
//! sorted per-origin count vector every [`RoundRequests`] (and therefore
//! every round of a shared `RoundTrace`) stores — no per-round folding,
//! sorting or request-list rebuild per strategy.

use flexserve_graph::NodeId;
use flexserve_workload::RoundRequests;

use crate::context::SimContext;

/// Access cost charged per request whose origin cannot reach *any* active
/// server (substrate failures can disconnect an origin even while servers
/// exist elsewhere).
///
/// The penalty is finite so strategy cost windows stay NaN-free and a run
/// over a temporarily partitioned substrate still produces comparable
/// totals — but it is far above any realistic path latency, so every
/// strategy treats a partition as catastrophic. The *no active servers at
/// all* case keeps its `f64::INFINITY` cost (that is a broken
/// configuration, not a broken substrate). See `docs/FAULTS.md`.
pub const UNREACHABLE_PENALTY: f64 = 1.0e9;

/// How requests pick among the active servers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Latency-only nearest server (default; see module docs).
    Nearest,
    /// Greedy latency-plus-marginal-load assignment.
    LoadAware,
}

/// Result of routing one round of requests.
#[derive(Clone, Debug)]
pub struct RoutingOutcome {
    /// Sum of request latencies `Σ_r delay(r)`.
    pub total_delay: f64,
    /// Sum of server load latencies `Σ_v load(v, t)`.
    pub total_load: f64,
    /// `total_delay + total_load` (the round's `Cost_acc`);
    /// `f64::INFINITY` when requests exist but no server is active.
    pub cost: f64,
    /// Requests assigned to each active server (same order as the `servers`
    /// slice passed to [`route`]).
    pub assigned: Vec<usize>,
}

/// Routes `batch` onto the active `servers` under `ctx`'s policy.
///
/// An empty batch costs 0 regardless of servers; a non-empty batch with no
/// servers costs `f64::INFINITY`.
pub fn route(ctx: &SimContext<'_>, servers: &[NodeId], batch: &RoundRequests) -> RoutingOutcome {
    match ctx.routing {
        RoutingPolicy::Nearest => route_counts(ctx, servers, batch.counts_slice()),
        RoutingPolicy::LoadAware => {
            if batch.is_empty() {
                return empty_outcome(servers);
            }
            if servers.is_empty() {
                return no_server_outcome();
            }
            route_load_aware(ctx, servers, batch)
        }
    }
}

fn empty_outcome(servers: &[NodeId]) -> RoutingOutcome {
    RoutingOutcome {
        total_delay: 0.0,
        total_load: 0.0,
        cost: 0.0,
        assigned: vec![0; servers.len()],
    }
}

fn no_server_outcome() -> RoutingOutcome {
    RoutingOutcome {
        total_delay: 0.0,
        total_load: 0.0,
        cost: f64::INFINITY,
        assigned: Vec::new(),
    }
}

/// Nearest-server routing over a **sorted per-origin count vector** — the
/// demand plane's canonical round form, consumed here without folding,
/// sorting or allocating a request list. One nearest-server lookup per
/// distinct origin; `counts` is sorted by origin, so the float
/// accumulation order is deterministic (serial == parallel bitwise).
pub fn route_counts(
    ctx: &SimContext<'_>,
    servers: &[NodeId],
    counts: &[(NodeId, usize)],
) -> RoutingOutcome {
    if counts.is_empty() {
        return empty_outcome(servers);
    }
    if servers.is_empty() {
        return no_server_outcome();
    }
    let mut assigned = vec![0usize; servers.len()];
    let mut total_delay = 0.0;
    for &(origin, cnt) in counts {
        let (best_idx, best_d) = nearest_server(ctx, servers, origin);
        if best_d.is_finite() {
            total_delay += best_d * cnt as f64;
            assigned[best_idx] += cnt;
        } else {
            // Origin cut off from every server by substrate failures:
            // charge the penalty instead of poisoning the round with ∞.
            total_delay += UNREACHABLE_PENALTY * cnt as f64;
        }
    }
    finish(ctx, servers, assigned, total_delay)
}

fn route_load_aware(
    ctx: &SimContext<'_>,
    servers: &[NodeId],
    batch: &RoundRequests,
) -> RoutingOutcome {
    let mut assigned = vec![0usize; servers.len()];
    let mut total_delay = 0.0;
    for origin in batch.iter() {
        let mut best = 0usize;
        let mut best_cost = f64::INFINITY;
        for (i, &s) in servers.iter().enumerate() {
            let d = ctx.dist.get(origin, s);
            let marginal = ctx.load.marginal(ctx.graph.strength(s), assigned[i]);
            let c = d + marginal;
            if c < best_cost {
                best_cost = c;
                best = i;
            }
        }
        let d = ctx.dist.get(origin, servers[best]);
        if d.is_finite() {
            total_delay += d;
            assigned[best] += 1;
        } else {
            // Same unreachable-origin penalty as nearest routing.
            total_delay += UNREACHABLE_PENALTY;
        }
    }
    finish(ctx, servers, assigned, total_delay)
}

fn finish(
    ctx: &SimContext<'_>,
    servers: &[NodeId],
    assigned: Vec<usize>,
    total_delay: f64,
) -> RoutingOutcome {
    let total_load: f64 = servers
        .iter()
        .zip(&assigned)
        .map(|(&s, &eta)| ctx.load.load(ctx.graph.strength(s), eta))
        .sum();
    RoutingOutcome {
        total_delay,
        total_load,
        cost: total_delay + total_load,
        assigned,
    }
}

/// Index and distance of the server nearest to `origin` (ties broken by
/// slice order).
#[inline]
pub fn nearest_server(ctx: &SimContext<'_>, servers: &[NodeId], origin: NodeId) -> (usize, f64) {
    let mut best = 0usize;
    let mut best_d = f64::INFINITY;
    for (i, &s) in servers.iter().enumerate() {
        let d = ctx.dist.get(origin, s);
        if d < best_d {
            best_d = d;
            best = i;
        }
    }
    (best, best_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::LoadModel;
    use crate::params::CostParams;
    use flexserve_graph::gen::unit_line;
    use flexserve_graph::DistanceMatrix;

    fn ctx_on_line<'a>(
        g: &'a flexserve_graph::Graph,
        m: &'a DistanceMatrix,
        load: LoadModel,
    ) -> SimContext<'a> {
        SimContext::new(g, m, CostParams::default(), load)
    }

    #[test]
    fn nearest_picks_closest_server() {
        let g = unit_line(10).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = ctx_on_line(&g, &m, LoadModel::None);
        let servers = [NodeId::new(0), NodeId::new(9)];
        let batch = RoundRequests::new(vec![NodeId::new(2), NodeId::new(8)]);
        let out = route(&ctx, &servers, &batch);
        assert_eq!(out.total_delay, 2.0 + 1.0);
        assert_eq!(out.assigned, vec![1, 1]);
        assert_eq!(out.cost, 3.0);
    }

    #[test]
    fn load_term_added_for_linear() {
        let g = unit_line(5).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = ctx_on_line(&g, &m, LoadModel::Linear);
        let servers = [NodeId::new(2)];
        let batch = RoundRequests::new(vec![NodeId::new(2); 4]);
        let out = route(&ctx, &servers, &batch);
        assert_eq!(out.total_delay, 0.0);
        assert_eq!(out.total_load, 4.0); // 4 requests / strength 1
        assert_eq!(out.cost, 4.0);
    }

    #[test]
    fn load_aware_spreads_under_quadratic() {
        let g = unit_line(3).unwrap(); // 0 - 1 - 2
        let m = DistanceMatrix::build(&g);
        let ctx = ctx_on_line(&g, &m, LoadModel::Quadratic).with_routing(RoutingPolicy::LoadAware);
        let servers = [NodeId::new(0), NodeId::new(2)];
        // 6 requests all at node 0: nearest would pile them on server 0
        // (load 36); load-aware pays latency 2 to offload some.
        let batch = RoundRequests::new(vec![NodeId::new(0); 6]);
        let aware = route(&ctx, &servers, &batch);
        let ctx_near = ctx_on_line(&g, &m, LoadModel::Quadratic);
        let near = route(&ctx_near, &servers, &batch);
        assert_eq!(near.assigned, vec![6, 0]);
        assert!(aware.assigned[1] > 0, "load-aware should offload");
        assert!(aware.cost < near.cost);
    }

    #[test]
    fn nearest_and_load_aware_agree_without_load() {
        let g = unit_line(8).unwrap();
        let m = DistanceMatrix::build(&g);
        let batch = RoundRequests::new(vec![
            NodeId::new(0),
            NodeId::new(3),
            NodeId::new(7),
            NodeId::new(4),
        ]);
        let servers = [NodeId::new(1), NodeId::new(6)];
        let a = route(&ctx_on_line(&g, &m, LoadModel::None), &servers, &batch);
        let b = route(
            &ctx_on_line(&g, &m, LoadModel::None).with_routing(RoutingPolicy::LoadAware),
            &servers,
            &batch,
        );
        assert_eq!(a.cost, b.cost);
        assert_eq!(a.assigned, b.assigned);
    }

    #[test]
    fn empty_cases() {
        let g = unit_line(3).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = ctx_on_line(&g, &m, LoadModel::Linear);
        let out = route(&ctx, &[NodeId::new(0)], &RoundRequests::empty());
        assert_eq!(out.cost, 0.0);
        let out = route(&ctx, &[], &RoundRequests::new(vec![NodeId::new(1)]));
        assert!(out.cost.is_infinite());
    }

    #[test]
    fn unreachable_origin_charged_penalty_not_infinity() {
        // 0 - 1 - 2: fail the 1-2 link so node 2 is cut off from a server
        // at node 0, while node 1 still reaches it.
        let mut g = unit_line(3).unwrap();
        g.set_edge_latency(NodeId::new(1), NodeId::new(2), f64::INFINITY)
            .unwrap();
        let m = DistanceMatrix::build(&g);
        let servers = [NodeId::new(0)];
        let batch = RoundRequests::new(vec![NodeId::new(1), NodeId::new(2), NodeId::new(2)]);

        let near = route(&ctx_on_line(&g, &m, LoadModel::Linear), &servers, &batch);
        assert!(near.cost.is_finite(), "penalty keeps the round finite");
        // 1 reachable request (delay 1, load 1) + 2 penalized requests.
        assert_eq!(near.total_delay, 1.0 + 2.0 * UNREACHABLE_PENALTY);
        assert_eq!(
            near.assigned,
            vec![1],
            "penalized requests are not assigned"
        );
        assert_eq!(near.total_load, 1.0);

        let aware = route(
            &ctx_on_line(&g, &m, LoadModel::Linear).with_routing(RoutingPolicy::LoadAware),
            &servers,
            &batch,
        );
        assert_eq!(aware.total_delay.to_bits(), near.total_delay.to_bits());
        assert_eq!(aware.assigned, near.assigned);

        // No active servers at all stays infinite — that is a broken
        // configuration, not a substrate fault.
        let out = route(&ctx_on_line(&g, &m, LoadModel::Linear), &[], &batch);
        assert!(out.cost.is_infinite());
    }

    #[test]
    fn server_on_origin_costs_only_load() {
        let g = unit_line(4).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = ctx_on_line(&g, &m, LoadModel::Linear);
        let batch = RoundRequests::new(vec![NodeId::new(1)]);
        let out = route(&ctx, &[NodeId::new(1)], &batch);
        assert_eq!(out.total_delay, 0.0);
        assert_eq!(out.total_load, 1.0);
    }
}
