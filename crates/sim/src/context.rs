//! The shared, immutable simulation context.

use flexserve_graph::{DistanceMatrix, Graph, NodeId};

use crate::load::LoadModel;
use crate::params::CostParams;
use crate::routing::{route, RoutingPolicy};
use flexserve_workload::RoundRequests;

/// Everything an algorithm or the engine needs to price decisions:
/// the substrate, its precomputed distance matrix, the cost parameters,
/// the load model and the routing policy.
///
/// Borrowed (not owned) so one substrate/matrix pair can back many parallel
/// runs without cloning an `n × n` matrix per run.
#[derive(Clone, Copy)]
pub struct SimContext<'a> {
    /// The substrate network.
    pub graph: &'a Graph,
    /// All-pairs shortest path latencies of `graph`.
    pub dist: &'a DistanceMatrix,
    /// Cost model parameters.
    pub params: CostParams,
    /// Server load model.
    pub load: LoadModel,
    /// How requests pick among the active servers.
    pub routing: RoutingPolicy,
}

impl<'a> SimContext<'a> {
    /// Creates a context with the default nearest-server routing policy.
    ///
    /// # Panics
    ///
    /// Panics if `params` fail validation, the graph is empty, or the
    /// matrix size does not match the graph.
    pub fn new(
        graph: &'a Graph,
        dist: &'a DistanceMatrix,
        params: CostParams,
        load: LoadModel,
    ) -> Self {
        params.validate().expect("invalid cost parameters");
        assert!(!graph.is_empty(), "SimContext: empty substrate");
        assert_eq!(
            graph.node_count(),
            dist.node_count(),
            "SimContext: distance matrix does not match graph"
        );
        SimContext {
            graph,
            dist,
            params,
            load,
            routing: RoutingPolicy::Nearest,
        }
    }

    /// Builder-style override of the routing policy.
    pub fn with_routing(mut self, routing: RoutingPolicy) -> Self {
        self.routing = routing;
        self
    }

    /// Access cost `Cost_acc` of serving `batch` from the active `servers`
    /// under this context's routing policy and load model:
    /// `Σ_r delay(r) + Σ_v load(v)`.
    ///
    /// Returns `f64::INFINITY` when `servers` is empty but requests exist.
    pub fn access_cost(&self, servers: &[NodeId], batch: &RoundRequests) -> f64 {
        route(self, servers, batch).cost
    }

    /// [`access_cost`](Self::access_cost) over a sorted per-origin count
    /// vector (the demand plane's canonical round form) under **nearest**
    /// routing — the placement plane's hot path: no request list is
    /// rebuilt, the counts are consumed as materialized by the trace.
    pub fn access_cost_counts(&self, servers: &[NodeId], counts: &[(NodeId, usize)]) -> f64 {
        crate::routing::route_counts(self, servers, counts).cost
    }

    /// Running cost of one round for `n_active` active and `n_inactive`
    /// inactive servers: `Ra·n_active + Ri·n_inactive`.
    #[inline]
    pub fn running_cost(&self, n_active: usize, n_inactive: usize) -> f64 {
        self.params.run_active * n_active as f64 + self.params.run_inactive * n_inactive as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexserve_graph::gen::unit_line;

    #[test]
    fn running_cost_formula() {
        let g = unit_line(3).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        assert_eq!(ctx.running_cost(2, 3), 2.0 * 2.5 + 3.0 * 0.5);
        assert_eq!(ctx.running_cost(0, 0), 0.0);
    }

    #[test]
    fn context_is_send_and_sync() {
        // The seed-parallel experiment runner shares one context borrow
        // across rayon workers; this must never silently regress.
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<SimContext<'static>>();
    }

    #[test]
    fn access_cost_empty_servers_is_infinite() {
        let g = unit_line(3).unwrap();
        let m = DistanceMatrix::build(&g);
        let ctx = SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
        let batch = RoundRequests::new(vec![NodeId::new(0)]);
        assert_eq!(ctx.access_cost(&[], &batch), f64::INFINITY);
        assert_eq!(ctx.access_cost(&[], &RoundRequests::empty()), 0.0);
    }

    #[test]
    #[should_panic(expected = "distance matrix does not match")]
    fn mismatched_matrix_rejected() {
        let g = unit_line(3).unwrap();
        let g2 = unit_line(4).unwrap();
        let m = DistanceMatrix::build(&g2);
        SimContext::new(&g, &m, CostParams::default(), LoadModel::Linear);
    }
}
