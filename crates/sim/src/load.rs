//! Server load functions.
//!
//! The paper models access cost as request latency *plus* the latency due
//! to server load, `load(v,t) = f(ω(v), η(v,t))` — a function of node
//! strength and the number of requests handled by `v` in round `t`.
//! "For example, a simple model where the load increases linearly would be
//! `load(v,t) = η(v,t)/ω(v)`"; the exemplary executions (Figs 1–2) also use
//! a *quadratic* load function, under which overloaded servers become
//! disproportionally expensive and more servers are allocated.

/// The load model `f(ω, η)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LoadModel {
    /// No load term: access cost is pure latency.
    None,
    /// `η / ω` — the paper's simple linear model.
    Linear,
    /// `η² / ω` — the paper's steeper model from the Fig. 1–2 examples.
    Quadratic,
    /// `η^p / ω` for arbitrary exponent `p >= 1` (ablations).
    Power(f64),
}

impl LoadModel {
    /// Load latency contributed by a server of strength `strength` serving
    /// `eta` requests this round.
    #[inline]
    pub fn load(self, strength: f64, eta: usize) -> f64 {
        if eta == 0 {
            return 0.0;
        }
        let eta = eta as f64;
        match self {
            LoadModel::None => 0.0,
            LoadModel::Linear => eta / strength,
            LoadModel::Quadratic => eta * eta / strength,
            LoadModel::Power(p) => eta.powf(p) / strength,
        }
    }

    /// Marginal load of adding one more request when the server currently
    /// serves `eta` requests — used by the load-aware router.
    #[inline]
    pub fn marginal(self, strength: f64, eta: usize) -> f64 {
        self.load(strength, eta + 1) - self.load(strength, eta)
    }

    /// Whether total load is additive over requests for fixed assignment
    /// (`true` only for the linear and none models). Algorithms may exploit
    /// additivity for fast candidate evaluation.
    #[inline]
    pub fn is_additive(self) -> bool {
        matches!(self, LoadModel::None | LoadModel::Linear)
    }
}

/// Parses the names produced by [`LoadModel`]'s `Display` impl
/// (`none`, `linear`, `quadratic`, `power(<p>)`); used by the experiment
/// CLI to read load models from cell expressions.
impl std::str::FromStr for LoadModel {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" => Ok(LoadModel::None),
            "linear" => Ok(LoadModel::Linear),
            "quadratic" => Ok(LoadModel::Quadratic),
            _ => {
                if let Some(p) = s.strip_prefix("power(").and_then(|r| r.strip_suffix(')')) {
                    let p: f64 = p
                        .parse()
                        .map_err(|_| format!("load model: bad exponent in {s:?}"))?;
                    if p < 1.0 || !p.is_finite() {
                        return Err(format!("load model: exponent must be >= 1, got {p}"));
                    }
                    Ok(LoadModel::Power(p))
                } else {
                    Err(format!(
                        "unknown load model {s:?} (expected none, linear, quadratic or power(<p>))"
                    ))
                }
            }
        }
    }
}

impl std::fmt::Display for LoadModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LoadModel::None => write!(f, "none"),
            LoadModel::Linear => write!(f, "linear"),
            LoadModel::Quadratic => write!(f, "quadratic"),
            LoadModel::Power(p) => write!(f, "power({p})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_matches_paper_formula() {
        assert_eq!(LoadModel::Linear.load(2.0, 10), 5.0);
        assert_eq!(LoadModel::Linear.load(1.0, 0), 0.0);
    }

    #[test]
    fn quadratic_grows_faster() {
        let lin = LoadModel::Linear.load(1.0, 8);
        let quad = LoadModel::Quadratic.load(1.0, 8);
        assert_eq!(lin, 8.0);
        assert_eq!(quad, 64.0);
    }

    #[test]
    fn power_generalizes() {
        assert_eq!(LoadModel::Power(1.0).load(2.0, 6), 3.0);
        assert_eq!(LoadModel::Power(2.0).load(1.0, 3), 9.0);
        let p3 = LoadModel::Power(3.0).load(1.0, 2);
        assert!((p3 - 8.0).abs() < 1e-12);
    }

    #[test]
    fn parse_round_trips_display() {
        for m in [
            LoadModel::None,
            LoadModel::Linear,
            LoadModel::Quadratic,
            LoadModel::Power(2.5),
        ] {
            assert_eq!(m.to_string().parse::<LoadModel>().unwrap(), m);
        }
        assert!("bogus".parse::<LoadModel>().is_err());
        assert!("power(0.5)".parse::<LoadModel>().is_err());
        assert!("power(x)".parse::<LoadModel>().is_err());
    }

    #[test]
    fn stronger_nodes_carry_more() {
        let weak = LoadModel::Linear.load(1.0, 10);
        let strong = LoadModel::Linear.load(4.0, 10);
        assert!(strong < weak);
    }

    #[test]
    fn marginal_linear_is_constant() {
        let m0 = LoadModel::Linear.marginal(2.0, 0);
        let m9 = LoadModel::Linear.marginal(2.0, 9);
        assert!((m0 - 0.5).abs() < 1e-12);
        assert!((m9 - 0.5).abs() < 1e-12);
    }

    #[test]
    fn marginal_quadratic_increases() {
        let m0 = LoadModel::Quadratic.marginal(1.0, 0);
        let m5 = LoadModel::Quadratic.marginal(1.0, 5);
        assert!(m5 > m0);
        assert_eq!(m0, 1.0); // 1² − 0²
        assert_eq!(m5, 11.0); // 6² − 5²
    }

    #[test]
    fn additivity_flags() {
        assert!(LoadModel::None.is_additive());
        assert!(LoadModel::Linear.is_additive());
        assert!(!LoadModel::Quadratic.is_additive());
        assert!(!LoadModel::Power(1.5).is_additive());
    }

    #[test]
    fn none_is_free() {
        assert_eq!(LoadModel::None.load(0.5, 1000), 0.0);
    }
}
