//! Hand-rolled JSON checkpoints of a running simulation session.
//!
//! A [`SessionSnapshot`] captures everything a
//! [`SimSession`](crate::session::SimSession) needs to resume exactly
//! where it stopped: the round counter, the fleet (active set, inactive
//! queue with absolute expiry epochs, epoch counter) and the strategy's
//! mutable state as exported through
//! [`OnlineStrategy::export_state`](crate::engine::OnlineStrategy::export_state).
//! Like `results/manifest.json`, the format is hand-rolled JSON (the
//! workspace has no serde by design); unlike the manifest it must also be
//! *parsed*, which the shared
//! [`flexserve_workload::json`] module provides.
//!
//! Restores are guarded: the checkpoint records the substrate fingerprint
//! and the cost-parameter summary, and
//! [`SimSession::resume`](crate::session::SimSession::resume) refuses to
//! resume against a different substrate or cost model — silently replaying
//! a checkpoint into the wrong world would corrupt results without
//! failing any assertion.
//!
//! Floats are rendered with Rust's shortest-round-trip formatting, so a
//! snapshot → JSON → restore cycle reproduces every accumulator
//! **bit-identically** (pinned by `crates/core/tests/checkpoint_resume.rs`).
//! The full schema is documented in `docs/SERVING.md`.
//!
//! Two format generations exist. `flexserve-checkpoint-v2` (current)
//! additionally carries the session's cumulative serving metrics as a
//! [`SessionMetrics`] block, so a restarted daemon keeps its lifetime
//! totals. `flexserve-checkpoint-v1` files (no metrics block) remain
//! fully readable — the simulation state is identical, the metrics just
//! start over from the round counter.

use flexserve_graph::NodeId;
use flexserve_workload::JsonValue;

use crate::cost::CostBreakdown;
use crate::fleet::{Fleet, InactiveServer};

/// The format tag written into every new checkpoint.
pub const CHECKPOINT_FORMAT: &str = "flexserve-checkpoint-v2";

/// The previous format tag, still accepted on read: v1 checkpoints are
/// v2 checkpoints without the `metrics` block.
pub const CHECKPOINT_FORMAT_V1: &str = "flexserve-checkpoint-v1";

/// Cumulative serving totals carried inside a v2 checkpoint, so a
/// session's lifetime counters survive daemon restarts (`GET /metrics`
/// reports them as the `cumulative` block).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SessionMetrics {
    /// Rounds ever served, across all restarts.
    pub rounds_served: u64,
    /// Cost totals accumulated over those rounds.
    pub total_cost: CostBreakdown,
    /// Wall-clock seconds the session has been live, across restarts.
    pub uptime_seconds: f64,
}

impl SessionMetrics {
    /// Renders the metrics block of a v2 checkpoint.
    fn to_json_value(self) -> JsonValue {
        JsonValue::Obj(vec![
            ("rounds_served".into(), JsonValue::from(self.rounds_served)),
            (
                "total_cost".into(),
                JsonValue::Obj(vec![
                    ("access".into(), JsonValue::from(self.total_cost.access)),
                    ("running".into(), JsonValue::from(self.total_cost.running)),
                    (
                        "migration".into(),
                        JsonValue::from(self.total_cost.migration),
                    ),
                    ("creation".into(), JsonValue::from(self.total_cost.creation)),
                ]),
            ),
            (
                "uptime_seconds".into(),
                JsonValue::from(self.uptime_seconds),
            ),
        ])
    }

    /// Parses the metrics block of a v2 checkpoint.
    fn from_json_value(v: &JsonValue) -> Result<Self, String> {
        let rounds_served = v
            .get("rounds_served")
            .and_then(JsonValue::as_u64)
            .ok_or("checkpoint: metrics missing \"rounds_served\"")?;
        let cost = v
            .get("total_cost")
            .ok_or("checkpoint: metrics missing \"total_cost\"")?;
        let field = |name: &str| {
            cost.get(name)
                .and_then(JsonValue::as_f64)
                .ok_or_else(|| format!("checkpoint: metrics missing total_cost.{name}"))
        };
        let total_cost = CostBreakdown {
            access: field("access")?,
            running: field("running")?,
            migration: field("migration")?,
            creation: field("creation")?,
        };
        let uptime_seconds = v
            .get("uptime_seconds")
            .and_then(JsonValue::as_f64)
            .ok_or("checkpoint: metrics missing \"uptime_seconds\"")?;
        Ok(SessionMetrics {
            rounds_served,
            total_cost,
            uptime_seconds,
        })
    }
}

/// A point-in-time capture of one simulation session.
#[derive(Clone, Debug, PartialEq)]
pub struct SessionSnapshot {
    /// Rounds played so far (the next [`step`](crate::session::SimSession::step)
    /// is round `t`).
    pub t: u64,
    /// `Graph::fingerprint()` of the substrate the session ran on.
    pub substrate_fingerprint: u64,
    /// `CostParams::summary()` of the session's cost model.
    pub params_summary: String,
    /// The strategy's display name (`"ONTH"`, `"ONBR-fixed"`, …).
    pub strategy_name: String,
    /// The strategy's exported mutable state.
    pub strategy_state: JsonValue,
    /// Active-server nodes, sorted.
    pub active: Vec<NodeId>,
    /// The inactive queue, oldest first, with absolute expiry epochs.
    pub inactive: Vec<InactiveServer>,
    /// The fleet's epoch counter.
    pub epoch: u64,
    /// Cumulative serving metrics (v2). `None` for v1 checkpoints and for
    /// snapshots taken straight off a [`SimSession`](crate::session::SimSession),
    /// which does not track serving totals — the serve layer fills this in
    /// before writing the file.
    pub metrics: Option<SessionMetrics>,
    /// The session's substrate-event schedule in the `events=` cell grammar
    /// (see `docs/FAULTS.md`), e.g. `"5:fail-link:2-7,10:recover-link:2-7"`.
    /// Absent when the session has no scheduled events — a plain static-
    /// substrate checkpoint is byte-identical to the pre-events format, so
    /// the v2 tag is kept. On resume the events with time `< t` are
    /// replayed onto the base substrate before the fingerprint guard runs.
    pub substrate_events: Option<String>,
}

impl SessionSnapshot {
    /// Captures `fleet` (the session adds `t`, context guards and the
    /// strategy fields).
    pub(crate) fn fleet_fields(fleet: &Fleet) -> (Vec<NodeId>, Vec<InactiveServer>, u64) {
        (
            fleet.active().to_vec(),
            fleet.inactive_entries().copied().collect(),
            fleet.epoch(),
        )
    }

    /// Renders the snapshot as a self-describing JSON document (always
    /// the current v2 format; the `metrics` block appears only when
    /// [`metrics`](Self::metrics) is set).
    pub fn to_json(&self) -> String {
        let mut pairs = vec![
            ("format".into(), JsonValue::from(CHECKPOINT_FORMAT)),
            ("t".into(), JsonValue::from(self.t)),
            (
                "substrate_fingerprint".into(),
                JsonValue::from(format!("{:016x}", self.substrate_fingerprint)),
            ),
            (
                "params".into(),
                JsonValue::from(self.params_summary.clone()),
            ),
            (
                "strategy".into(),
                JsonValue::Obj(vec![
                    ("name".into(), JsonValue::from(self.strategy_name.clone())),
                    ("state".into(), self.strategy_state.clone()),
                ]),
            ),
            (
                "fleet".into(),
                JsonValue::Obj(vec![
                    (
                        "active".into(),
                        JsonValue::Arr(
                            self.active
                                .iter()
                                .map(|n| JsonValue::from(n.index()))
                                .collect(),
                        ),
                    ),
                    (
                        "inactive".into(),
                        JsonValue::Arr(
                            self.inactive
                                .iter()
                                .map(|s| {
                                    JsonValue::Arr(vec![
                                        JsonValue::from(s.node.index()),
                                        JsonValue::from(s.expires_epoch),
                                    ])
                                })
                                .collect(),
                        ),
                    ),
                    ("epoch".into(), JsonValue::from(self.epoch)),
                ]),
            ),
        ];
        if let Some(metrics) = self.metrics {
            pairs.push(("metrics".into(), metrics.to_json_value()));
        }
        if let Some(events) = &self.substrate_events {
            pairs.push(("substrate_events".into(), JsonValue::from(events.clone())));
        }
        let mut out = JsonValue::Obj(pairs).render();
        out.push('\n');
        out
    }

    /// Parses a checkpoint document produced by [`SessionSnapshot::to_json`]
    /// — either format generation: a v1 document simply has no `metrics`.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = JsonValue::parse(text).map_err(|e| format!("checkpoint: {e}"))?;
        let format = v
            .get("format")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint: missing \"format\"")?;
        if format != CHECKPOINT_FORMAT && format != CHECKPOINT_FORMAT_V1 {
            return Err(format!(
                "checkpoint: unsupported format {format:?} (expected {CHECKPOINT_FORMAT:?} \
                 or {CHECKPOINT_FORMAT_V1:?})"
            ));
        }
        let t = v
            .get("t")
            .and_then(JsonValue::as_u64)
            .ok_or("checkpoint: missing \"t\"")?;
        let substrate_fingerprint = v
            .get("substrate_fingerprint")
            .and_then(JsonValue::as_str)
            .and_then(|s| u64::from_str_radix(s, 16).ok())
            .ok_or("checkpoint: missing or bad \"substrate_fingerprint\"")?;
        let params_summary = v
            .get("params")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint: missing \"params\"")?
            .to_string();
        let strategy = v
            .get("strategy")
            .ok_or("checkpoint: missing \"strategy\"")?;
        let strategy_name = strategy
            .get("name")
            .and_then(JsonValue::as_str)
            .ok_or("checkpoint: missing strategy name")?
            .to_string();
        let strategy_state = strategy
            .get("state")
            .cloned()
            .ok_or("checkpoint: missing strategy state")?;
        let fleet = v.get("fleet").ok_or("checkpoint: missing \"fleet\"")?;
        let active = fleet
            .get("active")
            .and_then(JsonValue::as_array)
            .ok_or("checkpoint: missing fleet active set")?
            .iter()
            .map(|n| n.as_usize().map(NodeId::new))
            .collect::<Option<Vec<_>>>()
            .ok_or("checkpoint: bad active node id")?;
        let inactive = fleet
            .get("inactive")
            .and_then(JsonValue::as_array)
            .ok_or("checkpoint: missing fleet inactive queue")?
            .iter()
            .map(|pair| {
                let pair = pair.as_array()?;
                match pair {
                    [node, exp] => Some(InactiveServer {
                        node: NodeId::new(node.as_usize()?),
                        expires_epoch: exp.as_u64()?,
                    }),
                    _ => None,
                }
            })
            .collect::<Option<Vec<_>>>()
            .ok_or("checkpoint: bad inactive queue entry")?;
        let epoch = fleet
            .get("epoch")
            .and_then(JsonValue::as_u64)
            .ok_or("checkpoint: missing fleet epoch")?;
        // Optional in v2 documents too (a bare SimSession snapshot carries
        // no serving totals), absent by definition in v1.
        let metrics = match v.get("metrics") {
            Some(m) => Some(SessionMetrics::from_json_value(m)?),
            None => None,
        };
        // Optional like metrics: absent means a static substrate.
        let substrate_events = match v.get("substrate_events") {
            Some(e) => Some(
                e.as_str()
                    .ok_or("checkpoint: \"substrate_events\" must be a string")?
                    .to_string(),
            ),
            None => None,
        };
        Ok(SessionSnapshot {
            t,
            substrate_fingerprint,
            params_summary,
            strategy_name,
            strategy_state,
            active,
            inactive,
            epoch,
            metrics,
            substrate_events,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SessionSnapshot {
        SessionSnapshot {
            t: 17,
            substrate_fingerprint: 0xdead_beef_0042,
            params_summary: "beta=40, c=400".into(),
            strategy_name: "ONTH".into(),
            strategy_state: JsonValue::Obj(vec![("small_cost".into(), JsonValue::from(0.1 + 0.2))]),
            active: vec![NodeId::new(2), NodeId::new(9)],
            inactive: vec![InactiveServer {
                node: NodeId::new(4),
                expires_epoch: 23,
            }],
            epoch: 5,
            metrics: Some(SessionMetrics {
                rounds_served: 240,
                total_cost: CostBreakdown {
                    access: 0.1 + 0.2,
                    running: 12.5,
                    migration: 80.0,
                    creation: 0.0,
                },
                uptime_seconds: 3.75,
            }),
            substrate_events: None,
        }
    }

    #[test]
    fn json_round_trips_exactly() {
        let snap = sample();
        let text = snap.to_json();
        assert!(text.contains(CHECKPOINT_FORMAT));
        let back = SessionSnapshot::from_json(&text).unwrap();
        assert_eq!(back, snap);
        // float state survives bit-identically
        assert_eq!(
            back.strategy_state.get("small_cost").unwrap().as_f64(),
            Some(0.1 + 0.2)
        );
        assert_eq!(
            back.metrics.unwrap().total_cost.access.to_bits(),
            (0.1f64 + 0.2).to_bits()
        );
    }

    #[test]
    fn metrics_block_is_optional_in_v2() {
        let mut snap = sample();
        snap.metrics = None;
        let text = snap.to_json();
        assert!(!text.contains("\"metrics\""), "{text}");
        assert_eq!(SessionSnapshot::from_json(&text).unwrap(), snap);
    }

    #[test]
    fn substrate_events_block_is_optional_and_round_trips() {
        // Absent by default: a static-substrate checkpoint carries no
        // events key at all (byte-stable with the pre-events format).
        let snap = sample();
        assert!(!snap.to_json().contains("substrate_events"));

        let mut evented = sample();
        evented.substrate_events = Some("5:fail-link:2-7,10:recover-link:2-7".into());
        let text = evented.to_json();
        assert!(
            text.contains("\"substrate_events\":\"5:fail-link:2-7,10:recover-link:2-7\""),
            "{text}"
        );
        let back = SessionSnapshot::from_json(&text).unwrap();
        assert_eq!(back, evented);

        // A mangled events field fails loudly.
        let broken = text.replace("\"5:fail-link:2-7,10:recover-link:2-7\"", "42");
        let err = SessionSnapshot::from_json(&broken).unwrap_err();
        assert!(err.contains("substrate_events"), "{err}");
    }

    #[test]
    fn v1_documents_still_parse() {
        // A v1 checkpoint is byte-for-byte a v2 document with the old
        // format tag and no metrics block.
        let mut snap = sample();
        snap.metrics = None;
        let v1 = snap
            .to_json()
            .replace(CHECKPOINT_FORMAT, CHECKPOINT_FORMAT_V1);
        assert!(v1.contains(CHECKPOINT_FORMAT_V1));
        let back = SessionSnapshot::from_json(&v1).unwrap();
        assert_eq!(back, snap);
        assert!(back.metrics.is_none());
    }

    #[test]
    fn rejects_wrong_format_and_missing_fields() {
        assert!(SessionSnapshot::from_json("{}").is_err());
        assert!(SessionSnapshot::from_json("not json").is_err());
        let other = sample().to_json().replace(CHECKPOINT_FORMAT, "v999");
        let err = SessionSnapshot::from_json(&other).unwrap_err();
        assert!(err.contains("unsupported format"), "{err}");
        let broken = sample().to_json().replace("\"epoch\"", "\"epoxy\"");
        assert!(SessionSnapshot::from_json(&broken).is_err());
        // a v2 tag with a mangled metrics block must fail loudly, not
        // silently drop the totals
        let mangled = sample().to_json().replace("\"uptime_seconds\"", "\"up\"");
        assert!(SessionSnapshot::from_json(&mangled).is_err());
    }

    #[test]
    fn fingerprint_is_hex() {
        let text = sample().to_json();
        assert!(text.contains("\"0000deadbeef0042\""), "{text}");
    }
}
