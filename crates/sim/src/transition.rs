//! The transition planner: pricing and applying configuration changes.
//!
//! The paper's Examples 1–3 (§II-C) define how a new server comes up at a
//! node `v`:
//!
//! 1. an inactive server already cached at `v` is activated — **free**;
//! 2. an inactive server cached elsewhere is migrated to `v` — costs `β`
//!    (and its old slot is vacated);
//! 3. a surplus active server is migrated to `v` — costs `β`;
//! 4. otherwise a fresh server is created — costs `c`.
//!
//! When `β ≥ c` migration is never used (the paper: "if β ≥ c, migration is
//! never beneficial") and every new position is a creation. Deactivation
//! and deletion are free; deactivated servers enter the FIFO cache.
//!
//! Every strategy prices its candidate configurations through this planner
//! (or the stateless [`config_transition_cost`] used by the offline DP), so
//! all algorithms are charged under identical semantics.

use flexserve_graph::NodeId;

use crate::cost::CostBreakdown;
use crate::fleet::Fleet;
use crate::params::CostParams;

/// One elementary reconfiguration step (for event logs and tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransitionOp {
    /// A cached inactive server at this node became active (free).
    ActivateInPlace(NodeId),
    /// An inactive server migrated from `from` to `to` and became active
    /// (`β`).
    MigrateInactive {
        /// Old slot (now vacated).
        from: NodeId,
        /// New active location.
        to: NodeId,
    },
    /// An active server migrated from `from` to `to` (`β`).
    MigrateActive {
        /// Old slot (now vacated).
        from: NodeId,
        /// New active location.
        to: NodeId,
    },
    /// A fresh server was created at this node (`c`).
    Create(NodeId),
    /// An active server became inactive and entered the cache (free).
    Deactivate(NodeId),
    /// A cached server fell out of use (queue overflow, expiry, or `k`
    /// budget).
    EvictInactive(NodeId),
}

/// Result of applying a transition.
#[derive(Clone, Debug)]
pub struct TransitionOutcome {
    /// Migration + creation costs of this transition.
    pub cost: CostBreakdown,
    /// The elementary steps, in application order.
    pub ops: Vec<TransitionOp>,
}

impl TransitionOutcome {
    /// Number of migrations performed.
    pub fn migrations(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| {
                matches!(
                    o,
                    TransitionOp::MigrateInactive { .. } | TransitionOp::MigrateActive { .. }
                )
            })
            .count()
    }

    /// Number of servers created.
    pub fn creations(&self) -> usize {
        self.ops
            .iter()
            .filter(|o| matches!(o, TransitionOp::Create(_)))
            .count()
    }
}

/// Plans and applies transitions on a [`Fleet`].
pub struct TransitionPlanner;

impl TransitionPlanner {
    /// Prices the transition from the fleet's current configuration to the
    /// target active set **without** mutating the fleet.
    pub fn price(fleet: &Fleet, target: &[NodeId], params: &CostParams) -> f64 {
        let mut scratch = fleet.clone();
        Self::apply(&mut scratch, target, params).cost.total()
    }

    /// Reconfigures `fleet` so that its active set equals `target`
    /// (duplicates ignored), returning the costs and the op list.
    ///
    /// # Panics
    ///
    /// Panics if `target` is larger than the `k` budget or empty targets
    /// would orphan requests — strategies must keep at least one server;
    /// an empty `target` is allowed here (used by tests) but discouraged.
    pub fn apply(fleet: &mut Fleet, target: &[NodeId], params: &CostParams) -> TransitionOutcome {
        let mut target: Vec<NodeId> = target.to_vec();
        target.sort();
        target.dedup();
        assert!(
            target.len() <= params.max_servers,
            "target ({}) exceeds max_servers ({})",
            target.len(),
            params.max_servers
        );

        let mut ops = Vec::new();
        let mut cost = CostBreakdown::zero();

        // Classify.
        let to_deactivate: Vec<NodeId> = fleet
            .active()
            .iter()
            .copied()
            .filter(|v| target.binary_search(v).is_err())
            .collect();
        let mut to_bring_up: Vec<NodeId> = target
            .iter()
            .copied()
            .filter(|&v| !fleet.is_active_at(v))
            .collect();

        // Step 1: in-place activations from the cache are free and never
        // worse than any alternative — do them first.
        to_bring_up.retain(|&v| {
            if fleet.take_inactive_at(v) {
                fleet.push_active(v);
                ops.push(TransitionOp::ActivateInPlace(v));
                false
            } else {
                true
            }
        });

        let migration_useful = params.migration_useful();

        // Step 2: remaining bring-ups, cheapest source first. Preference
        // order per the paper's Example 2: migrate a cached inactive server
        // (oldest first — FIFO), then migrate a surplus active server, then
        // create. If β ≥ c we always create.
        let mut surplus = to_deactivate.clone();
        let mut deactivated_directly: Vec<NodeId> = Vec::new();
        for &v in &to_bring_up {
            if migration_useful {
                if let Some(from) = fleet.take_oldest_inactive() {
                    fleet.push_active(v);
                    ops.push(TransitionOp::MigrateInactive { from, to: v });
                    cost.migration += params.migration_beta;
                    continue;
                }
                if let Some(from) = surplus.pop() {
                    assert!(fleet.remove_active(from));
                    deactivated_directly.push(from);
                    fleet.push_active(v);
                    ops.push(TransitionOp::MigrateActive { from, to: v });
                    cost.migration += params.migration_beta;
                    continue;
                }
            }
            // Creation: make room in the k budget first. Surplus actives
            // are leaving the configuration anyway, so dropping one is free
            // and must happen before the creation (otherwise a full fleet
            // would transiently exceed k); after that, cached servers are
            // evicted as usual.
            while fleet.total_count() >= params.max_servers {
                match surplus.pop() {
                    Some(s) => {
                        assert!(fleet.remove_active(s));
                        ops.push(TransitionOp::Deactivate(s));
                        ops.push(TransitionOp::EvictInactive(s));
                    }
                    None => break,
                }
            }
            for evicted in fleet.make_room(1) {
                ops.push(TransitionOp::EvictInactive(evicted));
            }
            fleet.push_active(v);
            ops.push(TransitionOp::Create(v));
            cost.creation += params.creation_c;
        }

        // Step 3: deactivate the remaining surplus actives into the cache.
        for v in surplus {
            if let Some(evicted) = fleet.deactivate(v) {
                ops.push(TransitionOp::Deactivate(v));
                ops.push(TransitionOp::EvictInactive(evicted));
            } else {
                ops.push(TransitionOp::Deactivate(v));
            }
        }

        debug_assert_eq!(fleet.active(), &target[..], "planner postcondition");
        TransitionOutcome { cost, ops }
    }
}

/// Stateless transition cost between two *full* configurations
/// `(active, inactive)` — the pricing used by the optimal offline DP, where
/// inactive placement is part of the searched state (no FIFO queue
/// semantics).
///
/// Servers are fungible: positions in `P2 = A2 ∪ I2` not present in
/// `P1 = A1 ∪ I1` must be filled by migrating vacated servers
/// (`β` each, if `β < c`) or by creating (`c` each); activation state flips
/// at a node are free. Sets must be internally disjoint.
pub fn config_transition_cost(
    active_from: &[NodeId],
    inactive_from: &[NodeId],
    active_to: &[NodeId],
    inactive_to: &[NodeId],
    params: &CostParams,
) -> f64 {
    let mut p1: Vec<NodeId> = active_from.iter().chain(inactive_from).copied().collect();
    let mut p2: Vec<NodeId> = active_to.iter().chain(inactive_to).copied().collect();
    p1.sort();
    p2.sort();
    debug_assert!(p1.windows(2).all(|w| w[0] != w[1]), "overlapping from-sets");
    debug_assert!(p2.windows(2).all(|w| w[0] != w[1]), "overlapping to-sets");

    // new = |P2 \ P1|, vacated = |P1 \ P2| via sorted merge.
    let mut new_positions = 0usize;
    let mut vacated = 0usize;
    let (mut i, mut j) = (0usize, 0usize);
    while i < p1.len() || j < p2.len() {
        if i == p1.len() {
            new_positions += 1;
            j += 1;
        } else if j == p2.len() {
            vacated += 1;
            i += 1;
        } else if p1[i] == p2[j] {
            i += 1;
            j += 1;
        } else if p1[i] < p2[j] {
            vacated += 1;
            i += 1;
        } else {
            new_positions += 1;
            j += 1;
        }
    }

    if params.migration_useful() {
        let migrations = new_positions.min(vacated);
        let creations = new_positions - migrations;
        migrations as f64 * params.migration_beta + creations as f64 * params.creation_c
    } else {
        new_positions as f64 * params.creation_c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(i: usize) -> NodeId {
        NodeId::new(i)
    }

    fn params() -> CostParams {
        CostParams::default().with_max_servers(8)
    }

    fn fleet(active: &[usize]) -> Fleet {
        Fleet::new(active.iter().map(|&i| n(i)).collect(), &params())
    }

    // --- Paper Example 1: three active at v1,v2,v3; add server at v4 ---

    #[test]
    fn example1_no_inactive_creates() {
        let mut f = fleet(&[1, 2, 3]);
        let out = TransitionPlanner::apply(&mut f, &[n(1), n(2), n(3), n(4)], &params());
        assert_eq!(out.cost.creation, 400.0);
        assert_eq!(out.cost.migration, 0.0);
        assert_eq!(out.creations(), 1);
    }

    #[test]
    fn example1_inactive_at_v4_is_free() {
        let mut f = fleet(&[1, 2, 3, 4]);
        // make v4 inactive first
        TransitionPlanner::apply(&mut f, &[n(1), n(2), n(3)], &params());
        assert!(f.is_inactive_at(n(4)));
        let out = TransitionPlanner::apply(&mut f, &[n(1), n(2), n(3), n(4)], &params());
        assert_eq!(out.cost.total(), 0.0);
        assert_eq!(out.ops, vec![TransitionOp::ActivateInPlace(n(4))]);
    }

    #[test]
    fn example1_inactive_elsewhere_migrates() {
        let mut f = fleet(&[1, 2, 3, 5]);
        TransitionPlanner::apply(&mut f, &[n(1), n(2), n(3)], &params()); // v5 inactive
        let out = TransitionPlanner::apply(&mut f, &[n(1), n(2), n(3), n(4)], &params());
        assert_eq!(out.cost.migration, 40.0);
        assert_eq!(out.cost.creation, 0.0);
        assert_eq!(
            out.ops,
            vec![TransitionOp::MigrateInactive {
                from: n(5),
                to: n(4)
            }]
        );
        // no server remains at v5
        assert!(!f.is_inactive_at(n(5)));
        assert!(!f.is_active_at(n(5)));
    }

    // --- Paper Example 2: v1,v2,v3 -> v1,v2,v4 ---

    #[test]
    fn example2_surplus_active_migrates_when_no_inactive() {
        let mut f = fleet(&[1, 2, 3]);
        let out = TransitionPlanner::apply(&mut f, &[n(1), n(2), n(4)], &params());
        assert_eq!(out.cost.migration, 40.0);
        assert_eq!(out.cost.creation, 0.0);
        assert_eq!(
            out.ops,
            vec![TransitionOp::MigrateActive {
                from: n(3),
                to: n(4)
            }]
        );
        assert!(!f.is_active_at(n(3)));
        assert!(!f.is_inactive_at(n(3)));
    }

    #[test]
    fn example2_prefers_migrating_cached_inactive() {
        let mut f = fleet(&[1, 2, 3, 5]);
        TransitionPlanner::apply(&mut f, &[n(1), n(2), n(3)], &params()); // v5 cached
        let out = TransitionPlanner::apply(&mut f, &[n(1), n(2), n(4)], &params());
        assert_eq!(out.cost.migration, 40.0);
        // inactive v5 moved; surplus v3 went to the cache
        assert!(out.ops.contains(&TransitionOp::MigrateInactive {
            from: n(5),
            to: n(4)
        }));
        assert!(out.ops.contains(&TransitionOp::Deactivate(n(3))));
        assert!(f.is_inactive_at(n(3)));
    }

    // --- Paper Example 3: removing a server is free ---

    #[test]
    fn example3_removal_free_and_cached() {
        let mut f = fleet(&[1, 2, 3]);
        let out = TransitionPlanner::apply(&mut f, &[n(1), n(3)], &params());
        assert_eq!(out.cost.total(), 0.0);
        assert_eq!(out.ops, vec![TransitionOp::Deactivate(n(2))]);
        assert!(f.is_inactive_at(n(2)));
        assert_eq!(f.active(), &[n(1), n(3)]);
    }

    #[test]
    fn beta_greater_than_c_always_creates() {
        let p = CostParams::flipped().with_max_servers(8);
        let mut f = Fleet::new(vec![n(1), n(2)], &p);
        let out = TransitionPlanner::apply(&mut f, &[n(1), n(3)], &p);
        // never migrate: create at v3 (40), deactivate v2 (free)
        assert_eq!(out.cost.creation, 40.0);
        assert_eq!(out.cost.migration, 0.0);
        assert!(out.ops.contains(&TransitionOp::Create(n(3))));
    }

    #[test]
    fn no_change_costs_nothing() {
        let mut f = fleet(&[1, 2]);
        let out = TransitionPlanner::apply(&mut f, &[n(2), n(1)], &params());
        assert_eq!(out.cost.total(), 0.0);
        assert!(out.ops.is_empty());
    }

    #[test]
    fn price_does_not_mutate() {
        let f = fleet(&[1, 2]);
        let cost = TransitionPlanner::price(&f, &[n(3), n(4)], &params());
        // two bring-ups: one migrates the surplus... wait, both 1 and 2 are
        // surplus; two migrations.
        assert_eq!(cost, 80.0);
        assert_eq!(f.active(), &[n(1), n(2)]);
    }

    #[test]
    fn budget_enforced_by_evicting_cache() {
        let p = CostParams::flipped().with_max_servers(3);
        let mut f = Fleet::new(vec![n(0), n(1), n(2)], &p);
        TransitionPlanner::apply(&mut f, &[n(0), n(1)], &p); // n2 cached, total 3
                                                             // bring up n3 by creation (β>c): needs room -> evict n2
        let out = TransitionPlanner::apply(&mut f, &[n(0), n(1), n(3)], &p);
        assert!(out.ops.contains(&TransitionOp::EvictInactive(n(2))));
        assert_eq!(f.total_count(), 3);
    }

    #[test]
    #[should_panic(expected = "exceeds max_servers")]
    fn oversized_target_panics() {
        let p = CostParams::default().with_max_servers(2);
        let mut f = Fleet::new(vec![n(0)], &p);
        TransitionPlanner::apply(&mut f, &[n(0), n(1), n(2)], &p);
    }

    // --- config_transition_cost (the DP pricing) ---

    #[test]
    fn dp_cost_no_change_is_zero() {
        let p = params();
        assert_eq!(
            config_transition_cost(&[n(1), n(2)], &[n(3)], &[n(1), n(2)], &[n(3)], &p),
            0.0
        );
        // activation flips at the same node are free
        assert_eq!(
            config_transition_cost(&[n(1)], &[n(2)], &[n(2)], &[n(1)], &p),
            0.0
        );
    }

    #[test]
    fn dp_cost_migration_matching() {
        let p = params();
        // one vacated (n1), one new (n4): a single migration
        assert_eq!(
            config_transition_cost(&[n(1), n(2)], &[], &[n(2), n(4)], &[], &p),
            40.0
        );
        // two new, one vacated: migration + creation
        assert_eq!(
            config_transition_cost(&[n(1)], &[], &[n(2), n(3)], &[], &p),
            440.0
        );
        // pure growth: creations only
        assert_eq!(
            config_transition_cost(&[n(1)], &[], &[n(1), n(2)], &[], &p),
            400.0
        );
        // pure shrink: free
        assert_eq!(
            config_transition_cost(&[n(1), n(2)], &[], &[n(1)], &[], &p),
            0.0
        );
    }

    #[test]
    fn dp_cost_flipped_regime_never_migrates() {
        let p = CostParams::flipped();
        assert_eq!(
            config_transition_cost(&[n(1)], &[], &[n(2)], &[], &p),
            40.0 // creation at new node; old server deleted free
        );
    }
}
