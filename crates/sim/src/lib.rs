//! # flexserve-sim
//!
//! Discrete-time simulation engine for the flexible server allocation
//! problem: the cost model, request routing, the server-fleet state
//! machine (active / inactive / not-in-use with the paper's FIFO cache of
//! inactive servers), the transition planner that prices configuration
//! changes, and the synchronous round-based game loop of §II-E:
//!
//! 1. requests `σt` arrive at access points,
//! 2. the algorithm pays the access cost `Cost_acc(t)` to the current
//!    servers,
//! 3. the algorithm reconfigures (allocate / remove / migrate /
//!    (de)activate servers) and pays running and migration costs.
//!
//! The engine is deliberately synchronous and single-threaded per run — the
//! problem is a sequential online game; parallelism lives one level up
//! (the experiment harness fans independent seeds out over rayon workers;
//! `SimContext` is `Copy` over shared borrows precisely so many runs can
//! share one substrate and distance matrix across threads).
//!
//! The game loop has two forms over one implementation: the batch
//! [`run_online`] over a recorded trace, and the resumable stepper
//! [`SimSession`] (one round per [`SimSession::step`] call) that the
//! `flexserve serve` daemon drives and that checkpoints to hand-rolled
//! JSON ([`checkpoint`]) for bit-identical restore.

#![deny(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod checkpoint;
pub mod context;
pub mod cost;
pub mod engine;
pub mod events;
pub mod fleet;
pub mod load;
pub mod params;
pub mod routing;
pub mod session;
pub mod transition;

pub use checkpoint::{SessionMetrics, SessionSnapshot, CHECKPOINT_FORMAT, CHECKPOINT_FORMAT_V1};
pub use context::SimContext;
pub use cost::CostBreakdown;
pub use engine::{run_online, run_plan, OnlineStrategy, Plan, RoundRecord, RunRecord};
pub use events::{DynamicWorld, EventedSession, SubstrateEvent, SubstrateEvents};
pub use fleet::{Fleet, InactiveServer};
pub use load::LoadModel;
pub use params::CostParams;
pub use routing::{route, route_counts, RoutingOutcome, RoutingPolicy, UNREACHABLE_PENALTY};
pub use session::SimSession;
pub use transition::{config_transition_cost, TransitionOutcome, TransitionPlanner};
